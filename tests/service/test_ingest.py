"""Unit tests for the micro-batched ingest path (MicroBatcher + service)."""

from __future__ import annotations

import pytest

from repro.core.config import SystemConfig
from repro.core.dispatcher import Dispatcher, OptionPolicy
from repro.core.single_side import SingleSideSearchMatcher
from repro.errors import ConfigurationError
from repro.model.request import Request
from repro.roadnet.generators import grid_network
from repro.roadnet.grid_index import GridIndex
from repro.roadnet.routing import make_engine
from repro.service.api import build_system
from repro.service.ingest import IngestStatistics, MicroBatcher, percentiles
from repro.vehicles.fleet import Fleet
from repro.vehicles.vehicle import Vehicle


def _make_dispatcher(vehicles: int = 6, seed: int = 3):
    network = grid_network(8, 8, weight_jitter=0.2, seed=seed)
    grid = GridIndex(network, rows=4, columns=4)
    fleet = Fleet(grid, make_engine(network, "dict"))
    vertices = network.vertices()
    for index in range(vehicles):
        fleet.add_vehicle(
            Vehicle(f"c{index + 1}", location=vertices[(index * 7) % len(vertices)], capacity=4)
        )
    config = SystemConfig(max_waiting=6.0, service_constraint=0.5)
    matcher = SingleSideSearchMatcher(fleet, config=config)
    return Dispatcher(fleet, matcher, config), network


def _request(network, index: int, submit: float = 0.0) -> Request:
    vertices = network.vertices()
    start = vertices[(index * 3) % len(vertices)]
    destination = vertices[(index * 3 + 11) % len(vertices)]
    if destination == start:
        destination = vertices[(index * 3 + 12) % len(vertices)]
    return Request(
        start=start, destination=destination, riders=1, max_waiting=6.0,
        service_constraint=0.5, request_id=f"Q{index}", submit_time=submit,
    )


class TestPercentiles:
    def test_known_inputs(self):
        values = list(range(1, 101))  # 1..100
        result = percentiles(values)
        assert result == {"p50": 50, "p95": 95, "p99": 99}

    def test_nearest_rank_small_samples(self):
        assert percentiles([7.0]) == {"p50": 7.0, "p95": 7.0, "p99": 7.0}
        # nearest rank on 4 values: p50 -> position ceil(2.0) = 2
        assert percentiles([4.0, 1.0, 3.0, 2.0], ranks=(50,)) == {"p50": 2.0}
        assert percentiles([4.0, 1.0, 3.0, 2.0], ranks=(75, 100)) == {
            "p75": 3.0, "p100": 4.0,
        }

    def test_values_are_observed_never_interpolated(self):
        result = percentiles([10.0, 20.0], ranks=(50, 95))
        assert result["p50"] in (10.0, 20.0)
        assert result["p95"] in (10.0, 20.0)

    def test_empty_input(self):
        assert percentiles([]) == {}

    def test_invalid_rank(self):
        with pytest.raises(ConfigurationError):
            percentiles([1.0], ranks=(0,))
        with pytest.raises(ConfigurationError):
            percentiles([1.0], ranks=(101,))


class TestMicroBatcherWindows:
    def test_invalid_parameters(self):
        dispatcher, _ = _make_dispatcher()
        with pytest.raises(ConfigurationError):
            MicroBatcher(dispatcher, batch_window=0.0)
        with pytest.raises(ConfigurationError):
            MicroBatcher(dispatcher, max_batch_size=0)
        with pytest.raises(ConfigurationError):
            MicroBatcher(dispatcher, queue_capacity=0)
        with pytest.raises(ConfigurationError):
            MicroBatcher(dispatcher, queue_policy="drop-newest")

    def test_window_closes_when_batch_window_elapses(self):
        dispatcher, network = _make_dispatcher()
        batcher = MicroBatcher(dispatcher, batch_window=2.0)
        assert batcher.submit(_request(network, 1), now=10.0)
        assert batcher.submit(_request(network, 2), now=11.0)
        # still inside the window: nothing flushes
        assert batcher.pump(now=11.9) == []
        assert batcher.pending == 2
        outcomes = batcher.pump(now=12.0)
        assert [o.request.request_id for o in outcomes] == ["Q1", "Q2"]
        assert batcher.pending == 0
        assert batcher.statistics.window_closed == 1
        assert batcher.statistics.size_closed == 0

    def test_window_closes_at_max_batch_size(self):
        dispatcher, network = _make_dispatcher()
        batcher = MicroBatcher(dispatcher, batch_window=100.0, max_batch_size=3)
        answered = []
        batcher._on_outcome = answered.append
        for index in range(1, 4):
            assert batcher.submit(_request(network, index), now=0.0)
        # the third admission filled the window: it flushed inline
        assert batcher.pending == 0
        assert len(answered) == 3
        assert batcher.statistics.size_closed == 1
        assert batcher.statistics.window_fills == [1.0]

    def test_flush_forces_a_partial_window(self):
        dispatcher, network = _make_dispatcher()
        batcher = MicroBatcher(dispatcher, batch_window=100.0)
        batcher.submit(_request(network, 1), now=0.0)
        outcomes = batcher.flush(now=0.5)
        assert len(outcomes) == 1
        assert batcher.statistics.forced == 1
        assert batcher.flush(now=1.0) == []  # idempotent on empty

    def test_injected_clock_drives_the_window(self):
        dispatcher, network = _make_dispatcher()
        moments = iter([0.0, 0.5, 0.9, 1.0])
        batcher = MicroBatcher(dispatcher, batch_window=1.0, clock=lambda: next(moments))
        batcher.submit(_request(network, 1))  # clock -> 0.0, opens window
        batcher.submit(_request(network, 2))  # clock -> 0.5
        assert batcher.pump() == []           # clock -> 0.9, window still open
        assert len(batcher.pump()) == 2       # clock -> 1.0, window closes

    def test_outcomes_identical_to_dispatch_batch(self):
        requests = None
        dispatcher, network = _make_dispatcher()
        requests = [_request(network, index) for index in range(1, 8)]
        reference = dispatcher.dispatch_batch(requests, policy=OptionPolicy.CHEAPEST)
        key = lambda o: (o.request.request_id, tuple(o.options), o.chosen)

        fresh, _ = _make_dispatcher()
        batcher = MicroBatcher(fresh, batch_window=1.0)
        for request in requests:
            batcher.submit(request, now=0.0)
        outcomes = batcher.pump(now=1.0)
        assert [key(o) for o in outcomes] == [key(o) for o in reference]

    def test_statistics_latency_and_conservation(self):
        dispatcher, network = _make_dispatcher()
        batcher = MicroBatcher(dispatcher, batch_window=5.0)
        batcher.submit(_request(network, 1), now=0.0)
        batcher.submit(_request(network, 2), now=3.0)
        batcher.pump(now=5.0)
        stats = batcher.statistics
        assert stats.admitted == 2 == stats.answered
        assert stats.errored == 0 and batcher.pending == 0
        assert len(stats.latencies) == 2
        # simulated queue wait dominates: 5s for the first, 2s for the second
        assert stats.latencies[0] >= 5.0
        assert 2.0 <= stats.latencies[1] < stats.latencies[0]
        assert stats.serving_seconds > 0.0
        assert stats.throughput > 0.0
        payload = stats.as_dict()
        assert payload["latency_p50"] >= 2.0
        assert payload["latency_p99"] == max(stats.latencies)
        assert payload["flushes"] == 1.0


class TestBackpressure:
    def test_shed_policy_refuses_and_counts(self):
        dispatcher, network = _make_dispatcher()
        batcher = MicroBatcher(
            dispatcher, batch_window=100.0, queue_capacity=2, queue_policy="shed"
        )
        assert batcher.submit(_request(network, 1), now=0.0)
        assert batcher.submit(_request(network, 2), now=0.0)
        assert not batcher.submit(_request(network, 3), now=0.0)
        assert batcher.pending == 2
        assert batcher.statistics.shed == 1
        assert batcher.statistics.admitted == 2

    def test_block_policy_flushes_inline_and_admits(self):
        dispatcher, network = _make_dispatcher()
        batcher = MicroBatcher(
            dispatcher, batch_window=100.0, queue_capacity=2, queue_policy="block"
        )
        batcher.submit(_request(network, 1), now=0.0)
        batcher.submit(_request(network, 2), now=0.0)
        assert batcher.submit(_request(network, 3), now=0.0)  # never refused
        assert batcher.pending == 1  # the blocked admit drained the window
        stats = batcher.statistics
        assert stats.shed == 0
        assert stats.forced == 1
        assert stats.admitted == 3 and stats.answered == 2


class TestServiceIngest:
    def test_ingest_pump_answers_bookings(self):
        system = build_system(network_rows=6, network_columns=6, vehicles=5, seed=2)
        vertices = system.fleet.grid.network.vertices()
        assert system.ingest(vertices[0], vertices[10])
        assert system.ingest(vertices[3], vertices[14])
        assert system.pump() == []  # window still open at simulated now
        system.advance(system.config.batch_window)
        answered = system.pump()
        assert len(answered) == 2
        assert all(b.booking_id.startswith("B") for b in answered)
        # answered bookings arrive closed (matched) or open with no options
        for booking in answered:
            assert (booking.chosen is not None) == bool(booking.options)
        panel = system.routing_statistics()
        assert panel["ingest_answered"] == 2.0
        assert panel["ingest_queue_depth"] == 0.0
        assert "ingest_latency_p95" in panel

    def test_drain_forces_the_pending_window(self):
        system = build_system(network_rows=6, network_columns=6, vehicles=5, seed=2)
        vertices = system.fleet.grid.network.vertices()
        system.ingest(vertices[0], vertices[8])
        answered = system.drain()
        assert len(answered) == 1
        assert system.batcher.statistics.forced == 1

    def test_close_drains_and_is_idempotent(self):
        system = build_system(network_rows=6, network_columns=6, vehicles=5, seed=2)
        vertices = system.fleet.grid.network.vertices()
        system.ingest(vertices[0], vertices[8])
        system.close()
        assert system.batcher.pending == 0
        assert system.batcher.statistics.answered == 1
        system.close()  # second close is a no-op, not an error

    def test_context_manager_closes(self):
        with build_system(network_rows=6, network_columns=6, vehicles=5, seed=2) as system:
            vertices = system.fleet.grid.network.vertices()
            system.ingest(vertices[0], vertices[8])
        assert system.batcher.pending == 0

    def test_set_parameters_rebuilds_batcher_and_keeps_statistics(self):
        system = build_system(network_rows=6, network_columns=6, vehicles=5, seed=2)
        vertices = system.fleet.grid.network.vertices()
        system.ingest(vertices[0], vertices[8])
        config = system.set_parameters(
            batch_window=0.25, max_batch_size=16, queue_capacity=8,
            queue_policy="block",
        )
        assert config.batch_window == 0.25
        assert config.queue_capacity == 8
        assert system.batcher.batch_window == 0.25
        assert system.batcher.queue_policy == "block"
        # the pending admission was drained through the old dispatcher, and
        # the counters survived the rebuild (the panel series is continuous)
        assert system.batcher.pending == 0
        assert system.batcher.statistics.admitted == 1
        assert system.batcher.statistics.answered == 1
        # queue_capacity=0 maps back to unbounded
        assert system.set_parameters(queue_capacity=0).queue_capacity is None

    def test_build_system_wires_the_ingest_knobs(self):
        system = build_system(
            network_rows=6, network_columns=6, vehicles=4, seed=2,
            batch_window=0.5, max_batch_size=32, queue_capacity=64,
            queue_policy="block",
        )
        assert system.config.batch_window == 0.5
        assert system.config.max_batch_size == 32
        assert system.config.queue_capacity == 64
        assert system.config.queue_policy == "block"
        assert system.batcher.max_batch_size == 32

    def test_book_request_matches_book(self):
        system = build_system(network_rows=6, network_columns=6, vehicles=5, seed=2)
        vertices = system.fleet.grid.network.vertices()
        booking = system.book(vertices[0], vertices[9])
        assert booking.request.max_waiting == system.config.max_waiting
        assert booking.booking_id in {booking.booking_id}
        assert system.booking(booking.booking_id) is booking


class TestIngestStatisticsUnit:
    def test_defaults_and_flushes(self):
        stats = IngestStatistics()
        assert stats.flushes == 0
        assert stats.throughput == 0.0
        assert stats.mean_window_fill == 0.0
        assert "latency_p50" not in stats.as_dict()

    def test_as_dict_is_flat_floats(self):
        stats = IngestStatistics(admitted=3, answered=2, shed=1,
                                 serving_seconds=0.5, window_fills=[0.5, 1.0],
                                 latencies=[0.1, 0.2])
        payload = stats.as_dict()
        assert payload["admitted"] == 3.0
        assert payload["throughput"] == 4.0
        assert payload["mean_window_fill"] == 0.75
        assert payload["latency_p95"] == 0.2
        assert all(isinstance(value, float) for value in payload.values())
