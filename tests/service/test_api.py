"""Unit tests for the in-memory PTRider service (smartphone + website flows)."""

from __future__ import annotations

import pytest

from repro.core.config import SystemConfig
from repro.errors import ConfigurationError, ServiceError, UnknownOptionError
from repro.model.request import Request
from repro.roadnet.generators import figure1_network
from repro.service.api import MATCHER_REGISTRY, PTRiderService, build_system
from repro.vehicles.fleet import Fleet
from repro.vehicles.vehicle import Vehicle
from repro.roadnet.grid_index import GridIndex
from repro.roadnet.shortest_path import DistanceOracle

from tests.conftest import assign_request


@pytest.fixture
def paper_service() -> PTRiderService:
    """A service running the Fig. 1 scenario (c1 busy with R1, c2 empty at v13)."""
    network = figure1_network()
    grid = GridIndex(network, rows=4, columns=4)
    fleet = Fleet(grid, DistanceOracle(network))
    fleet.add_vehicle(Vehicle("c1", location=1, capacity=4))
    fleet.add_vehicle(Vehicle("c2", location=13, capacity=4))
    r1 = Request(start=2, destination=16, riders=2, max_waiting=5.0, service_constraint=0.2, request_id="R1")
    assign_request(fleet, "c1", r1, planned_pickup_distance=8.0)
    config = SystemConfig(max_waiting=5.0, service_constraint=0.2)
    return PTRiderService(fleet, config=config, seed=1)


class TestSmartphoneFlow:
    def test_book_returns_paper_options(self, paper_service):
        booking = paper_service.book(start=12, destination=17, riders=2)
        assert booking.option_count == 2
        points = sorted((round(o.pickup_distance, 3), round(o.price, 3)) for o in booking.options)
        assert points == [(8.0, 8.8), (14.0, 4.0)]
        assert booking.is_open
        assert booking.response_seconds >= 0.0

    def test_choose_commits_to_vehicle(self, paper_service):
        booking = paper_service.book(start=12, destination=17, riders=2)
        cheapest_index = min(range(len(booking.options)), key=lambda i: booking.options[i].price)
        option = paper_service.choose(booking.booking_id, cheapest_index)
        assert option.vehicle_id == "c1"
        assert not paper_service.booking(booking.booking_id).is_open
        vehicle = paper_service.fleet.get("c1")
        assert vehicle.has_request(booking.request.request_id)

    def test_choose_invalid_index(self, paper_service):
        booking = paper_service.book(start=12, destination=17, riders=2)
        with pytest.raises(UnknownOptionError):
            paper_service.choose(booking.booking_id, 99)

    def test_choose_twice_rejected(self, paper_service):
        booking = paper_service.book(start=12, destination=17, riders=2)
        paper_service.choose(booking.booking_id, 0)
        with pytest.raises(UnknownOptionError):
            paper_service.choose(booking.booking_id, 1)

    def test_cancel_open_booking(self, paper_service):
        booking = paper_service.book(start=12, destination=17, riders=2)
        paper_service.cancel(booking.booking_id)
        with pytest.raises(ServiceError):
            paper_service.booking(booking.booking_id)
        assert paper_service.statistics()["unmatched"] == 1.0

    def test_cancel_confirmed_booking_rejected(self, paper_service):
        booking = paper_service.book(start=12, destination=17, riders=2)
        paper_service.choose(booking.booking_id, 0)
        with pytest.raises(ServiceError):
            paper_service.cancel(booking.booking_id)

    def test_unknown_booking(self, paper_service):
        with pytest.raises(ServiceError):
            paper_service.options("nope")

    def test_submit_applies_global_constraints(self, paper_service):
        request = Request(start=12, destination=17, riders=2, max_waiting=500.0, service_constraint=7.0)
        options = paper_service.submit(request)
        assert options  # the normalised constraints (w=5, eps=0.2) still allow both vehicles


class TestTimeAndDelivery:
    def test_advance_delivers_the_rider(self, paper_service):
        booking = paper_service.book(start=12, destination=17, riders=2)
        fastest_index = min(
            range(len(booking.options)), key=lambda i: booking.options[i].pickup_distance
        )
        option = paper_service.choose(booking.booking_id, fastest_index)
        assert option.vehicle_id == "c2"
        paper_service.advance(40.0)
        stats = paper_service.statistics()
        assert stats["pickups"] >= 1.0
        assert stats["dropoffs"] >= 1.0
        assert paper_service.current_time == pytest.approx(40.0)

    def test_advance_rejects_negative(self, paper_service):
        with pytest.raises(ServiceError):
            paper_service.advance(-1.0)


class TestWebsiteInterface:
    def test_vehicle_schedules_lists_branches(self, paper_service):
        schedules = paper_service.vehicle_schedules("c1")
        assert schedules == [[(2, "pickup", "R1"), (16, "dropoff", "R1")]]
        assert paper_service.vehicle_schedules("c2") == []

    def test_unfinished_requests(self, paper_service):
        assert paper_service.unfinished_requests_of("c1") == ["R1"]
        assert paper_service.unfinished_requests_of("c2") == []

    def test_vehicle_ids(self, paper_service):
        assert set(paper_service.vehicle_ids()) == {"c1", "c2"}

    def test_statistics_panel_keys(self, paper_service):
        stats = paper_service.statistics()
        for key in ("current_time", "average_response_time", "sharing_rate",
                    "matcher_vehicles_evaluated", "fleet_vehicles"):
            assert key in stats

    def test_set_parameters_updates_config(self, paper_service):
        config = paper_service.set_parameters(max_waiting=9.0, service_constraint=0.5,
                                              vehicle_capacity=6, max_pickup_distance=20.0)
        assert config.max_waiting == 9.0
        assert config.service_constraint == 0.5
        assert config.vehicle_capacity == 6
        assert paper_service.config.max_pickup_distance == 20.0

    def test_set_parameters_switches_matcher(self, paper_service):
        paper_service.set_parameters(matcher_name="dual_side")
        assert paper_service.matcher.name == "dual_side"
        paper_service.set_parameters(matcher_name="naive")
        assert paper_service.matcher.name == "naive"
        booking = paper_service.book(start=12, destination=17, riders=2)
        assert booking.option_count == 2

    def test_set_parameters_allows_baseline_matchers(self, paper_service):
        paper_service.set_parameters(matcher_name="nearest")
        assert paper_service.matcher.name == "nearest"
        booking = paper_service.book(start=12, destination=17, riders=2)
        assert booking.option_count == 1

    def test_set_parameters_rejects_unknown_matcher(self, paper_service):
        with pytest.raises(ConfigurationError):
            paper_service.set_parameters(matcher_name="teleporter")

    def test_set_parameters_switches_routing_backend(self, paper_service):
        before = paper_service.book(start=12, destination=17, riders=2)
        config = paper_service.set_parameters(routing_backend="csr")
        assert config.routing_backend == "csr"
        assert paper_service.fleet.routing_engine.backend == "csr"
        after = paper_service.book(start=12, destination=17, riders=2)
        assert [
            (o.vehicle_id, round(o.pickup_distance, 6), round(o.price, 6)) for o in before.options
        ] == [
            (o.vehicle_id, round(o.pickup_distance, 6), round(o.price, 6)) for o in after.options
        ]

    def test_set_parameters_rejects_unknown_routing_backend(self, paper_service):
        with pytest.raises(ConfigurationError):
            paper_service.set_parameters(routing_backend="teleport")

    def test_set_parameters_switches_to_ch_backend(self, paper_service):
        before = paper_service.book(start=12, destination=17, riders=2)
        config = paper_service.set_parameters(routing_backend="ch")
        assert config.routing_backend == "ch"
        assert paper_service.fleet.routing_engine.backend == "ch"
        after = paper_service.book(start=12, destination=17, riders=2)
        assert [
            (o.vehicle_id, round(o.pickup_distance, 6), round(o.price, 6)) for o in before.options
        ] == [
            (o.vehicle_id, round(o.pickup_distance, 6), round(o.price, 6)) for o in after.options
        ]

    def test_set_parameters_switches_tree_provider(self, paper_service):
        before = paper_service.book(start=12, destination=17, riders=2)
        paper_service.set_parameters(routing_backend="ch")
        config = paper_service.set_parameters(tree_provider="phast")
        assert config.tree_provider == "phast"
        assert paper_service.fleet.routing_engine.tree_provider_name == "phast"
        after = paper_service.book(start=12, destination=17, riders=2)
        assert [
            (o.vehicle_id, round(o.pickup_distance, 6), round(o.price, 6)) for o in before.options
        ] == [
            (o.vehicle_id, round(o.pickup_distance, 6), round(o.price, 6)) for o in after.options
        ]

    def test_set_parameters_rejects_unknown_tree_provider(self, paper_service):
        with pytest.raises(ConfigurationError):
            paper_service.set_parameters(tree_provider="quantum")

    def test_backend_change_away_from_ch_resets_forced_provider(self, paper_service):
        # a forced provider is a ch-only ablation; a plain backend change
        # must not be vetoed by it
        paper_service.set_parameters(routing_backend="ch", tree_provider="phast")
        config = paper_service.set_parameters(routing_backend="csr")
        assert config.routing_backend == "csr"
        assert config.tree_provider == "auto"
        assert paper_service.fleet.routing_engine.backend == "csr"

    def test_set_parameters_phast_needs_ch(self, paper_service):
        # the dict-backed paper service has no hierarchy to sweep; the
        # refusal must leave config and engine untouched
        before_provider = paper_service.config.tree_provider
        with pytest.raises(ConfigurationError):
            paper_service.set_parameters(tree_provider="phast")
        assert paper_service.config.tree_provider == before_provider

    def test_routing_statistics_panel(self, paper_service):
        paper_service.book(start=12, destination=17, riders=2)
        panel = paper_service.routing_statistics()
        assert panel["backend"] == "dict"
        assert panel["tree_provider"] == "dijkstra"
        assert panel["artifact_cache_dir"] == ""
        assert panel["queries"] >= 1.0
        for key in ("cache_hits", "dijkstra_runs", "phast_sweeps",
                    "bidirectional_runs", "build_seconds", "load_seconds"):
            assert isinstance(panel[key], float)
        # float-valued fields surface in the main panel under routing_
        stats = paper_service.statistics()
        assert stats["routing_queries"] == panel["queries"]
        assert "routing_backend" not in stats  # strings stay admin-only

    def test_routing_statistics_reports_parallel_dispatch_posture(self, paper_service):
        panel = paper_service.routing_statistics()
        assert panel["dispatch_workers"] == 1.0
        # no batch ran yet: the last-batch fields read their neutral zeros
        assert panel["parallel_workers"] == 0.0
        assert panel["ipc_seconds"] == 0.0
        config = paper_service.set_parameters(dispatch_workers=3)
        assert config.dispatch_workers == 3
        assert paper_service.routing_statistics()["dispatch_workers"] == 3.0
        assert paper_service.statistics()["dispatch_workers"] == 3.0
        # a batch through the dict-backed paper service runs in-process
        # (no export surface), so the last-batch posture stays 0 workers
        paper_service.book_batch([(12, 17), (3, 22)])
        panel = paper_service.routing_statistics()
        assert panel["parallel_workers"] == 0.0
        assert panel["ipc_seconds"] == 0.0

    def test_routing_statistics_reports_artifact_cache_activity(self, tmp_path):
        pytest.importorskip("numpy", reason="the artifact cache serialises through NumPy")
        config = SystemConfig(
            routing_backend="ch", routing_cache_dir=str(tmp_path), tree_provider="phast"
        )
        cold = build_system(network_rows=5, network_columns=5, vehicles=3,
                            config=config, seed=4)
        cold_panel = cold.routing_statistics()
        assert cold_panel["backend"] == "ch"
        assert cold_panel["tree_provider"] == "phast"
        assert cold_panel["artifact_cache_dir"] == str(tmp_path)
        assert cold_panel["build_seconds"] > 0.0
        assert cold_panel["load_seconds"] == 0.0
        warm = build_system(network_rows=5, network_columns=5, vehicles=3,
                            config=config, seed=4)
        warm_panel = warm.routing_statistics()
        assert warm_panel["build_seconds"] == 0.0
        assert warm_panel["load_seconds"] > 0.0
        warm.book(1, 20, riders=1)
        assert warm.routing_statistics()["phast_sweeps"] >= 1.0

    def test_set_parameters_table_max_vertices(self, paper_service):
        config = paper_service.set_parameters(table_max_vertices=8)
        assert config.table_max_vertices == 8
        # the 17-vertex paper network now exceeds the cap, so the admin's
        # next attempt to switch to the table backend is refused ...
        before_backend = paper_service.fleet.routing_engine.backend
        with pytest.raises(ConfigurationError):
            paper_service.set_parameters(routing_backend="table")
        # ... and the refusal leaves the service exactly as it was: neither
        # the config nor the fleet's engine claims the backend it never got
        assert paper_service.config.routing_backend == before_backend
        assert paper_service.fleet.routing_engine.backend == before_backend


class TestBuildSystem:
    def test_build_system_defaults(self):
        system = build_system(network_rows=6, network_columns=6, vehicles=8, seed=4)
        assert len(system.fleet) == 8
        assert system.matcher.name == "single_side"
        booking = system.book(1, 30, riders=1)
        assert booking.option_count >= 1

    def test_build_system_respects_capacity_and_config(self):
        config = SystemConfig(vehicle_capacity=2, matcher_name="dual_side")
        system = build_system(network_rows=5, network_columns=5, vehicles=3, config=config, seed=4)
        assert all(vehicle.capacity == 2 for vehicle in system.fleet.vehicles())
        assert system.matcher.name == "dual_side"

    def test_build_system_deterministic_placement(self):
        a = build_system(network_rows=5, network_columns=5, vehicles=5, seed=9)
        b = build_system(network_rows=5, network_columns=5, vehicles=5, seed=9)
        assert [v.location for v in a.fleet.vehicles()] == [v.location for v in b.fleet.vehicles()]

    def test_build_system_with_csr_routing(self):
        dict_system = build_system(network_rows=6, network_columns=6, vehicles=8, seed=4)
        csr_system = build_system(
            network_rows=6, network_columns=6, vehicles=8, seed=4, routing="csr"
        )
        assert csr_system.fleet.routing_engine.backend == "csr"
        assert csr_system.config.routing_backend == "csr"
        a = dict_system.book(1, 30, riders=1)
        b = csr_system.book(1, 30, riders=1)
        assert [
            (o.vehicle_id, round(o.pickup_distance, 6), round(o.price, 6)) for o in a.options
        ] == [
            (o.vehicle_id, round(o.pickup_distance, 6), round(o.price, 6)) for o in b.options
        ]

    def test_registry_covers_all_matchers(self):
        assert set(MATCHER_REGISTRY) == {"single_side", "dual_side", "naive", "nearest", "sharek", "tshare"}
