"""Unit tests for the durability subsystem (journal, snapshots, close/cancel)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ServiceError
from repro.model.request import Request
from repro.model.stops import dropoff, pickup
from repro.service.api import PTRiderService, build_system
from repro.service.journal import (
    ANNOTATION_KINDS,
    COMMAND_KINDS,
    JournalRecord,
    ServiceJournal,
)
from repro.service.recovery import (
    RecoveryError,
    canonical_state,
    load_snapshot_state,
    serialize_state,
    write_snapshot,
)
from repro.vehicles.fleet import Fleet, restore_vehicle, snapshot_vehicle
from repro.vehicles.kinetic_tree import KineticTree
from repro.vehicles.vehicle import Vehicle


def _durable_system(tmp_path, mode="journal+snapshot", interval=1000, **kwargs):
    return build_system(
        vehicles=kwargs.pop("vehicles", 6),
        seed=kwargs.pop("seed", 11),
        durability=mode,
        journal_path=str(tmp_path / "journal"),
        snapshot_interval=interval,
        **kwargs,
    )


def _request(service, index, riders=1):
    vertices = service.fleet.grid.network.vertices()
    start = vertices[(index * 5) % len(vertices)]
    destination = vertices[(index * 5 + 17) % len(vertices)]
    if destination == start:
        destination = vertices[(index * 5 + 18) % len(vertices)]
    return Request(
        start=start,
        destination=destination,
        riders=riders,
        max_waiting=service.config.max_waiting,
        service_constraint=service.config.service_constraint,
        request_id=f"D{index}",
        submit_time=service.current_time,
    )


class TestServiceJournal:
    def test_append_returns_monotonic_seqs(self, tmp_path):
        journal = ServiceJournal(tmp_path)
        seqs = [journal.append("advance", {"duration": float(i)}) for i in range(5)]
        assert seqs == [1, 2, 3, 4, 5]
        assert journal.last_seq() == 5

    def test_unknown_kind_rejected(self, tmp_path):
        journal = ServiceJournal(tmp_path)
        with pytest.raises(ServiceError):
            journal.append("teleport", {})

    def test_records_round_trip_and_classification(self, tmp_path):
        journal = ServiceJournal(tmp_path)
        journal.append("advance", {"duration": 1.0})
        journal.append("outcome", {"request_id": "r1"})
        records = journal.records()
        assert [r.kind for r in records] == ["advance", "outcome"]
        assert records[0].is_command and not records[1].is_command
        assert records[0].payload == {"duration": 1.0}
        assert journal.command_count() == 1
        assert set(COMMAND_KINDS).isdisjoint(ANNOTATION_KINDS)

    def test_records_survive_close_and_reopen(self, tmp_path):
        journal = ServiceJournal(tmp_path)
        journal.append("advance", {"duration": 2.0})
        journal.close()
        # the connection reopens lazily; a second handle sees the records
        again = ServiceJournal(tmp_path)
        assert [r.payload for r in again.records()] == [{"duration": 2.0}]

    def test_torn_tail_truncates_at_first_bad_payload(self, tmp_path):
        journal = ServiceJournal(tmp_path)
        for i in range(4):
            journal.append("advance", {"duration": float(i)})
        # tear the third record's payload (a torn write past SQLite's
        # atomicity, or deliberate fault injection)
        journal.connection.execute(
            "UPDATE journal SET payload = ? WHERE seq = 3", ("{truncated",)
        )
        journal.connection.commit()
        records = journal.records()
        assert [r.seq for r in records] == [1, 2]
        assert journal.truncated_records == 2  # the bad record and its suffix

    def test_truncate_after_removes_suffix(self, tmp_path):
        journal = ServiceJournal(tmp_path)
        for i in range(4):
            journal.append("advance", {"duration": float(i)})
        assert journal.truncate_after(2) == 2
        assert journal.last_seq() == 2
        # new appends continue past the truncation point
        assert journal.append("advance", {"duration": 9.0}) > 2

    def test_meta_round_trip(self, tmp_path):
        journal = ServiceJournal(tmp_path)
        journal.set_meta("config", {"speed": 1.5})
        assert journal.get_meta("config") == {"speed": 1.5}
        assert journal.get_meta("absent") is None
        assert not journal.is_fresh()

    def test_snapshot_files_ignore_tmp_and_prune_keeps_newest(self, tmp_path):
        journal = ServiceJournal(tmp_path)
        for seq in (0, 10, 20, 30):
            journal.snapshot_path(seq).write_text("{}")
        (tmp_path / "snapshot-000000000040.json.99.tmp").write_text("{")
        assert [seq for seq, _ in journal.snapshot_files()] == [0, 10, 20, 30]
        # the seq-0 baseline is exempt; only 10 falls outside keep=2
        assert journal.prune_snapshots(keep=2) == 1
        assert [seq for seq, _ in journal.snapshot_files()] == [0, 20, 30]


class TestKineticTreePayload:
    def test_payload_round_trip(self):
        stops = [
            pickup(5, "r1", 2),
            dropoff(9, "r1", 2),
        ]
        tree = KineticTree(root_location=3, schedules=[stops])
        rebuilt = KineticTree.from_payload(
            json.loads(json.dumps(tree.to_payload()))
        )
        assert rebuilt.root_location == 3
        assert rebuilt.schedules() == tree.schedules()

    def test_empty_tree_round_trip(self):
        tree = KineticTree(root_location=7)
        rebuilt = KineticTree.from_payload(tree.to_payload())
        assert rebuilt.root_location == 7
        assert rebuilt.is_empty


class TestFleetRestore:
    def test_restore_vehicles_replaces_adds_and_removes(self):
        service = build_system(vehicles=3, seed=5)
        fleet = service.fleet
        moved = restore_vehicle(snapshot_vehicle(fleet.get("c1")))
        vertices = fleet.grid.network.vertices()
        extra = Vehicle("c9", location=vertices[0], capacity=4)
        fleet.restore_vehicles([moved, extra])
        assert sorted(fleet.vehicle_ids()) == ["c1", "c9"]
        # the restored set is registered in the grid (lookups still work)
        assert fleet.get("c9").location == vertices[0]


class TestJournalingService:
    def test_every_mutating_call_appends_one_command(self, tmp_path):
        service = _durable_system(tmp_path)
        journal = service.journal
        base = journal.command_count()
        booking = service.book_request(_request(service, 1))
        if booking.options:
            service.choose(booking.booking_id, 0)
        else:  # pragma: no cover - seed-dependent fallback
            service.cancel(booking.booking_id)
        service.ingest_request(_request(service, 2))
        service.pump()
        service.drain()
        service.advance(1.0)
        service.set_parameters(max_waiting=7.0)
        assert journal.command_count() - base == 7
        kinds = [r.kind for r in journal.records() if r.is_command]
        assert kinds[-7:] == [
            "book", "choose", "admit", "pump", "drain", "advance", "set_parameters",
        ]

    def test_flush_outcomes_annotated(self, tmp_path):
        service = _durable_system(tmp_path)
        service.ingest_request(_request(service, 1))
        service.ingest_request(_request(service, 2))
        service.drain()
        outcomes = [r for r in service.journal.records() if r.kind == "outcome"]
        # one annotation record per command, holding the whole flush
        assert len(outcomes) == 1
        flushed = outcomes[0].payload["outcomes"]
        assert {entry["request_id"] for entry in flushed} == {"D1", "D2"}

    def test_baseline_snapshot_written_in_plain_journal_mode(self, tmp_path):
        service = _durable_system(tmp_path, mode="journal")
        files = service.journal.snapshot_files()
        assert [seq for seq, _ in files] == [0]
        service.advance(5.0)
        # plain journal mode never snapshots again
        assert [seq for seq, _ in service.journal.snapshot_files()] == [0]

    def test_snapshot_cadence_under_journal_plus_snapshot(self, tmp_path):
        service = _durable_system(tmp_path, interval=3)
        for _ in range(7):
            service.advance(1.0)
        seqs = [seq for seq, _ in service.journal.snapshot_files()]
        assert seqs[0] >= 0 and len(seqs) >= 2
        assert seqs == sorted(seqs)

    def test_dirty_journal_refused_at_construction(self, tmp_path):
        service = _durable_system(tmp_path)
        service.advance(1.0)
        service.close()
        with pytest.raises(ServiceError, match="recover"):
            _durable_system(tmp_path)

    def test_set_parameters_keeps_annotating_outcomes(self, tmp_path):
        service = _durable_system(tmp_path)
        service.set_parameters(batch_window=2.0)
        service.ingest_request(_request(service, 1))
        service.drain()
        outcomes = [r for r in service.journal.records() if r.kind == "outcome"]
        assert len(outcomes) == 1
        assert len(outcomes[0].payload["outcomes"]) == 1


class TestCloseDrain:
    def test_close_drains_pending_window_and_counts(self, tmp_path):
        service = build_system(vehicles=6, seed=11)
        service.ingest_request(_request(service, 1))
        service.ingest_request(_request(service, 2))
        assert service.batcher.pending == 2
        service.close()
        stats = service.batcher.statistics
        assert service.batcher.pending == 0
        assert stats.close_drained == 2
        assert stats.answered == 2
        # conservation: admitted == answered + pending + errored + cancelled
        assert stats.admitted == stats.answered + stats.errored + stats.cancelled
        # idempotent: a second close has nothing to drain
        service.close()
        assert stats.close_drained == 2

    def test_close_drain_is_journaled(self, tmp_path):
        service = _durable_system(tmp_path)
        service.ingest_request(_request(service, 1))
        service.close()
        drains = [r for r in service.journal.records() if r.kind == "drain"]
        assert len(drains) == 1 and drains[0].payload.get("close") is True


class TestCancelPending:
    def test_cancel_removes_pending_admission(self, tmp_path):
        service = build_system(vehicles=6, seed=11)
        request = _request(service, 1)
        assert service.ingest_request(request)
        assert service.batcher.pending == 1
        service.cancel(request.request_id)
        stats = service.batcher.statistics
        assert service.batcher.pending == 0
        assert stats.cancelled == 1
        # the cancelled admission must not be flushed later as a ghost
        service.drain()
        assert stats.answered == 0
        assert stats.admitted == stats.answered + stats.errored + stats.cancelled

    def test_cancel_unknown_id_still_raises(self):
        service = build_system(vehicles=6, seed=11)
        with pytest.raises(ServiceError):
            service.cancel("nope")

    def test_cancel_booking_still_works(self):
        service = build_system(vehicles=6, seed=11)
        booking = service.book_request(_request(service, 1))
        service.cancel(booking.booking_id)
        with pytest.raises(ServiceError):
            service.booking(booking.booking_id)


class TestSnapshotRestoreFlow:
    def test_admin_snapshot_then_recover_without_tail(self, tmp_path):
        service = _durable_system(tmp_path)
        service.book_request(_request(service, 1))
        service.advance(2.0)
        service.snapshot()
        before = canonical_state(service)
        service._journal.close()
        recovered = PTRiderService.recover(tmp_path / "journal")
        assert canonical_state(recovered) == before

    def test_snapshot_requires_durability(self):
        service = build_system(vehicles=3, seed=5)
        with pytest.raises(ServiceError):
            service.snapshot()

    def test_corrupt_newest_snapshot_falls_back(self, tmp_path):
        service = _durable_system(tmp_path)
        service.advance(1.0)
        service.snapshot()
        journal = service.journal
        newest = journal.snapshot_files()[-1][1]
        newest.write_text(newest.read_text()[: len(newest.read_text()) // 2])
        seq, state = load_snapshot_state(journal)
        assert seq == 0  # fell back to the baseline
        assert state["version"] >= 1

    def test_no_usable_snapshot_raises(self, tmp_path):
        service = _durable_system(tmp_path)
        for _seq, path in service.journal.snapshot_files():
            path.write_text("garbage")
        with pytest.raises(RecoveryError):
            load_snapshot_state(service.journal)

    def test_serialized_state_is_json_round_trippable(self, tmp_path):
        service = _durable_system(tmp_path)
        service.book_request(_request(service, 1))
        state = serialize_state(service)
        assert json.loads(json.dumps(state)) == state
