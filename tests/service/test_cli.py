"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.command == "demo"
        assert args.vehicles == 25

    def test_simulate_arguments(self):
        args = build_parser().parse_args(
            ["simulate", "--vehicles", "10", "--trips", "20", "--matcher", "dual_side"]
        )
        assert args.matcher == "dual_side"
        assert args.trips == 20

    def test_compare_arguments(self):
        args = build_parser().parse_args(["compare", "--requests", "5"])
        assert args.requests == 5

    def test_invalid_matcher_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--matcher", "bogus"])

    def test_routing_argument(self):
        for command in ("demo", "simulate", "compare"):
            args = build_parser().parse_args([command, "--routing", "csr"])
            assert args.routing == "csr"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--routing", "bogus"])

    def test_routing_defaults_to_csr(self):
        for command in ("demo", "simulate", "compare"):
            args = build_parser().parse_args([command])
            assert args.routing == "csr"
            assert args.routing_cache is None

    def test_dict_backend_stays_selectable(self):
        for command in ("demo", "simulate", "compare"):
            args = build_parser().parse_args([command, "--routing", "dict"])
            assert args.routing == "dict"

    def test_ch_backend_and_cache_arguments(self):
        args = build_parser().parse_args(
            ["simulate", "--routing", "ch", "--routing-cache", "/tmp/artifacts"]
        )
        assert args.routing == "ch"
        assert args.routing_cache == "/tmp/artifacts"

    def test_tree_provider_argument(self):
        for command in ("demo", "simulate", "compare"):
            args = build_parser().parse_args([command])
            assert args.tree_provider == "auto"
            args = build_parser().parse_args(
                [command, "--routing", "ch", "--tree-provider", "phast"]
            )
            assert args.tree_provider == "phast"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--tree-provider", "bogus"])


class TestCommands:
    def test_demo_runs(self, capsys):
        exit_code = main(["demo", "--vehicles", "8", "--rows", "6", "--columns", "6", "--seed", "3"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "non-dominated option" in captured
        assert "Chose option 0" in captured

    def test_simulate_runs(self, capsys):
        exit_code = main([
            "simulate", "--vehicles", "6", "--rows", "6", "--columns", "6",
            "--trips", "10", "--duration", "60", "--seed", "3",
        ])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "average_response_time" in captured
        assert "sharing_rate" in captured

    def test_compare_runs(self, capsys):
        exit_code = main([
            "compare", "--vehicles", "10", "--rows", "6", "--columns", "6",
            "--requests", "5", "--seed", "3",
        ])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "single_side" in captured
        assert "naive" in captured
        assert "dual_side" in captured

    def test_simulate_runs_with_csr_routing(self, capsys):
        exit_code = main([
            "simulate", "--vehicles", "6", "--rows", "6", "--columns", "6",
            "--trips", "10", "--duration", "60", "--seed", "3", "--routing", "csr",
        ])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "routing=csr" in captured
        assert "average_response_time" in captured

    def test_demo_runs_with_forced_phast_trees(self, capsys):
        exit_code = main([
            "demo", "--vehicles", "8", "--rows", "6", "--columns", "6",
            "--seed", "3", "--routing", "ch", "--tree-provider", "phast",
        ])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "non-dominated option" in captured

    def test_compare_is_provider_oblivious(self, capsys):
        """The same burst answered with plane and phast ch trees must print
        identical matcher work tables (the ablation the E15 benchmark runs
        at scale) -- identical up to the wall-clock column, which is the
        only thing a tree provider is allowed to change."""
        import re

        outputs = []
        for provider in ("plane", "phast"):
            exit_code = main([
                "compare", "--vehicles", "10", "--rows", "6", "--columns", "6",
                "--requests", "5", "--seed", "3", "--routing", "ch",
                "--tree-provider", provider,
            ])
            assert exit_code == 0
            # the seconds column is the only float printed with 3 decimals
            outputs.append(re.sub(r"\d+\.\d{3}", "T", capsys.readouterr().out))
        assert outputs[0] == outputs[1]
