"""Unit tests for the deterministic fault-injection registry.

The chaos harness (``benchmarks/bench_e19_chaos.py``) and the watchdog
tests both lean on this module being exactly deterministic: a plan fires a
spec at precisely the listed occurrence indices of its fire key, seeded
plans reproduce bit-for-bit from their seed, and an inactive registry makes
every ``fire`` a no-op.
"""

from __future__ import annotations

import pytest

from repro.errors import ServiceError
from repro.service import faults
from repro.service.faults import FaultInjected, FaultPlan, FaultSpec


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Every test starts and ends with the global registry inactive."""
    faults.clear()
    yield
    faults.clear()


class TestFaultSpec:
    def test_unknown_action_is_rejected(self):
        with pytest.raises(ServiceError):
            FaultSpec(point="ingest.flush", action="explode")

    def test_matching_wildcards(self):
        spec = FaultSpec(point="worker.turn")
        assert spec.matches("worker.turn", position=3, tag=None)
        assert spec.matches("worker.turn", position=None, tag="anything")
        assert not spec.matches("worker.batch", position=3, tag=None)

    def test_position_and_tag_narrow_the_match(self):
        spec = FaultSpec(point="journal.append", position=None, tag="pump")
        assert spec.matches("journal.append", position=None, tag="pump")
        assert not spec.matches("journal.append", position=None, tag="admit")
        positioned = FaultSpec(point="worker.turn", position=1)
        assert positioned.matches("worker.turn", position=1, tag=None)
        assert not positioned.matches("worker.turn", position=0, tag=None)


class TestOccurrenceCounting:
    def test_fires_only_at_listed_occurrences(self):
        plan = FaultPlan([FaultSpec(point="ingest.flush", action="error", at=(1, 3))])
        with plan:
            faults.fire("ingest.flush")  # occurrence 0: quiet
            with pytest.raises(FaultInjected):
                faults.fire("ingest.flush")  # occurrence 1
            faults.fire("ingest.flush")  # occurrence 2: quiet
            with pytest.raises(FaultInjected):
                faults.fire("ingest.flush")  # occurrence 3
            faults.fire("ingest.flush")  # past the schedule: quiet forever
        assert plan.fired == {"ingest.flush:error": 2}

    def test_distinct_fire_keys_count_independently(self):
        plan = FaultPlan([FaultSpec(point="journal.append", action="error",
                                    at=(0,), tag="pump")])
        with plan:
            # other kinds burn their own counters, not the pump counter
            faults.fire("journal.append", tag="admit")
            faults.fire("journal.append", tag="advance")
            with pytest.raises(FaultInjected):
                faults.fire("journal.append", tag="pump")

    def test_inactive_registry_is_a_noop(self):
        faults.fire("ingest.flush")
        faults.fire("worker.turn", position=5, tag="whatever")
        assert faults.active() is None

    def test_context_manager_installs_and_clears(self):
        plan = FaultPlan([])
        assert faults.active() is None
        with plan:
            assert faults.active() is plan
        assert faults.active() is None
        # cleared even when the block raises
        with pytest.raises(RuntimeError):
            with plan:
                raise RuntimeError("boom")
        assert faults.active() is None


class TestSeededPlans:
    def test_same_seed_reproduces_the_schedule(self):
        entries = [("ingest.flush", "sleep", 3, 50), ("worker.turn", "error", 2, 20)]
        first = FaultPlan.seeded(23, entries)
        second = FaultPlan.seeded(23, entries)
        assert [spec.at for spec in first.specs] == [spec.at for spec in second.specs]
        assert FaultPlan.seeded(24, entries).specs != first.specs

    def test_sampled_indices_are_distinct_sorted_and_in_span(self):
        plan = FaultPlan.seeded(7, [("ingest.flush", "sleep", 5, 12)])
        (spec,) = plan.specs
        assert len(spec.at) == len(set(spec.at)) == 5
        assert list(spec.at) == sorted(spec.at)
        assert all(0 <= index < 12 for index in spec.at)

    def test_count_is_clamped_to_span(self):
        plan = FaultPlan.seeded(7, [("ingest.flush", "error", 10, 4)])
        (spec,) = plan.specs
        assert len(spec.at) == 4

    def test_spec_defaults_forward_to_every_spec(self):
        plan = FaultPlan.seeded(7, [("worker.turn", "sleep", 1, 5)], seconds=0.4,
                                position=1)
        (spec,) = plan.specs
        assert spec.seconds == 0.4
        assert spec.position == 1


class TestWorkerShipping:
    def test_active_specs_ships_only_worker_points(self):
        plan = FaultPlan([
            FaultSpec(point="worker.turn", action="sleep"),
            FaultSpec(point="pool.begin", action="error"),
            FaultSpec(point="journal.append", action="error"),
        ])
        with plan:
            shipped = faults.active_specs()
        assert shipped == (plan.specs[0],)

    def test_active_specs_without_worker_points_is_none(self):
        with FaultPlan([FaultSpec(point="ingest.flush", action="error")]):
            assert faults.active_specs() is None
        assert faults.active_specs() is None

    def test_shipped_plan_counts_from_zero(self):
        """A worker rebuilding a plan from shipped specs starts fresh
        occurrence counters -- ``at`` indices are per-worker-lifetime."""
        parent = FaultPlan([FaultSpec(point="worker.turn", action="error", at=(0,))])
        with pytest.raises(FaultInjected):
            parent.fire("worker.turn", position=0)
        child = FaultPlan(parent.specs)
        with pytest.raises(FaultInjected):
            child.fire("worker.turn", position=0)
