"""Unit tests for the SHAREK-style baseline."""

from __future__ import annotations

import pytest

from repro.baselines.sharek import SharekStyleMatcher
from repro.core.config import SystemConfig
from repro.core.naive import NaiveKineticTreeMatcher
from repro.model.request import Request
from repro.sim.workload import random_requests

from tests.conftest import assign_request, build_random_fleet, option_points


@pytest.fixture
def mixed_fleet():
    """A fleet with both empty and busy vehicles."""
    fleet = build_random_fleet(vehicles=10, seed=13)
    requests = random_requests(fleet.grid.network, 3, 6.0, 0.5, seed=1, id_prefix="seed")
    for index, request in enumerate(requests):
        assign_request(fleet, f"c{index + 1}", request)
    return fleet


class TestSharekStyleMatcher:
    def test_only_offers_empty_vehicles(self, mixed_fleet):
        config = SystemConfig(max_waiting=6.0, service_constraint=0.5)
        matcher = SharekStyleMatcher(mixed_fleet, config=config)
        busy_ids = {vehicle.vehicle_id for vehicle in mixed_fleet.nonempty_vehicles()}
        for request in random_requests(mixed_fleet.grid.network, 8, 6.0, 0.5, seed=3):
            for option in matcher.match(request):
                assert option.vehicle_id not in busy_ids

    def test_matches_naive_restricted_to_empty_vehicles(self, mixed_fleet):
        """On empty vehicles only, SHAREK finds the same skyline as the exact matcher."""
        config = SystemConfig(max_waiting=6.0, service_constraint=0.5)
        sharek = SharekStyleMatcher(mixed_fleet, config=config)

        # Build a comparison fleet containing only the empty vehicles.
        empty_only = build_random_fleet(vehicles=0, seed=13)
        for vehicle in mixed_fleet.empty_vehicles():
            clone = type(vehicle)(vehicle.vehicle_id, location=vehicle.location, capacity=vehicle.capacity)
            empty_only.add_vehicle(clone)
        # Reuse the same road network for both fleets so distances agree.
        reference = NaiveKineticTreeMatcher(mixed_fleet, config=config)

        for request in random_requests(mixed_fleet.grid.network, 6, 6.0, 0.5, seed=5):
            sharek_points = option_points(sharek.match(request))
            full_points = option_points(
                [o for o in reference.match(request)
                 if mixed_fleet.get(o.vehicle_id).is_empty]
            )
            # every SHAREK option appears among the naive empty-vehicle options
            naive_empty_all = [
                o for o in reference._collect_options(reference.make_context(request), reference.fleet)  # noqa: SLF001
                if mixed_fleet.get(o.vehicle_id).is_empty
            ]
            naive_points = option_points(naive_empty_all)
            for point in sharek_points:
                assert point in naive_points

    def test_fewer_options_than_ptrider_when_fleet_busy(self, mixed_fleet):
        config = SystemConfig(max_waiting=6.0, service_constraint=0.5)
        sharek = SharekStyleMatcher(mixed_fleet, config=config)
        ptrider = NaiveKineticTreeMatcher(mixed_fleet, config=config)
        sharek_total = 0
        ptrider_total = 0
        for request in random_requests(mixed_fleet.grid.network, 10, 6.0, 0.5, seed=9):
            sharek_total += len(sharek.match(request))
            ptrider_total += len(ptrider.match(request))
        assert sharek_total <= ptrider_total

    def test_euclidean_pruning_is_admissible(self, mixed_fleet):
        """Pruning never removes an option that survives the exact evaluation."""
        config = SystemConfig(max_waiting=6.0, service_constraint=0.5, max_pickup_distance=6.0)
        sharek = SharekStyleMatcher(mixed_fleet, config=config)
        reference = NaiveKineticTreeMatcher(mixed_fleet, config=config)
        for request in random_requests(mixed_fleet.grid.network, 8, 6.0, 0.5, seed=11):
            sharek_points = set(option_points(sharek.match(request)))
            expected = set(
                option_points(
                    [o for o in reference.match(request) if mixed_fleet.get(o.vehicle_id).is_empty]
                )
            )
            # SHAREK must find every empty-vehicle skyline point that the exact
            # matcher keeps in its own skyline restricted to empty vehicles.
            # (It may return additional points dominated only by busy vehicles.)
            assert expected <= sharek_points or not expected

    def test_counts_pruned_vehicles(self, mixed_fleet):
        config = SystemConfig(max_waiting=6.0, service_constraint=0.5, max_pickup_distance=3.0)
        matcher = SharekStyleMatcher(mixed_fleet, config=config)
        for request in random_requests(mixed_fleet.grid.network, 10, 6.0, 0.5, seed=13):
            matcher.match(request)
        assert matcher.statistics.vehicles_pruned > 0

    def test_name(self, mixed_fleet):
        assert SharekStyleMatcher(mixed_fleet).name == "sharek"
