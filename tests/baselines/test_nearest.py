"""Unit tests for the single-option (system-optimal) baseline."""

from __future__ import annotations

import pytest

from repro.baselines.nearest import NearestVehicleMatcher
from repro.core.config import SystemConfig
from repro.core.naive import NaiveKineticTreeMatcher
from repro.sim.workload import random_requests

from tests.conftest import build_random_fleet


class TestNearestVehicleMatcher:
    def test_returns_at_most_one_option(self):
        fleet = build_random_fleet(vehicles=10, seed=3)
        matcher = NearestVehicleMatcher(fleet)
        for request in random_requests(fleet.grid.network, 8, 5.0, 0.3, seed=2):
            options = matcher.match(request)
            assert len(options) <= 1

    def test_option_minimises_added_distance(self):
        fleet = build_random_fleet(vehicles=10, seed=3)
        config = SystemConfig(max_waiting=5.0, service_constraint=0.3)
        baseline = NearestVehicleMatcher(fleet, config=config)
        reference = NaiveKineticTreeMatcher(fleet, config=config)
        for request in random_requests(fleet.grid.network, 8, 5.0, 0.3, seed=5):
            chosen = baseline.match(request)
            everything = reference._collect_options(reference.make_context(request), reference.fleet)  # noqa: SLF001
            if not everything:
                assert chosen == []
                continue
            best_added = min(option.added_distance for option in everything)
            assert chosen[0].added_distance == pytest.approx(best_added)

    def test_option_is_in_ptrider_skyline_or_dominated(self):
        """The system-optimal single option never beats the PTRider skyline."""
        fleet = build_random_fleet(vehicles=10, seed=3)
        config = SystemConfig(max_waiting=5.0, service_constraint=0.3)
        baseline = NearestVehicleMatcher(fleet, config=config)
        reference = NaiveKineticTreeMatcher(fleet, config=config)
        for request in random_requests(fleet.grid.network, 8, 5.0, 0.3, seed=7):
            single = baseline.match(request)
            skyline = reference.match(request)
            if not single:
                continue
            option = single[0]
            assert any(
                not candidate.dominates(option) or True for candidate in skyline
            )  # sanity: skyline non-empty
            # the cheapest skyline price is at most the baseline's price
            assert min(o.price for o in skyline) <= option.price + 1e-9
            # the earliest skyline pick-up is at most the baseline's pick-up
            assert min(o.pickup_distance for o in skyline) <= option.pickup_distance + 1e-9

    def test_empty_fleet(self):
        fleet = build_random_fleet(vehicles=0)
        matcher = NearestVehicleMatcher(fleet)
        request = random_requests(fleet.grid.network, 1, 5.0, 0.3, seed=2)[0]
        assert matcher.match(request) == []

    def test_name(self):
        fleet = build_random_fleet(vehicles=1)
        assert NearestVehicleMatcher(fleet).name == "nearest"
