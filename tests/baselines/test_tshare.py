"""Unit tests for the T-Share-style baseline."""

from __future__ import annotations

import pytest

from repro.baselines.tshare import TShareStyleMatcher
from repro.core.config import SystemConfig
from repro.core.naive import NaiveKineticTreeMatcher
from repro.sim.workload import random_requests

from tests.conftest import assign_request, build_random_fleet


@pytest.fixture
def mixed_fleet():
    fleet = build_random_fleet(vehicles=10, seed=17)
    requests = random_requests(fleet.grid.network, 3, 6.0, 0.5, seed=2, id_prefix="seed")
    for index, request in enumerate(requests):
        assign_request(fleet, f"c{index + 1}", request)
    return fleet


class TestTShareStyleMatcher:
    def test_returns_at_most_one_option(self, mixed_fleet):
        matcher = TShareStyleMatcher(mixed_fleet, config=SystemConfig(max_waiting=6.0, service_constraint=0.5))
        for request in random_requests(mixed_fleet.grid.network, 10, 6.0, 0.5, seed=3):
            assert len(matcher.match(request)) <= 1

    def test_option_has_earliest_pickup(self, mixed_fleet):
        config = SystemConfig(max_waiting=6.0, service_constraint=0.5)
        tshare = TShareStyleMatcher(mixed_fleet, config=config)
        reference = NaiveKineticTreeMatcher(mixed_fleet, config=config)
        for request in random_requests(mixed_fleet.grid.network, 10, 6.0, 0.5, seed=5):
            single = tshare.match(request)
            all_options = reference._collect_options(reference.make_context(request), reference.fleet)  # noqa: SLF001
            if not all_options:
                assert single == []
                continue
            assert single
            best = min(option.pickup_distance for option in all_options)
            assert single[0].pickup_distance == pytest.approx(best)

    def test_respects_max_pickup(self, mixed_fleet):
        config = SystemConfig(max_waiting=6.0, service_constraint=0.5, max_pickup_distance=4.0)
        matcher = TShareStyleMatcher(mixed_fleet, config=config)
        for request in random_requests(mixed_fleet.grid.network, 10, 6.0, 0.5, seed=7):
            for option in matcher.match(request):
                assert option.pickup_distance <= 4.0 + 1e-9

    def test_visits_fewer_cells_than_grid_size(self, mixed_fleet):
        config = SystemConfig(max_waiting=6.0, service_constraint=0.5)
        matcher = TShareStyleMatcher(mixed_fleet, config=config)
        requests = random_requests(mixed_fleet.grid.network, 5, 6.0, 0.5, seed=9)
        for request in requests:
            matcher.match(request)
        total_possible = mixed_fleet.grid.cell_count * len(requests)
        assert matcher.statistics.cells_visited < total_possible

    def test_empty_fleet(self):
        fleet = build_random_fleet(vehicles=0)
        matcher = TShareStyleMatcher(fleet)
        request = random_requests(fleet.grid.network, 1, 5.0, 0.3, seed=2)[0]
        assert matcher.match(request) == []

    def test_name(self, mixed_fleet):
        assert TShareStyleMatcher(mixed_fleet).name == "tshare"
