"""End-to-end integration tests: workload -> matching -> movement -> statistics."""

from __future__ import annotations

import pytest

from repro.core.config import SystemConfig
from repro.core.dispatcher import Dispatcher, OptionPolicy
from repro.core.dual_side import DualSideSearchMatcher
from repro.core.single_side import SingleSideSearchMatcher
from repro.roadnet.generators import grid_network
from repro.roadnet.grid_index import GridIndex
from repro.roadnet.shortest_path import DistanceOracle
from repro.service.api import build_system
from repro.sim.engine import SimulationEngine
from repro.sim.trips import ShanghaiLikeTripGenerator
from repro.sim.workload import RequestWorkload
from repro.vehicles.fleet import Fleet
from repro.vehicles.vehicle import Vehicle


def build_city(seed: int, vehicles: int = 12, rows: int = 10):
    network = grid_network(rows, rows, weight_jitter=0.3, seed=seed)
    grid = GridIndex(network, rows=5, columns=5)
    fleet = Fleet(grid, DistanceOracle(network))
    import random

    rng = random.Random(seed)
    for index in range(vehicles):
        fleet.add_vehicle(Vehicle(f"c{index + 1}", location=rng.choice(network.vertices()), capacity=4))
    return network, fleet


class TestDayFractionSimulation:
    @pytest.mark.parametrize("matcher_class", [SingleSideSearchMatcher, DualSideSearchMatcher])
    def test_trip_replay_produces_consistent_statistics(self, matcher_class):
        network, fleet = build_city(seed=21)
        config = SystemConfig(max_waiting=8.0, service_constraint=0.6, max_pickup_distance=12.0)
        matcher = matcher_class(fleet, config=config)
        dispatcher = Dispatcher(fleet, matcher, config)
        trips = ShanghaiLikeTripGenerator(network, seed=21).generate(60, day_seconds=300.0)
        workload = RequestWorkload.from_trips(trips, config.max_waiting, config.service_constraint)
        engine = SimulationEngine(dispatcher, workload, speed=1.0, tick=1.0, seed=21,
                                  policy=OptionPolicy.BALANCED)
        report = engine.run(until=800.0)
        stats = report.statistics

        # conservation: every request is accounted for exactly once
        assert stats.total_requests == 60
        assert stats.matched_requests + stats.unmatched_requests == 60
        # every completed request was picked up first
        assert stats.pickups >= stats.dropoffs == stats.completed_requests
        # matched requests either completed or are still in progress
        assert stats.completed_requests <= stats.matched_requests
        # a healthy fleet serves most demand at this density
        assert stats.match_rate > 0.5
        # response times are real measurements
        assert all(t >= 0 for t in stats.response_times)
        assert len(stats.response_times) == 60
        # fleet bookkeeping is consistent with the statistics
        in_progress = sum(len(v.request_states()) for v in fleet.vehicles())
        assert in_progress == stats.matched_requests - stats.completed_requests
        # vehicles never exceed capacity
        assert all(v.occupancy <= v.capacity for v in fleet.vehicles())

    def test_options_offer_price_time_tradeoffs_under_load(self):
        """Once the fleet is busy, a noticeable share of requests get >= 2 options."""
        network, fleet = build_city(seed=5, vehicles=10)
        config = SystemConfig(max_waiting=10.0, service_constraint=0.8, max_pickup_distance=15.0)
        matcher = SingleSideSearchMatcher(fleet, config=config)
        dispatcher = Dispatcher(fleet, matcher, config)
        trips = ShanghaiLikeTripGenerator(network, seed=5).generate(80, day_seconds=200.0)
        workload = RequestWorkload.from_trips(trips, config.max_waiting, config.service_constraint)
        engine = SimulationEngine(dispatcher, workload, speed=0.8, tick=1.0, seed=5)
        report = engine.run(until=260.0)
        counts = report.statistics.option_counts
        assert counts
        assert max(counts) >= 2
        multi = sum(1 for count in counts if count >= 2)
        assert multi / len(counts) > 0.1

    def test_sharing_emerges_under_dense_demand(self):
        network, fleet = build_city(seed=9, vehicles=6)
        config = SystemConfig(max_waiting=12.0, service_constraint=1.0, max_pickup_distance=20.0)
        matcher = SingleSideSearchMatcher(fleet, config=config)
        dispatcher = Dispatcher(fleet, matcher, config)
        trips = ShanghaiLikeTripGenerator(network, seed=9, hotspot_bias=0.9).generate(
            70, day_seconds=150.0
        )
        workload = RequestWorkload.from_trips(trips, config.max_waiting, config.service_constraint)
        engine = SimulationEngine(dispatcher, workload, speed=1.0, tick=1.0, seed=9)
        report = engine.run(until=500.0)
        assert report.statistics.completed_requests > 10
        assert report.statistics.sharing_rate > 0.0


class TestServiceRoundTrip:
    def test_many_bookings_through_the_service(self):
        system = build_system(network_rows=8, network_columns=8, vehicles=10, seed=31)
        import random

        rng = random.Random(31)
        vertices = system.fleet.grid.network.vertices()
        chosen = 0
        for _ in range(20):
            start, destination = rng.sample(vertices, 2)
            booking = system.book(start, destination, riders=rng.randint(1, 2))
            if booking.options:
                system.choose(booking.booking_id, rng.randrange(len(booking.options)))
                chosen += 1
            system.advance(5.0)
        system.advance(120.0)
        stats = system.statistics()
        assert stats["matched"] == float(chosen)
        assert stats["dropoffs"] > 0
        assert stats["average_response_time"] > 0.0
        # the statistics clock advanced with the world
        assert stats["current_time"] == pytest.approx(20 * 5.0 + 120.0)
