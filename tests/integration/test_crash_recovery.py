"""Fault-injection harness: crash the service anywhere, recover, compare.

Every trial runs one scripted event sequence through two arms:

* a **reference arm** -- a plain in-memory service that never crashes and
  executes the whole script;
* a **durable arm** -- a journaling service that is killed after a chosen
  number of calls (the journal connection is dropped with no drain and no
  clean shutdown, exactly what ``kill -9`` leaves behind), recovered via
  :meth:`~repro.service.api.PTRiderService.recover`, and then resumed:
  the driver re-walks the script from ``journal.command_count()`` --
  the number of calls the journal proves completed -- replaying any calls
  the crash (or a torn journal tail) swallowed.

After the durable arm finishes the script, its canonical state must equal
the reference arm's -- bookings, vehicle kinetic trees, fleet positions,
engine bookkeeping, statistics counters, pending window -- with only the
durability configuration knobs themselves excluded (the reference arm has
none).  Both arms are driven with *identical* :class:`Request` objects
(fixed request ids), since ids are salted per process and two services
minting their own would never compare equal.

Kill points cover the ISSUE's taxonomy: right after an admission, in the
middle of an open batching window, between a window flush and the
follow-up choose, and mid-snapshot (a stray ``.tmp`` the atomic rename
never finished).  On top of the kill points, trials inject torn-write
journal tails (the last record's payload is garbled in place) and
corrupt/partial newest snapshots (recovery must fall back to an older
one and replay further).
"""

from __future__ import annotations

import random
from pathlib import Path

import pytest

from repro.errors import PTRiderError
from repro.model.request import Request
from repro.service.api import PTRiderService, build_system
from repro.service.recovery import canonical_state

SEED = 29
VEHICLES = 5
ROWS = COLUMNS = 8
SNAPSHOT_INTERVAL = 5


def _build(tmp=None):
    kwargs = {}
    if tmp is not None:
        kwargs = {
            "durability": "journal+snapshot",
            "journal_path": str(tmp),
            "snapshot_interval": SNAPSHOT_INTERVAL,
        }
    return build_system(
        vehicles=VEHICLES,
        seed=SEED,
        network_rows=ROWS,
        network_columns=COLUMNS,
        **kwargs,
    )


def _drive(service, script, start=0):
    """Execute ``script[start:]``; every event issues exactly one call.

    The one-event/one-call invariant is what makes resumption trivial:
    after a crash, ``journal.command_count()`` is both the number of
    journal command records and the script index to continue from.
    Deterministically-erroring calls (choosing a closed booking,
    cancelling an unknown id) still count -- they are journaled
    write-ahead and replay to the same error.
    """
    vertices = service.fleet.grid.network.vertices()
    for kind, value in script[start:]:
        if kind in ("book", "ingest"):
            origin = vertices[(value * 11) % len(vertices)]
            destination = vertices[(value * 11 + 19) % len(vertices)]
            if destination == origin:
                destination = vertices[(value * 11 + 20) % len(vertices)]
            request = Request(
                start=origin,
                destination=destination,
                riders=1 + value % 3,
                max_waiting=service.config.max_waiting,
                service_constraint=service.config.service_constraint,
                request_id=f"X{value}",
                submit_time=service.current_time,
            )
            if kind == "book":
                service.book_request(request)
            else:
                service.ingest_request(request)
        elif kind == "choose":
            try:
                service.choose(f"B{value}", 0)
            except PTRiderError:
                pass  # closed/unknown booking: same deterministic error on replay
        elif kind == "cancel":
            try:
                service.cancel(f"X{value}")
            except PTRiderError:
                pass  # already flushed or never admitted
        elif kind == "pump":
            service.pump()
        elif kind == "drain":
            service.drain()
        elif kind == "advance":
            service.advance(float(value))
        else:  # pragma: no cover - script construction error
            raise AssertionError(f"unknown script event {kind!r}")


def _comparable(service):
    """Canonical state minus the durability knobs the reference arm lacks."""
    state = canonical_state(service)
    config = dict(state["config"])
    for key in ("durability", "journal_path", "snapshot_interval"):
        config.pop(key, None)
    state["config"] = config
    return state


def _tear_last_record(journal_dir):
    """Garble the newest record's payload in place (a torn write)."""
    import sqlite3

    conn = sqlite3.connect(str(Path(journal_dir) / "journal.sqlite"))
    try:
        conn.execute(
            "UPDATE journal SET payload = ? "
            "WHERE seq = (SELECT MAX(seq) FROM journal)",
            ("{torn-write",),
        )
        conn.commit()
    finally:
        conn.close()


def _run_trial(
    tmp_path,
    script,
    kill_index,
    *,
    torn_tail=False,
    stray_snapshot_tmp=False,
    corrupt_newest_snapshot=False,
):
    reference = _build()
    _drive(reference, script)

    journal_dir = tmp_path / "journal"
    durable = _build(journal_dir)
    _drive(durable, script[:kill_index])
    durable._journal.close()  # the crash: no drain, no clean shutdown
    del durable

    if torn_tail:
        _tear_last_record(journal_dir)
    if stray_snapshot_tmp:
        # a crash mid-snapshot leaves the unfinished temp file behind
        (journal_dir / "snapshot-000000000099.json.321.tmp").write_text('{"half')
    if corrupt_newest_snapshot:
        snapshots = sorted(journal_dir.glob("snapshot-*.json"))
        text = snapshots[-1].read_text()
        snapshots[-1].write_text(text[: len(text) // 2])

    recovered = PTRiderService.recover(journal_dir)
    resume_at = recovered.journal.command_count()
    if torn_tail:
        # the torn record may be an outcome annotation, in which case no
        # command was lost and the resume point is unchanged
        assert resume_at <= kill_index
    else:
        assert resume_at == kill_index
    _drive(recovered, script, start=resume_at)
    assert _comparable(recovered) == _comparable(reference)
    return recovered


#: One script exercising every event kind, with indices marking the ISSUE's
#: named kill points (each event is exactly one service call).
_SCRIPT = [
    ("book", 1),       # 0
    ("choose", 1),     # 1
    ("ingest", 2),     # 2   <- kill at 3: right after an admission
    ("ingest", 3),     # 3   <- kill at 4: mid-window, two admissions pending
    ("pump", 0),       # 4
    ("advance", 2),    # 5
    ("drain", 0),      # 6
    ("book", 4),       # 7   <- kill at 8: between flush and the choose
    ("choose", 2),     # 8
    ("cancel", 9),     # 9   unknown id: deterministic error, still journaled
    ("ingest", 5),     # 10
    ("cancel", 5),     # 11  cancels the pending admission
    ("advance", 1),    # 12
    ("ingest", 6),     # 13
    ("drain", 0),      # 14
    ("choose", 3),     # 15  closed/unknown booking: deterministic error
    ("advance", 3),    # 16
]


class TestNamedKillPoints:
    @pytest.mark.parametrize(
        "kill_index",
        [3, 4, 8, len(_SCRIPT) - 1],
        ids=["after-admission", "mid-window", "flush-vs-choose", "near-end"],
    )
    def test_recovered_state_matches_reference(self, tmp_path, kill_index):
        _run_trial(tmp_path, _SCRIPT, kill_index)

    def test_crash_mid_snapshot_ignores_stray_tmp(self, tmp_path):
        _run_trial(tmp_path, _SCRIPT, 8, stray_snapshot_tmp=True)

    def test_torn_journal_tail_truncated_and_reissued(self, tmp_path):
        recovered = _run_trial(tmp_path, _SCRIPT, 8, torn_tail=True)
        # the torn suffix was physically removed: the journal reads clean
        # end to end and the re-issued calls landed after the truncation
        journal = recovered.journal
        assert journal.records() and journal.truncated_records == 0

    def test_corrupt_newest_snapshot_falls_back_and_replays(self, tmp_path):
        # enough events to lay down periodic snapshots past the baseline
        script = _SCRIPT + [("advance", 1)] * 8
        _run_trial(tmp_path, script, len(script) - 2, corrupt_newest_snapshot=True)


class TestRandomizedKillPoints:
    """Random scripts, random kill points, random fault cocktails."""

    @pytest.mark.parametrize("trial_seed", range(6))
    def test_recovery_always_matches_reference(self, tmp_path, trial_seed):
        rng = random.Random(trial_seed)
        script = []
        for index in range(rng.randint(8, 20)):
            kind = rng.choice(
                ["book", "ingest", "ingest", "choose", "cancel", "pump", "drain", "advance"]
            )
            if kind in ("book", "ingest"):
                script.append((kind, 10 + index))
            elif kind == "choose":
                script.append((kind, rng.randint(1, 4)))
            elif kind == "cancel":
                script.append((kind, rng.randint(10, 10 + index)))
            elif kind == "advance":
                script.append((kind, rng.randint(1, 3)))
            else:
                script.append((kind, 0))
        kill_index = rng.randint(1, len(script))
        _run_trial(
            tmp_path,
            script,
            kill_index,
            torn_tail=rng.random() < 0.4,
            stray_snapshot_tmp=rng.random() < 0.4,
        )
