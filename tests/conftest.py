"""Shared fixtures and builders for the PTRider test suite."""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

import pytest

from repro.core.config import SystemConfig
from repro.core.dispatcher import Dispatcher
from repro.core.insertion import feasible_schedules_for_commit
from repro.core.naive import NaiveKineticTreeMatcher
from repro.core.single_side import SingleSideSearchMatcher
from repro.model.request import Request
from repro.roadnet.generators import figure1_network, grid_network
from repro.roadnet.graph import RoadNetwork
from repro.roadnet.grid_index import GridIndex
from repro.roadnet.shortest_path import DistanceOracle
from repro.vehicles.fleet import Fleet
from repro.vehicles.vehicle import Vehicle


# ----------------------------------------------------------------------
# deterministic builders (importable from tests via the fixtures below)
# ----------------------------------------------------------------------
def build_fleet(
    network: RoadNetwork,
    vehicle_locations: List[int],
    capacity: int = 4,
    grid_rows: int = 4,
    grid_columns: int = 4,
) -> Fleet:
    """Build a fleet with vehicles ``c1, c2, ...`` at the given vertices."""
    grid = GridIndex(network, rows=grid_rows, columns=grid_columns)
    fleet = Fleet(grid, DistanceOracle(network))
    for index, location in enumerate(vehicle_locations, 1):
        fleet.add_vehicle(Vehicle(f"c{index}", location=location, capacity=capacity))
    return fleet


def build_random_fleet(
    rows: int = 8,
    columns: int = 8,
    vehicles: int = 12,
    capacity: int = 4,
    seed: int = 7,
    weight_jitter: float = 0.25,
    grid_rows: int = 5,
    grid_columns: int = 5,
) -> Fleet:
    """Build a seeded random fleet on a jittered grid network."""
    network = grid_network(rows, columns, weight_jitter=weight_jitter, seed=seed)
    rng = random.Random(seed)
    locations = [rng.choice(network.vertices()) for _ in range(vehicles)]
    return build_fleet(network, locations, capacity=capacity, grid_rows=grid_rows, grid_columns=grid_columns)


def assign_request(
    fleet: Fleet,
    vehicle_id: str,
    request: Request,
    planned_pickup_distance: Optional[float] = None,
) -> None:
    """Assign ``request`` to ``vehicle_id`` using the normal commit machinery."""
    vehicle = fleet.get(vehicle_id)
    oracle = fleet.oracle
    schedules = feasible_schedules_for_commit(vehicle, request, oracle, fleet.grid)
    assert schedules, f"vehicle {vehicle_id} cannot feasibly serve {request.request_id}"
    if planned_pickup_distance is None:
        # Promise the pick-up distance of the shortest candidate schedule.
        from repro.vehicles.schedule import evaluate_schedule

        planned_pickup_distance = min(
            evaluate_schedule(vehicle.location, schedule, oracle.distance, vehicle.offset).pickup_distance[
                request.request_id
            ]
            for schedule in schedules
        )
    vehicle.assign(
        request,
        planned_pickup_distance=planned_pickup_distance,
        direct_distance=oracle.distance(request.start, request.destination),
        schedules=schedules,
    )
    fleet.refresh_vehicle(vehicle_id)


def option_points(options) -> List[Tuple[float, float]]:
    """Return the sorted (pickup, price) points of an option list (rounded)."""
    return sorted((round(o.pickup_distance, 6), round(o.price, 6)) for o in options)


# ----------------------------------------------------------------------
# fixtures
# ----------------------------------------------------------------------
@pytest.fixture
def figure1() -> RoadNetwork:
    """The reconstructed 17-vertex example network of Fig. 1."""
    return figure1_network()


@pytest.fixture
def figure1_oracle(figure1: RoadNetwork) -> DistanceOracle:
    return DistanceOracle(figure1)


@pytest.fixture
def figure1_fleet(figure1: RoadNetwork) -> Fleet:
    """The two-vehicle scenario of Section 2.5 (c1 at v1, c2 at v13), c1 serving R1."""
    fleet = build_fleet(figure1, [1, 13])
    request_r1 = Request(
        start=2, destination=16, riders=2, max_waiting=5.0, service_constraint=0.2, request_id="R1"
    )
    assign_request(fleet, "c1", request_r1, planned_pickup_distance=8.0)
    return fleet


@pytest.fixture
def paper_request_r2() -> Request:
    """The request R2 = <v12, v17, 2, 5, 0.2> of the worked example."""
    return Request(
        start=12, destination=17, riders=2, max_waiting=5.0, service_constraint=0.2, request_id="R2"
    )


@pytest.fixture
def paper_config() -> SystemConfig:
    """Global constraints matching the worked example."""
    return SystemConfig(max_waiting=5.0, service_constraint=0.2)


@pytest.fixture
def small_fleet() -> Fleet:
    """A seeded 12-vehicle fleet on an 8x8 jittered grid network."""
    return build_random_fleet()


@pytest.fixture
def small_dispatcher(small_fleet: Fleet) -> Dispatcher:
    """A dispatcher using the single-side matcher on the small fleet."""
    config = SystemConfig(max_waiting=6.0, service_constraint=0.4, max_pickup_distance=10.0)
    matcher = SingleSideSearchMatcher(small_fleet, config=config)
    return Dispatcher(small_fleet, matcher, config)


@pytest.fixture
def naive_dispatcher(small_fleet: Fleet) -> Dispatcher:
    """A dispatcher using the naive matcher on the small fleet."""
    config = SystemConfig(max_waiting=6.0, service_constraint=0.4, max_pickup_distance=10.0)
    matcher = NaiveKineticTreeMatcher(small_fleet, config=config)
    return Dispatcher(small_fleet, matcher, config)
