"""Unit tests for the synthetic network generators and the Fig. 1 reconstruction."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.roadnet.generators import (
    FIGURE1_VEHICLE_POSITIONS,
    figure1_network,
    grid_network,
    random_geometric_network,
    ring_radial_network,
)
from repro.roadnet.shortest_path import shortest_path_distance


class TestGridNetwork:
    def test_size(self):
        network = grid_network(4, 5)
        assert network.vertex_count == 20
        assert network.edge_count == 4 * 4 + 3 * 5  # horizontal + vertical

    def test_connected_with_coordinates(self):
        network = grid_network(6, 6, weight_jitter=0.5, seed=1)
        network.validate(require_coordinates=True, require_connected=True)

    def test_deterministic_for_seed(self):
        a = grid_network(5, 5, weight_jitter=0.5, seed=42)
        b = grid_network(5, 5, weight_jitter=0.5, seed=42)
        assert [e.weight for e in a.edges()] == [e.weight for e in b.edges()]

    def test_jitter_bounds(self):
        network = grid_network(5, 5, spacing=2.0, weight_jitter=0.5, seed=9)
        for edge in network.edges():
            assert 2.0 <= edge.weight <= 3.0 + 1e-9

    def test_weights_at_least_euclidean(self):
        network = grid_network(5, 5, weight_jitter=0.5, seed=9)
        for edge in network.edges():
            assert edge.weight >= network.euclidean_distance(edge.u, edge.v) - 1e-9

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            grid_network(0, 5)
        with pytest.raises(ConfigurationError):
            grid_network(5, 5, spacing=0)
        with pytest.raises(ConfigurationError):
            grid_network(5, 5, weight_jitter=-0.1)


class TestRandomGeometricNetwork:
    def test_connected(self):
        network = random_geometric_network(60, radius=0.2, seed=3)
        assert network.vertex_count == 60
        assert network.is_connected()

    def test_deterministic(self):
        a = random_geometric_network(30, radius=0.25, seed=5)
        b = random_geometric_network(30, radius=0.25, seed=5)
        assert a.edge_count == b.edge_count

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            random_geometric_network(0)
        with pytest.raises(ConfigurationError):
            random_geometric_network(10, radius=0)


class TestRingRadialNetwork:
    def test_size(self):
        network = ring_radial_network(rings=3, spokes=8)
        assert network.vertex_count == 1 + 3 * 8
        assert network.is_connected()

    def test_coordinates_present(self):
        network = ring_radial_network(rings=2, spokes=6)
        network.validate(require_coordinates=True, require_connected=True)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            ring_radial_network(rings=0, spokes=6)
        with pytest.raises(ConfigurationError):
            ring_radial_network(rings=2, spokes=2)


class TestFigure1Network:
    """The reconstruction must satisfy every quantitative statement of the paper."""

    def test_seventeen_vertices_connected(self):
        network = figure1_network()
        assert network.vertex_count == 17
        network.validate(require_coordinates=True, require_connected=True)

    def test_vehicle_positions_exist(self):
        network = figure1_network()
        for vertex in FIGURE1_VEHICLE_POSITIONS.values():
            assert vertex in network

    def test_pickup_distance_of_c1_is_14(self):
        network = figure1_network()
        assert shortest_path_distance(network, 1, 2) + shortest_path_distance(network, 2, 12) == pytest.approx(14.0)

    def test_pickup_distance_of_c2_is_8(self):
        network = figure1_network()
        assert shortest_path_distance(network, 13, 12) == pytest.approx(8.0)

    def test_direct_distance_v12_v17_is_7(self):
        network = figure1_network()
        assert shortest_path_distance(network, 12, 17) == pytest.approx(7.0)

    def test_added_distance_for_c1_is_3(self):
        network = figure1_network()
        added = (
            shortest_path_distance(network, 2, 12)
            + shortest_path_distance(network, 12, 16)
            + shortest_path_distance(network, 16, 17)
            - shortest_path_distance(network, 2, 16)
        )
        assert added == pytest.approx(3.0)

    def test_weights_at_least_euclidean(self):
        network = figure1_network()
        for edge in network.edges():
            assert edge.weight >= network.euclidean_distance(edge.u, edge.v) - 1e-9
