"""Unit tests for the pluggable routing engines."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, DisconnectedError, VertexNotFoundError
from repro.roadnet import routing
from repro.roadnet.generators import figure1_network, grid_network
from repro.roadnet.routing import (
    ROUTING_BACKENDS,
    ALTIndex,
    CSREngine,
    CSRGraph,
    DictDijkstraEngine,
    TableEngine,
    ensure_engine,
    make_engine,
)
from repro.roadnet.shortest_path import (
    DistanceOracle,
    path_length,
    shortest_path_distance,
)


class TestMakeEngine:
    def test_backend_names(self):
        network = grid_network(3, 3)
        for backend in ROUTING_BACKENDS:
            engine = make_engine(network, backend)
            assert engine.backend == backend

    def test_unknown_backend_raises(self):
        with pytest.raises(ConfigurationError):
            make_engine(grid_network(2, 2), "quantum")

    def test_ensure_engine_wraps_bare_oracle(self):
        network = grid_network(3, 3)
        oracle = DistanceOracle(network)
        engine = ensure_engine(oracle, network)
        assert isinstance(engine, DictDijkstraEngine)
        assert engine.oracle is oracle
        assert engine.stats is oracle.stats

    def test_ensure_engine_passes_engines_through(self):
        network = grid_network(3, 3)
        engine = CSREngine(network)
        assert ensure_engine(engine, network) is engine

    def test_ensure_engine_rejects_garbage(self):
        with pytest.raises(TypeError):
            ensure_engine(object(), grid_network(2, 2))


class TestCSRGraph:
    def test_arrays_describe_every_edge(self):
        network = grid_network(4, 4, weight_jitter=0.3, seed=5)
        graph = CSRGraph(network)
        assert len(graph.indices) == 2 * network.edge_count
        assert graph.indptr[0] == 0 and graph.indptr[-1] == len(graph.indices)
        for vertex in network.vertices():
            index = graph.index(vertex)
            span = range(graph.indptr[index], graph.indptr[index + 1])
            neighbours = {graph.vertex_ids[graph.indices[k]]: graph.weights[k] for k in span}
            assert neighbours == dict(network.neighbours_view(vertex))

    def test_unknown_vertex(self):
        graph = CSRGraph(grid_network(2, 2))
        with pytest.raises(VertexNotFoundError):
            graph.index(999)


class TestCSREngine:
    def test_distance_matches_dijkstra(self):
        network = grid_network(5, 5, weight_jitter=0.4, seed=3)
        engine = CSREngine(network)
        for source, target in [(1, 25), (13, 2), (7, 19)]:
            assert engine.distance(source, target) == pytest.approx(
                shortest_path_distance(network, source, target)
            )

    def test_caches_and_reuses_symmetrically(self):
        engine = CSREngine(grid_network(4, 4))
        engine.distance(1, 16)
        engine.distance(1, 8)
        engine.distance(16, 1)
        assert engine.stats.dijkstra_runs == 1
        assert engine.stats.cache_hits >= 2

    def test_eviction_bound(self):
        engine = CSREngine(grid_network(4, 4), max_cached_sources=2)
        for source in (1, 2, 3, 4):
            engine.distances_from(source)
        assert engine.stats.dijkstra_runs == 4
        assert len(engine._trees) <= 2  # noqa: SLF001 - asserting the eviction policy

    def test_invalid_cache_size(self):
        with pytest.raises(ValueError):
            CSREngine(grid_network(2, 2), max_cached_sources=0)

    def test_disconnected_raises(self):
        network = grid_network(3, 3)
        network.add_vertex(99)
        engine = CSREngine(network)
        with pytest.raises(DisconnectedError):
            engine.distance(1, 99)

    def test_unknown_vertex_raises(self):
        engine = CSREngine(grid_network(2, 2))
        with pytest.raises(VertexNotFoundError):
            engine.distance(1, 999)

    def test_path_is_valid_and_optimal(self):
        network = grid_network(4, 4, weight_jitter=0.3, seed=9)
        engine = CSREngine(network)
        result = engine.path(1, 16)
        assert result.path[0] == 1 and result.path[-1] == 16
        assert path_length(network, result.path) == pytest.approx(result.distance)
        assert result.distance == pytest.approx(shortest_path_distance(network, 1, 16))

    def test_path_disconnected_raises(self):
        network = grid_network(3, 3)
        network.add_vertex(99)
        engine = CSREngine(network)
        with pytest.raises(DisconnectedError):
            engine.path(1, 99)

    def test_invalidate_recompiles_after_mutation(self):
        network = grid_network(1, 3)  # a path 1 - 2 - 3
        engine = CSREngine(network)
        before = engine.distance(1, 3)
        network.add_vertex(4, x=0.5, y=1.0)
        network.add_edge(1, 4, 0.1)
        network.add_edge(4, 3, 0.1)
        engine.invalidate()
        assert engine.distance(1, 3) == pytest.approx(min(before, 0.2))
        assert engine.distance(1, 4) == pytest.approx(0.1)

    def test_tree_view_behaves_like_a_mapping(self):
        network = grid_network(3, 3)
        network.add_vertex(99)
        engine = CSREngine(network)
        tree = engine.distances_from(1)
        assert tree[1] == 0.0
        assert 99 not in tree
        assert tree.get(99) is None
        assert tree.get(99, -1.0) == -1.0
        with pytest.raises(KeyError):
            tree[99]
        assert set(tree) == set(network.vertices()) - {99}
        assert len(tree) == 9
        oracle_tree = DistanceOracle(network).distances_from(1)
        assert {v: tree[v] for v in tree} == pytest.approx(oracle_tree)

    def test_pure_python_fallback_matches(self, monkeypatch):
        network = grid_network(4, 4, weight_jitter=0.25, seed=11)
        reference = CSREngine(network)
        monkeypatch.setattr(routing, "_csr_array", None)
        fallback = CSREngine(network)
        assert fallback.graph.matrix is None
        for source, target in [(1, 16), (5, 12), (3, 14)]:
            assert fallback.distance(source, target) == pytest.approx(
                reference.distance(source, target)
            )
        result = fallback.path(1, 16)
        assert path_length(network, result.path) == pytest.approx(result.distance)


class TestALT:
    def test_bounds_are_admissible(self):
        network = grid_network(5, 5, weight_jitter=0.4, seed=13)
        engine = CSREngine(network, landmarks=4)
        assert engine.backend == "csr+alt"
        vertices = network.vertices()
        for u in vertices[::3]:
            for v in vertices[::4]:
                bound = engine.distance_lower_bound(u, v)
                assert bound <= engine.distance(u, v) + 1e-9 if u != v else bound == 0.0

    def test_landmark_count_capped_by_network_size(self):
        engine = CSREngine(grid_network(2, 2), landmarks=16)
        assert engine.alt is not None
        assert engine.alt.landmark_count <= 4

    def test_disconnected_pair_gets_infinite_bound(self):
        network = grid_network(3, 3)
        network.add_vertex(99)
        network.add_vertex(98)
        network.add_edge(99, 98, 1.0)
        engine = CSREngine(network, landmarks=3)
        assert engine.distance_lower_bound(1, 99) == float("inf")

    def test_plain_csr_engine_has_zero_bound(self):
        engine = CSREngine(figure1_network())
        assert engine.distance_lower_bound(1, 17) == 0.0

    def test_alt_index_rejects_nonpositive_landmarks(self):
        with pytest.raises(ValueError):
            ALTIndex(CSRGraph(grid_network(2, 2)), landmarks=0)


class TestTreePlanes:
    def test_trees_matches_per_source_tree(self):
        graph = CSRGraph(grid_network(4, 4, weight_jitter=0.3, seed=7))
        indices = [0, 5, 11]
        plane = graph.trees(indices)
        for position, index in enumerate(indices):
            assert list(plane[position]) == list(graph.tree(index))

    def test_empty_source_list(self):
        graph = CSRGraph(grid_network(3, 3))
        assert len(graph.trees([])) == 0

    def test_pure_python_plane(self, monkeypatch):
        monkeypatch.setattr(routing, "_csr_array", None)
        graph = CSRGraph(grid_network(3, 3, weight_jitter=0.2, seed=3))
        assert graph.matrix is None
        plane = graph.trees([0, 4])
        assert list(plane[0]) == list(graph.tree(0))
        assert list(plane[1]) == list(graph.tree(4))


class TestPrefetch:
    def test_each_prefetched_tree_counts_one_dijkstra_run(self):
        """A tree served from the prefetch plane is one computation, however
        many consumers it later has (the EngineStats double-count fix)."""
        engine = CSREngine(grid_network(4, 4))
        views = engine.prefetch_trees([1, 2, 3, 1, 2])  # duplicates collapse
        assert set(views) == {1, 2, 3}
        assert engine.stats.dijkstra_runs == 3
        # Serving the prefetched trees is a cache hit, never a re-computation.
        for _ in range(4):
            engine.distances_from(1)
        assert engine.stats.dijkstra_runs == 3
        assert engine.stats.cache_hits == 4

    def test_cached_trees_are_returned_without_new_runs(self):
        engine = CSREngine(grid_network(4, 4))
        engine.distances_from(5)
        assert engine.stats.dijkstra_runs == 1
        views = engine.prefetch_trees([5, 6])
        assert set(views) == {5, 6}
        assert engine.stats.dijkstra_runs == 2  # only 6 was missing

    def test_unknown_sources_are_skipped(self):
        engine = CSREngine(grid_network(3, 3))
        views = engine.prefetch_trees([1, 999])
        assert set(views) == {1}

    def test_views_survive_cache_eviction(self):
        """Prefetching more trees than the LRU holds must still pin every
        returned view (the batch relies on reference pinning, not the cache)."""
        network = grid_network(4, 4)
        engine = CSREngine(network, max_cached_sources=2)
        sources = network.vertices()[:6]
        views = engine.prefetch_trees(sources)
        assert set(views) == set(sources)
        reference = CSREngine(network)
        for source in sources:
            fresh = reference.distances_from(source)
            assert {v: views[source][v] for v in views[source]} == {
                v: fresh[v] for v in fresh
            }

    def test_prefetch_values_match_distances_from(self):
        engine = CSREngine(grid_network(4, 4, weight_jitter=0.25, seed=9))
        views = engine.prefetch_trees([2, 7])
        tree = engine.distances_from(2)
        assert {v: views[2][v] for v in views[2]} == {v: tree[v] for v in tree}

    def test_dict_engine_prefetch_is_a_noop(self):
        engine = DictDijkstraEngine(grid_network(3, 3))
        assert engine.prefetch_trees([1, 2, 3]) == {}
        assert engine.stats.dijkstra_runs == 0

    def test_pure_python_prefetch(self, monkeypatch):
        monkeypatch.setattr(routing, "_csr_array", None)
        engine = CSREngine(grid_network(3, 3, weight_jitter=0.2, seed=5))
        views = engine.prefetch_trees([1, 8])
        reference = DictDijkstraEngine(engine.network)
        for source in (1, 8):
            fresh = reference.distances_from(source)
            assert {v: round(views[source][v], 9) for v in views[source]} == {
                v: round(fresh[v], 9) for v in fresh
            }


class TestTableEngine:
    def test_distance_matches_dijkstra(self):
        network = grid_network(5, 5, weight_jitter=0.4, seed=3)
        engine = TableEngine(network)
        for source, target in [(1, 25), (13, 2), (7, 19)]:
            assert engine.distance(source, target) == pytest.approx(
                shortest_path_distance(network, source, target)
            )

    def test_distance_is_plain_float(self):
        engine = TableEngine(grid_network(3, 3))
        assert type(engine.distance(1, 9)) is float

    def test_disconnected_raises(self):
        network = grid_network(3, 3)
        network.add_vertex(99)
        engine = TableEngine(network)
        with pytest.raises(DisconnectedError):
            engine.distance(1, 99)

    def test_unknown_vertex_raises(self):
        engine = TableEngine(grid_network(2, 2))
        with pytest.raises(VertexNotFoundError):
            engine.distance(1, 999)

    def test_tree_view_is_a_row_of_the_table(self):
        network = grid_network(3, 3)
        engine = TableEngine(network)
        tree = engine.distances_from(1)
        assert tree[1] == 0.0
        assert len(tree) == 9
        oracle_tree = DistanceOracle(network).distances_from(1)
        assert {v: tree[v] for v in tree} == pytest.approx(oracle_tree)

    def test_path_is_valid_and_optimal(self):
        network = grid_network(4, 4, weight_jitter=0.3, seed=9)
        engine = TableEngine(network)
        result = engine.path(1, 16)
        assert result.path[0] == 1 and result.path[-1] == 16
        assert path_length(network, result.path) == pytest.approx(result.distance)
        assert result.distance == pytest.approx(shortest_path_distance(network, 1, 16))

    def test_lower_bound_is_exact(self):
        engine = TableEngine(grid_network(4, 4, weight_jitter=0.2, seed=4))
        assert engine.exact_lower_bounds
        assert engine.distance_lower_bound(1, 16) == engine.distance(1, 16)
        assert engine.distance_lower_bound(7, 7) == 0.0

    def test_lower_bound_infinite_for_disconnected(self):
        network = grid_network(3, 3)
        network.add_vertex(99)
        engine = TableEngine(network)
        assert engine.distance_lower_bound(1, 99) == float("inf")

    def test_invalidate_rebuilds_after_mutation(self):
        network = grid_network(1, 3)  # a path 1 - 2 - 3
        engine = TableEngine(network)
        before = engine.distance(1, 3)
        network.add_vertex(4, x=0.5, y=1.0)
        network.add_edge(1, 4, 0.1)
        network.add_edge(4, 3, 0.1)
        engine.invalidate()
        assert engine.distance(1, 3) == pytest.approx(min(before, 0.2))

    def test_build_counts_one_run_per_vertex(self):
        engine = TableEngine(grid_network(3, 3))
        assert engine.stats.dijkstra_runs == 9
        engine.distance(1, 9)
        assert engine.stats.dijkstra_runs == 9  # queries never re-run Dijkstra

    def test_vertex_cap_refuses_large_networks(self):
        with pytest.raises(ConfigurationError):
            TableEngine(grid_network(3, 3), max_vertices=4)

    def test_blocked_build_matches_unblocked(self):
        network = grid_network(4, 4, weight_jitter=0.3, seed=11)
        small_blocks = TableEngine(network, block_size=3)
        one_block = TableEngine(network, block_size=1024)
        vertices = network.vertices()
        for u in vertices[::3]:
            for v in vertices[::4]:
                assert small_blocks.distance(u, v) == one_block.distance(u, v)

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            TableEngine(grid_network(2, 2), block_size=0)

    def test_pure_python_table(self, monkeypatch):
        monkeypatch.setattr(routing, "_csr_array", None)
        network = grid_network(3, 3, weight_jitter=0.2, seed=5)
        engine = TableEngine(network, block_size=2)
        assert engine.graph.matrix is None
        reference = DictDijkstraEngine(network)
        for source, target in [(1, 9), (4, 6), (2, 8)]:
            assert engine.distance(source, target) == pytest.approx(
                reference.distance(source, target)
            )


class TestDictEngine:
    def test_requires_network_or_oracle(self):
        with pytest.raises(ValueError):
            DictDijkstraEngine()

    def test_delegates_to_oracle(self):
        network = grid_network(3, 3)
        engine = DictDijkstraEngine(network)
        assert engine.network is network
        assert engine.distance(1, 9) == pytest.approx(shortest_path_distance(network, 1, 9))
        assert engine.distances_from(1)[9] == pytest.approx(engine.distance(1, 9))
        result = engine.path(1, 9)
        assert result.path[0] == 1 and result.path[-1] == 9
        engine.invalidate()
        assert engine.distance_lower_bound(1, 9) == 0.0
