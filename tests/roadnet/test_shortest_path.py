"""Unit tests for the shortest-path routines and the distance oracle."""

from __future__ import annotations

import pytest

from repro.errors import DisconnectedError, VertexNotFoundError
from repro.roadnet.generators import figure1_network, grid_network
from repro.roadnet.graph import RoadNetwork
from repro.roadnet.shortest_path import (
    DistanceOracle,
    bidirectional_dijkstra,
    bounded_dijkstra,
    dijkstra_all,
    multi_source_dijkstra,
    path_length,
    shortest_path,
    shortest_path_distance,
)


@pytest.fixture
def diamond() -> RoadNetwork:
    """A diamond where the indirect route is shorter than the direct edge."""
    return RoadNetwork.from_edges(
        [(1, 2, 1.0), (2, 4, 1.0), (1, 3, 2.0), (3, 4, 2.0), (1, 4, 5.0)],
        coordinates={1: (0, 0), 2: (1, 1), 3: (1, -1), 4: (2, 0)},
    )


class TestPointToPoint:
    def test_distance_prefers_indirect_route(self, diamond: RoadNetwork):
        assert shortest_path_distance(diamond, 1, 4) == pytest.approx(2.0)

    def test_distance_to_self_is_zero(self, diamond: RoadNetwork):
        assert shortest_path_distance(diamond, 3, 3) == 0.0

    def test_path_reconstruction(self, diamond: RoadNetwork):
        result = shortest_path(diamond, 1, 4)
        assert result.path == (1, 2, 4)
        assert result.distance == pytest.approx(2.0)
        assert result.hop_count == 2

    def test_path_length_matches_distance(self, diamond: RoadNetwork):
        result = shortest_path(diamond, 1, 4)
        assert path_length(diamond, result.path) == pytest.approx(result.distance)

    def test_unknown_vertex(self, diamond: RoadNetwork):
        with pytest.raises(VertexNotFoundError):
            shortest_path_distance(diamond, 1, 99)

    def test_disconnected(self, diamond: RoadNetwork):
        diamond.add_vertex(99)
        with pytest.raises(DisconnectedError):
            shortest_path_distance(diamond, 1, 99)


class TestBidirectional:
    def test_matches_unidirectional_on_grid(self):
        network = grid_network(6, 6, weight_jitter=0.3, seed=11)
        for source, target in [(1, 36), (7, 30), (3, 33), (14, 14)]:
            expected = shortest_path_distance(network, source, target)
            result = bidirectional_dijkstra(network, source, target)
            assert result.distance == pytest.approx(expected)
            assert path_length(network, result.path) == pytest.approx(expected)

    def test_path_endpoints(self):
        network = figure1_network()
        result = bidirectional_dijkstra(network, 1, 17)
        assert result.path[0] == 1
        assert result.path[-1] == 17

    def test_same_vertex(self, ):
        network = figure1_network()
        result = bidirectional_dijkstra(network, 5, 5)
        assert result.distance == 0.0
        assert result.path == (5,)

    def test_disconnected(self):
        network = figure1_network()
        network.add_vertex(99)
        with pytest.raises(DisconnectedError):
            bidirectional_dijkstra(network, 1, 99)


class TestExpansions:
    def test_bounded_dijkstra_respects_radius(self, diamond: RoadNetwork):
        reachable = bounded_dijkstra(diamond, 1, radius=1.5)
        assert set(reachable) == {1, 2}
        assert reachable[2] == pytest.approx(1.0)

    def test_bounded_dijkstra_negative_radius(self, diamond: RoadNetwork):
        with pytest.raises(ValueError):
            bounded_dijkstra(diamond, 1, radius=-1.0)

    def test_dijkstra_all_covers_component(self, diamond: RoadNetwork):
        distances = dijkstra_all(diamond, 1)
        assert set(distances) == {1, 2, 3, 4}
        assert distances[4] == pytest.approx(2.0)

    def test_multi_source_takes_minimum(self, diamond: RoadNetwork):
        distances = multi_source_dijkstra(diamond, [2, 3])
        assert distances[1] == pytest.approx(1.0)
        assert distances[4] == pytest.approx(1.0)
        assert distances[2] == 0.0

    def test_multi_source_requires_sources(self, diamond: RoadNetwork):
        with pytest.raises(ValueError):
            multi_source_dijkstra(diamond, [])


class TestDistanceOracle:
    def test_matches_dijkstra(self):
        network = grid_network(5, 5, weight_jitter=0.4, seed=3)
        oracle = DistanceOracle(network)
        for source, target in [(1, 25), (13, 2), (7, 19)]:
            assert oracle.distance(source, target) == pytest.approx(
                shortest_path_distance(network, source, target)
            )

    def test_caches_single_source_trees(self):
        network = grid_network(4, 4)
        oracle = DistanceOracle(network)
        oracle.distance(1, 16)
        oracle.distance(1, 8)
        oracle.distance(1, 5)
        assert oracle.stats.dijkstra_runs == 1
        assert oracle.stats.cache_hits >= 2

    def test_symmetric_reuse(self):
        network = grid_network(4, 4)
        oracle = DistanceOracle(network)
        first = oracle.distance(1, 16)
        second = oracle.distance(16, 1)
        assert first == pytest.approx(second)
        assert oracle.stats.dijkstra_runs == 1

    def test_eviction_bound(self):
        network = grid_network(4, 4)
        oracle = DistanceOracle(network, max_cached_sources=2)
        for source in (1, 2, 3, 4):
            oracle.distances_from(source)
        assert oracle.stats.dijkstra_runs == 4
        assert len(oracle._trees) <= 2  # noqa: SLF001 - asserting the eviction policy

    def test_invalidate(self):
        network = grid_network(3, 3)
        oracle = DistanceOracle(network)
        oracle.distance(1, 9)
        oracle.invalidate()
        oracle.distance(1, 9)
        assert oracle.stats.dijkstra_runs == 2

    def test_disconnected_raises(self):
        network = grid_network(3, 3)
        network.add_vertex(99)
        oracle = DistanceOracle(network)
        with pytest.raises(DisconnectedError):
            oracle.distance(1, 99)

    def test_path_delegates(self):
        network = grid_network(3, 3)
        oracle = DistanceOracle(network)
        result = oracle.path(1, 9)
        assert result.path[0] == 1 and result.path[-1] == 9

    def test_invalid_cache_size(self):
        with pytest.raises(ValueError):
            DistanceOracle(grid_network(2, 2), max_cached_sources=0)
