"""Unit tests for the planar geometry helpers."""

from __future__ import annotations

import math

import pytest

from repro.roadnet.geometry import (
    BoundingBox,
    Point,
    euclidean_distance,
    haversine_distance,
    manhattan_distance,
)


class TestPoint:
    def test_distance_to(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_manhattan_distance(self):
        assert Point(0, 0).manhattan_distance_to(Point(3, 4)) == pytest.approx(7.0)

    def test_midpoint(self):
        mid = Point(0, 0).midpoint(Point(2, 4))
        assert (mid.x, mid.y) == (1.0, 2.0)

    def test_translated(self):
        moved = Point(1, 1).translated(2, -1)
        assert (moved.x, moved.y) == (3.0, 0.0)

    def test_tuple_and_iter(self):
        point = Point(1.5, 2.5)
        assert point.as_tuple() == (1.5, 2.5)
        assert tuple(point) == (1.5, 2.5)

    def test_points_are_immutable(self):
        with pytest.raises(AttributeError):
            Point(1, 2).x = 3  # type: ignore[misc]


class TestDistances:
    def test_euclidean(self):
        assert euclidean_distance((0, 0), (3, 4)) == pytest.approx(5.0)

    def test_manhattan(self):
        assert manhattan_distance((0, 0), (3, 4)) == pytest.approx(7.0)

    def test_haversine_zero(self):
        assert haversine_distance((121.47, 31.23), (121.47, 31.23)) == pytest.approx(0.0)

    def test_haversine_known_value(self):
        # One degree of latitude is roughly 111 km.
        distance = haversine_distance((0.0, 0.0), (0.0, 1.0))
        assert distance == pytest.approx(111_195, rel=0.01)

    def test_haversine_symmetry(self):
        a, b = (121.47, 31.23), (121.80, 30.90)
        assert haversine_distance(a, b) == pytest.approx(haversine_distance(b, a))


class TestBoundingBox:
    def test_invalid_corners_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(1.0, 0.0, 0.0, 1.0)

    def test_from_points(self):
        box = BoundingBox.from_points([(0, 0), (2, 1), (1, 3)])
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (0, 0, 2, 3)

    def test_from_points_empty(self):
        with pytest.raises(ValueError):
            BoundingBox.from_points([])

    def test_dimensions(self):
        box = BoundingBox(0, 0, 2, 4)
        assert box.width == 2
        assert box.height == 4
        assert box.area == 8
        assert box.center.as_tuple() == (1.0, 2.0)

    def test_contains_boundary(self):
        box = BoundingBox(0, 0, 1, 1)
        assert box.contains((0, 0))
        assert box.contains((1, 1))
        assert not box.contains((1.01, 0.5))

    def test_intersects(self):
        box = BoundingBox(0, 0, 2, 2)
        assert box.intersects(BoundingBox(1, 1, 3, 3))
        assert box.intersects(BoundingBox(2, 2, 3, 3))  # touching counts
        assert not box.intersects(BoundingBox(2.1, 2.1, 3, 3))

    def test_expanded(self):
        box = BoundingBox(0, 0, 1, 1).expanded(0.5)
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (-0.5, -0.5, 1.5, 1.5)

    def test_expanded_rejects_negative_margin(self):
        with pytest.raises(ValueError):
            BoundingBox(0, 0, 1, 1).expanded(-1)
