"""Unit and property tests for the A* search."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DisconnectedError, VertexNotFoundError
from repro.roadnet.generators import figure1_network, grid_network, ring_radial_network
from repro.roadnet.shortest_path import astar_path, path_length, shortest_path_distance


class TestAstar:
    def test_matches_dijkstra_on_figure1(self):
        network = figure1_network()
        for source in (1, 5, 13):
            for target in (17, 10, 2):
                expected = shortest_path_distance(network, source, target)
                result = astar_path(network, source, target)
                assert result.distance == pytest.approx(expected)
                assert path_length(network, result.path) == pytest.approx(expected)

    def test_same_vertex(self):
        network = figure1_network()
        result = astar_path(network, 4, 4)
        assert result.distance == 0.0
        assert result.path == (4,)

    def test_path_endpoints(self):
        network = grid_network(6, 6, weight_jitter=0.3, seed=2)
        result = astar_path(network, 1, 36)
        assert result.path[0] == 1 and result.path[-1] == 36

    def test_unknown_vertex(self):
        network = figure1_network()
        with pytest.raises(VertexNotFoundError):
            astar_path(network, 1, 999)

    def test_disconnected(self):
        network = figure1_network()
        network.add_vertex(999, x=50.0, y=50.0)
        with pytest.raises(DisconnectedError):
            astar_path(network, 1, 999)

    def test_explicit_zero_heuristic_reduces_to_dijkstra(self):
        network = grid_network(5, 5, weight_jitter=0.4, seed=3)
        expected = shortest_path_distance(network, 1, 25)
        result = astar_path(network, 1, 25, heuristic={})
        assert result.distance == pytest.approx(expected)

    def test_ring_radial_network(self):
        network = ring_radial_network(rings=3, spokes=10)
        for target in (5, 17, 25):
            assert astar_path(network, 1, target).distance == pytest.approx(
                shortest_path_distance(network, 1, target)
            )


@given(
    rows=st.integers(min_value=2, max_value=7),
    columns=st.integers(min_value=2, max_value=7),
    jitter=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=10_000),
    pair_seed=st.integers(min_value=0, max_value=1_000),
)
@settings(max_examples=40, deadline=None)
def test_astar_equals_dijkstra_property(rows, columns, jitter, seed, pair_seed):
    """On generator networks (weights >= Euclidean) A* is exact for any pair."""
    import random

    network = grid_network(rows, columns, weight_jitter=jitter, seed=seed)
    rng = random.Random(pair_seed)
    vertices = network.vertices()
    source, target = rng.choice(vertices), rng.choice(vertices)
    expected = shortest_path_distance(network, source, target)
    result = astar_path(network, source, target)
    assert result.distance == pytest.approx(expected)
    assert path_length(network, result.path) == pytest.approx(expected)
