"""Unit tests for the contraction-hierarchy routing backend."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, DisconnectedError, VertexNotFoundError
from repro.roadnet.generators import (
    arterial_grid_network,
    figure1_network,
    grid_network,
)
from repro.roadnet.routing import (
    ROUTING_BACKENDS,
    CHEngine,
    ContractionHierarchy,
    CSREngine,
    CSRGraph,
    TableEngine,
    make_engine,
)
from repro.roadnet.shortest_path import (
    DistanceOracle,
    path_length,
    shortest_path_distance,
)


class TestContractionHierarchy:
    def test_every_vertex_gets_a_rank(self):
        graph = CSRGraph(grid_network(4, 4, weight_jitter=0.3, seed=5))
        hierarchy = ContractionHierarchy.build(graph)
        assert sorted(hierarchy.rank) == list(range(len(graph)))
        assert [hierarchy.rank[v] for v in hierarchy.order] == list(range(len(graph)))

    def test_upward_edges_point_upward(self):
        graph = CSRGraph(grid_network(5, 5, weight_jitter=0.4, seed=3))
        hierarchy = ContractionHierarchy.build(graph)
        for v in range(len(graph)):
            for k in range(hierarchy.up_indptr[v], hierarchy.up_indptr[v + 1]):
                assert hierarchy.rank[hierarchy.up_indices[k]] > hierarchy.rank[v]

    def test_shortcut_middles_rank_below_endpoints(self):
        graph = CSRGraph(grid_network(6, 6, weight_jitter=0.3, seed=9))
        hierarchy = ContractionHierarchy.build(graph)
        for v in range(len(graph)):
            for k in range(hierarchy.up_indptr[v], hierarchy.up_indptr[v + 1]):
                mid = hierarchy.up_mids[k]
                if mid >= 0:
                    assert hierarchy.rank[mid] < hierarchy.rank[v]
                    assert hierarchy.rank[mid] < hierarchy.rank[hierarchy.up_indices[k]]

    def test_distance_of_identical_indices_is_zero(self):
        graph = CSRGraph(grid_network(3, 3))
        hierarchy = ContractionHierarchy.build(graph)
        assert hierarchy.distance(4, 4) == 0.0

    def test_disconnected_indices_return_none(self):
        network = grid_network(3, 3)
        network.add_vertex(99)
        graph = CSRGraph(network)
        hierarchy = ContractionHierarchy.build(graph)
        assert hierarchy.distance(graph.index(1), graph.index(99)) is None

    def test_array_round_trip(self):
        graph = CSRGraph(grid_network(5, 5, weight_jitter=0.3, seed=7))
        hierarchy = ContractionHierarchy.build(graph)
        arrays = hierarchy.to_arrays()
        clone = ContractionHierarchy.from_arrays(
            arrays["rank"],
            arrays["up_indptr"],
            arrays["up_indices"],
            arrays["up_weights"],
            arrays["up_mids"],
            arrays["shortcut_count"],
        )
        assert clone.rank == hierarchy.rank
        assert clone.order == hierarchy.order
        assert clone.up_weights == hierarchy.up_weights
        assert clone.shortcut_count == hierarchy.shortcut_count
        for s in range(0, len(graph), 3):
            for t in range(0, len(graph), 4):
                assert clone.distance(s, t) == hierarchy.distance(s, t)


class TestCHEngine:
    def test_distance_matches_dijkstra(self):
        network = grid_network(5, 5, weight_jitter=0.4, seed=3)
        engine = CHEngine(network)
        for source, target in [(1, 25), (13, 2), (7, 19)]:
            assert engine.distance(source, target) == pytest.approx(
                shortest_path_distance(network, source, target)
            )

    def test_distance_bit_identical_to_csr(self):
        network = grid_network(6, 6, weight_jitter=0.35, seed=11)
        csr = CSREngine(network, max_cached_sources=1)
        ch = CHEngine(network, max_cached_sources=1)
        vertices = network.vertices()
        for u in vertices[::3]:
            for v in vertices[::2]:
                assert ch.distance(u, v) == csr.distance(u, v)

    def test_distance_is_plain_float(self):
        engine = CHEngine(grid_network(3, 3))
        assert type(engine.distance(1, 9)) is float

    def test_point_queries_count_bidirectional_runs(self):
        engine = CHEngine(grid_network(4, 4))
        engine.distance(1, 16)
        engine.distance(2, 15)
        assert engine.stats.queries == 2
        assert engine.stats.bidirectional_runs == 2
        assert engine.stats.dijkstra_runs == 0  # no tree was ever grown

    def test_cached_tree_answers_point_queries(self):
        engine = CHEngine(grid_network(4, 4))
        engine.distances_from(1)  # roots and caches the tree at vertex 1
        engine.distance(1, 16)
        assert engine.stats.cache_hits == 1
        assert engine.stats.bidirectional_runs == 0

    def test_trees_are_inherited_csr_trees(self):
        network = grid_network(4, 4, weight_jitter=0.25, seed=9)
        ch_tree = CHEngine(network).distances_from(3)
        csr_tree = CSREngine(network).distances_from(3)
        assert {v: ch_tree[v] for v in ch_tree} == {v: csr_tree[v] for v in csr_tree}

    def test_disconnected_raises(self):
        network = grid_network(3, 3)
        network.add_vertex(99)
        engine = CHEngine(network)
        with pytest.raises(DisconnectedError):
            engine.distance(1, 99)

    def test_unknown_vertex_raises(self):
        engine = CHEngine(grid_network(2, 2))
        with pytest.raises(VertexNotFoundError):
            engine.distance(1, 999)

    def test_path_is_valid_and_optimal(self):
        network = grid_network(4, 4, weight_jitter=0.3, seed=9)
        engine = CHEngine(network)
        result = engine.path(1, 16)
        assert result.path[0] == 1 and result.path[-1] == 16
        assert path_length(network, result.path) == pytest.approx(result.distance)
        assert result.distance == pytest.approx(shortest_path_distance(network, 1, 16))

    def test_invalidate_recontracts_after_mutation(self):
        network = grid_network(1, 3)  # a path 1 - 2 - 3
        engine = CHEngine(network)
        before = engine.distance(1, 3)
        network.add_vertex(4, x=0.5, y=1.0)
        network.add_edge(1, 4, 0.1)
        network.add_edge(4, 3, 0.1)
        engine.invalidate()
        assert engine.distance(1, 3) == pytest.approx(min(before, 0.2))

    def test_figure1_worked_example_distances(self):
        network = figure1_network()
        engine = CHEngine(network)
        oracle = DistanceOracle(network)
        for u in network.vertices():
            for v in network.vertices():
                assert engine.distance(u, v) == pytest.approx(oracle.distance(u, v))

    def test_pure_python_fallback_matches(self, monkeypatch):
        from repro.roadnet import routing

        network = grid_network(4, 4, weight_jitter=0.25, seed=11)
        reference = CHEngine(network)
        monkeypatch.setattr(routing, "_csr_array", None)
        fallback = CHEngine(network)
        assert fallback.graph.matrix is None
        for source, target in [(1, 16), (5, 12), (3, 14)]:
            assert fallback.distance(source, target) == pytest.approx(
                reference.distance(source, target)
            )

    def test_make_engine_builds_ch(self):
        engine = make_engine(grid_network(3, 3), "ch")
        assert isinstance(engine, CHEngine)
        assert engine.backend == "ch"
        assert "ch" in ROUTING_BACKENDS

    def test_dense_contraction_branch_stays_bit_identical(self):
        """A hub of degree 49 forces the ``CH_DENSE_DEGREE`` contraction
        branch (direct-edge / shared-neighbour witnesses instead of Dijkstra
        searches) -- every vertex is planned during the initial priority
        build, so an initial degree above the threshold guarantees the
        branch runs.  Extra shortcuts are allowed; wrong answers are not."""
        from repro.roadnet.routing import CH_DENSE_DEGREE

        network = grid_network(7, 7, weight_jitter=0.3, seed=13)
        hub = 999
        network.add_vertex(hub, x=3.0, y=3.0)
        for index, vertex in enumerate(network.vertices()):
            if vertex != hub:
                network.add_edge(hub, vertex, 2.0 + index * 0.013)
        assert network.degree(hub) > CH_DENSE_DEGREE
        csr = CSREngine(network, max_cached_sources=1)
        ch = CHEngine(network, max_cached_sources=1)
        vertices = network.vertices()
        for u in vertices[::3] + [hub]:
            for v in vertices[::2] + [hub]:
                assert ch.distance(u, v) == csr.distance(u, v)


class TestTableCapFallback:
    def test_cap_is_configurable_through_make_engine(self):
        network = grid_network(3, 3)
        with pytest.raises(ConfigurationError):
            make_engine(network, "table", table_max_vertices=4)
        engine = make_engine(network, "table", table_max_vertices=9)
        assert engine.backend == "table"

    def test_cap_error_names_the_ch_fallback(self):
        with pytest.raises(ConfigurationError) as excinfo:
            TableEngine(grid_network(3, 3), max_vertices=4)
        message = str(excinfo.value)
        assert "ch" in message
        assert "table_max_vertices" in message

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            TableEngine(grid_network(2, 2), max_vertices=0)


class TestArterialGridNetwork:
    def test_size_and_connectivity(self):
        network = arterial_grid_network(8, 9, weight_jitter=0.2, seed=3)
        assert network.vertex_count == 72
        assert network.is_connected()
        assert network.has_coordinates()

    def test_arterial_edges_stay_fast_locals_slow(self):
        network = arterial_grid_network(
            8, 8, arterial_every=4, local_factor=3.0, seed=None
        )
        # no jitter: arterial edges weigh exactly 1.0, local edges 3.0
        weights = {round(edge.weight, 9) for edge in network.edges()}
        assert weights == {1.0, 3.0}

    def test_degenerates_to_plain_grid(self):
        plain = grid_network(4, 5, weight_jitter=0.3, seed=7)
        arterial = arterial_grid_network(
            4, 5, weight_jitter=0.3, arterial_every=1, seed=7
        )
        assert {e.key(): e.weight for e in plain.edges()} == {
            e.key(): e.weight for e in arterial.edges()
        }

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            arterial_grid_network(3, 3, arterial_every=0)
        with pytest.raises(ConfigurationError):
            arterial_grid_network(3, 3, local_factor=0.5)
