"""Unit tests for the TreeProvider seam and the PHAST tree path."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, DisconnectedError
from repro.roadnet import routing
from repro.roadnet.generators import grid_network
from repro.roadnet.graph import RoadNetwork
from repro.roadnet.routing import (
    PHAST_AUTO_MIN_VERTICES,
    TREE_PROVIDERS,
    ArtifactCache,
    CHEngine,
    CSREngine,
    CSRGraph,
    ContractionHierarchy,
    PHASTTreeProvider,
    PlaneTreeProvider,
    make_engine,
)

HAVE_NUMPY = routing._np is not None  # noqa: SLF001


def _rows_equal(a, b):
    return [float(x) for x in a] == [float(x) for x in b]


class TestTreeProviderSeam:
    def test_plane_provider_delegates_to_the_graph(self):
        graph = CSRGraph(grid_network(3, 4, weight_jitter=0.2, seed=1))
        provider = PlaneTreeProvider(graph)
        assert provider.name == "plane"
        assert _rows_equal(provider.tree(0), graph.tree(0))
        plane = provider.trees([0, 3, 5])
        for position, index in enumerate([0, 3, 5]):
            assert _rows_equal(plane[position], graph.tree(index))

    def test_engines_report_their_provider(self):
        network = grid_network(3, 3)
        assert CSREngine(network).tree_provider_name == "plane"
        assert make_engine(network, "table").tree_provider_name == "table"
        assert make_engine(network, "dict").tree_provider_name == "dijkstra"
        assert (
            CHEngine(network, tree_provider="phast").tree_provider_name == "phast"
        )

    def test_make_engine_rejects_phast_off_the_ch_backend(self):
        network = grid_network(3, 3)
        for backend in ("dict", "csr", "csr+alt", "table"):
            with pytest.raises(ConfigurationError, match="phast"):
                make_engine(network, backend, tree_provider="phast")

    def test_make_engine_rejects_unknown_provider(self):
        with pytest.raises(ConfigurationError, match="tree provider"):
            make_engine(grid_network(2, 2), "ch", tree_provider="quantum")
        assert TREE_PROVIDERS == ("auto", "plane", "phast")

    def test_make_engine_rejects_plane_where_it_is_not_the_path(self):
        # an ablation that forces the plane path must not silently get
        # oracle Dijkstras or table rows instead
        network = grid_network(3, 3)
        for backend in ("dict", "table"):
            with pytest.raises(ConfigurationError, match="'plane'"):
                make_engine(network, backend, tree_provider="plane")
        # ... while the csr family's one path *is* the plane
        assert make_engine(network, "csr", tree_provider="plane").tree_provider_name == "plane"
        assert make_engine(network, "csr+alt", tree_provider="plane").backend == "csr+alt"

    def test_ch_auto_stays_on_planes_below_the_threshold(self):
        # 9 vertices is far below PHAST_AUTO_MIN_VERTICES, and SciPy (when
        # installed) beats the sweep anyway: auto must resolve to "plane".
        engine = CHEngine(grid_network(3, 3))
        assert len(engine.graph) < PHAST_AUTO_MIN_VERTICES
        assert engine.tree_provider_name == "plane"

    @pytest.mark.skipif(not HAVE_NUMPY, reason="the scenario is NumPy-only")
    def test_ch_auto_goes_phast_in_numpy_only_environments(self, monkeypatch):
        """NumPy importable, SciPy not: past the size threshold `auto` must
        pick the vectorised sweep over per-source pure-Python Dijkstras --
        the environment split is why routing.py imports them separately."""
        network = grid_network(6, 6, weight_jitter=0.3, seed=3)
        reference = CSREngine(network).distances_from(1)
        expected = {v: reference[v] for v in reference}
        monkeypatch.setattr(routing, "_csr_array", None)
        monkeypatch.setattr(routing, "_csgraph_dijkstra", None)
        engine = CHEngine(network, phast_min_vertices=len(network.vertices()))
        assert engine.tree_provider_name == "phast"
        tree = engine.distances_from(1)
        assert {v: tree[v] for v in tree} == expected
        # below the threshold the same environment stays on python planes
        assert CHEngine(network).tree_provider_name == "plane"

    def test_forced_plane_on_ch_is_the_inherited_path(self):
        network = grid_network(4, 4, weight_jitter=0.25, seed=3)
        forced = CHEngine(network, tree_provider="plane")
        assert forced.tree_provider_name == "plane"
        tree = forced.distances_from(3)
        reference = CSREngine(network).distances_from(3)
        assert {v: tree[v] for v in tree} == {v: reference[v] for v in reference}

    def test_invalidate_rewires_the_provider(self):
        network = grid_network(1, 3)
        engine = CHEngine(network, tree_provider="phast")
        before = engine.distance(1, 3)
        network.add_vertex(4, x=0.5, y=1.0)
        network.add_edge(1, 4, 0.1)
        network.add_edge(4, 3, 0.1)
        engine.invalidate()
        assert engine.tree_provider_name == "phast"
        assert engine.distances_from(1)[3] == pytest.approx(min(before, 0.2))


class TestPHASTEdgeCases:
    def test_single_vertex_network(self):
        network = RoadNetwork()
        network.add_vertex(42)
        engine = CHEngine(network, tree_provider="phast")
        tree = engine.distances_from(42)
        assert dict(tree) == {42: 0.0}

    def test_isolated_vertices_stay_unreachable(self):
        network = grid_network(3, 3)
        network.add_vertex(99)
        engine = CHEngine(network, tree_provider="phast")
        csr = CSREngine(network)
        phast_tree = engine.distances_from(1)
        csr_tree = csr.distances_from(1)
        assert set(phast_tree) == set(csr_tree)
        assert 99 not in phast_tree
        with pytest.raises(KeyError):
            phast_tree[99]
        with pytest.raises(DisconnectedError):
            engine.distance(1, 99)
        # rooted at the isolated vertex: only itself is reachable
        assert dict(engine.distances_from(99)) == {99: 0.0}

    def test_disconnected_components_mirror_csr_inf_parity(self):
        network = grid_network(2, 3, weight_jitter=0.2, seed=4)
        offset = 100
        for u, v, w in [(1, 2, 1.5), (2, 3, 0.7)]:
            for vertex in (u + offset, v + offset):
                if vertex not in network:
                    network.add_vertex(vertex)
            network.add_edge(u + offset, v + offset, w)
        graph = CSRGraph(network)
        provider = PHASTTreeProvider(graph, ContractionHierarchy.build(graph))
        for index in range(len(graph)):
            assert _rows_equal(provider.tree(index), graph.tree(index))

    @pytest.mark.skipif(not HAVE_NUMPY, reason="exercises the NumPy batch path")
    def test_batch_larger_than_the_source_chunk(self, monkeypatch):
        monkeypatch.setattr(routing, "PHAST_SOURCE_CHUNK", 4)
        network = grid_network(5, 5, weight_jitter=0.3, seed=7)
        graph = CSRGraph(network)
        provider = PHASTTreeProvider(graph, ContractionHierarchy.build(graph))
        indices = list(range(len(graph)))  # 25 sources -> 7 chunks
        plane = provider.trees(indices)
        for index in indices:
            assert _rows_equal(plane[index], graph.tree(index))

    @pytest.mark.skipif(not HAVE_NUMPY, reason="exercises the bucket-cap guard")
    def test_refold_bucket_cap_falls_back_to_python(self, monkeypatch):
        network = grid_network(4, 4, weight_jitter=0.3, seed=9)
        graph = CSRGraph(network)
        provider = PHASTTreeProvider(graph, ContractionHierarchy.build(graph))
        monkeypatch.setattr(PHASTTreeProvider, "REFOLD_BUCKET_CAP", 1)
        plane = provider.trees(list(range(len(graph))))
        for index in range(len(graph)):
            assert _rows_equal(plane[index], graph.tree(index))

    def test_pure_python_provider_without_numpy(self, monkeypatch):
        network = grid_network(4, 4, weight_jitter=0.25, seed=11)
        reference = CSRGraph(network)
        reference.matrix = None  # the rows CSR would serve without SciPy
        monkeypatch.setattr(routing, "_np", None)
        monkeypatch.setattr(routing, "_csr_array", None)
        monkeypatch.setattr(routing, "_csgraph_dijkstra", None)
        engine = CHEngine(network, tree_provider="phast")
        for source in (1, 7, 16):
            tree = engine.distances_from(source)
            row = reference.tree(reference.index(source))
            assert {v: tree[v] for v in tree} == {
                vertex: float(row[reference.index(vertex)])
                for vertex in network.vertices()
                if row[reference.index(vertex)] != float("inf")
            }

    def test_lru_cached_plane_row_superseded_by_phast_prefetch(self):
        """A SciPy plane row already in the LRU survives a PHAST prefetch:
        the prefetch returns the pinned row without recomputing it, bills
        only the missing sources to ``phast_sweeps``, and the freshly swept
        rows are bit-identical to the plane rows they sit next to."""
        network = grid_network(5, 5, weight_jitter=0.3, seed=13)
        engine = CHEngine(network, tree_provider="phast")
        plane_row = engine.graph.tree(engine.graph.index(7))
        engine._trees[engine.graph.index(7)] = plane_row  # noqa: SLF001
        views = engine.prefetch_trees([7, 12, 19])
        assert engine.stats.phast_sweeps == 2  # 7 was served from the LRU
        assert engine.stats.dijkstra_runs == 0
        csr = CSREngine(network)
        for source in (7, 12, 19):
            reference = csr.distances_from(source)
            view = views[source]
            assert {v: view[v] for v in view} == {v: reference[v] for v in reference}
        # the cached row object itself was handed out, not recomputed
        assert views[7]._dist is plane_row  # noqa: SLF001


class TestDownwardArrays:
    def test_levels_are_a_valid_sweep_schedule(self):
        graph = CSRGraph(grid_network(5, 6, weight_jitter=0.3, seed=5))
        hierarchy = ContractionHierarchy.build(graph)
        position_of = {v: i for i, v in enumerate(hierarchy.down_heads)}
        level_of = {}
        ptr = hierarchy.down_level_ptr
        for level in range(len(ptr) - 1):
            for i in range(ptr[level], ptr[level + 1]):
                level_of[hierarchy.down_heads[i]] = level
        for i, head in enumerate(hierarchy.down_heads):
            for k in range(hierarchy.down_indptr[i], hierarchy.down_indptr[i + 1]):
                tail = hierarchy.down_tails[k]
                # every in-edge's tail is finalised strictly earlier: either
                # it is a hierarchy top (never a head) or in a lower level
                assert tail not in position_of or level_of[tail] < level_of[head]
                assert hierarchy.rank[tail] > hierarchy.rank[head]

    def test_downward_arrays_round_trip_through_to_arrays(self):
        graph = CSRGraph(grid_network(4, 5, weight_jitter=0.25, seed=3))
        hierarchy = ContractionHierarchy.build(graph)
        arrays = hierarchy.to_arrays()
        for key in (
            "down_heads",
            "down_indptr",
            "down_tails",
            "down_weights",
            "down_level_ptr",
        ):
            assert key in arrays
        clone = ContractionHierarchy.from_arrays(
            arrays["rank"],
            arrays["up_indptr"],
            arrays["up_indices"],
            arrays["up_weights"],
            arrays["up_mids"],
            arrays["shortcut_count"],
            down_heads=arrays["down_heads"],
            down_indptr=arrays["down_indptr"],
            down_tails=arrays["down_tails"],
            down_weights=arrays["down_weights"],
            down_level_ptr=arrays["down_level_ptr"],
        )
        assert clone.down_heads == hierarchy.down_heads
        assert clone.down_indptr == hierarchy.down_indptr
        assert clone.down_tails == hierarchy.down_tails
        assert clone.down_weights == hierarchy.down_weights
        assert clone.down_level_ptr == hierarchy.down_level_ptr

    def test_from_arrays_without_downward_arrays_rederives_them(self):
        graph = CSRGraph(grid_network(4, 4, weight_jitter=0.3, seed=7))
        hierarchy = ContractionHierarchy.build(graph)
        arrays = hierarchy.to_arrays()
        clone = ContractionHierarchy.from_arrays(
            arrays["rank"],
            arrays["up_indptr"],
            arrays["up_indices"],
            arrays["up_weights"],
            arrays["up_mids"],
            arrays["shortcut_count"],
        )
        assert clone.down_heads == hierarchy.down_heads
        assert clone.down_level_ptr == hierarchy.down_level_ptr

    @pytest.mark.skipif(not HAVE_NUMPY, reason="the artifact cache needs NumPy")
    def test_artifact_cache_round_trip_preserves_phast_behaviour(self, tmp_path):
        network = grid_network(5, 5, weight_jitter=0.3, seed=17)
        built = CHEngine(
            network, cache=ArtifactCache(tmp_path), tree_provider="phast"
        )
        loaded = CHEngine(
            network, cache=ArtifactCache(tmp_path), tree_provider="phast"
        )
        assert loaded.stats.build_seconds == 0.0
        assert loaded.stats.load_seconds > 0.0
        assert loaded.hierarchy.down_heads == built.hierarchy.down_heads
        for source in (1, 9, 21):
            a = built.distances_from(source)
            b = loaded.distances_from(source)
            assert {v: a[v] for v in a} == {v: b[v] for v in b}


class TestSciPyFreeTreePath:
    def test_phast_trees_never_touch_the_plane_path(self, monkeypatch):
        """The ch backend's tree path must survive SciPy being absent: with
        the PHAST provider active, CSRGraph.tree/trees (the SciPy plane
        seam) must never be consulted for a tree."""
        network = grid_network(5, 5, weight_jitter=0.3, seed=19)
        engine = CHEngine(network, tree_provider="phast")

        def forbidden(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("tree request leaked to the plane path")

        monkeypatch.setattr(CSRGraph, "tree", forbidden)
        monkeypatch.setattr(CSRGraph, "trees", forbidden)
        tree = engine.distances_from(3)
        views = engine.prefetch_trees([4, 8, 15])
        assert len(tree) == 25 and set(views) == {4, 8, 15}

    def test_engine_builds_and_serves_without_scipy(self, monkeypatch):
        network = grid_network(4, 4, weight_jitter=0.2, seed=21)
        reference = CHEngine(network).distances_from(1)
        expected = {v: reference[v] for v in reference}
        monkeypatch.setattr(routing, "_csr_array", None)
        monkeypatch.setattr(routing, "_csgraph_dijkstra", None)
        engine = CHEngine(network, tree_provider="phast")
        assert engine.graph.matrix is None
        tree = engine.distances_from(1)
        assert {v: tree[v] for v in tree} == expected
