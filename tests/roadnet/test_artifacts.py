"""Unit tests for the persisted compiled-artifact cache."""

from __future__ import annotations

import pytest

from repro.roadnet import artifacts
from repro.roadnet.artifacts import ArtifactCache, network_fingerprint
from repro.roadnet.generators import grid_network
from repro.roadnet.routing import CHEngine, CSREngine, TableEngine, make_engine

#: the .npz container needs NumPy; without it the cache is deliberately inert
needs_numpy = pytest.mark.skipif(
    artifacts._np is None, reason="the artifact cache serialises through NumPy"
)


class TestFingerprint:
    def test_stable_across_identical_rebuilds(self):
        a = grid_network(4, 5, weight_jitter=0.3, seed=7)
        b = grid_network(4, 5, weight_jitter=0.3, seed=7)
        assert network_fingerprint(a) == network_fingerprint(b)

    def test_changes_with_weights(self):
        a = grid_network(4, 4, weight_jitter=0.3, seed=7)
        b = grid_network(4, 4, weight_jitter=0.3, seed=8)
        assert network_fingerprint(a) != network_fingerprint(b)

    def test_changes_with_structure(self):
        a = grid_network(4, 4)
        b = grid_network(4, 4)
        b.remove_edge(1, 2)
        assert network_fingerprint(a) != network_fingerprint(b)
        c = grid_network(4, 4)
        c.add_vertex(99)
        assert network_fingerprint(a) != network_fingerprint(c)

    def test_mutation_changes_fingerprint(self):
        network = grid_network(3, 3)
        before = network_fingerprint(network)
        network.add_edge(1, 2, 0.5)  # overwrite an existing weight
        assert network_fingerprint(network) != before


class TestArtifactCache:
    @needs_numpy
    def test_round_trip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.available
        saved = cache.save("csr", "f" * 64, {"values": [1.5, 2.5], "ids": [1, 2, 3]})
        assert saved is not None and saved.exists()
        loaded = cache.load("csr", "f" * 64)
        assert loaded is not None
        assert loaded["values"].tolist() == [1.5, 2.5]
        assert loaded["ids"].tolist() == [1, 2, 3]

    def test_missing_is_a_miss(self, tmp_path):
        assert ArtifactCache(tmp_path).load("csr", "0" * 64) is None

    def test_corrupt_file_is_a_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.path_for("ch", "a" * 64).parent.mkdir(parents=True, exist_ok=True)
        cache.path_for("ch", "a" * 64).write_bytes(b"not a zip archive")
        assert cache.load("ch", "a" * 64) is None

    @needs_numpy
    def test_truncated_file_is_a_miss(self, tmp_path):
        """A valid zip magic with a cut-off body (interrupted copy, crash
        mid-write on a pre-atomic cache) raises BadZipFile, not ValueError --
        it must read as a miss, not crash engine construction."""
        cache = ArtifactCache(tmp_path)
        saved = cache.save("ch", "d" * 64, {"x": list(range(1000))})
        saved.write_bytes(saved.read_bytes()[: saved.stat().st_size // 2])
        assert cache.load("ch", "d" * 64) is None

    @needs_numpy
    def test_params_distinguish_files(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.save("alt", "b" * 64, {"x": [1]}, params="l4")
        assert cache.load("alt", "b" * 64, params="l8") is None
        assert cache.load("alt", "b" * 64, params="l4") is not None

    @needs_numpy
    def test_unwritable_directory_degrades_to_no_persistence(self, tmp_path):
        """An unwritable (or file-shadowed) cache dir must never crash an
        engine that just paid for its build -- save() reads as a no-op."""
        shadow = tmp_path / "shadow"
        shadow.write_text("a file where the cache directory should be")
        cache = ArtifactCache(shadow)
        assert cache.save("csr", "e" * 64, {"x": [1.0]}) is None
        engine = make_engine(
            grid_network(3, 3), "ch", cache_dir=str(shadow)
        )  # builds, persists nothing, still answers
        assert engine.distance(1, 9) > 0.0

    def test_unavailable_without_numpy(self, tmp_path, monkeypatch):
        from repro.roadnet import artifacts

        monkeypatch.setattr(artifacts, "_np", None)
        cache = ArtifactCache(tmp_path)
        assert not cache.available
        assert cache.save("csr", "c" * 64, {"x": [1]}) is None
        assert cache.load("csr", "c" * 64) is None

    @needs_numpy
    def test_flaky_rename_is_retried(self, tmp_path, monkeypatch):
        """Transient rename failures (concurrent cache warmers, EBUSY on
        network filesystems) are absorbed by the backoff loop."""
        monkeypatch.setattr(artifacts, "REPLACE_BACKOFF_SECONDS", 0.0)
        real_replace = artifacts.os.replace
        failures = {"left": 2, "seen": 0}

        def flaky_replace(src, dst):
            failures["seen"] += 1
            if failures["left"] > 0:
                failures["left"] -= 1
                raise OSError("simulated EBUSY")
            return real_replace(src, dst)

        monkeypatch.setattr(artifacts.os, "replace", flaky_replace)
        cache = ArtifactCache(tmp_path)
        saved = cache.save("csr", "a1" * 32, {"x": [1.0, 2.0]})
        assert saved is not None and saved.exists()
        assert failures["seen"] == 3  # two failures + the success
        assert cache.load("csr", "a1" * 32)["x"].tolist() == [1.0, 2.0]

    @needs_numpy
    def test_persistent_rename_failure_degrades_to_no_persistence(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(artifacts, "REPLACE_BACKOFF_SECONDS", 0.0)
        calls = {"seen": 0}

        def always_fails(src, dst):
            calls["seen"] += 1
            raise OSError("simulated EBUSY")

        monkeypatch.setattr(artifacts.os, "replace", always_fails)
        cache = ArtifactCache(tmp_path)
        assert cache.save("csr", "b2" * 32, {"x": [1.0]}) is None
        assert calls["seen"] == artifacts.REPLACE_ATTEMPTS
        # the temp file does not linger after the final failure
        assert not list(tmp_path.glob("*.tmp"))


@needs_numpy
class TestEngineCaching:
    def test_csr_engine_round_trip(self, tmp_path):
        network = grid_network(5, 5, weight_jitter=0.3, seed=3)
        built = make_engine(network, "csr", cache_dir=str(tmp_path))
        assert built.stats.build_seconds > 0.0
        assert built.stats.load_seconds == 0.0
        loaded = make_engine(network, "csr", cache_dir=str(tmp_path))
        assert loaded.stats.load_seconds > 0.0
        assert loaded.stats.build_seconds == 0.0
        assert loaded.graph.vertex_ids == built.graph.vertex_ids
        assert loaded.graph.indptr == built.graph.indptr
        assert loaded.graph.indices == built.graph.indices
        assert loaded.graph.weights == built.graph.weights
        for u, v in [(1, 25), (7, 19)]:
            assert loaded.distance(u, v) == built.distance(u, v)

    def test_alt_landmarks_round_trip(self, tmp_path):
        network = grid_network(5, 5, weight_jitter=0.3, seed=5)
        built = make_engine(network, "csr+alt", cache_dir=str(tmp_path))
        loaded = make_engine(network, "csr+alt", cache_dir=str(tmp_path))
        assert loaded.stats.build_seconds == 0.0
        assert loaded.alt.landmark_indices == built.alt.landmark_indices
        vertices = network.vertices()
        for u in vertices[::3]:
            for v in vertices[::4]:
                assert loaded.distance_lower_bound(u, v) == built.distance_lower_bound(
                    u, v
                )

    def test_table_round_trip_skips_dijkstras(self, tmp_path):
        network = grid_network(4, 4, weight_jitter=0.2, seed=7)
        built = make_engine(network, "table", cache_dir=str(tmp_path))
        assert built.stats.dijkstra_runs == 16
        loaded = make_engine(network, "table", cache_dir=str(tmp_path))
        assert loaded.stats.dijkstra_runs == 0  # the build was skipped outright
        assert loaded.stats.load_seconds > 0.0
        for u in network.vertices()[::3]:
            for v in network.vertices()[::2]:
                assert loaded.distance(u, v) == built.distance(u, v)

    def test_ch_round_trip(self, tmp_path):
        network = grid_network(6, 6, weight_jitter=0.3, seed=9)
        built = make_engine(network, "ch", cache_dir=str(tmp_path))
        assert built.stats.build_seconds > 0.0
        loaded = make_engine(network, "ch", cache_dir=str(tmp_path))
        assert loaded.stats.build_seconds == 0.0
        assert loaded.stats.load_seconds > 0.0
        assert loaded.hierarchy.rank == built.hierarchy.rank
        assert loaded.hierarchy.up_weights == built.hierarchy.up_weights
        vertices = network.vertices()
        for u in vertices[::3]:
            for v in vertices[::2]:
                assert loaded.distance(u, v) == built.distance(u, v)

    def test_mutated_network_never_served_stale_arrays(self, tmp_path):
        network = grid_network(1, 3)  # a path 1 - 2 - 3
        engine = CHEngine(network, cache=ArtifactCache(tmp_path))
        assert engine.distance(1, 3) == pytest.approx(2.0)
        network.add_vertex(4, x=0.5, y=1.0)
        network.add_edge(1, 4, 0.1)
        network.add_edge(4, 3, 0.1)
        engine.invalidate()
        assert engine.distance(1, 3) == pytest.approx(0.2)
        # A fresh engine over the mutated network keys to the new fingerprint.
        fresh = CHEngine(network, cache=ArtifactCache(tmp_path))
        assert fresh.distance(1, 3) == pytest.approx(0.2)

    def test_loadable_but_invalid_payload_is_a_miss(self, tmp_path):
        """A well-formed .npz whose *content* is corrupt (out-of-range or
        negative rank values) must demote to a rebuild, never crash engine
        construction or load a silently mis-ordered hierarchy."""
        network = grid_network(4, 4, weight_jitter=0.2, seed=5)
        cache = ArtifactCache(tmp_path)
        reference = CHEngine(network, cache=cache)  # builds and persists
        fingerprint = network_fingerprint(network)
        for bad_rank in (10**6, -1):
            arrays = cache.load("ch", fingerprint)
            arrays["rank"] = [int(r) for r in arrays["rank"]]
            arrays["rank"][0] = bad_rank
            cache.save("ch", fingerprint, arrays)
            rebuilt = CHEngine(network, cache=cache)
            assert rebuilt.stats.build_seconds > 0.0  # miss -> rebuilt
            assert rebuilt.distance(1, 16) == reference.distance(1, 16)

    def test_engines_work_from_a_corrupt_cache(self, tmp_path):
        network = grid_network(4, 4, weight_jitter=0.25, seed=3)
        cache = ArtifactCache(tmp_path)
        fingerprint = network_fingerprint(network)
        for kind in ("csr", "ch", "table"):
            path = cache.path_for(kind, fingerprint)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_bytes(b"garbage")
        reference = CSREngine(network)
        for engine in (
            CSREngine(network, cache=cache),
            CHEngine(network, cache=cache),
            TableEngine(network, cache=cache),
        ):
            assert engine.stats.build_seconds > 0.0  # rebuilt, not crashed
            assert engine.distance(1, 16) == reference.distance(1, 16)
