"""Unit tests for road-network persistence."""

from __future__ import annotations

import pytest

from repro.errors import InvalidNetworkError
from repro.roadnet.generators import figure1_network, grid_network
from repro.roadnet.graph import RoadNetwork
from repro.roadnet.io import (
    load_edge_list,
    load_json,
    network_from_dict,
    network_to_dict,
    save_edge_list,
    save_json,
)


def networks_equal(a: RoadNetwork, b: RoadNetwork) -> bool:
    if sorted(a.vertices()) != sorted(b.vertices()):
        return False
    edges_a = {(e.key(), e.weight) for e in a.edges()}
    edges_b = {(e.key(), e.weight) for e in b.edges()}
    return edges_a == edges_b


class TestEdgeList:
    def test_round_trip_with_coordinates(self, tmp_path):
        network = figure1_network()
        path = tmp_path / "net.edges"
        save_edge_list(network, path)
        loaded = load_edge_list(path)
        assert networks_equal(network, loaded)
        assert loaded.coordinate(1).as_tuple() == network.coordinate(1).as_tuple()

    def test_round_trip_without_coordinates(self, tmp_path):
        network = RoadNetwork.from_edges([(1, 2, 1.5), (2, 3, 2.5)])
        path = tmp_path / "bare.edges"
        save_edge_list(network, path)
        loaded = load_edge_list(path)
        assert networks_equal(network, loaded)

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("1 2\n", encoding="utf-8")
        with pytest.raises(InvalidNetworkError):
            load_edge_list(path)

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "sparse.edges"
        path.write_text("\n1 2 1.0\n\n2 3 2.0\n", encoding="utf-8")
        loaded = load_edge_list(path)
        assert loaded.edge_count == 2


class TestJson:
    def test_round_trip(self, tmp_path):
        network = grid_network(4, 4, weight_jitter=0.3, seed=2)
        path = tmp_path / "net.json"
        save_json(network, path)
        loaded = load_json(path)
        assert networks_equal(network, loaded)
        assert loaded.coordinate(7).as_tuple() == network.coordinate(7).as_tuple()

    def test_dict_round_trip(self):
        network = figure1_network()
        rebuilt = network_from_dict(network_to_dict(network))
        assert networks_equal(network, rebuilt)

    def test_dict_without_coordinates(self):
        network = RoadNetwork.from_edges([(1, 2, 1.0)])
        payload = network_to_dict(network)
        assert payload["coordinates"] == {}
        rebuilt = network_from_dict(payload)
        assert networks_equal(network, rebuilt)
