"""Unit tests for road-network persistence."""

from __future__ import annotations

import pytest

from repro.errors import InvalidNetworkError
from repro.roadnet.generators import figure1_network, grid_network
from repro.roadnet.graph import RoadNetwork
from repro.roadnet.io import (
    load_edge_list,
    load_json,
    network_from_dict,
    network_to_dict,
    save_edge_list,
    save_json,
)


def networks_equal(a: RoadNetwork, b: RoadNetwork) -> bool:
    if sorted(a.vertices()) != sorted(b.vertices()):
        return False
    edges_a = {(e.key(), e.weight) for e in a.edges()}
    edges_b = {(e.key(), e.weight) for e in b.edges()}
    return edges_a == edges_b


class TestEdgeList:
    def test_round_trip_with_coordinates(self, tmp_path):
        network = figure1_network()
        path = tmp_path / "net.edges"
        save_edge_list(network, path)
        loaded = load_edge_list(path)
        assert networks_equal(network, loaded)
        assert loaded.coordinate(1).as_tuple() == network.coordinate(1).as_tuple()

    def test_round_trip_without_coordinates(self, tmp_path):
        network = RoadNetwork.from_edges([(1, 2, 1.5), (2, 3, 2.5)])
        path = tmp_path / "bare.edges"
        save_edge_list(network, path)
        loaded = load_edge_list(path)
        assert networks_equal(network, loaded)

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("1 2\n", encoding="utf-8")
        with pytest.raises(InvalidNetworkError):
            load_edge_list(path)

    def test_field_count_error_names_the_line(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("1 2 1.0\n2 3 1.0 extra\n", encoding="utf-8")
        with pytest.raises(InvalidNetworkError, match=rf"{path.name}:2: "):
            load_edge_list(path)

    def test_non_numeric_field_error_names_the_line(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("1 2 1.0\n\n2 oops 2.0\n", encoding="utf-8")
        with pytest.raises(InvalidNetworkError, match=rf"{path.name}:3: bad edge line"):
            load_edge_list(path)

    def test_non_numeric_coordinate_error_names_the_line(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("#coords\n1 0.0 north\n", encoding="utf-8")
        with pytest.raises(InvalidNetworkError, match=rf"{path.name}:2: bad coordinate line"):
            load_edge_list(path)

    def test_semantic_rejection_names_the_line(self, tmp_path):
        # weight validation happens in RoadNetwork.add_edge; the loader must
        # still point at the offending line of the file
        path = tmp_path / "bad.edges"
        path.write_text("1 2 1.0\n2 3 -4.0\n", encoding="utf-8")
        with pytest.raises(InvalidNetworkError, match=rf"{path.name}:2: .*positive weight"):
            load_edge_list(path)

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "sparse.edges"
        path.write_text("\n1 2 1.0\n\n2 3 2.0\n", encoding="utf-8")
        loaded = load_edge_list(path)
        assert loaded.edge_count == 2

    def test_gzip_round_trip_with_coordinates(self, tmp_path):
        network = figure1_network()
        path = tmp_path / "net.edges.gz"
        save_edge_list(network, path)
        import gzip

        assert path.read_bytes()[:2] == b"\x1f\x8b"  # actually compressed
        loaded = load_edge_list(path)
        assert networks_equal(network, loaded)
        assert loaded.coordinate(1).as_tuple() == network.coordinate(1).as_tuple()
        # the compressed bytes match the plain format exactly
        plain = tmp_path / "net.edges"
        save_edge_list(network, plain)
        assert gzip.decompress(path.read_bytes()) == plain.read_bytes()

    def test_gzip_save_is_deterministic(self, tmp_path):
        network = grid_network(3, 3, weight_jitter=0.2, seed=5)
        first, second = tmp_path / "a.gz", tmp_path / "b.gz"
        save_edge_list(network, first)
        save_edge_list(network, second)
        assert first.read_bytes() == second.read_bytes()

    def test_gzip_error_still_names_the_line(self, tmp_path):
        import gzip

        path = tmp_path / "bad.edges.gz"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write("1 2 1.0\nbroken line here\n")
        with pytest.raises(InvalidNetworkError, match=r"bad\.edges\.gz:2: "):
            load_edge_list(path)


class TestJson:
    def test_round_trip(self, tmp_path):
        network = grid_network(4, 4, weight_jitter=0.3, seed=2)
        path = tmp_path / "net.json"
        save_json(network, path)
        loaded = load_json(path)
        assert networks_equal(network, loaded)
        assert loaded.coordinate(7).as_tuple() == network.coordinate(7).as_tuple()

    def test_dict_round_trip(self):
        network = figure1_network()
        rebuilt = network_from_dict(network_to_dict(network))
        assert networks_equal(network, rebuilt)

    def test_dict_without_coordinates(self):
        network = RoadNetwork.from_edges([(1, 2, 1.0)])
        payload = network_to_dict(network)
        assert payload["coordinates"] == {}
        rebuilt = network_from_dict(payload)
        assert networks_equal(network, rebuilt)
