"""Unit tests for the grid index (Section 3.2.1)."""

from __future__ import annotations

import math

import pytest

from repro.errors import GridIndexError, InvalidNetworkError, VertexNotFoundError
from repro.roadnet.generators import figure1_network, grid_network
from repro.roadnet.graph import RoadNetwork
from repro.roadnet.grid_index import GridIndex
from repro.roadnet.shortest_path import shortest_path_distance


@pytest.fixture
def network() -> RoadNetwork:
    return grid_network(6, 6, weight_jitter=0.3, seed=5)


@pytest.fixture
def index(network: RoadNetwork) -> GridIndex:
    return GridIndex(network, rows=3, columns=3)


class TestConstruction:
    def test_dimensions(self, index: GridIndex):
        assert index.rows == 3
        assert index.columns == 3
        assert index.cell_count == 9

    def test_invalid_dimensions(self, network: RoadNetwork):
        with pytest.raises(GridIndexError):
            GridIndex(network, rows=0, columns=3)

    def test_requires_coordinates(self):
        network = RoadNetwork()
        network.add_vertex(1)
        network.add_vertex(2)
        network.add_edge(1, 2, 1.0)
        with pytest.raises(InvalidNetworkError):
            GridIndex(network, rows=2, columns=2)

    def test_every_vertex_assigned_to_exactly_one_cell(self, network, index):
        assigned = [vertex for cell in index.cells() for vertex in cell.vertices]
        assert sorted(assigned) == sorted(network.vertices())

    def test_border_vertices_have_cross_cell_edge(self, network, index):
        for cell in index.cells():
            for border in cell.border_vertices:
                assert any(
                    index.cell_of_vertex(neighbour).cell_id != cell.cell_id
                    for neighbour in network.neighbours_view(border)
                )

    def test_populated_cells_subset(self, index):
        populated = index.populated_cells()
        assert populated
        assert all(cell.vertices for cell in populated)

    def test_summary_keys(self, index):
        summary = index.summary()
        assert summary["cells"] == 9.0
        assert summary["vertices"] == 36.0


class TestLookups:
    def test_cell_of_vertex(self, network, index):
        for vertex in network.vertices():
            cell = index.cell_of_vertex(vertex)
            assert vertex in cell.vertices

    def test_cell_of_unknown_vertex(self, index):
        with pytest.raises(VertexNotFoundError):
            index.cell_of_vertex(999)

    def test_cell_of_point_clamps_to_grid(self, index):
        cell = index.cell_of_point((-100.0, -100.0))
        assert cell.cell_id == (0, 0)
        cell = index.cell_of_point((100.0, 100.0))
        assert cell.cell_id == (index.rows - 1, index.columns - 1)

    def test_cell_by_id_bounds(self, index):
        with pytest.raises(GridIndexError):
            index.cell((10, 10))

    def test_vertex_min_non_negative(self, network, index):
        for vertex in network.vertices():
            assert index.vertex_min(vertex) >= 0.0

    def test_vertex_min_zero_for_border_vertices(self, network, index):
        for cell in index.cells():
            for border in cell.border_vertices:
                assert index.vertex_min(border) == pytest.approx(0.0)


class TestLowerBounds:
    def test_same_cell_bound_is_zero(self, network, index):
        some_cell = index.populated_cells()[0]
        assert index.lower_bound_between_cells(some_cell.cell_id, some_cell.cell_id) == 0.0

    def test_cell_bounds_symmetric(self, index):
        populated = index.populated_cells()
        for a in populated[:4]:
            for b in populated[:4]:
                assert index.lower_bound_between_cells(a.cell_id, b.cell_id) == pytest.approx(
                    index.lower_bound_between_cells(b.cell_id, a.cell_id)
                )

    def test_distance_lower_bound_is_admissible(self, network, index):
        vertices = network.vertices()
        for u in vertices[::5]:
            for v in vertices[::7]:
                bound = index.distance_lower_bound(u, v)
                if math.isinf(bound):
                    continue
                assert bound <= shortest_path_distance(network, u, v) + 1e-9

    def test_distance_lower_bound_same_vertex(self, index):
        assert index.distance_lower_bound(1, 1) == 0.0

    def test_distance_lower_bound_unknown_vertex(self, index):
        with pytest.raises(VertexNotFoundError):
            index.distance_lower_bound(1, 999)

    def test_cells_in_lower_bound_order_sorted(self, index):
        populated = index.populated_cells()[0]
        ordered = index.cells_in_lower_bound_order(populated.cell_id)
        bounds = [bound for bound, _ in ordered]
        assert bounds == sorted(bounds)
        assert len(ordered) == index.cell_count

    def test_expand_from_skips_unreachable(self, network):
        network.add_vertex(999, x=0.05, y=0.05)  # isolated vertex
        index = GridIndex(network, rows=3, columns=3)
        start = index.cell_of_vertex(1).cell_id
        for bound, _cell in index.expand_from(start):
            assert not math.isinf(bound)

    def test_precompute_matches_lazy(self, network):
        lazy = GridIndex(network, rows=3, columns=3, precompute=False)
        eager = GridIndex(network, rows=3, columns=3, precompute=True)
        for cell in lazy.populated_cells():
            for other in lazy.populated_cells():
                assert lazy.lower_bound_between_cells(cell.cell_id, other.cell_id) == pytest.approx(
                    eager.lower_bound_between_cells(cell.cell_id, other.cell_id)
                )

    def test_precompute_populates_border_distances(self, network):
        eager = GridIndex(network, rows=3, columns=3, precompute=True)
        annotated = [v for v in network.vertices() if eager.border_distances(v)]
        assert annotated  # at least the cells with border vertices carry annotations
        for vertex in annotated:
            distances = eager.border_distances(vertex)
            assert min(distances.values()) == pytest.approx(eager.vertex_min(vertex))


class TestVehicleLists:
    def test_register_and_unregister_empty_vehicle(self, index):
        cell_id = index.register_empty_vehicle("c1", vertex=1)
        assert "c1" in index.cell(cell_id).empty_vehicles
        index.unregister_empty_vehicle("c1", cell_id)
        assert "c1" not in index.cell(cell_id).empty_vehicles

    def test_register_nonempty_vehicle_many_cells(self, index):
        cells = [cell.cell_id for cell in index.populated_cells()[:3]]
        index.register_nonempty_vehicle("c2", cells)
        for cell_id in cells:
            assert "c2" in index.cell(cell_id).nonempty_vehicles
        index.unregister_nonempty_vehicle("c2", cells)
        for cell_id in cells:
            assert "c2" not in index.cell(cell_id).nonempty_vehicles

    def test_cells_on_path(self, network, index):
        path = [1, 2, 3, 4, 5, 6]
        cells = index.cells_on_path(path)
        assert cells == {index.cell_of_vertex(v).cell_id for v in path}

    def test_cells_on_path_unknown_vertex(self, index):
        with pytest.raises(VertexNotFoundError):
            index.cells_on_path([1, 999])


class TestFigure1:
    def test_figure1_grid_builds(self):
        network = figure1_network()
        index = GridIndex(network, rows=4, columns=4)
        assert index.cell_count == 16
        assert sum(len(cell.vertices) for cell in index.cells()) == 17

    def test_figure1_bounds_admissible(self):
        network = figure1_network()
        index = GridIndex(network, rows=4, columns=4)
        for u in network.vertices():
            for v in network.vertices():
                bound = index.distance_lower_bound(u, v)
                assert bound <= shortest_path_distance(network, u, v) + 1e-9
