"""Unit tests for the road-network graph."""

from __future__ import annotations

import pytest

from repro.errors import EdgeNotFoundError, InvalidNetworkError, VertexNotFoundError
from repro.roadnet.graph import Edge, RoadNetwork


def build_triangle() -> RoadNetwork:
    network = RoadNetwork()
    for vertex, (x, y) in {1: (0, 0), 2: (1, 0), 3: (0, 1)}.items():
        network.add_vertex(vertex, x=x, y=y)
    network.add_edge(1, 2, 1.0)
    network.add_edge(2, 3, 2.0)
    network.add_edge(1, 3, 2.5)
    return network


class TestEdge:
    def test_positive_weight_required(self):
        with pytest.raises(InvalidNetworkError):
            Edge(1, 2, 0.0)

    def test_self_loop_rejected(self):
        with pytest.raises(InvalidNetworkError):
            Edge(1, 1, 1.0)

    def test_other_endpoint(self):
        edge = Edge(1, 2, 1.0)
        assert edge.other(1) == 2
        assert edge.other(2) == 1

    def test_other_rejects_non_endpoint(self):
        with pytest.raises(ValueError):
            Edge(1, 2, 1.0).other(3)

    def test_key_is_canonical(self):
        assert Edge(2, 1, 1.0).key() == (1, 2)
        assert Edge(1, 2, 1.0).key() == (1, 2)


class TestConstruction:
    def test_from_edges_builds_vertices_and_coordinates(self):
        network = RoadNetwork.from_edges(
            [(1, 2, 1.0), (2, 3, 2.0)], coordinates={1: (0, 0), 2: (1, 0), 3: (2, 0)}
        )
        assert network.vertex_count == 3
        assert network.edge_count == 2
        assert network.coordinate(3).x == 2.0

    def test_add_edge_requires_vertices(self):
        network = RoadNetwork()
        network.add_vertex(1)
        with pytest.raises(VertexNotFoundError):
            network.add_edge(1, 2, 1.0)

    def test_add_edge_rejects_nonpositive_weight(self):
        network = RoadNetwork()
        network.add_vertex(1)
        network.add_vertex(2)
        with pytest.raises(InvalidNetworkError):
            network.add_edge(1, 2, -1.0)

    def test_add_edge_rejects_self_loop(self):
        network = RoadNetwork()
        network.add_vertex(1)
        with pytest.raises(InvalidNetworkError):
            network.add_edge(1, 1, 1.0)

    def test_re_adding_edge_overwrites_weight_without_double_count(self):
        network = build_triangle()
        network.add_edge(1, 2, 5.0)
        assert network.edge_count == 3
        assert network.edge_weight(1, 2) == 5.0
        assert network.edge_weight(2, 1) == 5.0

    def test_add_vertex_idempotent(self):
        network = RoadNetwork()
        network.add_vertex(1, x=0.0, y=0.0)
        network.add_vertex(1)
        assert network.vertex_count == 1
        assert network.coordinate(1).x == 0.0


class TestQueries:
    def test_len_contains_iter(self):
        network = build_triangle()
        assert len(network) == 3
        assert 2 in network
        assert 99 not in network
        assert sorted(network) == [1, 2, 3]

    def test_edges_are_yielded_once(self):
        network = build_triangle()
        edges = list(network.edges())
        assert len(edges) == 3
        assert all(edge.u < edge.v for edge in edges)

    def test_neighbours_returns_copy(self):
        network = build_triangle()
        neighbours = network.neighbours(1)
        neighbours[2] = 100.0
        assert network.edge_weight(1, 2) == 1.0

    def test_degree(self):
        network = build_triangle()
        assert network.degree(1) == 2

    def test_edge_weight_missing_edge(self):
        network = build_triangle()
        network.add_vertex(4)
        with pytest.raises(EdgeNotFoundError):
            network.edge_weight(1, 4)

    def test_coordinate_missing(self):
        network = RoadNetwork()
        network.add_vertex(1)
        with pytest.raises(InvalidNetworkError):
            network.coordinate(1)

    def test_unknown_vertex_raises(self):
        network = build_triangle()
        with pytest.raises(VertexNotFoundError):
            network.neighbours(42)

    def test_euclidean_distance(self):
        network = build_triangle()
        assert network.euclidean_distance(1, 2) == pytest.approx(1.0)

    def test_total_edge_weight(self):
        assert build_triangle().total_edge_weight() == pytest.approx(5.5)

    def test_bounding_box(self):
        box = build_triangle().bounding_box()
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (0.0, 0.0, 1.0, 1.0)


class TestMutation:
    def test_remove_edge(self):
        network = build_triangle()
        network.remove_edge(1, 2)
        assert not network.has_edge(1, 2)
        assert network.edge_count == 2

    def test_remove_missing_edge_raises(self):
        network = build_triangle()
        with pytest.raises(EdgeNotFoundError):
            network.remove_edge(1, 99)

    def test_remove_vertex_clears_incident_edges(self):
        network = build_triangle()
        network.remove_vertex(2)
        assert 2 not in network
        assert network.edge_count == 1
        assert network.has_edge(1, 3)

    def test_copy_is_independent(self):
        network = build_triangle()
        clone = network.copy()
        clone.add_edge(1, 2, 9.0)
        assert network.edge_weight(1, 2) == 1.0
        assert clone.edge_weight(1, 2) == 9.0


class TestStructure:
    def test_connectivity(self):
        network = build_triangle()
        assert network.is_connected()
        network.add_vertex(10)
        assert not network.is_connected()
        assert len(network.connected_components()) == 2

    def test_empty_network_is_connected(self):
        assert RoadNetwork().is_connected()

    def test_validate_requires_coordinates(self):
        network = RoadNetwork()
        network.add_vertex(1)
        with pytest.raises(InvalidNetworkError):
            network.validate(require_coordinates=True)

    def test_validate_requires_connected(self):
        network = build_triangle()
        network.add_vertex(10)
        with pytest.raises(InvalidNetworkError):
            network.validate(require_connected=True)

    def test_validate_passes_for_good_network(self):
        build_triangle().validate(require_coordinates=True, require_connected=True)
