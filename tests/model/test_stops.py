"""Unit tests for trip-schedule stops."""

from __future__ import annotations

import pytest

from repro.model.stops import Stop, StopKind, dropoff, pickup


class TestStop:
    def test_pickup_properties(self):
        stop = Stop(vertex=5, request_id="R1", kind=StopKind.PICKUP, riders=2)
        assert stop.is_pickup
        assert not stop.is_dropoff
        assert stop.occupancy_delta == 2

    def test_dropoff_properties(self):
        stop = Stop(vertex=5, request_id="R1", kind=StopKind.DROPOFF, riders=3)
        assert stop.is_dropoff
        assert stop.occupancy_delta == -3

    def test_riders_must_be_positive(self):
        with pytest.raises(ValueError):
            Stop(vertex=1, request_id="R1", kind=StopKind.PICKUP, riders=0)

    def test_stops_are_hashable_and_equal_by_value(self):
        a = Stop(vertex=1, request_id="R1", kind=StopKind.PICKUP, riders=1)
        b = Stop(vertex=1, request_id="R1", kind=StopKind.PICKUP, riders=1)
        assert a == b
        assert len({a, b}) == 1

    def test_str_contains_request(self):
        stop = Stop(vertex=1, request_id="R7", kind=StopKind.PICKUP)
        assert "R7" in str(stop)

    def test_kind_str(self):
        assert str(StopKind.PICKUP) == "pickup"
        assert str(StopKind.DROPOFF) == "dropoff"


class TestConvenienceConstructors:
    def test_pickup_helper(self):
        stop = pickup(4, "R2", riders=2)
        assert stop.kind is StopKind.PICKUP
        assert stop.vertex == 4
        assert stop.riders == 2

    def test_dropoff_helper(self):
        stop = dropoff(9, "R2")
        assert stop.kind is StopKind.DROPOFF
        assert stop.riders == 1
