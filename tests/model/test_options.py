"""Unit tests for ride options, dominance and skyline maintenance."""

from __future__ import annotations

import pytest

from repro.model.options import RideOption, Skyline, dominates, skyline_of


def option(vehicle: str, time: float, price: float) -> RideOption:
    return RideOption(vehicle_id=vehicle, pickup_distance=time, price=price)


class TestRideOption:
    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            option("c1", -1.0, 2.0)
        with pytest.raises(ValueError):
            option("c1", 1.0, -2.0)

    def test_pickup_time_conversion(self):
        assert option("c1", 10.0, 2.0).pickup_time(speed=2.0) == pytest.approx(5.0)

    def test_pickup_time_invalid_speed(self):
        with pytest.raises(ValueError):
            option("c1", 10.0, 2.0).pickup_time(0.0)

    def test_key(self):
        assert option("c1", 3.0, 4.0).key() == (3.0, 4.0)

    def test_str(self):
        assert "c1" in str(option("c1", 3.0, 4.0))


class TestDominance:
    """The dominance relation of Definition 4."""

    def test_better_in_both(self):
        assert dominates(option("a", 1, 1), option("b", 2, 2))

    def test_equal_time_lower_price(self):
        assert dominates(option("a", 2, 1), option("b", 2, 2))

    def test_lower_time_equal_price(self):
        assert dominates(option("a", 1, 2), option("b", 2, 2))

    def test_identical_points_do_not_dominate(self):
        assert not dominates(option("a", 2, 2), option("b", 2, 2))

    def test_incomparable_points(self):
        assert not dominates(option("a", 1, 5), option("b", 5, 1))
        assert not dominates(option("b", 5, 1), option("a", 1, 5))

    def test_not_symmetric(self):
        a, b = option("a", 1, 1), option("b", 2, 2)
        assert dominates(a, b)
        assert not dominates(b, a)

    def test_method_matches_function(self):
        a, b = option("a", 1, 1), option("b", 2, 2)
        assert a.dominates(b) == dominates(a, b)

    def test_floating_point_ties_are_tolerated(self):
        a = option("a", 1.0, 1.0)
        b = option("b", 1.0 + 1e-12, 1.0 - 1e-12)
        assert not dominates(a, b)
        assert not dominates(b, a)

    def test_paper_example_results_do_not_dominate(self):
        r1 = option("c1", 14.0, 4.0)
        r2 = option("c2", 8.0, 8.8)
        assert not dominates(r1, r2)
        assert not dominates(r2, r1)


class TestSkylineOf:
    def test_removes_dominated(self):
        options = [option("a", 1, 5), option("b", 2, 3), option("c", 3, 4), option("d", 5, 1)]
        result = skyline_of(options)
        assert [o.vehicle_id for o in result] == ["a", "b", "d"]

    def test_empty_input(self):
        assert skyline_of([]) == []

    def test_collapses_duplicates(self):
        result = skyline_of([option("a", 1, 1), option("b", 1, 1)])
        assert len(result) == 1

    def test_sorted_by_pickup(self):
        result = skyline_of([option("a", 5, 1), option("b", 1, 5), option("c", 3, 3)])
        distances = [o.pickup_distance for o in result]
        assert distances == sorted(distances)

    def test_mutual_non_domination(self):
        options = [option(str(i), float(i), 10.0 - i) for i in range(10)]
        result = skyline_of(options)
        for first in result:
            for second in result:
                if first is not second:
                    assert not dominates(first, second)


class TestSkyline:
    def test_add_rejects_dominated(self):
        skyline = Skyline([option("a", 1, 1)])
        assert not skyline.add(option("b", 2, 2))
        assert len(skyline) == 1

    def test_add_evicts_dominated(self):
        skyline = Skyline([option("a", 2, 2)])
        assert skyline.add(option("b", 1, 1))
        assert [o.vehicle_id for o in skyline.options()] == ["b"]

    def test_add_rejects_duplicates(self):
        skyline = Skyline([option("a", 1, 1)])
        assert not skyline.add(option("b", 1, 1))

    def test_extend_counts_insertions(self):
        skyline = Skyline()
        inserted = skyline.extend([option("a", 1, 5), option("b", 5, 1), option("c", 6, 6)])
        assert inserted == 2

    def test_would_be_dominated(self):
        skyline = Skyline([option("a", 2, 2)])
        assert skyline.would_be_dominated(3, 3)
        assert not skyline.would_be_dominated(1, 3)
        assert not skyline.would_be_dominated(3, 1)

    def test_would_be_dominated_empty(self):
        assert not Skyline().would_be_dominated(0, 0)

    def test_best_price_and_pickup(self):
        skyline = Skyline([option("a", 1, 5), option("b", 5, 1)])
        assert skyline.best_price() == 1
        assert skyline.best_pickup() == 1
        assert Skyline().best_price() is None
        assert Skyline().best_pickup() is None

    def test_contains_and_iter(self):
        first = option("a", 1, 5)
        skyline = Skyline([first])
        assert first in skyline
        assert list(skyline) == [first]

    def test_incremental_equals_batch(self):
        import random

        rng = random.Random(5)
        options = [option(f"v{i}", rng.uniform(0, 10), rng.uniform(0, 10)) for i in range(60)]
        incremental = Skyline()
        incremental.extend(options)
        batch = skyline_of(options)
        assert {(o.pickup_distance, o.price) for o in incremental.options()} == {
            (o.pickup_distance, o.price) for o in batch
        }
