"""Unit tests for the ridesharing request (Definition 1)."""

from __future__ import annotations

import pytest

from repro.errors import RequestError
from repro.model.request import Request


class TestValidation:
    def test_valid_request(self):
        request = Request(start=1, destination=2, riders=2, max_waiting=5.0, service_constraint=0.2)
        assert request.riders == 2
        assert request.request_id.startswith("req-")

    def test_start_equals_destination(self):
        with pytest.raises(RequestError):
            Request(start=1, destination=1)

    def test_riders_must_be_positive(self):
        with pytest.raises(RequestError):
            Request(start=1, destination=2, riders=0)

    def test_negative_waiting(self):
        with pytest.raises(RequestError):
            Request(start=1, destination=2, max_waiting=-1.0)

    def test_negative_service_constraint(self):
        with pytest.raises(RequestError):
            Request(start=1, destination=2, service_constraint=-0.1)

    def test_negative_submit_time(self):
        with pytest.raises(RequestError):
            Request(start=1, destination=2, submit_time=-1.0)

    def test_unique_generated_ids(self):
        ids = {Request(start=1, destination=2).request_id for _ in range(50)}
        assert len(ids) == 50


class TestBehaviour:
    def test_detour_budget(self):
        request = Request(start=1, destination=2, service_constraint=0.2)
        assert request.detour_budget(10.0) == pytest.approx(12.0)

    def test_detour_budget_zero_constraint(self):
        request = Request(start=1, destination=2, service_constraint=0.0)
        assert request.detour_budget(10.0) == pytest.approx(10.0)

    def test_detour_budget_rejects_negative_distance(self):
        request = Request(start=1, destination=2)
        with pytest.raises(RequestError):
            request.detour_budget(-1.0)

    def test_with_submit_time_preserves_identity(self):
        request = Request(start=1, destination=2, request_id="RX")
        stamped = request.with_submit_time(42.0)
        assert stamped.request_id == "RX"
        assert stamped.submit_time == 42.0
        assert request.submit_time == 0.0

    def test_waiting_seconds(self):
        request = Request(start=1, destination=2, max_waiting=10.0)
        assert request.waiting_seconds(speed=2.0) == pytest.approx(5.0)

    def test_waiting_seconds_rejects_bad_speed(self):
        request = Request(start=1, destination=2)
        with pytest.raises(RequestError):
            request.waiting_seconds(0.0)

    def test_describe_mentions_endpoints(self):
        request = Request(start=3, destination=9, riders=2, request_id="R9")
        text = request.describe()
        assert "R9" in text and "3" in text and "9" in text

    def test_requests_are_frozen(self):
        request = Request(start=1, destination=2)
        with pytest.raises(AttributeError):
            request.riders = 3  # type: ignore[misc]
