"""Unit tests for the trajectory report script."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parents[2] / "scripts" / "plot_bench_trajectory.py"
_spec = importlib.util.spec_from_file_location("plot_bench_trajectory", _SCRIPT)
plot = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("plot_bench_trajectory", plot)
_spec.loader.exec_module(plot)


def _write_trajectory(path: Path, rows) -> None:
    path.write_text("".join(json.dumps(row) + "\n" for row in rows))


ROWS = [
    {"commit": "aaa", "experiment": "E2", "routing_backend": "csr", "wall_seconds": 0.5},
    {"commit": "aaa", "experiment": "E2", "routing_backend": "dict", "wall_seconds": 0.9},
    {"commit": "bbb", "experiment": "E2", "routing_backend": "csr", "wall_seconds": 0.4},
    {"commit": "bbb", "experiment": "E2", "routing_backend": "dict", "wall_seconds": 1.0},
    {"commit": "bbb", "experiment": "E15", "routing_backend": "ch", "wall_seconds": 0.2},
]


class TestOrganise:
    def test_groups_by_experiment_preserving_commit_order(self):
        organised = plot.organise(ROWS)
        commits, series = organised["E2"]
        assert commits == ["aaa", "bbb"]
        assert series["csr"] == {"aaa": 0.5, "bbb": 0.4}
        assert set(organised) == {"E2", "E15"}

    def test_experiment_filter(self):
        organised = plot.organise(ROWS, ["E15"])
        assert set(organised) == {"E15"}

    def test_phased_rows_become_their_own_series(self):
        rows = ROWS + [
            {"commit": "bbb", "experiment": "E14", "routing_backend": "ch",
             "wall_seconds": 0.04, "phase": "point_queries"},
            {"commit": "bbb", "experiment": "E14", "routing_backend": "ch",
             "wall_seconds": 1.4, "phase": "dispatch"},
        ]
        _, series = plot.organise(rows)["E14"]
        assert set(series) == {"ch:point_queries", "ch:dispatch"}
        assert series["ch:point_queries"]["bbb"] == 0.04

    def test_rerun_of_same_commit_supersedes(self):
        rows = ROWS + [
            {"commit": "aaa", "experiment": "E2", "routing_backend": "csr", "wall_seconds": 0.45}
        ]
        _, series = plot.organise(rows)["E2"]
        assert series["csr"]["aaa"] == 0.45

    def test_malformed_rows_are_skipped(self):
        rows = [{"experiment": "E2"}, {"commit": "x"}, {"commit": "x", "experiment": "E2", "wall_seconds": "fast"}]
        assert plot.organise(rows) == {}


class TestRendering:
    def test_end_to_end_writes_markdown_and_svg(self, tmp_path, capsys):
        trajectory = tmp_path / "BENCH_trajectory.jsonl"
        _write_trajectory(trajectory, ROWS)
        out = tmp_path / "report"
        assert plot.main(["--trajectory", str(trajectory), "--output-dir", str(out)]) == 0
        report = (out / "trajectory.md").read_text()
        assert "## E2" in report and "## E15" in report
        assert "`bbb`" in report
        assert "0.4000s" in report
        # per-backend trend line against the first commit
        assert "csr 0.80x" in report
        for name in ("E2.svg", "E15.svg"):
            svg = (out / name).read_text()
            assert svg.startswith("<svg") or "<svg" in svg
            assert "polyline" in svg or "circle" in svg

    def test_svg_is_deterministic(self):
        organised = plot.organise(ROWS)
        commits, series = organised["E2"]
        assert plot.render_svg("E2", commits, series) == plot.render_svg(
            "E2", commits, series
        )

    def test_missing_trajectory_is_a_noop(self, tmp_path, capsys):
        assert (
            plot.main(
                ["--trajectory", str(tmp_path / "absent.jsonl"), "--output-dir", str(tmp_path)]
            )
            == 0
        )
        assert "nothing to render" in capsys.readouterr().out

    def test_corrupt_line_fails_loudly(self, tmp_path):
        trajectory = tmp_path / "bad.jsonl"
        trajectory.write_text('{"commit": "x"}\nnot json\n')
        with pytest.raises(SystemExit, match="bad.jsonl:2"):
            plot.load_trajectory(trajectory)
