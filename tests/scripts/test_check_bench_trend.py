"""Unit tests for the trend checker's phase-aware aggregation."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

_SCRIPT = Path(__file__).resolve().parents[2] / "scripts" / "check_bench_trend.py"
_spec = importlib.util.spec_from_file_location("check_bench_trend", _SCRIPT)
trend = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("check_bench_trend", trend)
_spec.loader.exec_module(trend)


RECORDS = [
    {"experiment": "E2", "routing_backend": "csr", "wall_seconds": 0.5},
    {"experiment": "E2", "routing_backend": "csr", "wall_seconds": 0.7},
    {"experiment": "E14", "routing_backend": "ch", "wall_seconds": 0.04,
     "phase": "point_queries"},
    {"experiment": "E14", "routing_backend": "ch", "wall_seconds": 0.01,
     "phase": "warm_restart"},
    {"experiment": "E14", "routing_backend": "ch", "wall_seconds": 1.5,
     "phase": "dispatch"},
]


class TestAggregation:
    def test_phases_get_their_own_keys(self):
        walls = trend.aggregate_wall_seconds(RECORDS, ["E2", "E14"])
        assert walls[("E2", "csr", "", "", "")] == 0.5
        assert walls[("E14", "ch", "point_queries", "", "")] == 0.04
        assert walls[("E14", "ch", "warm_restart", "", "")] == 0.01
        # a fast disk read can no longer mask a point-query regression:
        # the phases never share an aggregate
        assert ("E14", "ch") not in walls

    def test_tree_providers_get_their_own_keys(self):
        records = [
            {"experiment": "E15", "routing_backend": "ch", "phase": "tree_planes",
             "tree_provider": "plane", "wall_seconds": 0.1},
            {"experiment": "E15", "routing_backend": "ch", "phase": "tree_planes",
             "tree_provider": "phast", "wall_seconds": 0.3},
        ]
        walls = trend.aggregate_wall_seconds(records, ["E15"])
        # a PHAST regression can never hide behind the faster SciPy plane
        assert walls[("E15", "ch", "tree_planes", "plane", "")] == 0.1
        assert walls[("E15", "ch", "tree_planes", "phast", "")] == 0.3

    def test_worker_counts_get_their_own_keys(self):
        records = [
            {"experiment": "E16", "routing_backend": "csr", "workers": 1,
             "wall_seconds": 0.8},
            {"experiment": "E16", "routing_backend": "csr", "workers": 4,
             "wall_seconds": 0.3},
            {"experiment": "E12", "routing_backend": "csr", "wall_seconds": 0.6},
        ]
        walls = trend.aggregate_wall_seconds(records, ["E12", "E16"])
        # a multi-worker run can never mask an in-process regression...
        assert walls[("E16", "csr", "", "", "4")] == 0.3
        # ...while workers=1 (the pool bypassed) and workers-absent records
        # share the historical unnamed group, keeping old baselines comparable
        assert walls[("E16", "csr", "", "", "")] == 0.8
        assert walls[("E12", "csr", "", "", "")] == 0.6

    def test_skip_phases_drops_only_the_named_phase(self):
        walls = trend.aggregate_wall_seconds(
            RECORDS, ["E14"], skip_phases=["warm_restart"]
        )
        assert ("E14", "ch", "warm_restart", "", "") not in walls
        assert ("E14", "ch", "point_queries", "", "") in walls
        assert ("E14", "ch", "dispatch", "", "") in walls

    def test_describe_labels(self):
        assert trend.describe(("E2", "csr", "", "", "")) == "E2 [csr]"
        assert trend.describe(("E14", "ch", "point_queries", "", "")) == "E14 [ch:point_queries]"
        assert (
            trend.describe(("E15", "ch", "tree_planes", "phast", ""))
            == "E15 [ch:tree_planes@phast]"
        )
        assert trend.describe(("E16", "csr", "", "", "4")) == "E16 [csr w4]"


class TestMain:
    def _write(self, path, records):
        path.write_text(json.dumps(records))
        return str(path)

    def test_phase_regression_fails_even_with_a_fast_sibling_phase(self, tmp_path, capsys):
        baseline = self._write(tmp_path / "baseline.json", RECORDS)
        regressed = [dict(r) for r in RECORDS]
        for record in regressed:
            if record.get("phase") == "point_queries":
                record["wall_seconds"] = 0.08  # 2x the baseline
            if record.get("phase") == "warm_restart":
                record["wall_seconds"] = 0.005  # disk got *faster*
        fresh = self._write(tmp_path / "fresh.json", regressed)
        code = trend.main([
            "--baseline", baseline, "--fresh", fresh,
            "--experiments", "E14", "--skip-phases", "warm_restart",
        ])
        out = capsys.readouterr()
        assert code == 1
        assert "E14 [ch:point_queries]" in out.err

    def test_archive_writes_phase_field(self, tmp_path, capsys):
        baseline = self._write(tmp_path / "baseline.json", RECORDS)
        fresh = self._write(tmp_path / "fresh.json", RECORDS)
        trajectory = tmp_path / "trajectory.jsonl"
        code = trend.main([
            "--baseline", baseline, "--fresh", fresh,
            "--experiments", "E2", "--archive",
            "--trajectory", str(trajectory), "--commit", "abc123",
        ])
        assert code == 0
        rows = [json.loads(line) for line in trajectory.read_text().splitlines()]
        by_key = {(r["experiment"], r["routing_backend"], r.get("phase", "")): r for r in rows}
        assert by_key[("E2", "csr", "")]["wall_seconds"] == 0.5
        assert by_key[("E14", "ch", "point_queries")]["phase"] == "point_queries"
        assert "tree_provider" not in by_key[("E2", "csr", "")]
        assert all(r["commit"] == "abc123" for r in rows)

    def test_rate_phase_drop_is_a_regression(self, tmp_path, capsys):
        # wall_seconds holds a throughput (req/s) for rate phases: the
        # fresh side *dropping* must fail, not pass
        records = [
            {"experiment": "E17", "routing_backend": "csr", "wall_seconds": 1000.0,
             "phase": "smoke_throughput"},
        ]
        baseline = self._write(tmp_path / "baseline.json", records)
        dropped = [dict(records[0], wall_seconds=500.0)]
        fresh = self._write(tmp_path / "fresh.json", dropped)
        code = trend.main([
            "--baseline", baseline, "--fresh", fresh,
            "--experiments", "E17", "--rate-phases", "smoke_throughput",
        ])
        out = capsys.readouterr()
        assert code == 1
        assert "E17 [csr:smoke_throughput]" in out.err
        assert "2.00x" in out.out
        assert "/s" in out.out

    def test_rate_phase_rise_is_fine_and_wall_semantics_are_untouched(self, tmp_path, capsys):
        records = [
            {"experiment": "E17", "routing_backend": "csr", "wall_seconds": 1000.0,
             "phase": "smoke_throughput"},
            {"experiment": "E17", "routing_backend": "csr", "wall_seconds": 1.4,
             "phase": "smoke_latency_p95"},
        ]
        baseline = self._write(tmp_path / "baseline.json", records)
        improved = [
            dict(records[0], wall_seconds=2000.0),  # throughput doubled: OK
            dict(records[1], wall_seconds=2.9),     # latency doubled: regressed
        ]
        fresh = self._write(tmp_path / "fresh.json", improved)
        code = trend.main([
            "--baseline", baseline, "--fresh", fresh,
            "--experiments", "E17", "--rate-phases", "smoke_throughput",
        ])
        out = capsys.readouterr()
        assert code == 1
        # only the non-rate phase regressed; the doubled rate passed
        assert "E17 [csr:smoke_latency_p95]" in out.err
        assert "E17 [csr:smoke_throughput]" not in out.err

    def test_without_rate_phases_a_drop_passes_silently(self, tmp_path, capsys):
        # guard against accidentally treating every phase as a rate
        records = [
            {"experiment": "E17", "routing_backend": "csr", "wall_seconds": 1000.0,
             "phase": "smoke_throughput"},
        ]
        baseline = self._write(tmp_path / "baseline.json", records)
        fresh = self._write(tmp_path / "fresh.json", [dict(records[0], wall_seconds=500.0)])
        code = trend.main([
            "--baseline", baseline, "--fresh", fresh, "--experiments", "E17",
        ])
        assert code == 0

    def test_archive_writes_workers_field(self, tmp_path, capsys):
        records = [
            {"experiment": "E16", "routing_backend": "csr", "workers": 4,
             "wall_seconds": 0.3},
            {"experiment": "E16", "routing_backend": "csr", "workers": 1,
             "wall_seconds": 0.8},
        ]
        baseline = self._write(tmp_path / "baseline.json", records)
        fresh = self._write(tmp_path / "fresh.json", records)
        trajectory = tmp_path / "trajectory.jsonl"
        code = trend.main([
            "--baseline", baseline, "--fresh", fresh,
            "--experiments", "E16", "--archive",
            "--trajectory", str(trajectory), "--commit", "abc123",
        ])
        assert code == 0
        rows = [json.loads(line) for line in trajectory.read_text().splitlines()]
        by_workers = {r.get("workers"): r for r in rows}
        assert by_workers[4]["wall_seconds"] == 0.3
        # the workers=1 aggregate is the historical unnamed group: no field
        assert by_workers[None]["wall_seconds"] == 0.8
