"""Unit tests for request workloads."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.roadnet.generators import grid_network
from repro.sim.trips import ShanghaiLikeTripGenerator
from repro.model.request import Request
from repro.sim.workload import (
    RequestWorkload,
    nonhomogeneous_poisson_arrival_times,
    poisson_arrival_times,
    random_requests,
    requests_from_trips,
)


@pytest.fixture
def network():
    return grid_network(8, 8, seed=1)


class TestPoissonArrivals:
    def test_times_within_window_and_sorted(self):
        times = poisson_arrival_times(0.5, 200.0, random.Random(1))
        assert all(0 <= t <= 200.0 for t in times)
        assert times == sorted(times)

    def test_rate_controls_count(self):
        rng = random.Random(2)
        sparse = poisson_arrival_times(0.1, 1000.0, rng)
        rng = random.Random(2)
        dense = poisson_arrival_times(1.0, 1000.0, rng)
        assert len(dense) > len(sparse)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            poisson_arrival_times(0.0, 10.0)
        with pytest.raises(ConfigurationError):
            poisson_arrival_times(1.0, -1.0)


class TestRequestsFromTrips:
    def test_conversion_preserves_fields(self, network):
        trips = ShanghaiLikeTripGenerator(network, seed=3).generate(20)
        requests = requests_from_trips(trips, max_waiting=5.0, service_constraint=0.3)
        assert len(requests) == 20
        for trip, request in zip(trips, requests):
            assert request.start == trip.origin
            assert request.destination == trip.destination
            assert request.riders == trip.riders
            assert request.submit_time == trip.departure_time
            assert request.max_waiting == 5.0
            assert request.service_constraint == 0.3


class TestRandomRequests:
    def test_count_and_determinism(self, network):
        a = random_requests(network, 15, 5.0, 0.2, seed=4)
        b = random_requests(network, 15, 5.0, 0.2, seed=4)
        assert len(a) == 15
        assert [(r.start, r.destination) for r in a] == [(r.start, r.destination) for r in b]

    def test_burst_when_duration_zero(self, network):
        requests = random_requests(network, 5, 5.0, 0.2, duration=0.0, seed=4)
        assert all(request.submit_time == 0.0 for request in requests)

    def test_spread_when_duration_positive(self, network):
        requests = random_requests(network, 30, 5.0, 0.2, duration=100.0, seed=4)
        times = [request.submit_time for request in requests]
        assert times == sorted(times)
        assert max(times) > 0.0

    def test_rider_range(self, network):
        requests = random_requests(network, 30, 5.0, 0.2, riders_range=(2, 3), seed=4)
        assert all(2 <= request.riders <= 3 for request in requests)

    def test_invalid_parameters(self, network):
        with pytest.raises(ConfigurationError):
            random_requests(network, -1, 5.0, 0.2)
        with pytest.raises(ConfigurationError):
            random_requests(network, 5, 5.0, 0.2, riders_range=(0, 2))


class TestRequestWorkload:
    def test_sorted_on_construction(self, network):
        requests = random_requests(network, 10, 5.0, 0.2, duration=50.0, seed=5)
        shuffled = list(reversed(requests))
        workload = RequestWorkload(shuffled)
        times = [request.submit_time for request in workload]
        assert times == sorted(times)
        assert len(workload) == 10

    def test_due_releases_in_order(self, network):
        requests = random_requests(network, 10, 5.0, 0.2, duration=100.0, seed=6)
        workload = RequestWorkload(requests)
        first_half = workload.due(50.0)
        assert all(request.submit_time <= 50.0 for request in first_half)
        rest = workload.due(1_000.0)
        assert len(first_half) + len(rest) == 10
        assert workload.remaining == 0

    def test_due_is_monotone(self, network):
        workload = RequestWorkload(random_requests(network, 10, 5.0, 0.2, duration=100.0, seed=7))
        workload.due(40.0)
        again = workload.due(40.0)
        assert again == []

    def test_reset(self, network):
        workload = RequestWorkload(random_requests(network, 5, 5.0, 0.2, duration=10.0, seed=8))
        workload.due(1_000.0)
        workload.reset()
        assert workload.remaining == 5

    def test_duration(self, network):
        workload = RequestWorkload(random_requests(network, 5, 5.0, 0.2, duration=80.0, seed=9))
        assert workload.duration == max(request.submit_time for request in workload)
        assert RequestWorkload([]).duration == 0.0

    def test_from_trips(self, network):
        trips = ShanghaiLikeTripGenerator(network, seed=1).generate(12)
        workload = RequestWorkload.from_trips(trips, max_waiting=4.0, service_constraint=0.25)
        assert len(workload) == 12
        assert all(request.max_waiting == 4.0 for request in workload)

    def test_poisson_constructor(self, network):
        workload = RequestWorkload.poisson(
            network, rate_per_second=0.2, duration=100.0, max_waiting=5.0, service_constraint=0.2, seed=11
        )
        assert all(request.submit_time <= 100.0 for request in workload)
        assert all(request.start != request.destination for request in workload)


def _request(request_id: str, submit_time: float) -> Request:
    return Request(
        start=0, destination=1, riders=1, max_waiting=5.0,
        service_constraint=0.2, request_id=request_id, submit_time=submit_time,
    )


class TestDueWindowing:
    """The windowing semantics the micro-batched ingest queue leans on."""

    def test_empty_window_between_arrivals(self):
        workload = RequestWorkload([_request("a", 1.0), _request("b", 5.0)])
        assert [r.request_id for r in workload.due(1.0)] == ["a"]
        # ticks with no arrivals release nothing, and release nothing again
        assert workload.due(2.0) == []
        assert workload.due(4.9) == []
        assert workload.remaining == 1
        assert [r.request_id for r in workload.due(5.0)] == ["b"]

    def test_empty_workload_due(self):
        workload = RequestWorkload([])
        assert workload.due(100.0) == []
        assert workload.remaining == 0

    def test_exact_boundary_release_is_inclusive(self):
        # a request submitted exactly at the tick boundary belongs to that
        # tick's window, not the next one -- `due` is <=, never <
        workload = RequestWorkload([_request("edge", 3.0), _request("later", 3.0 + 1e-9)])
        released = workload.due(3.0)
        assert [r.request_id for r in released] == ["edge"]
        assert workload.remaining == 1

    def test_ties_release_together_in_input_order(self):
        workload = RequestWorkload(
            [_request("t1", 2.0), _request("t2", 2.0), _request("t3", 2.0)]
        )
        assert [r.request_id for r in workload.due(2.0)] == ["t1", "t2", "t3"]

    def test_out_of_order_construction_is_sorted_for_release(self):
        workload = RequestWorkload(
            [_request("late", 9.0), _request("early", 1.0), _request("mid", 4.0)]
        )
        assert [r.request_id for r in workload.due(5.0)] == ["early", "mid"]
        assert [r.request_id for r in workload.due(10.0)] == ["late"]

    def test_reset_mid_replay_rewinds_to_the_start(self):
        workload = RequestWorkload(
            [_request("a", 1.0), _request("b", 2.0), _request("c", 3.0)]
        )
        assert len(workload.due(2.0)) == 2
        workload.reset()
        assert workload.remaining == 3
        # the replay after a mid-stream reset is identical to a fresh one
        assert [r.request_id for r in workload.due(2.0)] == ["a", "b"]
        assert [r.request_id for r in workload.due(3.0)] == ["c"]
        assert workload.remaining == 0


class TestNonhomogeneousPoisson:
    def test_times_within_window_and_sorted(self):
        times = nonhomogeneous_poisson_arrival_times(
            lambda t: 0.5 + 0.5 * (t > 50.0), 1.0, 100.0, random.Random(3)
        )
        assert all(0 <= t <= 100.0 for t in times)
        assert times == sorted(times)

    def test_intensity_shapes_arrivals(self):
        # twice the intensity in the second half => markedly more arrivals
        times = nonhomogeneous_poisson_arrival_times(
            lambda t: 2.0 if t > 500.0 else 1.0, 2.0, 1000.0, random.Random(4)
        )
        first = sum(1 for t in times if t <= 500.0)
        second = len(times) - first
        assert second > 1.5 * first

    def test_flat_rate_matches_homogeneous_construction(self):
        times = nonhomogeneous_poisson_arrival_times(
            lambda t: 1.0, 1.0, 500.0, random.Random(5)
        )
        # thinning at rate == envelope keeps every candidate
        assert 400 < len(times) < 600

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            nonhomogeneous_poisson_arrival_times(lambda t: 1.0, 0.0, 10.0)
        with pytest.raises(ConfigurationError):
            nonhomogeneous_poisson_arrival_times(lambda t: 1.0, 1.0, -1.0)
        with pytest.raises(ConfigurationError):
            # rate above the envelope invalidates the thinning construction
            nonhomogeneous_poisson_arrival_times(
                lambda t: 5.0, 1.0, 100.0, random.Random(6)
            )


class TestDailyWorkload:
    def test_exact_count_and_horizon(self, network):
        workload = RequestWorkload.daily(
            network, total=500, duration=100.0, max_waiting=8.0,
            service_constraint=0.6, seed=7,
        )
        assert len(workload) == 500
        times = [r.submit_time for r in workload]
        assert times == sorted(times)
        assert all(0.0 <= t <= 100.0 for t in times)

    def test_deterministic_per_seed(self, network):
        build = lambda: RequestWorkload.daily(
            network, total=200, duration=50.0, max_waiting=8.0,
            service_constraint=0.6, hotspot_count=10, seed=8,
        )
        a, b = build(), build()
        assert [(r.start, r.destination, r.submit_time) for r in a] == [
            (r.start, r.destination, r.submit_time) for r in b
        ]

    def test_surge_and_lull_structure(self, network):
        # the default profile is bimodal over the day: the busiest decile of
        # the horizon must see several times the arrivals of the quietest
        workload = RequestWorkload.daily(
            network, total=5000, duration=100.0, max_waiting=8.0,
            service_constraint=0.6, seed=9,
        )
        buckets = [0] * 10
        for request in workload:
            buckets[min(9, int(request.submit_time / 10.0))] += 1
        assert max(buckets) > 3 * min(buckets)

    def test_hotspot_origins_come_from_the_pool(self, network):
        workload = RequestWorkload.daily(
            network, total=300, duration=60.0, max_waiting=8.0,
            service_constraint=0.6, hotspot_count=5, hotspot_bias=1.0, seed=10,
        )
        origins = {r.start for r in workload}
        assert len(origins) <= 5
        assert all(r.start != r.destination for r in workload)

    def test_invalid_parameters(self, network):
        with pytest.raises(ConfigurationError):
            RequestWorkload.daily(network, total=-1, duration=10.0,
                                  max_waiting=8.0, service_constraint=0.6)
        with pytest.raises(ConfigurationError):
            RequestWorkload.daily(network, total=10, duration=0.0,
                                  max_waiting=8.0, service_constraint=0.6)
        with pytest.raises(ConfigurationError):
            RequestWorkload.daily(network, total=10, duration=10.0,
                                  max_waiting=8.0, service_constraint=0.6,
                                  hotspot_bias=1.5)
        with pytest.raises(ConfigurationError):
            RequestWorkload.daily(network, total=10, duration=10.0,
                                  max_waiting=8.0, service_constraint=0.6,
                                  hotspot_count=-1)
