"""Unit tests for request workloads."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.roadnet.generators import grid_network
from repro.sim.trips import ShanghaiLikeTripGenerator
from repro.sim.workload import (
    RequestWorkload,
    poisson_arrival_times,
    random_requests,
    requests_from_trips,
)


@pytest.fixture
def network():
    return grid_network(8, 8, seed=1)


class TestPoissonArrivals:
    def test_times_within_window_and_sorted(self):
        times = poisson_arrival_times(0.5, 200.0, random.Random(1))
        assert all(0 <= t <= 200.0 for t in times)
        assert times == sorted(times)

    def test_rate_controls_count(self):
        rng = random.Random(2)
        sparse = poisson_arrival_times(0.1, 1000.0, rng)
        rng = random.Random(2)
        dense = poisson_arrival_times(1.0, 1000.0, rng)
        assert len(dense) > len(sparse)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            poisson_arrival_times(0.0, 10.0)
        with pytest.raises(ConfigurationError):
            poisson_arrival_times(1.0, -1.0)


class TestRequestsFromTrips:
    def test_conversion_preserves_fields(self, network):
        trips = ShanghaiLikeTripGenerator(network, seed=3).generate(20)
        requests = requests_from_trips(trips, max_waiting=5.0, service_constraint=0.3)
        assert len(requests) == 20
        for trip, request in zip(trips, requests):
            assert request.start == trip.origin
            assert request.destination == trip.destination
            assert request.riders == trip.riders
            assert request.submit_time == trip.departure_time
            assert request.max_waiting == 5.0
            assert request.service_constraint == 0.3


class TestRandomRequests:
    def test_count_and_determinism(self, network):
        a = random_requests(network, 15, 5.0, 0.2, seed=4)
        b = random_requests(network, 15, 5.0, 0.2, seed=4)
        assert len(a) == 15
        assert [(r.start, r.destination) for r in a] == [(r.start, r.destination) for r in b]

    def test_burst_when_duration_zero(self, network):
        requests = random_requests(network, 5, 5.0, 0.2, duration=0.0, seed=4)
        assert all(request.submit_time == 0.0 for request in requests)

    def test_spread_when_duration_positive(self, network):
        requests = random_requests(network, 30, 5.0, 0.2, duration=100.0, seed=4)
        times = [request.submit_time for request in requests]
        assert times == sorted(times)
        assert max(times) > 0.0

    def test_rider_range(self, network):
        requests = random_requests(network, 30, 5.0, 0.2, riders_range=(2, 3), seed=4)
        assert all(2 <= request.riders <= 3 for request in requests)

    def test_invalid_parameters(self, network):
        with pytest.raises(ConfigurationError):
            random_requests(network, -1, 5.0, 0.2)
        with pytest.raises(ConfigurationError):
            random_requests(network, 5, 5.0, 0.2, riders_range=(0, 2))


class TestRequestWorkload:
    def test_sorted_on_construction(self, network):
        requests = random_requests(network, 10, 5.0, 0.2, duration=50.0, seed=5)
        shuffled = list(reversed(requests))
        workload = RequestWorkload(shuffled)
        times = [request.submit_time for request in workload]
        assert times == sorted(times)
        assert len(workload) == 10

    def test_due_releases_in_order(self, network):
        requests = random_requests(network, 10, 5.0, 0.2, duration=100.0, seed=6)
        workload = RequestWorkload(requests)
        first_half = workload.due(50.0)
        assert all(request.submit_time <= 50.0 for request in first_half)
        rest = workload.due(1_000.0)
        assert len(first_half) + len(rest) == 10
        assert workload.remaining == 0

    def test_due_is_monotone(self, network):
        workload = RequestWorkload(random_requests(network, 10, 5.0, 0.2, duration=100.0, seed=7))
        workload.due(40.0)
        again = workload.due(40.0)
        assert again == []

    def test_reset(self, network):
        workload = RequestWorkload(random_requests(network, 5, 5.0, 0.2, duration=10.0, seed=8))
        workload.due(1_000.0)
        workload.reset()
        assert workload.remaining == 5

    def test_duration(self, network):
        workload = RequestWorkload(random_requests(network, 5, 5.0, 0.2, duration=80.0, seed=9))
        assert workload.duration == max(request.submit_time for request in workload)
        assert RequestWorkload([]).duration == 0.0

    def test_from_trips(self, network):
        trips = ShanghaiLikeTripGenerator(network, seed=1).generate(12)
        workload = RequestWorkload.from_trips(trips, max_waiting=4.0, service_constraint=0.25)
        assert len(workload) == 12
        assert all(request.max_waiting == 4.0 for request in workload)

    def test_poisson_constructor(self, network):
        workload = RequestWorkload.poisson(
            network, rate_per_second=0.2, duration=100.0, max_waiting=5.0, service_constraint=0.2, seed=11
        )
        assert all(request.submit_time <= 100.0 for request in workload)
        assert all(request.start != request.destination for request in workload)
