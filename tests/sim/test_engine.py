"""Unit and scenario tests for the simulation engine."""

from __future__ import annotations

import pytest

from repro.core.config import SystemConfig
from repro.core.dispatcher import Dispatcher, OptionPolicy
from repro.core.single_side import SingleSideSearchMatcher
from repro.errors import SimulationError
from repro.model.request import Request
from repro.roadnet.generators import figure1_network, grid_network
from repro.roadnet.grid_index import GridIndex
from repro.roadnet.shortest_path import DistanceOracle
from repro.sim.engine import SimulationEngine
from repro.sim.workload import RequestWorkload, random_requests
from repro.vehicles.fleet import Fleet
from repro.vehicles.vehicle import Vehicle


def build_engine(requests, vehicles, network=None, speed=1.0, tick=1.0, seed=1,
                 config=None, idle_wander=True):
    network = network or grid_network(8, 8, weight_jitter=0.2, seed=seed)
    grid = GridIndex(network, rows=4, columns=4)
    fleet = Fleet(grid, DistanceOracle(network))
    for index, location in enumerate(vehicles, 1):
        fleet.add_vehicle(Vehicle(f"c{index}", location=location, capacity=4))
    config = config or SystemConfig(max_waiting=8.0, service_constraint=0.5, max_pickup_distance=15.0)
    matcher = SingleSideSearchMatcher(fleet, config=config)
    dispatcher = Dispatcher(fleet, matcher, config)
    workload = RequestWorkload(requests)
    engine = SimulationEngine(dispatcher, workload, speed=speed, tick=tick, seed=seed,
                              idle_wander=idle_wander)
    return engine


class TestValidation:
    def test_invalid_speed(self):
        engine_args = ([], [1])
        with pytest.raises(SimulationError):
            build_engine(*engine_args, speed=0.0)

    def test_invalid_tick(self):
        with pytest.raises(SimulationError):
            build_engine([], [1], tick=0.0)


class TestSingleRequestDelivery:
    def test_request_is_served_end_to_end(self):
        network = figure1_network()
        request = Request(start=12, destination=17, riders=2, max_waiting=5.0,
                          service_constraint=0.2, request_id="R2", submit_time=1.0)
        engine = build_engine([request], vehicles=[13], network=network, idle_wander=False)
        report = engine.run(until=60.0)
        stats = report.statistics
        assert stats.matched_requests == 1
        assert stats.pickups == 1
        assert stats.dropoffs == 1
        assert stats.completed_requests == 1
        # the serving vehicle ends empty at the destination
        vehicle = engine.dispatcher.fleet.get("c1")
        assert vehicle.is_empty
        assert vehicle.location == 17
        # it drove exactly pick-up (8) plus trip (7) distance
        assert vehicle.distance_driven == pytest.approx(15.0)

    def test_unmatched_request_recorded(self):
        network = figure1_network()
        request = Request(start=12, destination=17, riders=2, submit_time=1.0)
        engine = build_engine([request], vehicles=[], network=network)
        report = engine.run(until=10.0)
        assert report.statistics.unmatched_requests == 1
        assert report.statistics.matched_requests == 0

    def test_waiting_distance_measured(self):
        network = figure1_network()
        request = Request(start=12, destination=17, riders=1, max_waiting=5.0,
                          service_constraint=0.2, request_id="RW", submit_time=1.0)
        engine = build_engine([request], vehicles=[13], network=network, idle_wander=False)
        engine.run(until=60.0)
        # the vehicle drives straight to the pick-up: no extra waiting
        assert engine.statistics.waiting_distances == [pytest.approx(0.0)]


class TestSharingDetection:
    def test_two_overlapping_requests_count_as_shared(self):
        network = figure1_network()
        # Both requests travel along the same corridor and are submitted
        # back-to-back, so the single vehicle serves them together.
        r1 = Request(start=2, destination=16, riders=1, max_waiting=30.0,
                     service_constraint=1.0, request_id="S1", submit_time=1.0)
        r2 = Request(start=2, destination=16, riders=1, max_waiting=30.0,
                     service_constraint=1.0, request_id="S2", submit_time=2.0)
        config = SystemConfig(max_waiting=30.0, service_constraint=1.0)
        engine = build_engine([r1, r2], vehicles=[1], network=network, config=config,
                              idle_wander=False)
        report = engine.run(until=120.0)
        stats = report.statistics
        assert stats.completed_requests == 2
        assert stats.shared_requests == 2
        assert stats.sharing_rate == pytest.approx(1.0)

    def test_disjoint_requests_are_not_shared(self):
        network = figure1_network()
        r1 = Request(start=2, destination=12, riders=1, max_waiting=30.0,
                     service_constraint=1.0, request_id="D1", submit_time=1.0)
        # second request enters long after the first completed
        r2 = Request(start=16, destination=17, riders=1, max_waiting=30.0,
                     service_constraint=1.0, request_id="D2", submit_time=60.0)
        config = SystemConfig(max_waiting=30.0, service_constraint=1.0)
        engine = build_engine([r1, r2], vehicles=[1], network=network, config=config,
                              idle_wander=False)
        report = engine.run(until=200.0)
        assert report.statistics.completed_requests == 2
        assert report.statistics.shared_requests == 0


class TestIdleBehaviour:
    def test_idle_vehicles_wander_when_enabled(self):
        engine = build_engine([], vehicles=[1, 10, 20], seed=3, idle_wander=True)
        for _ in range(20):
            engine.step()
        driven = [vehicle.distance_driven for vehicle in engine.dispatcher.fleet.vehicles()]
        assert all(distance > 0 for distance in driven)

    def test_idle_vehicles_stand_still_when_disabled(self):
        engine = build_engine([], vehicles=[1, 10, 20], seed=3, idle_wander=False)
        for _ in range(10):
            engine.step()
        driven = [vehicle.distance_driven for vehicle in engine.dispatcher.fleet.vehicles()]
        assert all(distance == 0 for distance in driven)

    def test_grid_registration_follows_wandering_vehicles(self):
        engine = build_engine([], vehicles=[1], seed=5, idle_wander=True)
        fleet = engine.dispatcher.fleet
        for _ in range(30):
            engine.step()
        vehicle = fleet.get("c1")
        cell = fleet.grid.cell_of_vertex(vehicle.location)
        assert vehicle.vehicle_id in cell.empty_vehicles


class TestLargerScenario:
    def test_workload_mostly_served(self):
        network = grid_network(8, 8, weight_jitter=0.2, seed=2)
        requests = random_requests(network, 20, max_waiting=8.0, service_constraint=0.5,
                                   duration=60.0, seed=2)
        vehicles = [((i * 7) % 64) + 1 for i in range(10)]
        engine = build_engine(requests, vehicles=vehicles, network=network, seed=2)
        report = engine.run(until=400.0)
        stats = report.statistics
        assert stats.total_requests == 20
        assert stats.match_rate > 0.5
        assert stats.dropoffs == stats.completed_requests
        assert stats.completed_requests >= stats.matched_requests * 0.8
        assert report.simulated_time <= 400.0 + 1e-9
        panel = report.panel()
        assert panel["requests"] == 20.0

    def test_deterministic_given_seed(self):
        network = grid_network(6, 6, weight_jitter=0.2, seed=4)
        def run():
            requests = random_requests(network, 10, 8.0, 0.5, duration=30.0, seed=4)
            engine = build_engine(requests, vehicles=[1, 10, 20, 30], network=network, seed=4)
            report = engine.run(until=150.0)
            return (
                report.statistics.matched_requests,
                report.statistics.completed_requests,
                round(sum(v.distance_driven for v in engine.dispatcher.fleet.vehicles()), 6),
            )
        assert run() == run()

    def test_register_assignment_external(self):
        network = figure1_network()
        engine = build_engine([], vehicles=[13], network=network, idle_wander=False)
        dispatcher = engine.dispatcher
        request = Request(start=12, destination=17, riders=1, max_waiting=5.0,
                          service_constraint=0.2, request_id="EXT")
        outcome = dispatcher.dispatch(request)
        assert outcome.matched
        engine.statistics.record_submission(
            "EXT", 0.0, option_count=outcome.option_count, response_seconds=outcome.match_seconds,
            matched=True, planned_pickup_distance=outcome.chosen.pickup_distance,
            direct_distance=engine.dispatcher.fleet.oracle.distance(12, 17),
        )
        engine.register_assignment("EXT", outcome.chosen.vehicle_id, outcome.chosen.pickup_distance)
        engine.run(until=40.0)
        assert engine.statistics.pickups == 1
        assert engine.statistics.waiting_distances == [pytest.approx(0.0)]
        assert engine.statistics.completed_requests == 1
