"""Unit tests for the Shanghai-like trip generator."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.roadnet.generators import grid_network
from repro.sim.trips import (
    SECONDS_PER_DAY,
    SHANGHAI_TRIPS,
    DailyDemandProfile,
    ShanghaiLikeTripGenerator,
    TripRecord,
)


@pytest.fixture
def network():
    return grid_network(10, 10, weight_jitter=0.2, seed=1)


class TestTripRecord:
    def test_valid(self):
        trip = TripRecord("T1", origin=1, destination=2, riders=1, departure_time=0.0)
        assert trip.trip_id == "T1"

    def test_same_endpoints_rejected(self):
        with pytest.raises(ConfigurationError):
            TripRecord("T1", origin=1, destination=1, riders=1, departure_time=0.0)

    def test_invalid_riders(self):
        with pytest.raises(ConfigurationError):
            TripRecord("T1", origin=1, destination=2, riders=0, departure_time=0.0)

    def test_invalid_time(self):
        with pytest.raises(ConfigurationError):
            TripRecord("T1", origin=1, destination=2, riders=1, departure_time=-5.0)


class TestDemandProfile:
    def test_evening_peak_strongest(self):
        profile = DailyDemandProfile()
        evening = profile.intensity(18 * 3600)
        morning = profile.intensity(8 * 3600)
        night = profile.intensity(3 * 3600)
        assert evening >= morning > night

    def test_intensity_positive_all_day(self):
        profile = DailyDemandProfile()
        for hour in range(25):
            assert profile.intensity(hour * 3600) > 0

    def test_cumulative_weights_increasing(self):
        weights = DailyDemandProfile().cumulative_weights(buckets=48)
        assert len(weights) == 48
        assert all(b > a for a, b in zip(weights, weights[1:]))


class TestGenerator:
    def test_trip_count_and_sorting(self, network):
        generator = ShanghaiLikeTripGenerator(network, seed=3)
        trips = generator.generate(200)
        assert len(trips) == 200
        times = [trip.departure_time for trip in trips]
        assert times == sorted(times)
        assert all(0 <= t <= SECONDS_PER_DAY for t in times)

    def test_deterministic_per_seed(self, network):
        a = ShanghaiLikeTripGenerator(network, seed=5).generate(50)
        b = ShanghaiLikeTripGenerator(network, seed=5).generate(50)
        assert [(t.origin, t.destination, t.departure_time) for t in a] == [
            (t.origin, t.destination, t.departure_time) for t in b
        ]

    def test_different_seeds_differ(self, network):
        a = ShanghaiLikeTripGenerator(network, seed=5).generate(50)
        b = ShanghaiLikeTripGenerator(network, seed=6).generate(50)
        assert [(t.origin, t.destination) for t in a] != [(t.origin, t.destination) for t in b]

    def test_group_sizes_respect_max(self, network):
        trips = ShanghaiLikeTripGenerator(network, seed=2).generate(300, max_riders=3)
        assert all(1 <= trip.riders <= 3 for trip in trips)
        assert sum(1 for trip in trips if trip.riders == 1) > len(trips) / 3

    def test_rush_hours_have_more_trips_than_night(self, network):
        trips = ShanghaiLikeTripGenerator(network, seed=7).generate(3000)
        def count_between(lo_hour, hi_hour):
            return sum(1 for t in trips if lo_hour * 3600 <= t.departure_time < hi_hour * 3600)
        assert count_between(17, 20) > count_between(1, 4)
        assert count_between(7, 10) > count_between(1, 4)

    def test_hotspot_bias_concentrates_endpoints(self, network):
        generator = ShanghaiLikeTripGenerator(network, seed=9, hotspot_bias=0.9)
        trips = generator.generate(500)
        hot_vertices = set()
        for hotspot in generator.hotspots:
            hot_vertices.update(generator._hotspot_neighbourhoods[hotspot])  # noqa: SLF001
        touching = sum(
            1 for t in trips if t.origin in hot_vertices or t.destination in hot_vertices
        )
        assert touching / len(trips) > 0.5

    def test_scaled_day(self, network):
        trips = ShanghaiLikeTripGenerator(network, seed=1).generate_scaled_day(scale=0.0001)
        assert len(trips) == int(SHANGHAI_TRIPS * 0.0001)

    def test_invalid_parameters(self, network):
        with pytest.raises(ConfigurationError):
            ShanghaiLikeTripGenerator(network, hotspot_count=0)
        with pytest.raises(ConfigurationError):
            ShanghaiLikeTripGenerator(network, hotspot_bias=1.5)
        with pytest.raises(ConfigurationError):
            ShanghaiLikeTripGenerator(network, mean_group_size_decay=0.0)
        generator = ShanghaiLikeTripGenerator(network, seed=1)
        with pytest.raises(ConfigurationError):
            generator.generate(-1)
        with pytest.raises(ConfigurationError):
            generator.generate(10, max_riders=0)
        with pytest.raises(ConfigurationError):
            generator.generate_scaled_day(scale=0.0)

    def test_tiny_network_rejected(self):
        tiny = grid_network(1, 1)
        with pytest.raises(ConfigurationError):
            ShanghaiLikeTripGenerator(tiny, seed=1)
