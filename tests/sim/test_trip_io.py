"""Unit tests for trip-dataset persistence."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.roadnet.generators import grid_network
from repro.sim.trip_io import (
    load_trips_csv,
    load_trips_json,
    load_trips_metadata,
    save_trips_csv,
    save_trips_json,
)
from repro.sim.trips import ShanghaiLikeTripGenerator, TripRecord


@pytest.fixture
def trips():
    network = grid_network(6, 6, seed=1)
    return ShanghaiLikeTripGenerator(network, seed=5).generate(25)


def trips_equal(a, b):
    return [
        (t.trip_id, t.origin, t.destination, t.riders, t.departure_time) for t in a
    ] == [(t.trip_id, t.origin, t.destination, t.riders, t.departure_time) for t in b]


class TestCsv:
    def test_round_trip(self, trips, tmp_path):
        path = tmp_path / "trips.csv"
        save_trips_csv(trips, path)
        assert trips_equal(load_trips_csv(path), trips)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1,2,3,4,5\n", encoding="utf-8")
        with pytest.raises(ConfigurationError):
            load_trips_csv(path)

    def test_malformed_row_rejected(self, trips, tmp_path):
        path = tmp_path / "bad2.csv"
        save_trips_csv(trips[:1], path)
        path.write_text(path.read_text(encoding="utf-8") + "T99,1,2\n", encoding="utf-8")
        with pytest.raises(ConfigurationError):
            load_trips_csv(path)

    def test_empty_dataset(self, tmp_path):
        path = tmp_path / "empty.csv"
        save_trips_csv([], path)
        assert load_trips_csv(path) == []


class TestJson:
    def test_round_trip_with_metadata(self, trips, tmp_path):
        path = tmp_path / "trips.json"
        save_trips_json(trips, path, metadata={"seed": 5, "generator": "shanghai-like"})
        assert trips_equal(load_trips_json(path), trips)
        metadata = load_trips_metadata(path)
        assert metadata == {"seed": 5, "generator": "shanghai-like"}

    def test_metadata_defaults_to_empty(self, trips, tmp_path):
        path = tmp_path / "plain.json"
        save_trips_json(trips[:3], path)
        assert load_trips_metadata(path) == {}

    def test_loaded_records_validate(self, tmp_path):
        path = tmp_path / "invalid.json"
        save_trips_json([TripRecord("T1", 1, 2, 1, 0.0)], path)
        text = path.read_text(encoding="utf-8").replace('"destination": 2', '"destination": 1')
        path.write_text(text, encoding="utf-8")
        with pytest.raises(ConfigurationError):
            load_trips_json(path)


class TestWorkloadIntegration:
    def test_archived_dataset_reproduces_the_same_workload(self, trips, tmp_path):
        from repro.sim.workload import RequestWorkload

        path = tmp_path / "day.json"
        save_trips_json(trips, path)
        original = RequestWorkload.from_trips(trips, max_waiting=5.0, service_constraint=0.2)
        replayed = RequestWorkload.from_trips(load_trips_json(path), max_waiting=5.0, service_constraint=0.2)
        assert [(r.start, r.destination, r.submit_time) for r in original] == [
            (r.start, r.destination, r.submit_time) for r in replayed
        ]
