"""Unit tests for the simulation statistics."""

from __future__ import annotations

import pytest

from repro.sim.stats import SimulationStatistics, summarise


class TestSummarise:
    def test_empty(self):
        summary = summarise([])
        assert summary["count"] == 0.0
        assert summary["mean"] == 0.0

    def test_single_value(self):
        summary = summarise([3.0])
        assert summary["mean"] == 3.0
        assert summary["median"] == 3.0
        assert summary["p95"] == 3.0

    def test_statistics(self):
        values = [float(v) for v in range(1, 11)]
        summary = summarise(values)
        assert summary["count"] == 10.0
        assert summary["mean"] == pytest.approx(5.5)
        assert summary["median"] == pytest.approx(5.5)
        assert summary["min"] == 1.0
        assert summary["max"] == 10.0
        assert 9.0 <= summary["p95"] <= 10.0


class TestLifecycleRecording:
    def make_stats(self) -> SimulationStatistics:
        stats = SimulationStatistics()
        stats.record_submission("R1", 0.0, option_count=3, response_seconds=0.01, matched=True,
                                planned_pickup_distance=5.0, direct_distance=10.0)
        stats.record_submission("R2", 1.0, option_count=0, response_seconds=0.02, matched=False)
        stats.record_submission("R3", 2.0, option_count=2, response_seconds=0.03, matched=True,
                                planned_pickup_distance=4.0, direct_distance=8.0)
        return stats

    def test_submission_counters(self):
        stats = self.make_stats()
        assert stats.total_requests == 3
        assert stats.matched_requests == 2
        assert stats.unmatched_requests == 1
        assert stats.match_rate == pytest.approx(2 / 3)
        assert stats.average_option_count == pytest.approx((3 + 0 + 2) / 3)
        assert stats.average_response_time == pytest.approx(0.02)

    def test_pickup_records_waiting(self):
        stats = self.make_stats()
        stats.record_pickup("R1", time=10.0, actual_pickup_distance=7.0)
        assert stats.pickups == 1
        assert stats.waiting_distances == [pytest.approx(2.0)]

    def test_pickup_before_planned_clamps_to_zero(self):
        stats = self.make_stats()
        stats.record_pickup("R1", time=10.0, actual_pickup_distance=3.0)
        assert stats.waiting_distances == [pytest.approx(0.0)]

    def test_pickup_of_unknown_request_is_ignored(self):
        stats = self.make_stats()
        stats.record_pickup("ghost", time=5.0, actual_pickup_distance=1.0)
        assert stats.pickups == 1
        assert stats.waiting_distances == []

    def test_dropoff_and_detour(self):
        stats = self.make_stats()
        stats.record_pickup("R1", 10.0, 5.0)
        stats.record_dropoff("R1", 30.0, travelled_distance=11.0)
        assert stats.completed_requests == 1
        assert stats.detour_ratios == [pytest.approx(1.1)]
        assert stats.average_detour_ratio == pytest.approx(1.1)

    def test_sharing_rate(self):
        stats = self.make_stats()
        stats.record_shared("R1")
        stats.record_pickup("R1", 10.0, 5.0)
        stats.record_dropoff("R1", 30.0, 11.0)
        stats.record_pickup("R3", 12.0, 4.0)
        stats.record_dropoff("R3", 25.0, 8.0)
        assert stats.shared_requests == 1
        assert stats.completed_requests == 2
        assert stats.sharing_rate == pytest.approx(0.5)

    def test_sharing_rate_empty(self):
        assert SimulationStatistics().sharing_rate == 0.0
        assert SimulationStatistics().match_rate == 0.0
        assert SimulationStatistics().average_response_time == 0.0
        assert SimulationStatistics().average_option_count == 0.0
        assert SimulationStatistics().average_detour_ratio == 0.0

    def test_panel_keys(self):
        stats = self.make_stats()
        panel = stats.panel()
        for key in ("requests", "matched", "match_rate", "average_response_time",
                    "average_options", "sharing_rate", "p95_response_time"):
            assert key in panel
