"""Unit tests for the price model (Definition 3)."""

from __future__ import annotations

import pytest

from repro.core.pricing import LinearPriceModel, PriceModel, rider_price_ratio
from repro.errors import ConfigurationError


class TestRiderPriceRatio:
    def test_paper_values(self):
        assert rider_price_ratio(1) == pytest.approx(0.3)
        assert rider_price_ratio(2) == pytest.approx(0.4)
        assert rider_price_ratio(3) == pytest.approx(0.5)
        assert rider_price_ratio(4) == pytest.approx(0.6)

    def test_custom_coefficients(self):
        assert rider_price_ratio(3, base_ratio=0.5, rider_increment=0.2) == pytest.approx(0.9)

    def test_invalid_riders(self):
        with pytest.raises(ConfigurationError):
            rider_price_ratio(0)

    def test_invalid_ratios(self):
        with pytest.raises(ConfigurationError):
            rider_price_ratio(1, base_ratio=-0.1)


class TestLinearPriceModel:
    def test_paper_example_c1(self):
        """f_2 * (3 + 7) = 4 for inserting R2 into c1's schedule."""
        model = LinearPriceModel()
        assert model.price(riders=2, added_distance=3.0, direct_distance=7.0) == pytest.approx(4.0)

    def test_paper_example_c2(self):
        """f_2 * (8 + 7 + 7) = 8.8 for the empty vehicle c2."""
        model = LinearPriceModel()
        assert model.price(riders=2, added_distance=15.0, direct_distance=7.0) == pytest.approx(8.8)

    def test_price_monotone_in_added_distance(self):
        model = LinearPriceModel()
        assert model.price(1, 5.0, 10.0) > model.price(1, 2.0, 10.0)

    def test_price_monotone_in_riders(self):
        model = LinearPriceModel()
        assert model.price(3, 5.0, 10.0) > model.price(1, 5.0, 10.0)

    def test_minimum_price(self):
        model = LinearPriceModel()
        assert model.minimum_price(2, 7.0) == pytest.approx(0.4 * 7.0)
        assert model.minimum_price(2, 7.0) <= model.price(2, 1.0, 7.0)

    def test_booking_fee(self):
        model = LinearPriceModel(booking_fee=2.0)
        assert model.price(1, 0.0, 10.0) == pytest.approx(2.0 + 3.0)

    def test_negative_added_distance_tolerates_rounding(self):
        model = LinearPriceModel()
        assert model.price(1, -1e-12, 10.0) == pytest.approx(3.0)

    def test_negative_added_distance_rejected(self):
        model = LinearPriceModel()
        with pytest.raises(ConfigurationError):
            model.price(1, -1.0, 10.0)

    def test_negative_direct_distance_rejected(self):
        model = LinearPriceModel()
        with pytest.raises(ConfigurationError):
            model.price(1, 1.0, -10.0)

    def test_invalid_coefficients(self):
        with pytest.raises(ConfigurationError):
            LinearPriceModel(base_ratio=-0.1)
        with pytest.raises(ConfigurationError):
            LinearPriceModel(booking_fee=-1.0)

    def test_conforms_to_protocol(self):
        assert isinstance(LinearPriceModel(), PriceModel)

    def test_ratio_method(self):
        assert LinearPriceModel(base_ratio=0.2, rider_increment=0.05).ratio(3) == pytest.approx(0.3)
