"""Unit tests for the dual-side search matcher."""

from __future__ import annotations

import pytest

from repro.core.config import SystemConfig
from repro.core.dual_side import DualSideSearchMatcher
from repro.core.naive import NaiveKineticTreeMatcher
from repro.core.single_side import SingleSideSearchMatcher
from repro.model.request import Request
from repro.sim.workload import random_requests

from tests.conftest import assign_request, build_fleet, build_random_fleet, option_points
from repro.roadnet.generators import figure1_network


@pytest.fixture
def busy_fleet():
    fleet = build_random_fleet(rows=8, columns=8, vehicles=14, seed=11)
    requests = random_requests(
        fleet.grid.network, 6, max_waiting=6.0, service_constraint=0.5, seed=5, id_prefix="seed"
    )
    vehicle_ids = fleet.vehicle_ids()
    for index, request in enumerate(requests):
        try:
            assign_request(fleet, vehicle_ids[index % len(vehicle_ids)], request)
        except AssertionError:
            continue
    return fleet


class TestEquivalence:
    def test_matches_naive_and_single_side(self, busy_fleet):
        config = SystemConfig(max_waiting=6.0, service_constraint=0.5, max_pickup_distance=8.0)
        naive = NaiveKineticTreeMatcher(busy_fleet, config=config)
        single = SingleSideSearchMatcher(busy_fleet, config=config)
        dual = DualSideSearchMatcher(busy_fleet, config=config)
        for request in random_requests(busy_fleet.grid.network, 15, 6.0, 0.5, seed=17):
            expected = option_points(naive.match(request))
            assert option_points(single.match(request)) == expected
            assert option_points(dual.match(request)) == expected


class TestDestinationSidePruning:
    def test_prunes_at_least_as_much_as_single_side(self, busy_fleet):
        config = SystemConfig(max_waiting=6.0, service_constraint=0.5, max_pickup_distance=8.0)
        single = SingleSideSearchMatcher(busy_fleet, config=config)
        dual = DualSideSearchMatcher(busy_fleet, config=config)
        for request in random_requests(busy_fleet.grid.network, 20, 6.0, 0.5, seed=29):
            single.match(request)
            dual.match(request)
        assert dual.statistics.vehicles_evaluated <= single.statistics.vehicles_evaluated

    def test_prunes_schedule_near_start_far_from_destination(self):
        """The paper's motivating case: a schedule near s but far from d gets pruned."""
        network = figure1_network()
        fleet = build_fleet(network, [12, 13])
        # c1 is busy driving the short corridor v12 -> v16 near the start of the
        # probe request, but the probe's destination v10 is far from that corridor.
        busy = Request(start=16, destination=17, riders=1, max_waiting=5.0, service_constraint=0.2, request_id="B1")
        assign_request(fleet, "c1", busy)
        config = SystemConfig(max_waiting=5.0, service_constraint=0.2)
        probe = Request(start=12, destination=10, riders=1, max_waiting=5.0, service_constraint=0.2)

        single = SingleSideSearchMatcher(fleet, config=config)
        dual = DualSideSearchMatcher(fleet, config=config)
        expected = option_points(single.match(probe))
        assert option_points(dual.match(probe)) == expected

        context = single.make_context(probe)
        single_bound = single._price_lower_bound(fleet.get("c1"), context)  # noqa: SLF001
        dual_bound = dual._price_lower_bound(fleet.get("c1"), context)  # noqa: SLF001
        assert dual_bound >= single_bound

    def test_empty_vehicle_bound_unchanged(self, busy_fleet):
        config = SystemConfig(max_waiting=6.0, service_constraint=0.5)
        single = SingleSideSearchMatcher(busy_fleet, config=config)
        dual = DualSideSearchMatcher(busy_fleet, config=config)
        request = random_requests(busy_fleet.grid.network, 1, 6.0, 0.5, seed=4)[0]
        context = single.make_context(request)
        for vehicle in busy_fleet.empty_vehicles():
            assert dual._price_lower_bound(vehicle, context) == pytest.approx(  # noqa: SLF001
                single._price_lower_bound(vehicle, context)  # noqa: SLF001
            )

    def test_name(self, busy_fleet):
        assert DualSideSearchMatcher(busy_fleet).name == "dual_side"
