"""Unit tests for the naive kinetic-tree matcher."""

from __future__ import annotations

import pytest

from repro.core.config import SystemConfig
from repro.core.naive import NaiveKineticTreeMatcher
from repro.model.request import Request
from repro.sim.workload import random_requests

from tests.conftest import build_random_fleet


class TestNaiveMatcher:
    def test_evaluates_every_vehicle(self):
        fleet = build_random_fleet(vehicles=9, seed=4)
        matcher = NaiveKineticTreeMatcher(fleet)
        request = random_requests(fleet.grid.network, 1, 5.0, 0.3, seed=1)[0]
        matcher.match(request)
        assert matcher.statistics.vehicles_considered == 9
        assert matcher.statistics.vehicles_evaluated == 9
        assert matcher.statistics.vehicles_pruned == 0

    def test_never_uses_bound_rejection(self):
        fleet = build_random_fleet(vehicles=6, seed=4)
        matcher = NaiveKineticTreeMatcher(fleet)
        request = random_requests(fleet.grid.network, 1, 5.0, 0.3, seed=2)[0]
        matcher.match(request)
        assert matcher.statistics.insertion.candidates_rejected_by_bounds == 0

    def test_returns_skyline(self):
        fleet = build_random_fleet(vehicles=10, seed=6)
        matcher = NaiveKineticTreeMatcher(fleet)
        for request in random_requests(fleet.grid.network, 5, 5.0, 0.3, seed=3):
            options = matcher.match(request)
            for first in options:
                for second in options:
                    if first is not second:
                        assert not first.dominates(second)

    def test_empty_fleet(self):
        fleet = build_random_fleet(vehicles=0)
        matcher = NaiveKineticTreeMatcher(fleet)
        request = random_requests(fleet.grid.network, 1, 5.0, 0.3, seed=4)[0]
        assert matcher.match(request) == []

    def test_respects_max_pickup_distance(self):
        fleet = build_random_fleet(vehicles=10, seed=6)
        config = SystemConfig(max_pickup_distance=3.0)
        matcher = NaiveKineticTreeMatcher(fleet, config=config)
        for request in random_requests(fleet.grid.network, 5, 5.0, 0.3, seed=5):
            for option in matcher.match(request):
                assert option.pickup_distance <= 3.0 + 1e-9

    def test_options_carry_request_id(self):
        fleet = build_random_fleet(vehicles=5, seed=6)
        matcher = NaiveKineticTreeMatcher(fleet)
        request = Request(start=1, destination=20, riders=1, request_id="Rxyz")
        for option in matcher.match(request):
            assert option.request_id == "Rxyz"
