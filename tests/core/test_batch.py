"""Unit tests for the batch dispatch pipeline building blocks."""

from __future__ import annotations

import pytest

from repro.core.batch import BatchContext, BatchStatistics
from repro.core.config import SystemConfig
from repro.core.dispatcher import Dispatcher, OptionPolicy
from repro.core.single_side import SingleSideSearchMatcher
from repro.errors import ConfigurationError, DisconnectedError, VertexNotFoundError
from repro.model.options import RideOption, Skyline
from repro.model.request import Request
from repro.sim.workload import random_requests

from tests.conftest import build_random_fleet


@pytest.fixture
def fleet():
    return build_random_fleet(vehicles=8, seed=13)


def _requests(fleet, count, seed=31):
    return random_requests(fleet.grid.network, count, 6.0, 0.4, seed=seed)


class TestBatchContext:
    def test_shared_start_vertices_share_one_tree(self, fleet):
        base = _requests(fleet, 1)[0]
        twins = [
            Request(
                start=base.start, destination=base.destination, riders=1,
                max_waiting=6.0, service_constraint=0.4, request_id=f"t{i}",
            )
            for i in range(3)
        ]
        batch = BatchContext.create(twins, fleet.routing_engine, fleet.grid)
        assert batch.statistics.trees_computed == 1
        assert batch.statistics.shared_tree_hits == 2
        assert batch.statistics.shared_tree_hit_rate == pytest.approx(2 / 3)
        trees = {id(batch.context_for(i).start_tree) for i in range(3)}
        assert len(trees) == 1  # literally the same pooled object

    def test_contexts_match_per_request_construction(self, fleet):
        requests = _requests(fleet, 5)
        batch = BatchContext.create(requests, fleet.routing_engine, fleet.grid)
        matcher = SingleSideSearchMatcher(fleet, config=SystemConfig())
        for index, request in enumerate(requests):
            solo = matcher.make_context(request)
            pooled = batch.context_for(index)
            assert pooled.direct == solo.direct
            assert pooled.request is request

    def test_unknown_start_surfaces_at_the_requests_turn(self, fleet):
        good = _requests(fleet, 1)[0]
        bad = Request(
            start=10_000, destination=good.destination, riders=1,
            max_waiting=6.0, service_constraint=0.4, request_id="bad",
        )
        batch = BatchContext.create([good, bad], fleet.routing_engine, fleet.grid)
        assert batch.error_for(0) is None
        assert isinstance(batch.error_for(1), VertexNotFoundError)
        batch.context_for(0)  # fine
        with pytest.raises(VertexNotFoundError):
            batch.context_for(1)

    def test_unreachable_destination_recorded_as_disconnected(self, fleet):
        network = fleet.grid.network
        network.add_vertex(10_001, x=0.0, y=0.0)
        fleet.routing_engine.invalidate()
        request = Request(
            start=network.vertices()[0], destination=10_001, riders=1,
            max_waiting=6.0, service_constraint=0.4, request_id="island",
        )
        batch = BatchContext.create([request], fleet.routing_engine, fleet.grid)
        assert isinstance(batch.error_for(0), DisconnectedError)

    def test_statistics_as_dict(self):
        stats = BatchStatistics(requests=4, trees_computed=3, shared_tree_hits=1)
        flat = stats.as_dict()
        assert flat["requests"] == 4.0
        assert flat["shared_tree_hit_rate"] == pytest.approx(0.25)
        assert flat["prefetched_trees"] == 0.0
        assert flat["prefetch_seconds"] == 0.0
        assert flat["tree_provider"] == "dijkstra"

    def test_statistics_record_the_prefetch_provider(self):
        from repro.roadnet.generators import grid_network
        from repro.roadnet.grid_index import GridIndex
        from repro.roadnet.routing import make_engine
        from repro.sim.workload import random_requests

        network = grid_network(4, 4, weight_jitter=0.2, seed=3)
        engine = make_engine(network, "csr")
        grid = GridIndex(network, rows=3, columns=3)
        requests = random_requests(network, 3, 6.0, 0.4, seed=5)
        batch = BatchContext.create(requests, engine, grid)
        assert batch.statistics.tree_provider == "plane"
        assert batch.statistics.as_dict()["tree_provider"] == "plane"

    def test_prefetched_trees_count_in_the_hit_rate_denominator(self):
        stats = BatchStatistics(
            requests=4, trees_computed=0, shared_tree_hits=1, prefetched_trees=3
        )
        assert stats.shared_tree_hit_rate == pytest.approx(0.25)


class TestBatchPrefetch:
    """The one-shot vectorised tree prefetch of BatchContext.create."""

    @pytest.fixture
    def csr_fleet(self):
        from repro.roadnet.routing import make_engine
        from repro.vehicles.fleet import Fleet

        dict_fleet = build_random_fleet(vehicles=6, seed=13)
        network = dict_fleet.grid.network
        return Fleet(dict_fleet.grid, make_engine(network, "csr"))

    def test_distinct_starts_prefetched_in_one_plane(self, csr_fleet):
        requests = _requests(csr_fleet, 6, seed=21)
        engine = csr_fleet.routing_engine
        batch = BatchContext.create(requests, engine, csr_fleet.grid)
        distinct = len({r.start for r in requests})
        assert batch.statistics.prefetched_trees == distinct
        assert batch.statistics.trees_computed == 0
        assert batch.statistics.shared_tree_hits == len(requests) - distinct
        assert batch.statistics.prefetch_seconds > 0.0
        # The double-count fix: one Dijkstra run per distinct start, no
        # matter how many requests consumed each tree.
        assert engine.stats.dijkstra_runs == distinct

    def test_prefetch_off_falls_back_to_per_start_trees(self, csr_fleet):
        requests = _requests(csr_fleet, 6, seed=21)
        batch = BatchContext.create(
            requests, csr_fleet.routing_engine, csr_fleet.grid, prefetch=False
        )
        distinct = len({r.start for r in requests})
        assert batch.statistics.prefetched_trees == 0
        assert batch.statistics.prefetch_seconds == 0.0
        assert batch.statistics.trees_computed == distinct

    def test_prefetched_contexts_match_per_request_construction(self, csr_fleet):
        requests = _requests(csr_fleet, 5, seed=33)
        batch = BatchContext.create(requests, csr_fleet.routing_engine, csr_fleet.grid)
        matcher = SingleSideSearchMatcher(csr_fleet, config=SystemConfig())
        for index, request in enumerate(requests):
            solo = matcher.make_context(request)
            pooled = batch.context_for(index)
            assert pooled.direct == solo.direct
            assert pooled.from_start(request.destination) == solo.from_start(
                request.destination
            )

    def test_unknown_start_still_surfaces_at_the_requests_turn(self, csr_fleet):
        good = _requests(csr_fleet, 1, seed=3)[0]
        bad = Request(
            start=10_000, destination=good.destination, riders=1,
            max_waiting=6.0, service_constraint=0.4, request_id="bad",
        )
        batch = BatchContext.create(
            [good, bad], csr_fleet.routing_engine, csr_fleet.grid
        )
        assert batch.error_for(0) is None
        assert isinstance(batch.error_for(1), VertexNotFoundError)

    def test_dict_engine_prefetch_noop_preserves_legacy_statistics(self, fleet):
        requests = _requests(fleet, 5, seed=7)
        batch = BatchContext.create(requests, fleet.routing_engine, fleet.grid)
        distinct = len({r.start for r in requests})
        assert batch.statistics.prefetched_trees == 0
        assert batch.statistics.trees_computed == distinct
        assert batch.statistics.trees_computed + batch.statistics.shared_tree_hits == len(
            requests
        )


class TestShardedFleetView:
    def test_views_partition_the_fleet(self, fleet):
        for shard_count in (1, 2, 3, 4):
            views = fleet.shard_views(shard_count)
            assert len(views) == shard_count
            seen = [v.vehicle_id for view in views for v in view.vehicles()]
            assert sorted(seen) == sorted(fleet.vehicle_ids())  # disjoint + complete

    def test_cell_queries_filter_by_ownership(self, fleet):
        views = fleet.shard_views(3)
        for cell in fleet.grid.cells():
            whole = {v.vehicle_id for v in fleet.empty_vehicles_in_cell(cell.cell_id)}
            sharded = set()
            for view in views:
                owned = {v.vehicle_id for v in view.empty_vehicles_in_cell(cell.cell_id)}
                assert owned <= whole
                assert not owned & sharded
                sharded |= owned
            assert sharded == whole

    def test_shard_of_vehicle_is_stable_across_assignment(self, fleet):
        vehicle = fleet.vehicles()[0]
        before = fleet.shard_of_vehicle(vehicle, 4)
        request = _requests(fleet, 1, seed=5)[0]
        config = SystemConfig(max_waiting=6.0, service_constraint=0.4)
        dispatcher = Dispatcher(fleet, SingleSideSearchMatcher(fleet, config=config), config)
        dispatcher.dispatch(request)
        assert fleet.shard_of_vehicle(vehicle, 4) == before

    def test_invalid_shard_parameters_rejected(self, fleet):
        from repro.errors import VehicleError

        with pytest.raises(VehicleError):
            fleet.shard_views(0)
        from repro.vehicles.fleet import ShardedFleetView

        with pytest.raises(VehicleError):
            ShardedFleetView(fleet, 3, 2)


class TestSkylineMerge:
    def test_merge_is_partition_independent(self):
        options = [
            RideOption(vehicle_id="a", pickup_distance=1.0, price=9.0),
            RideOption(vehicle_id="b", pickup_distance=2.0, price=5.0),
            RideOption(vehicle_id="c", pickup_distance=3.0, price=7.0),  # dominated by b
            RideOption(vehicle_id="d", pickup_distance=4.0, price=1.0),
        ]
        whole = Skyline.merge([options]).options()
        split = Skyline.merge([[options[0], options[3]], [options[1]], [options[2]]]).options()
        assert whole == split
        assert [o.vehicle_id for o in whole] == ["a", "b", "d"]

    def test_equal_points_collapse_to_smallest_vehicle_id(self):
        twin_a = RideOption(vehicle_id="z", pickup_distance=2.0, price=2.0)
        twin_b = RideOption(vehicle_id="a", pickup_distance=2.0, price=2.0)
        for ordering in ([[twin_a], [twin_b]], [[twin_b], [twin_a]], [[twin_a, twin_b]]):
            merged = Skyline.merge(ordering).options()
            assert [o.vehicle_id for o in merged] == ["a"]

    def test_incremental_add_matches_merge_on_ties(self):
        twin_a = RideOption(vehicle_id="z", pickup_distance=2.0, price=2.0)
        twin_b = RideOption(vehicle_id="a", pickup_distance=2.0, price=2.0)
        skyline = Skyline()
        assert skyline.add(twin_a)
        assert skyline.add(twin_b)  # replaces: smaller vehicle id wins
        assert [o.vehicle_id for o in skyline.options()] == ["a"]


class TestDispatchBatchPipeline:
    def test_empty_batch(self, fleet):
        config = SystemConfig(max_waiting=6.0, service_constraint=0.4)
        dispatcher = Dispatcher(fleet, SingleSideSearchMatcher(fleet, config=config), config)
        assert dispatcher.dispatch_batch([]) == []

    def test_config_match_shards_is_the_default(self, fleet):
        config = SystemConfig(max_waiting=6.0, service_constraint=0.4, match_shards=3)
        dispatcher = Dispatcher(fleet, SingleSideSearchMatcher(fleet, config=config), config)
        outcomes = dispatcher.dispatch_batch(_requests(fleet, 4))
        assert len(outcomes) == 4
        assert dispatcher.last_batch_statistics is not None

    def test_invalid_match_shards_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(match_shards=0)

    def test_match_batch_on_error_empty_keeps_the_rest_of_the_burst(self, fleet):
        config = SystemConfig(max_waiting=6.0, service_constraint=0.4)
        dispatcher = Dispatcher(fleet, SingleSideSearchMatcher(fleet, config=config), config)
        good = _requests(fleet, 2, seed=12)
        bad = Request(
            start=10_000, destination=good[0].destination, riders=1,
            max_waiting=6.0, service_constraint=0.4, request_id="bad",
        )
        with pytest.raises(VertexNotFoundError):
            dispatcher.match_batch([good[0], bad, good[1]])
        results = dispatcher.match_batch([good[0], bad, good[1]], on_error="empty")
        assert len(results) == 3
        assert results[1] == []
        assert results[0] and results[2]  # the healthy trips still get options

    def test_bad_request_raises_after_predecessors_commit(self, fleet):
        config = SystemConfig(max_waiting=6.0, service_constraint=0.4)
        dispatcher = Dispatcher(fleet, SingleSideSearchMatcher(fleet, config=config), config)
        good = _requests(fleet, 1, seed=8)[0]
        bad = Request(
            start=10_000, destination=good.destination, riders=1,
            max_waiting=6.0, service_constraint=0.4, request_id="bad",
        )
        with pytest.raises(VertexNotFoundError):
            dispatcher.dispatch_batch([good, bad], policy=OptionPolicy.CHEAPEST)
        # the request before the failing one still committed, as in the loop
        assert dispatcher.vehicle_of_request(good.request_id) is not None


class TestBalancedPolicy:
    def test_zero_price_axis_decides_by_pickup_alone(self):
        options = [
            RideOption(vehicle_id="far", pickup_distance=9.0, price=0.0),
            RideOption(vehicle_id="near", pickup_distance=1.0, price=0.0),
        ]
        assert OptionPolicy.BALANCED.choose(options).vehicle_id == "near"

    def test_zero_pickup_axis_decides_by_price_alone(self):
        options = [
            RideOption(vehicle_id="dear", pickup_distance=0.0, price=5.0),
            RideOption(vehicle_id="cheap", pickup_distance=0.0, price=2.0),
        ]
        assert OptionPolicy.BALANCED.choose(options).vehicle_id == "cheap"

    def test_all_zero_ties_break_by_vehicle_id(self):
        options = [
            RideOption(vehicle_id="b", pickup_distance=0.0, price=0.0),
            RideOption(vehicle_id="a", pickup_distance=0.0, price=0.0),
        ]
        assert OptionPolicy.BALANCED.choose(options).vehicle_id == "a"
