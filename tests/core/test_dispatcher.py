"""Unit tests for the dispatcher (request / options / choice cycle)."""

from __future__ import annotations

import pytest

from repro.core.dispatcher import DispatchOutcome, Dispatcher, OptionPolicy
from repro.core.naive import NaiveKineticTreeMatcher
from repro.core.config import SystemConfig
from repro.errors import MatchingError, UnknownOptionError
from repro.model.options import RideOption
from repro.model.request import Request
from repro.sim.workload import random_requests

from tests.conftest import build_random_fleet


def make_options():
    return [
        RideOption(vehicle_id="a", pickup_distance=2.0, price=8.0),
        RideOption(vehicle_id="b", pickup_distance=6.0, price=3.0),
        RideOption(vehicle_id="c", pickup_distance=4.0, price=5.0),
    ]


class TestOptionPolicy:
    def test_cheapest(self):
        assert OptionPolicy.CHEAPEST.choose(make_options()).vehicle_id == "b"

    def test_fastest(self):
        assert OptionPolicy.FASTEST.choose(make_options()).vehicle_id == "a"

    def test_balanced_picks_compromise(self):
        assert OptionPolicy.BALANCED.choose(make_options()).vehicle_id == "c"

    def test_first(self):
        assert OptionPolicy.FIRST.choose(make_options()).vehicle_id == "a"

    def test_empty_raises(self):
        with pytest.raises(MatchingError):
            OptionPolicy.CHEAPEST.choose([])


@pytest.fixture
def dispatcher():
    fleet = build_random_fleet(vehicles=10, seed=9)
    config = SystemConfig(max_waiting=6.0, service_constraint=0.4)
    matcher = NaiveKineticTreeMatcher(fleet, config=config)
    return Dispatcher(fleet, matcher, config)


class TestSubmitCommit:
    def test_submit_returns_options(self, dispatcher):
        request = random_requests(dispatcher.fleet.grid.network, 1, 6.0, 0.4, seed=2)[0]
        options = dispatcher.submit(request)
        assert options
        assert all(option.request_id == request.request_id for option in options)

    def test_commit_assigns_vehicle(self, dispatcher):
        request = random_requests(dispatcher.fleet.grid.network, 1, 6.0, 0.4, seed=3)[0]
        options = dispatcher.submit(request)
        dispatcher.commit(request, options[0])
        vehicle = dispatcher.fleet.get(options[0].vehicle_id)
        assert vehicle.has_request(request.request_id)
        assert dispatcher.vehicle_of_request(request.request_id) == vehicle.vehicle_id

    def test_commit_wrong_request_rejected(self, dispatcher):
        request = random_requests(dispatcher.fleet.grid.network, 1, 6.0, 0.4, seed=4)[0]
        foreign = RideOption(vehicle_id="c1", pickup_distance=1.0, price=1.0, request_id="other")
        with pytest.raises(UnknownOptionError):
            dispatcher.commit(request, foreign)

    def test_commit_infeasible_vehicle_rejected(self, dispatcher):
        request = Request(start=1, destination=5, riders=9, max_waiting=6.0, service_constraint=0.4)
        option = RideOption(vehicle_id="c1", pickup_distance=1.0, price=1.0, request_id=request.request_id)
        with pytest.raises(UnknownOptionError):
            dispatcher.commit(request, option)

    def test_commit_rejects_broken_pickup_promise(self, dispatcher):
        """A promise the vehicle can no longer honour within ``w`` is refused.

        The option pretends a zero-distance pick-up was promised while the
        request allows no extra waiting, so every (otherwise feasible)
        schedule exceeds the promised-pickup budget and
        ``_filter_by_promised_pickup`` must empty the schedule list.
        """
        network = dispatcher.fleet.grid.network
        base = random_requests(network, 1, 6.0, 0.4, seed=11)[0]
        options = dispatcher.submit(base)
        assert options
        real = options[0]
        assert real.pickup_distance > 0  # otherwise the promise is trivially kept
        tight = Request(
            start=base.start, destination=base.destination, riders=base.riders,
            max_waiting=0.0, service_constraint=base.service_constraint,
            request_id=base.request_id,
        )
        broken_promise = RideOption(
            vehicle_id=real.vehicle_id, pickup_distance=0.0, price=real.price,
            request_id=tight.request_id,
        )
        with pytest.raises(UnknownOptionError):
            dispatcher.commit(tight, broken_promise)
        # the honest promise with the same waiting budget still commits
        honest = RideOption(
            vehicle_id=real.vehicle_id, pickup_distance=real.pickup_distance,
            price=real.price, request_id=tight.request_id,
        )
        dispatcher.commit(tight, honest)
        assert dispatcher.vehicle_of_request(tight.request_id) == real.vehicle_id

    def test_normalise_applies_global_constraints(self, dispatcher):
        request = Request(start=1, destination=5, riders=1, max_waiting=99.0, service_constraint=9.0)
        normalised = dispatcher.normalise(request)
        assert normalised.max_waiting == dispatcher.config.max_waiting
        assert normalised.service_constraint == dispatcher.config.service_constraint
        assert normalised.request_id == request.request_id

    def test_normalise_noop_when_already_global(self, dispatcher):
        request = Request(
            start=1, destination=5, riders=1,
            max_waiting=dispatcher.config.max_waiting,
            service_constraint=dispatcher.config.service_constraint,
        )
        assert dispatcher.normalise(request) is request


class TestDispatch:
    def test_dispatch_matches_and_commits(self, dispatcher):
        request = random_requests(dispatcher.fleet.grid.network, 1, 6.0, 0.4, seed=5)[0]
        outcome = dispatcher.dispatch(request, policy=OptionPolicy.CHEAPEST)
        assert isinstance(outcome, DispatchOutcome)
        assert outcome.matched
        assert outcome.option_count >= 1
        assert outcome.match_seconds >= 0.0
        assert outcome.chosen.price == min(option.price for option in outcome.options)

    def test_dispatch_unmatched_request(self):
        fleet = build_random_fleet(vehicles=0)
        config = SystemConfig()
        dispatcher = Dispatcher(fleet, NaiveKineticTreeMatcher(fleet, config=config), config)
        request = random_requests(fleet.grid.network, 1, 5.0, 0.2, seed=6)[0]
        outcome = dispatcher.dispatch(request)
        assert not outcome.matched
        assert outcome.options == ()
        assert outcome.chosen is None

    def test_dispatch_batch_greedy_order(self, dispatcher):
        requests = random_requests(dispatcher.fleet.grid.network, 6, 6.0, 0.4, seed=7)
        outcomes = dispatcher.dispatch_batch(requests)
        assert len(outcomes) == 6
        # every matched request must now be assigned to its chosen vehicle
        for outcome in outcomes:
            if outcome.matched:
                vehicle = dispatcher.fleet.get(outcome.chosen.vehicle_id)
                assert vehicle.has_request(outcome.request.request_id)

    def test_later_requests_see_earlier_commitments(self, dispatcher):
        network = dispatcher.fleet.grid.network
        base = random_requests(network, 1, 6.0, 0.4, seed=8)[0]
        duplicate = Request(
            start=base.start, destination=base.destination, riders=base.riders,
            max_waiting=base.max_waiting, service_constraint=base.service_constraint,
        )
        first = dispatcher.dispatch(base)
        second = dispatcher.dispatch(duplicate)
        assert first.matched and second.matched
        # The twin request can share the first rider's vehicle along the very
        # same route, so its cheapest price is at most the first rider's price
        # (the greedy order makes the fleet state visible to the second rider).
        assert second.chosen.price <= first.chosen.price + 1e-9
        assert second.chosen.added_distance <= first.chosen.added_distance + 1e-9


class TestLifecycleNotifications:
    def test_pickup_and_dropoff_refresh_state(self, dispatcher):
        request = random_requests(dispatcher.fleet.grid.network, 1, 6.0, 0.4, seed=9)[0]
        outcome = dispatcher.dispatch(request)
        vehicle_id = outcome.chosen.vehicle_id
        dispatcher.notify_pickup(vehicle_id, request.request_id)
        vehicle = dispatcher.fleet.get(vehicle_id)
        assert request.request_id in vehicle.onboard_requests
        dispatcher.notify_dropoff(vehicle_id, request.request_id)
        assert vehicle.is_empty
        assert dispatcher.vehicle_of_request(request.request_id) is None
