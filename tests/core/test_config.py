"""Unit tests for the global system configuration."""

from __future__ import annotations

import pytest

from repro.core.config import SystemConfig
from repro.core.pricing import LinearPriceModel
from repro.errors import ConfigurationError


class TestValidation:
    def test_defaults(self):
        config = SystemConfig()
        assert config.vehicle_capacity == 4
        assert config.matcher_name == "single_side"
        assert config.max_pickup_distance is None
        assert isinstance(config.price_model, LinearPriceModel)

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(vehicle_capacity=0)

    def test_invalid_waiting(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(max_waiting=-1.0)

    def test_invalid_service_constraint(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(service_constraint=-0.5)

    def test_invalid_speed(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(speed=0.0)

    def test_invalid_max_pickup(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(max_pickup_distance=0.0)

    def test_invalid_matcher_name(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(matcher_name="warp_drive")

    def test_invalid_routing_backend(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(routing_backend="teleport")

    def test_routing_backend_accepts_known_names(self):
        for backend in ("dict", "csr", "csr+alt", "table", "ch"):
            assert SystemConfig(routing_backend=backend).routing_backend == backend

    def test_invalid_table_max_vertices(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(table_max_vertices=0)

    def test_routing_cache_defaults_off(self):
        config = SystemConfig()
        assert config.routing_cache_dir is None
        assert config.table_max_vertices == 4096
        cached = SystemConfig(routing_cache_dir="/tmp/artifacts", table_max_vertices=128)
        assert cached.routing_cache_dir == "/tmp/artifacts"
        assert cached.table_max_vertices == 128


class TestBehaviour:
    def test_with_updates_returns_new_config(self):
        config = SystemConfig()
        updated = config.with_updates(max_waiting=9.0, matcher_name="dual_side")
        assert updated.max_waiting == 9.0
        assert updated.matcher_name == "dual_side"
        assert config.max_waiting == 5.0  # original untouched

    def test_with_updates_validates(self):
        with pytest.raises(ConfigurationError):
            SystemConfig().with_updates(vehicle_capacity=-1)

    def test_distance_time_conversions(self):
        config = SystemConfig(speed=2.0)
        assert config.distance_to_time(10.0) == pytest.approx(5.0)
        assert config.time_to_distance(5.0) == pytest.approx(10.0)

    def test_frozen(self):
        config = SystemConfig()
        with pytest.raises(AttributeError):
            config.speed = 3.0  # type: ignore[misc]
