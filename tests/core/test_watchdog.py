"""Failure-containment tests: watchdog, retry, circuit breaker, close escalation.

Each test injects a fault through :mod:`repro.service.faults` (the same
registry the E19 chaos benchmark drives) and checks the containment
machinery from ISSUE 9's tentpole:

* a *hung* worker is killed within ``worker_timeout`` and the batch falls
  back in-process byte-identically;
* a transient ``begin_batch`` failure is retried once against a freshly
  spawned pool;
* ``BREAKER_THRESHOLD`` consecutive batch failures open the circuit
  breaker (no pool is spawned while open), the cooldown half-opens it, and
  a clean probe batch re-closes it;
* ``close()`` escalates join -> terminate -> kill, so even a SIGTERM-ignoring
  wedged worker cannot outlive the pool.

Byte-identity of the healthy parallel path is property-tested elsewhere
(``tests/property/test_parallel_equivalence.py``).
"""

from __future__ import annotations

import random
import time

import pytest

import repro.core.dispatcher as dispatcher_module
import repro.core.parallel as parallel
from repro.core.config import SystemConfig
from repro.core.dispatcher import Dispatcher, OptionPolicy
from repro.core.parallel import parallel_available
from repro.core.single_side import SingleSideSearchMatcher
from repro.roadnet.generators import grid_network
from repro.roadnet.routing import make_engine
from repro.service.faults import FaultPlan, FaultSpec
from repro.sim.workload import random_requests

from tests.conftest import build_fleet

pytestmark = pytest.mark.skipif(
    not parallel_available(),
    reason="parallel dispatch needs numpy + shared memory + spawn",
)

pytest.importorskip("numpy")

SEED = 47


def _build_dispatcher(backend: str = "csr", **config_overrides) -> Dispatcher:
    network = grid_network(5, 5, weight_jitter=0.3, seed=SEED)
    rng = random.Random(SEED)
    vertices = network.vertices()
    locations = [rng.choice(vertices) for _ in range(6)]
    fleet = build_fleet(network, locations, capacity=4, grid_rows=3, grid_columns=3)
    fleet.set_routing_engine(make_engine(network, backend))
    config = SystemConfig(
        max_waiting=6.0,
        service_constraint=0.6,
        max_pickup_distance=10.0,
        **config_overrides,
    )
    matcher = SingleSideSearchMatcher(fleet, config=config)
    return Dispatcher(fleet, matcher, config)


def _burst(dispatcher, count=5, seed=SEED + 1, prefix="w-"):
    return random_requests(
        dispatcher.fleet.grid.network, count, 6.0, 0.6, seed=seed, id_prefix=prefix
    )


def _outcome_key(outcome):
    return (outcome.request.request_id, tuple(outcome.options), outcome.chosen)


def _expected(requests):
    twin = _build_dispatcher()
    try:
        return [
            _outcome_key(o)
            for o in twin.dispatch_sequential(requests, policy=OptionPolicy.CHEAPEST)
        ]
    finally:
        twin.close()


class TestWatchdog:
    def test_hung_worker_is_killed_and_batch_falls_back_identically(self):
        """A worker stalled mid-turn (ignoring SIGTERM) trips the watchdog:
        it is SIGKILLed within ``worker_timeout`` and the whole batch is
        recomputed in-process with byte-identical outcomes."""
        dispatcher = _build_dispatcher(worker_timeout=1.0, max_dispatch_retries=0)
        requests = _burst(dispatcher)
        expected = _expected(requests)
        plan = FaultPlan(
            [FaultSpec(point="worker.turn", action="stall", position=0, at=(0,))],
            name="hang",
        )
        started = time.monotonic()
        try:
            with plan:
                outcomes = dispatcher.dispatch_batch(
                    requests, policy=OptionPolicy.CHEAPEST, shards=2, workers=2
                )
            elapsed = time.monotonic() - started
            assert [_outcome_key(o) for o in outcomes] == expected
            # recovery happened in roughly one watchdog period, not the
            # stall's full hour
            assert elapsed < 30.0
            health = dispatcher.health
            assert health.worker_timeouts == 1
            assert health.worker_kills >= 1
            assert health.batch_failures == 1
            # the batch *began* on 2 workers; the hang condemned the pool,
            # so the remaining turns ran in-process
            assert dispatcher.last_batch_statistics.parallel_workers == 2
            assert dispatcher._pool is not None and dispatcher._pool.broken
        finally:
            dispatcher.close()

    def test_transient_begin_failure_retried_on_fresh_pool(self):
        """One injected ``pool.begin`` failure with ``max_dispatch_retries=1``:
        the batch recovers on a freshly spawned pool and still runs parallel."""
        dispatcher = _build_dispatcher(max_dispatch_retries=1)
        requests = _burst(dispatcher)
        expected = _expected(requests)
        plan = FaultPlan(
            [FaultSpec(point="pool.begin", action="error", at=(0,))], name="transient"
        )
        try:
            with plan:
                outcomes = dispatcher.dispatch_batch(
                    requests, policy=OptionPolicy.CHEAPEST, shards=2, workers=2
                )
            assert [_outcome_key(o) for o in outcomes] == expected
            assert dispatcher.last_batch_statistics.parallel_workers == 2
            health = dispatcher.health
            assert health.dispatch_retries == 1
            assert health.batch_failures == 1
            assert health.pool_respawns == 1
            # the retry succeeded, so the failure run is reset
            assert health.consecutive_failures == 0
            assert health.breaker_state == "closed"
            assert plan.fired.get("pool.begin:error") == 1
        finally:
            dispatcher.close()

    def test_breaker_opens_then_half_open_probe_recloses(self, monkeypatch):
        """Two consecutive begin failures (patched threshold) open the
        breaker; while open no pool is spawned; after the cooldown a clean
        probe batch re-closes it."""
        monkeypatch.setattr(dispatcher_module, "BREAKER_THRESHOLD", 2)
        monkeypatch.setattr(dispatcher_module, "BREAKER_COOLDOWN_SECONDS", 3600.0)
        twin = _build_dispatcher()
        dispatcher = _build_dispatcher(max_dispatch_retries=0)
        # fresh requests per round: dispatch commits the chosen options, so
        # the fleets of twin and dispatcher evolve in lockstep
        bursts = [
            _burst(dispatcher, count=4, seed=SEED + i, prefix=f"b{i}-")
            for i in (1, 2, 3, 4)
        ]
        plan = FaultPlan(
            [FaultSpec(point="pool.begin", action="error", at=(0, 1))], name="sick"
        )

        def expect(requests):
            return [
                _outcome_key(o)
                for o in twin.dispatch_sequential(requests, policy=OptionPolicy.CHEAPEST)
            ]

        try:
            with plan:
                for round_index in (1, 2):
                    requests = bursts[round_index - 1]
                    expected = expect(requests)
                    outcomes = dispatcher.dispatch_batch(
                        requests, policy=OptionPolicy.CHEAPEST, shards=2, workers=2
                    )
                    assert [_outcome_key(o) for o in outcomes] == expected
                    assert dispatcher.last_batch_statistics.parallel_workers == 0
                    assert dispatcher.health.consecutive_failures == round_index
                health = dispatcher.health
                assert health.breaker_state == "open"
                assert health.breaker_opens == 1
                # while open (cooldown pending) no pool is even spawned
                expected = expect(bursts[2])
                outcomes = dispatcher.dispatch_batch(
                    bursts[2], policy=OptionPolicy.CHEAPEST, shards=2, workers=2
                )
                assert [_outcome_key(o) for o in outcomes] == expected
                assert dispatcher.last_batch_statistics.parallel_workers == 0
                assert dispatcher._pool is None
                assert health.breaker_state == "open"
                assert health.breaker_opens == 1
            # cooldown elapses (faults cleared): the half-open probe batch
            # runs cleanly on a fresh pool and re-closes the breaker
            dispatcher.health.opened_at = time.monotonic() - 7200.0
            expected = expect(bursts[3])
            outcomes = dispatcher.dispatch_batch(
                bursts[3], policy=OptionPolicy.CHEAPEST, shards=2, workers=2
            )
            assert [_outcome_key(o) for o in outcomes] == expected
            assert dispatcher.last_batch_statistics.parallel_workers == 2
            assert dispatcher.health.breaker_state == "closed"
            assert dispatcher.health.consecutive_failures == 0
        finally:
            twin.close()
            dispatcher.close()

    def test_half_open_probe_failure_retrips_immediately(self, monkeypatch):
        """A failure during the half-open probe re-opens the breaker without
        needing a fresh run of ``BREAKER_THRESHOLD`` failures."""
        monkeypatch.setattr(dispatcher_module, "BREAKER_THRESHOLD", 1)
        monkeypatch.setattr(dispatcher_module, "BREAKER_COOLDOWN_SECONDS", 3600.0)
        dispatcher = _build_dispatcher(max_dispatch_retries=0)
        requests = _burst(dispatcher)
        plan = FaultPlan(
            [FaultSpec(point="pool.begin", action="error", at=(0, 1))], name="sicker"
        )
        try:
            with plan:
                dispatcher.dispatch_batch(
                    requests, policy=OptionPolicy.CHEAPEST, shards=2, workers=2
                )
                assert dispatcher.health.breaker_state == "open"
                assert dispatcher.health.breaker_opens == 1
                dispatcher.health.opened_at = time.monotonic() - 7200.0
                # half-open probe hits the second injected failure
                dispatcher.dispatch_batch(
                    requests, policy=OptionPolicy.CHEAPEST, shards=2, workers=2
                )
            assert dispatcher.health.breaker_state == "open"
            assert dispatcher.health.breaker_opens == 2
        finally:
            dispatcher.close()


class TestCloseEscalation:
    def test_close_kills_a_sigterm_ignoring_wedged_worker(self, monkeypatch):
        """A worker wedged in a stall (which masks SIGTERM) never reads the
        polite close message and shrugs off ``terminate()``; close() must
        escalate to SIGKILL and count the kill."""
        monkeypatch.setattr(parallel, "CLOSE_JOIN_TIMEOUT", 0.3)
        monkeypatch.setattr(parallel, "CLOSE_ESCALATION_TIMEOUT", 0.3)
        dispatcher = _build_dispatcher()
        pool = parallel.ParallelDispatchPool(
            dispatcher._fleet.routing_engine,
            dispatcher._fleet.grid,
            dispatcher._matcher.config,
            dispatcher._matcher.name,
            dispatcher._matcher.price_model,
            workers=2,
            worker_timeout=None,
        )
        plan = FaultPlan(
            [FaultSpec(point="worker.turn", action="stall", position=1, at=(0,))],
            name="wedge",
        )
        try:
            with plan:
                assert pool.ensure_started()
            # wedge worker 1: the turn command fires the stall before any
            # batch state is touched, so no begin_batch is needed
            process, conn = pool._processes[1]
            conn.send(("turn", 0, []))
            # let the worker pick the command up and mask SIGTERM, then
            # probe: a properly wedged worker shrugs the signal off
            time.sleep(0.5)
            process.terminate()
            process.join(timeout=0.5)
            assert process.is_alive(), "worker died to SIGTERM; stall not engaged"
            pool.close()
            assert pool.worker_kills >= 1
            assert not process.is_alive()
        finally:
            pool.close()
            dispatcher.close()
