"""Unit tests for the shared matcher machinery and its lower bounds."""

from __future__ import annotations

import pytest

from repro.core.config import SystemConfig
from repro.core.matcher import MatcherStatistics, added_distance_lower_bound
from repro.core.naive import NaiveKineticTreeMatcher
from repro.core.single_side import SingleSideSearchMatcher
from repro.model.request import Request
from repro.roadnet.generators import figure1_network
from repro.roadnet.shortest_path import DistanceOracle
from repro.vehicles.schedule import schedule_distance
from repro.vehicles.vehicle import Vehicle

from tests.conftest import assign_request, build_fleet


class TestMatcherStatistics:
    def test_reset(self):
        stats = MatcherStatistics()
        stats.requests_answered = 4
        stats.insertion.candidates_enumerated = 10
        stats.reset()
        assert stats.requests_answered == 0
        assert stats.insertion.candidates_enumerated == 0

    def test_as_dict_keys(self):
        keys = MatcherStatistics().as_dict()
        assert "vehicles_evaluated" in keys
        assert "insertions_feasible" in keys


class TestVerifyVehicle:
    def test_per_vehicle_options_are_skyline(self, figure1_fleet, paper_config):
        matcher = NaiveKineticTreeMatcher(figure1_fleet, config=paper_config)
        request = Request(start=12, destination=17, riders=2, max_waiting=50.0, service_constraint=3.0)
        context = matcher.make_context(request)
        options = matcher._verify_vehicle(figure1_fleet.get("c1"), context)  # noqa: SLF001
        for first in options:
            for second in options:
                if first is not second:
                    assert not first.dominates(second)

    def test_max_pickup_distance_filters_options(self, figure1_fleet):
        config = SystemConfig(max_waiting=5.0, service_constraint=0.2, max_pickup_distance=10.0)
        matcher = NaiveKineticTreeMatcher(figure1_fleet, config=config)
        request = Request(start=12, destination=17, riders=2, max_waiting=5.0, service_constraint=0.2)
        options = matcher.match(request)
        # c1's pick-up distance is 14 > 10, so only c2 remains.
        assert [option.vehicle_id for option in options] == ["c2"]

    def test_match_counts_statistics(self, figure1_fleet, paper_config, paper_request_r2):
        matcher = NaiveKineticTreeMatcher(figure1_fleet, config=paper_config)
        matcher.match(paper_request_r2)
        assert matcher.statistics.requests_answered == 1
        assert matcher.statistics.vehicles_evaluated == 2
        assert matcher.statistics.options_returned == 2


class TestLowerBounds:
    def test_pickup_lower_bound_admissible(self, figure1_fleet, paper_request_r2, paper_config):
        matcher = SingleSideSearchMatcher(figure1_fleet, config=paper_config)
        oracle = figure1_fleet.oracle
        context = matcher.make_context(paper_request_r2)
        for vehicle in figure1_fleet.vehicles():
            bound = matcher._pickup_lower_bound(vehicle, context)  # noqa: SLF001
            exact = oracle.distance(vehicle.location, paper_request_r2.start) + vehicle.offset
            assert bound <= exact + 1e-9

    def test_price_lower_bound_admissible(self, figure1_fleet, paper_request_r2, paper_config):
        matcher = SingleSideSearchMatcher(figure1_fleet, config=paper_config)
        context = matcher.make_context(paper_request_r2)
        reference = NaiveKineticTreeMatcher(figure1_fleet, config=paper_config)
        options = {o.vehicle_id: o for o in reference.match(paper_request_r2)}
        for vehicle in figure1_fleet.vehicles():
            bound = matcher._price_lower_bound(vehicle, context)  # noqa: SLF001
            if vehicle.vehicle_id in options:
                assert bound <= options[vehicle.vehicle_id].price + 1e-9


class TestAddedDistanceLowerBound:
    def test_empty_vehicle_uses_pickup_bound(self):
        network = figure1_network()
        fleet = build_fleet(network, [13])
        vehicle = fleet.get("c1")
        bound = added_distance_lower_bound(vehicle, 12, fleet.grid, fleet.oracle)
        assert bound <= fleet.oracle.distance(13, 12) + 1e-9

    def test_bound_is_admissible_against_actual_insertion(self):
        network = figure1_network()
        fleet = build_fleet(network, [1])
        r1 = Request(start=2, destination=16, riders=2, max_waiting=5.0, service_constraint=0.2, request_id="R1")
        assign_request(fleet, "c1", r1, planned_pickup_distance=8.0)
        vehicle = fleet.get("c1")
        oracle = fleet.oracle

        for probe_vertex in (12, 17, 5, 9):
            bound = added_distance_lower_bound(vehicle, probe_vertex, fleet.grid, oracle)
            # actual minimal added distance of inserting the single stop
            base = vehicle.kinetic_tree.schedules()[0]
            base_total = schedule_distance(vehicle.location, base, oracle.distance)
            best_added = float("inf")
            vertices = [vehicle.location] + [stop.vertex for stop in base]
            for index in range(len(vertices) - 1):
                added = (
                    oracle.distance(vertices[index], probe_vertex)
                    + oracle.distance(probe_vertex, vertices[index + 1])
                    - oracle.distance(vertices[index], vertices[index + 1])
                )
                best_added = min(best_added, added)
            best_added = min(best_added, oracle.distance(vertices[-1], probe_vertex))
            assert bound <= best_added + 1e-9

    def test_bound_zero_when_vertex_on_schedule(self):
        network = figure1_network()
        fleet = build_fleet(network, [1])
        r1 = Request(start=2, destination=16, riders=2, max_waiting=5.0, service_constraint=0.2, request_id="R1")
        assign_request(fleet, "c1", r1, planned_pickup_distance=8.0)
        vehicle = fleet.get("c1")
        assert added_distance_lower_bound(vehicle, 2, fleet.grid, fleet.oracle) == pytest.approx(0.0)
