"""End-to-end reproduction of the worked example of Section 2 (experiment E1).

The paper states, for the Fig. 1 scenario with vehicles c1 (schedule
<v1, v2, v16>, serving a rider from v2 to v16) and c2 (empty at v13), and the
request R2 = <v12, v17, 2, 5, 0.2>:

* inserting R2 into c1 yields the schedule <v1, v2, v12, v16, v17> at price 4;
* the returned results are r1 = <c1, 14, 4> and r2 = <c2, 8, 8.8>,
  neither of which dominates the other.
"""

from __future__ import annotations

import pytest

from repro.core.config import SystemConfig
from repro.core.dual_side import DualSideSearchMatcher
from repro.core.naive import NaiveKineticTreeMatcher
from repro.core.single_side import SingleSideSearchMatcher
from repro.model.options import dominates
from repro.model.stops import StopKind

ALL_MATCHERS = (NaiveKineticTreeMatcher, SingleSideSearchMatcher, DualSideSearchMatcher)


@pytest.mark.parametrize("matcher_class", ALL_MATCHERS)
def test_worked_example_options(figure1_fleet, paper_request_r2, paper_config, matcher_class):
    matcher = matcher_class(figure1_fleet, config=paper_config)
    options = matcher.match(paper_request_r2)
    by_vehicle = {option.vehicle_id: option for option in options}
    assert set(by_vehicle) == {"c1", "c2"}

    r1 = by_vehicle["c1"]
    assert r1.pickup_distance == pytest.approx(14.0)
    assert r1.price == pytest.approx(4.0)

    r2 = by_vehicle["c2"]
    assert r2.pickup_distance == pytest.approx(8.0)
    assert r2.price == pytest.approx(8.8)

    assert not dominates(r1, r2)
    assert not dominates(r2, r1)


@pytest.mark.parametrize("matcher_class", ALL_MATCHERS)
def test_worked_example_schedule_of_c1(figure1_fleet, paper_request_r2, paper_config, matcher_class):
    """The c1 option follows the paper's new schedule <v1, v2, v12, v16, v17>."""
    matcher = matcher_class(figure1_fleet, config=paper_config)
    options = matcher.match(paper_request_r2)
    c1_option = next(option for option in options if option.vehicle_id == "c1")
    vertices = [stop.vertex for stop in c1_option.schedule]
    assert vertices == [2, 12, 16, 17]
    kinds = [stop.kind for stop in c1_option.schedule]
    assert kinds == [StopKind.PICKUP, StopKind.PICKUP, StopKind.DROPOFF, StopKind.DROPOFF]


@pytest.mark.parametrize("matcher_class", ALL_MATCHERS)
def test_worked_example_added_distance(figure1_fleet, paper_request_r2, paper_config, matcher_class):
    """c1 drives 3 extra units; c2 drives 15 (8 to the pick-up plus the 7-unit trip)."""
    matcher = matcher_class(figure1_fleet, config=paper_config)
    options = {o.vehicle_id: o for o in matcher.match(paper_request_r2)}
    assert options["c1"].added_distance == pytest.approx(3.0)
    assert options["c2"].added_distance == pytest.approx(15.0)


def test_example_price_formula_terms(figure1_oracle):
    """The price of c1 decomposes exactly as in the paper: f_2 * (disttr2 - disttr1 + dist(s, d))."""
    dist = figure1_oracle.distance
    disttr1 = dist(1, 2) + dist(2, 16)
    disttr2 = dist(1, 2) + dist(2, 12) + dist(12, 16) + dist(16, 17)
    f2 = 0.4
    assert f2 * (disttr2 - disttr1 + dist(12, 17)) == pytest.approx(4.0)


def test_example_requires_both_vehicle_kinds(figure1_fleet):
    """The scenario exercises both the empty and the non-empty vehicle paths."""
    assert not figure1_fleet.get("c1").is_empty
    assert figure1_fleet.get("c2").is_empty
