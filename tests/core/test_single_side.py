"""Unit tests for the single-side search matcher."""

from __future__ import annotations

import random

import pytest

from repro.core.config import SystemConfig
from repro.core.naive import NaiveKineticTreeMatcher
from repro.core.single_side import SingleSideSearchMatcher
from repro.model.request import Request
from repro.sim.workload import random_requests

from tests.conftest import assign_request, build_random_fleet, option_points


@pytest.fixture
def busy_fleet():
    """A fleet where some vehicles already carry requests."""
    fleet = build_random_fleet(rows=8, columns=8, vehicles=14, seed=11)
    network = fleet.grid.network
    rng = random.Random(3)
    config_requests = random_requests(network, 6, max_waiting=6.0, service_constraint=0.5, seed=5, id_prefix="seed")
    vehicle_ids = fleet.vehicle_ids()
    for index, request in enumerate(config_requests):
        vehicle = fleet.get(vehicle_ids[index % len(vehicle_ids)])
        try:
            assign_request(fleet, vehicle.vehicle_id, request)
        except AssertionError:
            continue
    return fleet


class TestEquivalenceWithNaive:
    @pytest.mark.parametrize("max_pickup", [None, 8.0])
    def test_same_skyline_points(self, busy_fleet, max_pickup):
        config = SystemConfig(max_waiting=6.0, service_constraint=0.5, max_pickup_distance=max_pickup)
        naive = NaiveKineticTreeMatcher(busy_fleet, config=config)
        single = SingleSideSearchMatcher(busy_fleet, config=config)
        requests = random_requests(
            busy_fleet.grid.network, 15, max_waiting=6.0, service_constraint=0.5, seed=21
        )
        for request in requests:
            assert option_points(single.match(request)) == option_points(naive.match(request))


class TestPruning:
    def test_prunes_vehicles_compared_to_naive(self, busy_fleet):
        config = SystemConfig(max_waiting=6.0, service_constraint=0.5, max_pickup_distance=6.0)
        naive = NaiveKineticTreeMatcher(busy_fleet, config=config)
        single = SingleSideSearchMatcher(busy_fleet, config=config)
        requests = random_requests(
            busy_fleet.grid.network, 10, max_waiting=6.0, service_constraint=0.5, seed=33
        )
        for request in requests:
            naive.match(request)
            single.match(request)
        assert single.statistics.vehicles_evaluated < naive.statistics.vehicles_evaluated
        assert single.statistics.vehicles_pruned + single.statistics.vehicles_evaluated <= (
            naive.statistics.vehicles_evaluated
        )

    def test_cells_visited_bounded_by_grid(self, busy_fleet):
        config = SystemConfig(max_waiting=6.0, service_constraint=0.5, max_pickup_distance=4.0)
        single = SingleSideSearchMatcher(busy_fleet, config=config)
        request = random_requests(busy_fleet.grid.network, 1, 6.0, 0.5, seed=2)[0]
        single.match(request)
        assert single.statistics.cells_visited <= busy_fleet.grid.cell_count


class TestBehaviour:
    def test_no_vehicles_returns_empty(self):
        fleet = build_random_fleet(vehicles=0)
        matcher = SingleSideSearchMatcher(fleet)
        request = random_requests(fleet.grid.network, 1, 5.0, 0.2, seed=1)[0]
        assert matcher.match(request) == []

    def test_options_never_exceed_max_pickup(self, busy_fleet):
        config = SystemConfig(max_waiting=6.0, service_constraint=0.5, max_pickup_distance=5.0)
        matcher = SingleSideSearchMatcher(busy_fleet, config=config)
        for request in random_requests(busy_fleet.grid.network, 10, 6.0, 0.5, seed=8):
            for option in matcher.match(request):
                assert option.pickup_distance <= 5.0 + 1e-9

    def test_options_are_mutually_non_dominated(self, busy_fleet):
        config = SystemConfig(max_waiting=6.0, service_constraint=0.5)
        matcher = SingleSideSearchMatcher(busy_fleet, config=config)
        for request in random_requests(busy_fleet.grid.network, 10, 6.0, 0.5, seed=13):
            options = matcher.match(request)
            for first in options:
                for second in options:
                    if first is not second:
                        assert not first.dominates(second)

    def test_empty_vehicle_option_price_structure(self):
        """An empty vehicle's price equals f_n * (pickup + 2 * direct)."""
        fleet = build_random_fleet(vehicles=5, seed=2)
        config = SystemConfig(max_waiting=6.0, service_constraint=0.5)
        matcher = SingleSideSearchMatcher(fleet, config=config)
        oracle = fleet.oracle
        request = Request(start=1, destination=30, riders=1, max_waiting=6.0, service_constraint=0.5)
        direct = oracle.distance(1, 30)
        for option in matcher.match(request):
            expected = 0.3 * (option.pickup_distance + 2.0 * direct)
            assert option.price == pytest.approx(expected)
