"""Unit tests for request insertion into kinetic trees."""

from __future__ import annotations

import pytest

from repro.core.insertion import (
    InsertionStatistics,
    feasible_schedules_for_commit,
    insertion_candidates,
)
from repro.model.request import Request
from repro.roadnet.generators import figure1_network
from repro.roadnet.grid_index import GridIndex
from repro.roadnet.shortest_path import DistanceOracle
from repro.vehicles.fleet import Fleet
from repro.vehicles.vehicle import Vehicle

from tests.conftest import assign_request


@pytest.fixture
def network():
    return figure1_network()


@pytest.fixture
def oracle(network):
    return DistanceOracle(network)


@pytest.fixture
def grid(network):
    return GridIndex(network, rows=4, columns=4)


class TestEmptyVehicle:
    def test_single_candidate(self, oracle, grid):
        vehicle = Vehicle("c2", location=13)
        request = Request(start=12, destination=17, riders=2, request_id="R2")
        candidates = insertion_candidates(vehicle, request, oracle, grid)
        assert len(candidates) == 1
        candidate = candidates[0]
        assert candidate.pickup_distance == pytest.approx(8.0)
        assert candidate.added_distance == pytest.approx(15.0)
        assert candidate.total_distance == pytest.approx(15.0)
        assert candidate.base_schedule == ()
        assert [stop.vertex for stop in candidate.schedule] == [12, 17]

    def test_offset_added_to_pickup_distance(self, oracle, grid):
        vehicle = Vehicle("c2", location=13, offset=2.0)
        request = Request(start=12, destination=17, riders=2, request_id="R2")
        candidates = insertion_candidates(vehicle, request, oracle, grid)
        assert candidates[0].pickup_distance == pytest.approx(10.0)

    def test_vehicle_id_recorded(self, oracle, grid):
        vehicle = Vehicle("taxi-9", location=13)
        request = Request(start=12, destination=17, request_id="R2")
        candidates = insertion_candidates(vehicle, request, oracle, grid)
        assert all(candidate.vehicle_id == "taxi-9" for candidate in candidates)


class TestNonEmptyVehicle:
    def build_busy_vehicle(self, network, oracle, grid):
        fleet = Fleet(grid, oracle)
        fleet.add_vehicle(Vehicle("c1", location=1))
        r1 = Request(start=2, destination=16, riders=2, max_waiting=5.0, service_constraint=0.2, request_id="R1")
        assign_request(fleet, "c1", r1, planned_pickup_distance=8.0)
        return fleet.get("c1")

    def test_paper_schedule_is_among_the_candidates(self, network, oracle, grid):
        vehicle = self.build_busy_vehicle(network, oracle, grid)
        request = Request(start=12, destination=17, riders=2, max_waiting=5.0, service_constraint=0.2, request_id="R2")
        candidates = insertion_candidates(vehicle, request, oracle, grid)
        # Two orders are feasible: the paper's shared ride (R2 interleaved with
        # R1) and the trivial "serve R1 first, then R2" append; every other
        # interleaving violates R1's waiting-time or service constraint.
        by_order = {tuple(stop.vertex for stop in c.schedule): c for c in candidates}
        assert set(by_order) == {(2, 12, 16, 17), (2, 16, 12, 17)}
        paper = by_order[(2, 12, 16, 17)]
        assert paper.added_distance == pytest.approx(3.0)
        assert paper.pickup_distance == pytest.approx(14.0)
        appended = by_order[(2, 16, 12, 17)]
        # The appended order is dominated later (higher price and later pick-up).
        assert appended.added_distance > paper.added_distance
        assert appended.pickup_distance > paper.pickup_distance

    def test_relaxed_constraints_allow_more_candidates(self, network, oracle, grid):
        vehicle = self.build_busy_vehicle(network, oracle, grid)
        relaxed = Request(
            start=12, destination=17, riders=2, max_waiting=50.0, service_constraint=5.0, request_id="R2"
        )
        # Relaxing only the new request does not relax R1's constraints, so the
        # schedules detouring R1 through v17 stay infeasible -- but inserting
        # after R1's drop-off becomes possible.
        candidates = insertion_candidates(vehicle, relaxed, oracle, grid)
        assert len(candidates) >= 1
        orders = {tuple(stop.vertex for stop in candidate.schedule) for candidate in candidates}
        assert (2, 16, 12, 17) in orders

    def test_capacity_blocks_joint_carriage(self, network, oracle, grid):
        fleet = Fleet(grid, oracle)
        fleet.add_vehicle(Vehicle("c1", location=1, capacity=2))
        r1 = Request(start=2, destination=16, riders=2, max_waiting=5.0, service_constraint=0.2, request_id="R1")
        assign_request(fleet, "c1", r1, planned_pickup_distance=8.0)
        request = Request(start=12, destination=17, riders=2, max_waiting=5.0, service_constraint=0.2, request_id="R2")
        candidates = insertion_candidates(fleet.get("c1"), request, oracle, grid)
        # With capacity 2 the groups can never ride together: every surviving
        # candidate must drop R1 off before picking R2 up.
        assert candidates
        for candidate in candidates:
            vertices = [stop.vertex for stop in candidate.schedule]
            assert vertices.index(16) < vertices.index(12)

    def test_statistics_accumulate(self, network, oracle, grid):
        vehicle = self.build_busy_vehicle(network, oracle, grid)
        request = Request(start=12, destination=17, riders=2, max_waiting=5.0, service_constraint=0.2, request_id="R2")
        stats = InsertionStatistics()
        candidates = insertion_candidates(vehicle, request, oracle, grid, statistics=stats)
        assert stats.candidates_enumerated > 0
        assert stats.candidates_feasible == len(candidates)

    def test_grid_bounds_do_not_change_results(self, network, oracle, grid):
        vehicle = self.build_busy_vehicle(network, oracle, grid)
        request = Request(start=12, destination=17, riders=2, max_waiting=5.0, service_constraint=0.2, request_id="R2")
        with_grid = insertion_candidates(vehicle, request, oracle, grid)
        without_grid = insertion_candidates(vehicle, request, oracle, None)

        def key(candidate):
            return (
                tuple(str(stop) for stop in candidate.schedule),
                round(candidate.pickup_distance, 9),
                round(candidate.added_distance, 9),
            )

        assert sorted(map(key, with_grid)) == sorted(map(key, without_grid))

    def test_grid_bounds_can_reject_candidates_early(self, network, oracle, grid):
        vehicle = self.build_busy_vehicle(network, oracle, grid)
        tight = Request(
            start=12, destination=17, riders=2, max_waiting=5.0, service_constraint=0.0, request_id="R2"
        )
        stats = InsertionStatistics()
        insertion_candidates(vehicle, tight, oracle, grid, statistics=stats)
        assert stats.candidates_rejected_by_bounds >= 0  # bounds may or may not fire, but never crash


class TestCommitHelper:
    def test_feasible_schedules_for_commit(self, network, oracle, grid):
        vehicle = Vehicle("c2", location=13)
        request = Request(start=12, destination=17, riders=2, request_id="R2")
        schedules = feasible_schedules_for_commit(vehicle, request, oracle, grid)
        assert len(schedules) == 1
        assert [stop.vertex for stop in schedules[0]] == [12, 17]

    def test_commit_helper_empty_when_infeasible(self, network, oracle, grid):
        vehicle = Vehicle("c1", location=1, capacity=1)
        request = Request(start=2, destination=16, riders=3, request_id="RBig")
        assert feasible_schedules_for_commit(vehicle, request, oracle, grid) == []
