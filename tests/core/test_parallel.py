"""Unit tests for the parallel dispatch pool's lifecycle and failure paths.

Byte-identity of the parallel results is property-tested in
``tests/property/test_parallel_equivalence.py``; this module covers the
machinery around it: shared-memory segment lifecycle (publish, attach,
unlink-on-close), the clean in-process fallbacks when the pool cannot start,
and recovery after a worker crash.
"""

from __future__ import annotations

import random

import pytest

import repro.core.parallel as parallel
from repro.core.config import SystemConfig
from repro.core.dispatcher import Dispatcher, OptionPolicy
from repro.core.parallel import SharedArrayPack, attach_shared_arrays, parallel_available
from repro.core.single_side import SingleSideSearchMatcher
from repro.roadnet.generators import grid_network
from repro.roadnet.routing import make_engine
from repro.sim.workload import random_requests

from tests.conftest import build_fleet

pytestmark = pytest.mark.skipif(
    not parallel_available(),
    reason="parallel dispatch needs numpy + shared memory + spawn",
)

np = pytest.importorskip("numpy")

SEED = 31


def _build_dispatcher(backend: str, **config_overrides) -> Dispatcher:
    network = grid_network(5, 5, weight_jitter=0.3, seed=SEED)
    rng = random.Random(SEED)
    vertices = network.vertices()
    locations = [rng.choice(vertices) for _ in range(6)]
    fleet = build_fleet(network, locations, capacity=4, grid_rows=3, grid_columns=3)
    fleet.set_routing_engine(make_engine(network, backend))
    config = SystemConfig(
        max_waiting=6.0,
        service_constraint=0.6,
        max_pickup_distance=10.0,
        **config_overrides,
    )
    matcher = SingleSideSearchMatcher(fleet, config=config)
    return Dispatcher(fleet, matcher, config)


def _burst(dispatcher, count=6, seed=SEED + 1, prefix="u-"):
    return random_requests(
        dispatcher.fleet.grid.network, count, 6.0, 0.6, seed=seed, id_prefix=prefix
    )


def _outcome_key(outcome):
    return (outcome.request.request_id, tuple(outcome.options), outcome.chosen)


class TestSharedArrayPack:
    def test_publish_attach_roundtrip(self):
        arrays = {
            "weights": np.arange(12, dtype=np.float64).reshape(3, 4),
            "indices": np.array([3, 1, 2], dtype=np.int64),
            "empty": np.array([], dtype=np.float32),
        }
        pack = SharedArrayPack.publish(arrays)
        try:
            attached, handles = attach_shared_arrays(pack.manifest)
            assert sorted(attached) == sorted(arrays)
            for name, original in arrays.items():
                view = attached[name]
                assert view.dtype == original.dtype
                assert view.shape == original.shape
                assert np.array_equal(view, original)
                # workers must never scribble on the parent's buffers
                assert not view.flags.writeable
            for handle in handles:
                handle.close()
        finally:
            pack.close()

    def test_close_unlinks_the_segments(self):
        pack = SharedArrayPack.publish({"a": np.ones(8)})
        manifest = pack.manifest
        assert not pack.closed
        pack.close()
        assert pack.closed
        # The segments are gone from the OS, not merely closed: attaching
        # by name must fail (nothing can leak in /dev/shm).
        with pytest.raises(FileNotFoundError):
            attach_shared_arrays(manifest)

    def test_close_is_idempotent(self):
        pack = SharedArrayPack.publish({"a": np.ones(4)})
        pack.close()
        pack.close()
        assert pack.closed


class TestFallbacks:
    def test_dict_backend_has_no_export_surface(self):
        """No exportable arrays -> the batch runs in-process, once probed."""
        sequential = _build_dispatcher("dict")
        requests = _burst(sequential)
        expected = [
            _outcome_key(o)
            for o in sequential.dispatch_sequential(requests, policy=OptionPolicy.CHEAPEST)
        ]

        dispatcher = _build_dispatcher("dict")
        outcomes = dispatcher.dispatch_batch(
            requests, policy=OptionPolicy.CHEAPEST, shards=2, workers=2
        )
        assert [_outcome_key(o) for o in outcomes] == expected
        assert dispatcher.last_batch_statistics.parallel_workers == 0
        # the failed combination is remembered; no pool and no re-probe
        assert dispatcher._pool is None
        assert dispatcher._pool_disabled_token is not None

    def test_unregistered_matcher_falls_back(self, monkeypatch):
        """A matcher outside the worker registry keeps dispatch in-process."""
        monkeypatch.setattr(parallel, "_MATCHERS", {})
        dispatcher = _build_dispatcher("csr")
        requests = _burst(dispatcher)
        outcomes = dispatcher.dispatch_batch(
            requests, policy=OptionPolicy.CHEAPEST, shards=2, workers=2
        )
        assert len(outcomes) == len(requests)
        assert dispatcher.last_batch_statistics.parallel_workers == 0
        assert dispatcher._pool is None

    def test_workers_one_never_builds_a_pool(self):
        dispatcher = _build_dispatcher("csr")
        dispatcher.dispatch_batch(
            _burst(dispatcher), policy=OptionPolicy.CHEAPEST, shards=2, workers=1
        )
        assert dispatcher._pool is None
        assert dispatcher.last_batch_statistics.parallel_workers == 0


class TestCrashRecovery:
    def test_worker_crash_falls_back_then_respawns(self):
        """Kill the workers between batches: the next batch degrades to the
        in-process path byte-identically, and the one after that gets a
        freshly spawned pool.  Retry is disabled to pin the raw fallback
        (with retries the batch would recover on a fresh pool instead --
        covered in ``tests/core/test_watchdog.py``)."""
        twin = _build_dispatcher("csr")
        dispatcher = _build_dispatcher("csr", max_dispatch_retries=0)
        bursts = [
            _burst(twin, count=4, seed=SEED + i, prefix=f"c{i}-") for i in (1, 2, 3)
        ]
        try:
            for round_index, requests in enumerate(bursts):
                expected = [
                    _outcome_key(o)
                    for o in twin.dispatch_sequential(requests, policy=OptionPolicy.CHEAPEST)
                ]
                outcomes = dispatcher.dispatch_batch(
                    requests, policy=OptionPolicy.CHEAPEST, shards=2, workers=2
                )
                assert [_outcome_key(o) for o in outcomes] == expected
                if round_index == 0:
                    pool = dispatcher._pool
                    assert pool is not None
                    assert dispatcher.last_batch_statistics.parallel_workers == 2
                    # simulate an external worker crash
                    for process, _ in pool._processes:
                        process.terminate()
                        process.join(timeout=5.0)
                elif round_index == 1:
                    # shipping to dead workers failed -> whole batch ran
                    # in-process, pool condemned
                    assert dispatcher.last_batch_statistics.parallel_workers == 0
                    assert pool.broken
                else:
                    # a fresh pool replaced the broken one
                    assert dispatcher._pool is not None
                    assert dispatcher._pool is not pool
                    assert dispatcher.last_batch_statistics.parallel_workers == 2
        finally:
            dispatcher.close()

    def test_dispatcher_close_unlinks_pool_segments(self):
        dispatcher = _build_dispatcher("csr")
        try:
            dispatcher.dispatch_batch(
                _burst(dispatcher), policy=OptionPolicy.CHEAPEST, shards=2, workers=2
            )
            pool = dispatcher._pool
            assert pool is not None
            manifest = pool._pack.manifest
        finally:
            dispatcher.close()
        assert dispatcher._pool is None
        assert pool._pack is None
        with pytest.raises(FileNotFoundError):
            attach_shared_arrays(manifest)
        # close is idempotent and a later batch simply respawns
        dispatcher.close()
