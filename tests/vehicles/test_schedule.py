"""Unit tests for trip-schedule feasibility (Definition 2)."""

from __future__ import annotations

import math

import pytest

from repro.model.request import Request
from repro.model.stops import Stop, StopKind
from repro.roadnet.generators import figure1_network
from repro.roadnet.shortest_path import DistanceOracle
from repro.vehicles.schedule import (
    RequestState,
    check_schedule,
    enumerate_insertions,
    evaluate_schedule,
    prefix_distances,
    schedule_distance,
)


@pytest.fixture
def oracle() -> DistanceOracle:
    return DistanceOracle(figure1_network())


def make_state(
    request: Request,
    oracle: DistanceOracle,
    onboard: bool = False,
    planned: float = math.inf,
    travelled: float = 0.0,
) -> RequestState:
    return RequestState(
        request=request,
        onboard=onboard,
        direct_distance=oracle.distance(request.start, request.destination),
        planned_pickup_remaining=planned,
        travelled_since_pickup=travelled,
    )


def pickup(request: Request) -> Stop:
    return Stop(request.start, request.request_id, StopKind.PICKUP, request.riders)


def dropoff(request: Request) -> Stop:
    return Stop(request.destination, request.request_id, StopKind.DROPOFF, request.riders)


class TestDistances:
    def test_prefix_distances(self, oracle):
        request = Request(start=2, destination=16, request_id="R1")
        stops = [pickup(request), dropoff(request)]
        prefix = prefix_distances(1, stops, oracle.distance)
        assert prefix == [pytest.approx(8.0), pytest.approx(18.0)]

    def test_prefix_with_origin_offset(self, oracle):
        request = Request(start=2, destination=16, request_id="R1")
        stops = [pickup(request), dropoff(request)]
        prefix = prefix_distances(1, stops, oracle.distance, origin_offset=1.5)
        assert prefix[0] == pytest.approx(9.5)

    def test_schedule_distance_empty(self, oracle):
        assert schedule_distance(1, [], oracle.distance) == 0.0
        assert schedule_distance(1, [], oracle.distance, origin_offset=2.0) == 2.0

    def test_evaluate_schedule_metrics(self, oracle):
        request = Request(start=2, destination=16, request_id="R1")
        metrics = evaluate_schedule(1, [pickup(request), dropoff(request)], oracle.distance)
        assert metrics.total_distance == pytest.approx(18.0)
        assert metrics.pickup_distance["R1"] == pytest.approx(8.0)
        assert metrics.dropoff_distance["R1"] == pytest.approx(18.0)
        assert metrics.distance_to_stop(0) == pytest.approx(8.0)


class TestStructuralChecks:
    def test_valid_single_request_schedule(self, oracle):
        request = Request(start=2, destination=16, riders=2, request_id="R1")
        states = {"R1": make_state(request, oracle)}
        result = check_schedule(1, [pickup(request), dropoff(request)], 4, 0, states, oracle.distance)
        assert result.feasible

    def test_unknown_request_in_stop(self, oracle):
        request = Request(start=2, destination=16, request_id="R1")
        result = check_schedule(1, [pickup(request)], 4, 0, {}, oracle.distance)
        assert not result.feasible
        assert "unknown request" in result.reason

    def test_dropoff_before_pickup(self, oracle):
        request = Request(start=2, destination=16, request_id="R1")
        states = {"R1": make_state(request, oracle)}
        result = check_schedule(1, [dropoff(request), pickup(request)], 4, 0, states, oracle.distance)
        assert not result.feasible

    def test_missing_dropoff(self, oracle):
        request = Request(start=2, destination=16, request_id="R1")
        states = {"R1": make_state(request, oracle)}
        result = check_schedule(1, [pickup(request)], 4, 0, states, oracle.distance)
        assert not result.feasible
        assert "drop-off" in result.reason

    def test_waiting_request_missing_pickup(self, oracle):
        request = Request(start=2, destination=16, request_id="R1")
        states = {"R1": make_state(request, oracle)}
        result = check_schedule(1, [dropoff(request)], 4, 0, states, oracle.distance)
        assert not result.feasible

    def test_onboard_request_must_not_have_pickup(self, oracle):
        request = Request(start=2, destination=16, request_id="R1")
        states = {"R1": make_state(request, oracle, onboard=True)}
        result = check_schedule(
            1, [pickup(request), dropoff(request)], 4, request.riders, states, oracle.distance
        )
        assert not result.feasible

    def test_duplicate_pickup(self, oracle):
        request = Request(start=2, destination=16, request_id="R1")
        states = {"R1": make_state(request, oracle)}
        stops = [pickup(request), pickup(request), dropoff(request)]
        result = check_schedule(1, stops, 4, 0, states, oracle.distance)
        assert not result.feasible


class TestCapacity:
    def test_capacity_violation(self, oracle):
        r1 = Request(start=2, destination=16, riders=3, request_id="R1")
        r2 = Request(start=12, destination=17, riders=2, request_id="R2")
        states = {"R1": make_state(r1, oracle), "R2": make_state(r2, oracle)}
        stops = [pickup(r1), pickup(r2), dropoff(r1), dropoff(r2)]
        result = check_schedule(1, stops, 4, 0, states, oracle.distance)
        assert not result.feasible
        assert "capacity" in result.reason

    def test_capacity_respected_when_sequential(self, oracle):
        r1 = Request(start=2, destination=16, riders=3, request_id="R1", service_constraint=1.0)
        r2 = Request(start=12, destination=17, riders=2, request_id="R2", service_constraint=1.0)
        states = {"R1": make_state(r1, oracle), "R2": make_state(r2, oracle)}
        stops = [pickup(r1), dropoff(r1), pickup(r2), dropoff(r2)]
        result = check_schedule(1, stops, 4, 0, states, oracle.distance)
        assert result.feasible

    def test_onboard_riders_counted(self, oracle):
        r1 = Request(start=2, destination=16, riders=3, request_id="R1")
        r2 = Request(start=12, destination=17, riders=2, request_id="R2", service_constraint=2.0)
        states = {
            "R1": make_state(r1, oracle, onboard=True),
            "R2": make_state(r2, oracle),
        }
        stops = [pickup(r2), dropoff(r1), dropoff(r2)]
        result = check_schedule(2, stops, 4, 3, states, oracle.distance)
        assert not result.feasible  # 3 onboard + 2 boarding exceeds 4


class TestWaitingTime:
    def test_waiting_violation(self, oracle):
        request = Request(start=2, destination=16, max_waiting=1.0, request_id="R1")
        # The promise was a pick-up 2 units away; the schedule below drives 8.
        states = {"R1": make_state(request, oracle, planned=2.0)}
        result = check_schedule(1, [pickup(request), dropoff(request)], 4, 0, states, oracle.distance)
        assert not result.feasible
        assert "waiting" in result.reason

    def test_waiting_ok_within_budget(self, oracle):
        request = Request(start=2, destination=16, max_waiting=6.0, request_id="R1")
        states = {"R1": make_state(request, oracle, planned=2.0)}
        result = check_schedule(1, [pickup(request), dropoff(request)], 4, 0, states, oracle.distance)
        assert result.feasible

    def test_infinite_planned_never_violates(self, oracle):
        request = Request(start=2, destination=16, max_waiting=0.0, request_id="R1")
        states = {"R1": make_state(request, oracle, planned=math.inf)}
        result = check_schedule(1, [pickup(request), dropoff(request)], 4, 0, states, oracle.distance)
        assert result.feasible


class TestServiceConstraint:
    def test_detour_violation_for_waiting_request(self, oracle):
        r1 = Request(start=2, destination=16, service_constraint=0.0, request_id="R1")
        r2 = Request(start=12, destination=17, service_constraint=0.0, request_id="R2")
        states = {"R1": make_state(r1, oracle), "R2": make_state(r2, oracle)}
        # Forcing R1's riders through R2's stops exceeds R1's zero-detour budget.
        stops = [pickup(r1), pickup(r2), dropoff(r2), dropoff(r1)]
        result = check_schedule(1, stops, 4, 0, states, oracle.distance)
        assert not result.feasible
        assert "service" in result.reason

    def test_detour_budget_for_onboard_accounts_travelled(self, oracle):
        request = Request(start=2, destination=16, service_constraint=0.2, request_id="R1")
        # Already travelled 9 of the 12-unit budget; 10 more units is too much.
        states = {"R1": make_state(request, oracle, onboard=True, travelled=9.0)}
        result = check_schedule(2, [dropoff(request)], 4, request.riders, states, oracle.distance)
        assert not result.feasible

    def test_detour_ok_for_onboard_within_budget(self, oracle):
        request = Request(start=2, destination=16, service_constraint=0.2, request_id="R1")
        states = {"R1": make_state(request, oracle, onboard=True, travelled=1.0)}
        result = check_schedule(2, [dropoff(request)], 4, request.riders, states, oracle.distance)
        assert result.feasible


class TestEnumerateInsertions:
    def test_counts_for_empty_base(self):
        request = Request(start=2, destination=16, request_id="R1")
        sequences = list(enumerate_insertions([], pickup(request), dropoff(request)))
        assert sequences == [(pickup(request), dropoff(request))]

    def test_counts_for_one_existing_stop(self):
        r1 = Request(start=2, destination=16, request_id="R1")
        r2 = Request(start=12, destination=17, request_id="R2")
        base = [dropoff(r1)]
        sequences = list(enumerate_insertions(base, pickup(r2), dropoff(r2)))
        # pickup at 2 positions; dropoff after pickup: 2 + 1 + ... = (n+1)(n+2)/2 with n=1 -> 3
        assert len(sequences) == 3
        for sequence in sequences:
            assert sequence.index(pickup(r2)) < sequence.index(dropoff(r2))

    def test_preserves_existing_order(self):
        r1 = Request(start=2, destination=16, request_id="R1")
        r2 = Request(start=12, destination=17, request_id="R2")
        base = [pickup(r1), dropoff(r1)]
        for sequence in enumerate_insertions(base, pickup(r2), dropoff(r2)):
            assert sequence.index(pickup(r1)) < sequence.index(dropoff(r1))

    def test_total_count_formula(self):
        r1 = Request(start=2, destination=16, request_id="R1")
        r2 = Request(start=12, destination=17, request_id="R2")
        r3 = Request(start=5, destination=9, request_id="R3")
        base = [pickup(r1), dropoff(r1), pickup(r2), dropoff(r2)]
        sequences = list(enumerate_insertions(base, pickup(r3), dropoff(r3)))
        n = len(base)
        assert len(sequences) == (n + 1) * (n + 2) // 2
