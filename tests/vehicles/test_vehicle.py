"""Unit tests for mutable vehicle state."""

from __future__ import annotations

import pytest

from repro.errors import CapacityExceededError, InvalidScheduleError, VehicleError
from repro.model.request import Request
from repro.model.stops import Stop, StopKind
from repro.vehicles.vehicle import Vehicle


def stops_for(request: Request) -> tuple:
    return (
        Stop(request.start, request.request_id, StopKind.PICKUP, request.riders),
        Stop(request.destination, request.request_id, StopKind.DROPOFF, request.riders),
    )


@pytest.fixture
def vehicle() -> Vehicle:
    return Vehicle("c1", location=1, capacity=4)


@pytest.fixture
def request_r1() -> Request:
    return Request(start=2, destination=16, riders=2, request_id="R1")


class TestConstruction:
    def test_defaults(self, vehicle):
        assert vehicle.is_empty
        assert vehicle.occupancy == 0
        assert vehicle.location == 1
        assert vehicle.offset == 0.0

    def test_invalid_capacity(self):
        with pytest.raises(VehicleError):
            Vehicle("c1", location=1, capacity=0)

    def test_invalid_offset(self):
        with pytest.raises(VehicleError):
            Vehicle("c1", location=1, offset=-1.0)

    def test_set_location_updates_tree_root(self, vehicle):
        vehicle.set_location(5, offset=0.5)
        assert vehicle.location == 5
        assert vehicle.offset == 0.5
        assert vehicle.kinetic_tree.root_location == 5

    def test_set_location_rejects_negative_offset(self, vehicle):
        with pytest.raises(VehicleError):
            vehicle.set_location(5, offset=-0.1)


class TestAssignment:
    def test_assign_makes_request_waiting(self, vehicle, request_r1):
        pickup, dropoff = stops_for(request_r1)
        vehicle.assign(request_r1, planned_pickup_distance=8.0, direct_distance=10.0, schedules=[(pickup, dropoff)])
        assert not vehicle.is_empty
        assert vehicle.has_request("R1")
        assert "R1" in vehicle.waiting_requests
        assert vehicle.occupancy == 0
        assert vehicle.unfinished_request_ids() == ["R1"]

    def test_assign_twice_rejected(self, vehicle, request_r1):
        pickup, dropoff = stops_for(request_r1)
        vehicle.assign(request_r1, 8.0, 10.0, [(pickup, dropoff)])
        with pytest.raises(VehicleError):
            vehicle.assign(request_r1, 8.0, 10.0, [(pickup, dropoff)])

    def test_assign_over_capacity_rejected(self, vehicle):
        big = Request(start=2, destination=16, riders=9, request_id="RBig")
        pickup, dropoff = stops_for(big)
        with pytest.raises(CapacityExceededError):
            vehicle.assign(big, 8.0, 10.0, [(pickup, dropoff)])

    def test_assign_requires_schedules(self, vehicle, request_r1):
        with pytest.raises(InvalidScheduleError):
            vehicle.assign(request_r1, 8.0, 10.0, [])


class TestLifecycle:
    def test_pickup_moves_to_onboard(self, vehicle, request_r1):
        pickup, dropoff = stops_for(request_r1)
        vehicle.assign(request_r1, 8.0, 10.0, [(pickup, dropoff)])
        state = vehicle.pickup("R1")
        assert state.onboard
        assert vehicle.occupancy == 2
        assert "R1" in vehicle.onboard_requests
        assert "R1" not in vehicle.waiting_requests

    def test_pickup_unknown_request(self, vehicle):
        with pytest.raises(VehicleError):
            vehicle.pickup("nope")

    def test_pickup_over_capacity(self, request_r1):
        vehicle = Vehicle("c1", location=1, capacity=3)
        pickup, dropoff = stops_for(request_r1)
        vehicle.assign(request_r1, 8.0, 10.0, [(pickup, dropoff)])
        other = Request(start=12, destination=17, riders=2, request_id="R2")
        p2, d2 = stops_for(other)
        vehicle.assign(other, 5.0, 7.0, [(pickup, p2, dropoff, d2)])
        vehicle.pickup("R1")
        with pytest.raises(CapacityExceededError):
            vehicle.pickup("R2")
        # the failed pick-up must leave R2 waiting
        assert "R2" in vehicle.waiting_requests

    def test_dropoff_completes_request(self, vehicle, request_r1):
        pickup, dropoff = stops_for(request_r1)
        vehicle.assign(request_r1, 8.0, 10.0, [(pickup, dropoff)])
        vehicle.pickup("R1")
        state = vehicle.dropoff("R1")
        assert state.request.request_id == "R1"
        assert vehicle.is_empty
        assert vehicle.unfinished_request_ids() == []

    def test_dropoff_requires_onboard(self, vehicle, request_r1):
        pickup, dropoff = stops_for(request_r1)
        vehicle.assign(request_r1, 8.0, 10.0, [(pickup, dropoff)])
        with pytest.raises(VehicleError):
            vehicle.dropoff("R1")


class TestProgress:
    def test_progress_shrinks_planned_pickup(self, vehicle, request_r1):
        pickup, dropoff = stops_for(request_r1)
        vehicle.assign(request_r1, 8.0, 10.0, [(pickup, dropoff)])
        vehicle.record_progress(3.0)
        assert vehicle.waiting_requests["R1"].planned_pickup_remaining == pytest.approx(5.0)
        # Driving past the promised distance makes the remaining budget
        # negative: the vehicle is already later than planned, so future
        # insertions only get what is left of the waiting allowance.
        vehicle.record_progress(10.0)
        assert vehicle.waiting_requests["R1"].planned_pickup_remaining == pytest.approx(-5.0)
        assert vehicle.waiting_requests["R1"].waiting_budget() == pytest.approx(
            -5.0 + request_r1.max_waiting
        )

    def test_progress_accumulates_onboard_travel(self, vehicle, request_r1):
        pickup, dropoff = stops_for(request_r1)
        vehicle.assign(request_r1, 8.0, 10.0, [(pickup, dropoff)])
        vehicle.pickup("R1")
        vehicle.record_progress(4.0)
        assert vehicle.onboard_requests["R1"].travelled_since_pickup == pytest.approx(4.0)
        assert vehicle.occupied_distance == pytest.approx(4.0)
        assert vehicle.distance_driven == pytest.approx(4.0)

    def test_progress_zero_is_noop(self, vehicle):
        vehicle.record_progress(0.0)
        assert vehicle.distance_driven == 0.0

    def test_progress_negative_rejected(self, vehicle):
        with pytest.raises(VehicleError):
            vehicle.record_progress(-1.0)

    def test_empty_vehicle_distance_not_occupied(self, vehicle):
        vehicle.record_progress(5.0)
        assert vehicle.distance_driven == 5.0
        assert vehicle.occupied_distance == 0.0


class TestScheduleInteraction:
    def test_arrive_at_stop_advances_tree(self, vehicle, request_r1):
        pickup, dropoff = stops_for(request_r1)
        vehicle.assign(request_r1, 8.0, 10.0, [(pickup, dropoff)])
        vehicle.arrive_at_stop(pickup)
        assert vehicle.location == pickup.vertex
        assert vehicle.offset == 0.0
        assert vehicle.current_schedules() == [(dropoff,)]

    def test_request_states_merges_waiting_and_onboard(self, vehicle, request_r1):
        pickup, dropoff = stops_for(request_r1)
        vehicle.assign(request_r1, 8.0, 10.0, [(pickup, dropoff)])
        other = Request(start=12, destination=17, riders=1, request_id="R2")
        p2, d2 = stops_for(other)
        vehicle.assign(other, 5.0, 7.0, [(pickup, p2, dropoff, d2)])
        vehicle.pickup("R1")
        states = vehicle.request_states()
        assert set(states) == {"R1", "R2"}
        assert states["R1"].onboard and not states["R2"].onboard
