"""Unit tests for constant-speed vehicle motion."""

from __future__ import annotations

import random

import pytest

from repro.errors import SimulationError
from repro.roadnet.generators import figure1_network, grid_network
from repro.vehicles.movement import MotionState, plan_route, random_idle_route, step_along_route


@pytest.fixture
def network():
    return figure1_network()


class TestPlanRoute:
    def test_route_follows_shortest_path(self, network):
        state = plan_route(network, 1, 16)
        assert state.location == 1
        assert state.route[-1] == 16
        assert state.offset == 0.0

    def test_same_source_target(self, network):
        state = plan_route(network, 5, 5)
        assert not state.has_route
        assert state.next_vertex is None

    def test_remaining_distance(self, network):
        state = plan_route(network, 1, 2)
        assert state.remaining_distance(network) == pytest.approx(8.0)
        assert plan_route(network, 3, 3).remaining_distance(network) == 0.0


class TestRandomIdleRoute:
    def test_route_uses_adjacent_vertices(self, network):
        rng = random.Random(1)
        state = random_idle_route(network, 5, rng, hops=3)
        previous = 5
        for vertex in state.route:
            assert network.has_edge(previous, vertex)
            previous = vertex

    def test_invalid_hops(self, network):
        with pytest.raises(SimulationError):
            random_idle_route(network, 5, random.Random(1), hops=0)

    def test_isolated_vertex_gives_empty_route(self):
        network = grid_network(2, 2)
        network.add_vertex(99, x=5.0, y=5.0)
        state = random_idle_route(network, 99, random.Random(1))
        assert not state.has_route


class TestStepAlongRoute:
    def test_exact_arrival(self, network):
        state = plan_route(network, 1, 2)
        new_state, travelled, reached = step_along_route(network, state, 8.0)
        assert travelled == pytest.approx(8.0)
        assert reached == [2]
        assert new_state.location == 2
        assert not new_state.has_route

    def test_partial_edge_progress(self, network):
        state = plan_route(network, 1, 2)
        new_state, travelled, reached = step_along_route(network, state, 3.0)
        assert travelled == pytest.approx(3.0)
        assert reached == []
        assert new_state.location == 1
        assert new_state.offset == pytest.approx(3.0)
        assert new_state.next_vertex == 2

    def test_multi_edge_progress(self, network):
        state = plan_route(network, 1, 12)  # 1 -> 2 -> 12, lengths 8 and 6
        new_state, travelled, reached = step_along_route(network, state, 10.0)
        assert travelled == pytest.approx(10.0)
        assert reached == [2]
        assert new_state.location == 2
        assert new_state.offset == pytest.approx(2.0)

    def test_budget_beyond_route_end(self, network):
        state = plan_route(network, 1, 2)
        new_state, travelled, reached = step_along_route(network, state, 100.0)
        assert travelled == pytest.approx(8.0)
        assert new_state.location == 2
        assert not new_state.has_route

    def test_zero_budget(self, network):
        state = plan_route(network, 1, 2)
        new_state, travelled, reached = step_along_route(network, state, 0.0)
        assert travelled == 0.0
        assert new_state == state

    def test_negative_budget_rejected(self, network):
        state = plan_route(network, 1, 2)
        with pytest.raises(SimulationError):
            step_along_route(network, state, -1.0)

    def test_resuming_partial_progress(self, network):
        state = plan_route(network, 1, 2)
        state, _, _ = step_along_route(network, state, 3.0)
        state, travelled, reached = step_along_route(network, state, 5.0)
        assert travelled == pytest.approx(5.0)
        assert reached == [2]
        assert state.location == 2

    def test_total_distance_conserved(self, network):
        state = plan_route(network, 1, 17)
        expected = state.remaining_distance(network)
        total = 0.0
        for _ in range(100):
            state, travelled, _ = step_along_route(network, state, 1.7)
            total += travelled
            if not state.has_route:
                break
        assert total == pytest.approx(expected)
        assert state.location == 17

    def test_inconsistent_offset_detected(self, network):
        broken = MotionState(location=1, route=(2,), offset=100.0)
        with pytest.raises(SimulationError):
            step_along_route(network, broken, 1.0)
