"""Unit tests for the fleet index (per-cell vehicle lists)."""

from __future__ import annotations

import pytest

from repro.errors import UnknownVehicleError, VehicleError
from repro.model.request import Request
from repro.roadnet.generators import figure1_network
from repro.roadnet.grid_index import GridIndex
from repro.roadnet.shortest_path import DistanceOracle
from repro.vehicles.fleet import Fleet
from repro.vehicles.vehicle import Vehicle

from tests.conftest import assign_request


@pytest.fixture
def fleet() -> Fleet:
    network = figure1_network()
    grid = GridIndex(network, rows=4, columns=4)
    return Fleet(grid, DistanceOracle(network))


class TestRegistration:
    def test_add_and_get(self, fleet):
        vehicle = Vehicle("c1", location=1)
        fleet.add_vehicle(vehicle)
        assert fleet.get("c1") is vehicle
        assert "c1" in fleet
        assert len(fleet) == 1
        assert fleet.vehicle_ids() == ["c1"]

    def test_duplicate_id_rejected(self, fleet):
        fleet.add_vehicle(Vehicle("c1", location=1))
        with pytest.raises(VehicleError):
            fleet.add_vehicle(Vehicle("c1", location=2))

    def test_unknown_vehicle(self, fleet):
        with pytest.raises(UnknownVehicleError):
            fleet.get("nope")

    def test_empty_vehicle_registered_in_location_cell(self, fleet):
        fleet.add_vehicle(Vehicle("c1", location=1))
        cell = fleet.grid.cell_of_vertex(1)
        assert "c1" in cell.empty_vehicles
        assert fleet.get("c1").registered_cells == {cell.cell_id}

    def test_remove_vehicle_clears_cells(self, fleet):
        fleet.add_vehicle(Vehicle("c1", location=1))
        cell = fleet.grid.cell_of_vertex(1)
        fleet.remove_vehicle("c1")
        assert "c1" not in cell.empty_vehicles
        assert len(fleet) == 0

    def test_iteration_and_sorting(self, fleet):
        fleet.add_vehicle(Vehicle("c2", location=2))
        fleet.add_vehicle(Vehicle("c1", location=1))
        assert [vehicle.vehicle_id for vehicle in fleet.vehicles()] == ["c1", "c2"]
        assert {vehicle.vehicle_id for vehicle in fleet} == {"c1", "c2"}


class TestStateTransitions:
    def test_assignment_moves_vehicle_to_nonempty_lists(self, fleet):
        fleet.add_vehicle(Vehicle("c1", location=1))
        request = Request(start=2, destination=16, riders=2, request_id="R1")
        assign_request(fleet, "c1", request)
        vehicle = fleet.get("c1")
        assert not vehicle.is_empty
        location_cell = fleet.grid.cell_of_vertex(1)
        assert "c1" not in location_cell.empty_vehicles
        assert "c1" in location_cell.nonempty_vehicles
        # the cells of the schedule stops are registered too
        for vertex in (2, 16):
            assert "c1" in fleet.grid.cell_of_vertex(vertex).nonempty_vehicles

    def test_empty_and_nonempty_queries(self, fleet):
        fleet.add_vehicle(Vehicle("c1", location=1))
        fleet.add_vehicle(Vehicle("c2", location=13))
        request = Request(start=2, destination=16, riders=1, request_id="R1")
        assign_request(fleet, "c1", request)
        assert [v.vehicle_id for v in fleet.empty_vehicles()] == ["c2"]
        assert [v.vehicle_id for v in fleet.nonempty_vehicles()] == ["c1"]

    def test_refresh_after_location_change(self, fleet):
        fleet.add_vehicle(Vehicle("c1", location=1))
        vehicle = fleet.get("c1")
        old_cell = fleet.grid.cell_of_vertex(1)
        vehicle.set_location(17)
        fleet.refresh_vehicle("c1")
        new_cell = fleet.grid.cell_of_vertex(17)
        assert "c1" not in old_cell.empty_vehicles
        assert "c1" in new_cell.empty_vehicles

    def test_dropoff_returns_vehicle_to_empty_lists(self, fleet):
        fleet.add_vehicle(Vehicle("c1", location=1))
        request = Request(start=2, destination=16, riders=1, request_id="R1")
        assign_request(fleet, "c1", request)
        vehicle = fleet.get("c1")
        vehicle.pickup("R1")
        vehicle.dropoff("R1")
        vehicle.set_location(16)
        fleet.refresh_vehicle("c1")
        cell = fleet.grid.cell_of_vertex(16)
        assert "c1" in cell.empty_vehicles
        assert all("c1" not in c.nonempty_vehicles for c in fleet.grid.cells())

    def test_cell_queries(self, fleet):
        fleet.add_vehicle(Vehicle("c1", location=1))
        cell_id = fleet.grid.cell_of_vertex(1).cell_id
        assert [v.vehicle_id for v in fleet.empty_vehicles_in_cell(cell_id)] == ["c1"]
        assert fleet.nonempty_vehicles_in_cell(cell_id) == []


class TestFullPathRegistration:
    def test_full_path_registers_more_cells(self):
        network = figure1_network()
        grid_a = GridIndex(network, rows=4, columns=4)
        grid_b = GridIndex(network, rows=4, columns=4)
        sparse = Fleet(grid_a, DistanceOracle(network), register_full_paths=False)
        dense = Fleet(grid_b, DistanceOracle(network), register_full_paths=True)
        for fleet in (sparse, dense):
            fleet.add_vehicle(Vehicle("c1", location=1))
            request = Request(start=2, destination=17, riders=1, request_id=f"R-{id(fleet)}")
            assign_request(fleet, "c1", request)
        assert dense.get("c1").registered_cells >= sparse.get("c1").registered_cells


class TestStatistics:
    def test_occupancy_statistics_empty_fleet(self, fleet):
        stats = fleet.occupancy_statistics()
        assert stats["vehicles"] == 0.0

    def test_occupancy_statistics(self, fleet):
        fleet.add_vehicle(Vehicle("c1", location=1))
        fleet.add_vehicle(Vehicle("c2", location=13))
        request = Request(start=2, destination=16, riders=2, request_id="R1")
        assign_request(fleet, "c1", request)
        fleet.get("c1").pickup("R1")
        stats = fleet.occupancy_statistics()
        assert stats["vehicles"] == 2.0
        assert stats["empty"] == 1.0
        assert stats["nonempty"] == 1.0
        assert stats["average_occupancy"] == pytest.approx(1.0)
