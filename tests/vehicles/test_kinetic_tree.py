"""Unit tests for the kinetic tree (Section 3.2.2, Fig. 3)."""

from __future__ import annotations

import pytest

from repro.errors import InvalidScheduleError
from repro.model.request import Request
from repro.model.stops import Stop, StopKind
from repro.roadnet.generators import figure1_network
from repro.roadnet.shortest_path import DistanceOracle
from repro.vehicles.kinetic_tree import KineticTree
from repro.vehicles.schedule import RequestState


@pytest.fixture
def oracle() -> DistanceOracle:
    return DistanceOracle(figure1_network())


def stops_for(request: Request) -> tuple:
    return (
        Stop(request.start, request.request_id, StopKind.PICKUP, request.riders),
        Stop(request.destination, request.request_id, StopKind.DROPOFF, request.riders),
    )


@pytest.fixture
def r1() -> Request:
    return Request(start=2, destination=16, riders=2, request_id="R1")


@pytest.fixture
def r2() -> Request:
    return Request(start=12, destination=17, riders=2, request_id="R2")


class TestBasics:
    def test_empty_tree(self):
        tree = KineticTree(root_location=1)
        assert tree.is_empty
        assert tree.schedules() == []
        assert tree.schedule_count() == 0
        assert tree.stops() == []

    def test_set_schedules_deduplicates(self, r1):
        p1, d1 = stops_for(r1)
        tree = KineticTree(1, schedules=[(p1, d1), (p1, d1)])
        assert tree.schedule_count() == 1

    def test_set_schedules_requires_same_stop_set(self, r1, r2):
        p1, d1 = stops_for(r1)
        p2, d2 = stops_for(r2)
        with pytest.raises(InvalidScheduleError):
            KineticTree(1, schedules=[(p1, d1), (p2, d2)])

    def test_orderings_of_same_stops_accepted(self, r1, r2):
        p1, d1 = stops_for(r1)
        p2, d2 = stops_for(r2)
        tree = KineticTree(1, schedules=[(p1, d1, p2, d2), (p1, p2, d1, d2)])
        assert tree.schedule_count() == 2
        assert len(tree.stops()) == 4
        assert tree.stop_vertices() == [2, 12, 16, 17]

    def test_clear(self, r1):
        p1, d1 = stops_for(r1)
        tree = KineticTree(1, schedules=[(p1, d1)])
        tree.clear()
        assert tree.is_empty


class TestQueries:
    def test_best_schedule_minimises_distance(self, oracle, r1, r2):
        p1, d1 = stops_for(r1)
        p2, d2 = stops_for(r2)
        long_order = (p1, p2, d2, d1)
        short_order = (p1, p2, d1, d2)
        tree = KineticTree(1, schedules=[long_order, short_order])
        best = tree.best_schedule(oracle.distance)
        assert best in (long_order, short_order)
        from repro.vehicles.schedule import schedule_distance

        assert schedule_distance(1, best, oracle.distance) == min(
            schedule_distance(1, long_order, oracle.distance),
            schedule_distance(1, short_order, oracle.distance),
        )

    def test_best_schedule_empty_tree(self, oracle):
        assert KineticTree(1).best_schedule(oracle.distance) is None
        assert KineticTree(1).next_stop(oracle.distance) is None

    def test_next_stop(self, oracle, r1):
        p1, d1 = stops_for(r1)
        tree = KineticTree(1, schedules=[(p1, d1)])
        assert tree.next_stop(oracle.distance) == p1

    def test_total_distance(self, oracle, r1):
        p1, d1 = stops_for(r1)
        tree = KineticTree(1, schedules=[(p1, d1)])
        assert tree.total_distance(oracle.distance) == pytest.approx(18.0)
        assert KineticTree(1).total_distance(oracle.distance) == 0.0


class TestAdvance:
    def test_advance_through_prunes_and_moves_root(self, oracle, r1, r2):
        p1, d1 = stops_for(r1)
        p2, d2 = stops_for(r2)
        tree = KineticTree(1, schedules=[(p1, d1, p2, d2), (p1, p2, d1, d2), (p1, p2, d2, d1)])
        tree.advance_through(p1)
        assert tree.root_location == p1.vertex
        assert tree.schedule_count() == 3
        assert all(schedule[0] != p1 for schedule in tree.schedules())

    def test_advance_through_wrong_stop_raises(self, r1, r2):
        p1, d1 = stops_for(r1)
        tree = KineticTree(1, schedules=[(p1, d1)])
        p2, _ = stops_for(r2)
        with pytest.raises(InvalidScheduleError):
            tree.advance_through(p2)

    def test_advance_to_empty(self, r1):
        p1, d1 = stops_for(r1)
        tree = KineticTree(1, schedules=[(p1, d1)])
        tree.advance_through(p1)
        tree.advance_through(d1)
        assert tree.is_empty
        assert tree.root_location == d1.vertex

    def test_prune(self, r1, r2):
        p1, d1 = stops_for(r1)
        p2, d2 = stops_for(r2)
        keep = (p1, p2, d1, d2)
        tree = KineticTree(1, schedules=[keep, (p1, p2, d2, d1)])
        tree.prune([keep])
        assert tree.schedules() == [keep]


class TestMaterialisedTree:
    def test_prefix_sharing(self, oracle, r1, r2):
        p1, d1 = stops_for(r1)
        p2, d2 = stops_for(r2)
        tree = KineticTree(1, schedules=[(p1, p2, d1, d2), (p1, p2, d2, d1)])
        root = tree.build_tree(oracle.distance, capacity=4)
        # Both schedules share the p1 -> p2 prefix, then fork.
        assert len(root.children) == 1
        assert root.children[0].stop == p1
        assert root.branch_count() == 2
        assert root.node_count() == 1 + 2 + 2 * 2  # root + shared prefix + two forks of two stops

    def test_annotations(self, oracle, r1):
        p1, d1 = stops_for(r1)
        tree = KineticTree(1, schedules=[(p1, d1)])
        states = {
            "R1": RequestState(
                request=r1, onboard=False, direct_distance=oracle.distance(2, 16),
                planned_pickup_remaining=8.0,
            )
        }
        root = tree.build_tree(oracle.distance, capacity=4, request_states=states)
        pickup_node = root.children[0]
        assert pickup_node.occupancy == 2
        assert pickup_node.dist_from_root == pytest.approx(8.0)
        dropoff_node = pickup_node.children[0]
        assert dropoff_node.occupancy == 0
        assert dropoff_node.dist_from_root == pytest.approx(18.0)
        assert dropoff_node.detour_slack >= 0.0

    def test_iter_branches_matches_schedules(self, oracle, r1, r2):
        p1, d1 = stops_for(r1)
        p2, d2 = stops_for(r2)
        schedules = [(p1, p2, d1, d2), (p1, p2, d2, d1)]
        tree = KineticTree(1, schedules=schedules)
        root = tree.build_tree(oracle.distance, capacity=4)
        branches = set(root.iter_branches())
        assert branches == set(schedules)
