"""Unit tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import errors


class TestHierarchy:
    def test_every_library_error_derives_from_the_base(self):
        for name in errors.__dict__:
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) and obj is not errors.PTRiderError:
                if obj.__module__ == "repro.errors":
                    assert issubclass(obj, errors.PTRiderError), name

    def test_lookup_errors_are_also_key_errors(self):
        assert issubclass(errors.VertexNotFoundError, KeyError)
        assert issubclass(errors.EdgeNotFoundError, KeyError)
        assert issubclass(errors.UnknownVehicleError, KeyError)
        assert issubclass(errors.UnknownOptionError, KeyError)

    def test_validation_errors_are_also_value_errors(self):
        assert issubclass(errors.RequestError, ValueError)
        assert issubclass(errors.ConfigurationError, ValueError)
        assert issubclass(errors.InvalidScheduleError, ValueError)
        assert issubclass(errors.CapacityExceededError, ValueError)


class TestMessages:
    def test_vertex_not_found_carries_vertex(self):
        error = errors.VertexNotFoundError(42)
        assert error.vertex == 42
        assert "42" in str(error)

    def test_edge_not_found_carries_endpoints(self):
        error = errors.EdgeNotFoundError(1, 2)
        assert (error.u, error.v) == (1, 2)

    def test_disconnected_carries_endpoints(self):
        error = errors.DisconnectedError(3, 9)
        assert (error.source, error.target) == (3, 9)
        assert "3" in str(error) and "9" in str(error)

    def test_unknown_vehicle_carries_id(self):
        error = errors.UnknownVehicleError("c9")
        assert error.vehicle_id == "c9"

    def test_no_match_carries_request(self):
        error = errors.NoMatchError("R1")
        assert error.request == "R1"

    def test_catching_the_base_class_catches_everything(self):
        with pytest.raises(errors.PTRiderError):
            raise errors.CapacityExceededError("full")
        with pytest.raises(errors.PTRiderError):
            raise errors.SimulationError("boom")
