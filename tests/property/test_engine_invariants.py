"""Property-based invariants of the simulation engine.

Whatever the seed, the workload or the fleet, a finished (or interrupted)
simulation must satisfy conservation laws: requests are never lost or double
counted, vehicles never exceed their capacity, pick-ups precede drop-offs,
and the realised detours and waiting slips respect the constraints that were
promised when the options were accepted.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SystemConfig
from repro.core.dispatcher import Dispatcher, OptionPolicy
from repro.core.single_side import SingleSideSearchMatcher
from repro.roadnet.generators import grid_network
from repro.roadnet.grid_index import GridIndex
from repro.roadnet.shortest_path import DistanceOracle
from repro.sim.engine import SimulationEngine
from repro.sim.trips import ShanghaiLikeTripGenerator
from repro.sim.workload import RequestWorkload
from repro.vehicles.fleet import Fleet
from repro.vehicles.vehicle import Vehicle


@st.composite
def simulation_cases(draw):
    seed = draw(st.integers(min_value=0, max_value=20_000))
    vehicles = draw(st.integers(min_value=1, max_value=8))
    trips = draw(st.integers(min_value=1, max_value=25))
    duration = draw(st.sampled_from([40.0, 80.0, 150.0]))
    epsilon = draw(st.sampled_from([0.2, 0.5, 1.0]))
    waiting = draw(st.sampled_from([2.0, 6.0, 12.0]))
    return seed, vehicles, trips, duration, epsilon, waiting


@given(simulation_cases())
@settings(max_examples=20, deadline=None)
def test_simulation_conservation_laws(case):
    seed, vehicle_count, trip_count, duration, epsilon, waiting = case
    network = grid_network(7, 7, weight_jitter=0.3, seed=seed)
    grid = GridIndex(network, rows=3, columns=3)
    fleet = Fleet(grid, DistanceOracle(network))
    rng = random.Random(seed)
    for index in range(vehicle_count):
        fleet.add_vehicle(Vehicle(f"c{index + 1}", location=rng.choice(network.vertices())))
    config = SystemConfig(max_waiting=waiting, service_constraint=epsilon, max_pickup_distance=15.0)
    dispatcher = Dispatcher(fleet, SingleSideSearchMatcher(fleet, config=config), config)
    trips = ShanghaiLikeTripGenerator(network, seed=seed).generate(trip_count, day_seconds=duration)
    workload = RequestWorkload.from_trips(trips, waiting, epsilon)
    engine = SimulationEngine(dispatcher, workload, speed=1.0, tick=1.0, seed=seed,
                              policy=OptionPolicy.CHEAPEST)
    report = engine.run(until=duration + 150.0)
    stats = report.statistics

    # conservation of requests
    assert stats.total_requests == trip_count
    assert stats.matched_requests + stats.unmatched_requests == trip_count
    assert stats.completed_requests <= stats.matched_requests
    assert stats.dropoffs == stats.completed_requests
    assert stats.pickups >= stats.dropoffs
    assert stats.shared_requests <= stats.completed_requests

    # in-flight bookkeeping matches the fleet
    in_flight = sum(len(vehicle.request_states()) for vehicle in fleet.vehicles())
    assert in_flight == stats.matched_requests - stats.completed_requests

    # vehicle-level invariants
    for vehicle in fleet.vehicles():
        assert 0 <= vehicle.occupancy <= vehicle.capacity
        assert vehicle.occupied_distance <= vehicle.distance_driven + 1e-9

    # promised constraints were honoured for completed trips
    for ratio in stats.detour_ratios:
        assert ratio <= 1.0 + epsilon + 1e-6
    for slip in stats.waiting_distances:
        assert slip <= waiting + 1e-6
