"""Backpressure invariants of the micro-batched ingest queue.

Random surge schedules -- interleavings of admissions, time advances, pumps
and explicit flushes -- are driven against a bounded
:class:`~repro.service.ingest.MicroBatcher` under both full-queue policies.
Whatever the schedule:

* the pending queue NEVER exceeds ``queue_capacity`` (the tentpole's
  "bounded, never unbounded buffering" claim);
* under ``"shed"`` a refused admission is counted, and only full queues
  refuse;
* under ``"block"`` no admission is ever refused (a full queue drains
  inline first);
* conservation holds at every step: every admitted request is answered,
  still pending, or accounted to a counted exit -- ``admitted == answered +
  pending + errored + cancelled + evicted`` -- and sheds never enter the
  queue.

Every request here carries the same ``max_waiting`` under a monotone clock,
so deadline-ordered eviction never fires (an incoming admission is always
the loosest) and the classic backpressure behaviour is pinned unchanged;
the eviction order itself is property-tested in
``tests/property/test_deadline_shedding.py``.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SystemConfig
from repro.core.dispatcher import Dispatcher
from repro.core.single_side import SingleSideSearchMatcher
from repro.model.request import Request
from repro.roadnet.generators import grid_network
from repro.roadnet.grid_index import GridIndex
from repro.roadnet.routing import make_engine
from repro.service.ingest import MicroBatcher
from repro.vehicles.fleet import Fleet
from repro.vehicles.vehicle import Vehicle

_NETWORK = grid_network(6, 6, weight_jitter=0.2, seed=5)
_VERTICES = _NETWORK.vertices()


def _build_batcher(queue_capacity, queue_policy, batch_window=2.0, max_batch_size=64):
    grid = GridIndex(_NETWORK, rows=3, columns=3)
    fleet = Fleet(grid, make_engine(_NETWORK, "dict"))
    for index in range(4):
        fleet.add_vehicle(
            Vehicle(f"c{index + 1}", location=_VERTICES[(index * 9) % len(_VERTICES)], capacity=4)
        )
    config = SystemConfig(max_waiting=6.0, service_constraint=0.5)
    matcher = SingleSideSearchMatcher(fleet, config=config)
    dispatcher = Dispatcher(fleet, matcher, config)
    return MicroBatcher(
        dispatcher,
        batch_window=batch_window,
        max_batch_size=max_batch_size,
        queue_capacity=queue_capacity,
        queue_policy=queue_policy,
    )


def _request(index: int, submit: float) -> Request:
    start = _VERTICES[(index * 5) % len(_VERTICES)]
    destination = _VERTICES[(index * 5 + 7) % len(_VERTICES)]
    if destination == start:
        destination = _VERTICES[(index * 5 + 8) % len(_VERTICES)]
    return Request(
        start=start, destination=destination, riders=1, max_waiting=6.0,
        service_constraint=0.5, request_id=f"S{index}", submit_time=submit,
    )


#: One schedule step: admit a burst of N requests, advance time by dt and
#: pump, or force a flush.
_steps = st.lists(
    st.one_of(
        st.tuples(st.just("admit"), st.integers(min_value=1, max_value=6)),
        st.tuples(st.just("tick"), st.floats(min_value=0.1, max_value=3.0,
                                             allow_nan=False)),
        st.tuples(st.just("flush"), st.just(0)),
    ),
    min_size=1,
    max_size=10,
)


def _check_conservation(batcher):
    stats = batcher.statistics
    assert stats.admitted == (
        stats.answered + batcher.pending + stats.errored
        + stats.cancelled + stats.evicted
    )


def _drive(batcher, steps, capacity, policy):
    """Run one schedule, checking the invariants after every operation."""
    clock = 0.0
    sequence = 0
    refused = 0
    for kind, value in steps:
        if kind == "admit":
            for _ in range(value):
                sequence += 1
                admitted = batcher.submit(_request(sequence, clock), now=clock)
                if not admitted:
                    refused += 1
                    # only the shed policy refuses, and only when full
                    assert policy == "shed"
                    assert batcher.pending == capacity
                if capacity is not None:
                    assert batcher.pending <= capacity
                _check_conservation(batcher)
        elif kind == "tick":
            clock += value
            batcher.pump(now=clock)
            _check_conservation(batcher)
        else:
            batcher.flush(now=clock)
            assert batcher.pending == 0
            _check_conservation(batcher)
    assert batcher.statistics.shed == refused
    assert batcher.statistics.peak_queue_depth <= (capacity or sequence)
    return refused


@settings(max_examples=20, deadline=None)
@given(steps=_steps, capacity=st.integers(min_value=1, max_value=8))
def test_shed_policy_never_exceeds_capacity(steps, capacity):
    batcher = _build_batcher(capacity, "shed")
    _drive(batcher, steps, capacity, "shed")
    # sheds never entered the queue: the books balance without them
    stats = batcher.statistics
    assert stats.admitted + stats.shed >= stats.admitted
    _check_conservation(batcher)


@settings(max_examples=20, deadline=None)
@given(steps=_steps, capacity=st.integers(min_value=1, max_value=8))
def test_block_policy_never_refuses_and_stays_bounded(steps, capacity):
    batcher = _build_batcher(capacity, "block")
    refused = _drive(batcher, steps, capacity, "block")
    assert refused == 0
    assert batcher.statistics.shed == 0
    _check_conservation(batcher)


@settings(max_examples=15, deadline=None)
@given(steps=_steps)
def test_unbounded_queue_sheds_nothing(steps):
    batcher = _build_batcher(None, "shed")
    refused = _drive(batcher, steps, None, "shed")
    assert refused == 0
    _check_conservation(batcher)


@settings(max_examples=15, deadline=None)
@given(steps=_steps, size=st.integers(min_value=1, max_value=5))
def test_size_closed_windows_respect_capacity(steps, size):
    """max_batch_size below capacity: inline flushes keep the queue small."""
    batcher = _build_batcher(8, "shed", max_batch_size=size)
    sequence = 1000
    for kind, value in steps:
        if kind == "admit":
            for _ in range(value):
                sequence += 1
                batcher.submit(_request(sequence, 0.0), now=0.0)
                # a size-closed window flushes at admission time, so the
                # queue can never even reach the capacity bound
                assert batcher.pending < size
                _check_conservation(batcher)
        elif kind == "tick":
            batcher.pump(now=float(value))
        else:
            batcher.flush(now=0.0)
    _check_conservation(batcher)
