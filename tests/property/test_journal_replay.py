"""Replay properties of the durability journal.

Random event scripts -- interleavings of per-request bookings, ingest
admissions, pumps, drains, choices, cancellations and time advances -- are
driven against a durable service, then its journal is recovered several
ways.  Whatever the script:

* **snapshot + tail == full-journal replay**: recovering from the newest
  periodic snapshot plus the record tail lands on exactly the state a
  full replay from the baseline produces (and both equal the pre-crash
  service);
* **replay is idempotent**: re-applying an already-applied tail is a
  no-op -- every record at or below the applied high-water mark is
  skipped;
* **records apply in sequence-number order regardless of arrival order**:
  feeding :func:`~repro.service.recovery.replay_records` a shuffled tail
  produces the same state as the ordered tail.

Equality is ``==`` on :func:`~repro.service.recovery.canonical_state` --
the full serialized service state (bookings, vehicle kinetic trees, fleet
positions, engine bookkeeping, statistics counters) minus wall-clock
measurements no two runs agree on.
"""

from __future__ import annotations

import random
import shutil
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ServiceError
from repro.model.request import Request
from repro.service.api import PTRiderService, build_system
from repro.service.journal import ServiceJournal
from repro.service.recovery import canonical_state, replay_records

# One event of a script: (kind, argument)
_EVENTS = st.one_of(
    st.tuples(st.just("book"), st.integers(0, 40)),
    st.tuples(st.just("ingest"), st.integers(0, 40)),
    st.tuples(st.just("pump"), st.just(0)),
    st.tuples(st.just("drain"), st.just(0)),
    st.tuples(st.just("advance"), st.sampled_from([1, 2, 3])),
    st.tuples(st.just("cancel_last"), st.just(0)),
)


def _drive(service, script):
    """Run one event script; returns normally whatever the script does."""
    vertices = service.fleet.grid.network.vertices()
    counter = 0
    last_request_id = None
    for kind, value in script:
        if kind in ("book", "ingest"):
            counter += 1
            start = vertices[(value * 7) % len(vertices)]
            destination = vertices[(value * 7 + 23) % len(vertices)]
            if destination == start:
                destination = vertices[(value * 7 + 24) % len(vertices)]
            request = Request(
                start=start,
                destination=destination,
                riders=1 + value % 3,
                max_waiting=service.config.max_waiting,
                service_constraint=service.config.service_constraint,
                request_id=f"P{counter}",
                submit_time=service.current_time,
            )
            if kind == "book":
                booking = service.book_request(request)
                if booking.options:
                    service.choose(booking.booking_id, 0)
                else:
                    service.cancel(booking.booking_id)
            else:
                service.ingest_request(request)
                last_request_id = request.request_id
        elif kind == "pump":
            service.pump()
        elif kind == "drain":
            service.drain()
        elif kind == "advance":
            service.advance(float(value))
        elif kind == "cancel_last" and last_request_id is not None:
            try:
                # Pending: removed from the window.  Already flushed: the
                # id names no booking, so the service raises the same
                # deterministic error live and on replay.
                service.cancel(last_request_id)
            except ServiceError:
                pass


@settings(max_examples=6, deadline=None)
@given(script=st.lists(_EVENTS, min_size=4, max_size=18), shuffle_seed=st.integers(0, 2**16))
def test_replay_properties(script, shuffle_seed):
    tmp = tempfile.mkdtemp(prefix="ptrider-journal-")
    try:
        service = build_system(
            vehicles=5,
            seed=13,
            network_rows=8,
            network_columns=8,
            durability="journal+snapshot",
            journal_path=tmp,
            snapshot_interval=4,
        )
        _drive(service, script)
        expected = canonical_state(service)
        service._journal.close()  # crash: no drain, no clean shutdown

        # snapshot + tail == full-journal replay == the pre-crash service
        from_snapshot = PTRiderService.recover(tmp)
        from_baseline = PTRiderService.recover(tmp, prefer_snapshot=False)
        assert canonical_state(from_snapshot) == expected
        assert canonical_state(from_baseline) == expected

        # idempotence: re-applying the already-applied tail is a no-op
        journal = from_snapshot.journal
        tail = journal.records()
        replay_records(from_snapshot, tail)
        replay_records(from_snapshot, tail)
        assert canonical_state(from_snapshot) == expected

        # order-independence: a shuffled tail replays to the same state
        shuffled = list(journal.records())
        random.Random(shuffle_seed).shuffle(shuffled)
        reordered, _seq = PTRiderService._resume_at_snapshot(
            ServiceJournal(tmp), prefer_snapshot=False
        )
        replay_records(reordered, shuffled)
        assert canonical_state(reordered) == expected
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
