"""Property-based tests on schedule feasibility and option invariants."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SystemConfig
from repro.core.insertion import insertion_candidates
from repro.core.naive import NaiveKineticTreeMatcher
from repro.core.pricing import LinearPriceModel, rider_price_ratio
from repro.model.request import Request
from repro.roadnet.generators import grid_network
from repro.vehicles.schedule import evaluate_schedule
from repro.vehicles.vehicle import Vehicle

from tests.conftest import assign_request, build_fleet


@st.composite
def busy_vehicle_and_request(draw):
    """A vehicle (possibly already serving a request) plus a probe request."""
    seed = draw(st.integers(min_value=0, max_value=50_000))
    rng = random.Random(seed)
    network = grid_network(5, 5, weight_jitter=0.4, seed=seed)
    vertices = network.vertices()
    fleet = build_fleet(network, [rng.choice(vertices)], grid_rows=3, grid_columns=3)
    if draw(st.booleans()):
        start, destination = rng.sample(vertices, 2)
        seed_request = Request(
            start=start, destination=destination, riders=rng.randint(1, 2),
            max_waiting=8.0, service_constraint=0.8, request_id=f"pre-{seed}",
        )
        try:
            assign_request(fleet, "c1", seed_request)
        except AssertionError:
            pass
    start, destination = rng.sample(vertices, 2)
    probe = Request(
        start=start, destination=destination, riders=rng.randint(1, 3),
        max_waiting=8.0, service_constraint=0.8, request_id=f"probe-{seed}",
    )
    return fleet, probe


@given(busy_vehicle_and_request())
@settings(max_examples=50, deadline=None)
def test_candidates_respect_every_definition2_condition(case):
    """Every insertion candidate honours capacity, point order, waiting and service constraints."""
    fleet, probe = case
    vehicle = fleet.get("c1")
    oracle = fleet.oracle
    candidates = insertion_candidates(vehicle, probe, oracle, fleet.grid)
    states = dict(vehicle.request_states())
    for candidate in candidates:
        metrics = evaluate_schedule(vehicle.location, candidate.schedule, oracle.distance, vehicle.offset)
        # capacity along the schedule
        occupancy = vehicle.occupancy
        for stop in candidate.schedule:
            occupancy += stop.occupancy_delta
            assert 0 <= occupancy <= vehicle.capacity
        # point order for the probe
        vertices = [stop for stop in candidate.schedule if stop.request_id == probe.request_id]
        assert vertices[0].is_pickup and vertices[1].is_dropoff
        # waiting-time condition for the pre-assigned request
        for request_id, state in states.items():
            if not state.onboard:
                assert metrics.pickup_distance[request_id] <= state.waiting_budget() + 1e-6
            travelled = metrics.dropoff_distance[request_id] - (
                metrics.pickup_distance.get(request_id, 0.0) if not state.onboard else 0.0
            )
            assert travelled <= state.remaining_service_budget() + 1e-6
        # service condition for the probe itself
        probe_travel = metrics.dropoff_distance[probe.request_id] - metrics.pickup_distance[probe.request_id]
        direct = oracle.distance(probe.start, probe.destination)
        assert probe_travel <= probe.detour_budget(direct) + 1e-6


@given(busy_vehicle_and_request())
@settings(max_examples=50, deadline=None)
def test_option_prices_match_the_price_model(case):
    """price == f_n * (added + direct) for every returned option."""
    fleet, probe = case
    config = SystemConfig(max_waiting=8.0, service_constraint=0.8)
    matcher = NaiveKineticTreeMatcher(fleet, config=config)
    direct = fleet.oracle.distance(probe.start, probe.destination)
    ratio = rider_price_ratio(probe.riders)
    for option in matcher.match(probe):
        assert option.price >= ratio * direct - 1e-9
        # The matcher's `direct` comes from the request-rooted tree while this
        # test recomputes it through the oracle, whose symmetric cache reuse
        # may sum the same path in the opposite order -- allow ulp noise.
        assert option.price == pytest.approx(
            LinearPriceModel().price(probe.riders, option.added_distance, direct), rel=1e-12
        )
        assert option.pickup_distance >= fleet.grid.distance_lower_bound(
            fleet.get(option.vehicle_id).location, probe.start
        ) - 1e-9


@given(
    riders=st.integers(min_value=1, max_value=6),
    added=st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
    direct=st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
)
@settings(max_examples=200)
def test_price_model_properties(riders, added, direct):
    model = LinearPriceModel()
    price = model.price(riders, added, direct)
    assert price >= 0.0
    assert price >= model.minimum_price(riders, direct) - 1e-12
    # monotone in every argument
    assert model.price(riders, added + 1.0, direct) >= price
    assert model.price(riders, added, direct + 1.0) >= price
    assert model.price(riders + 1, added, direct) >= price
