"""Property-based tests: the grid index's distance bounds are admissible.

The single-side and dual-side matchers rely on the invariant that
``GridIndex.distance_lower_bound(u, v) <= dist(u, v)`` for every vertex pair;
if that ever failed, a qualifying vehicle could be pruned and the skyline
would silently lose options.  The tests below generate random networks and
random grid granularities and check the invariant exhaustively on samples.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.matcher import added_distance_lower_bound
from repro.model.request import Request
from repro.roadnet.generators import grid_network, random_geometric_network
from repro.roadnet.grid_index import GridIndex
from repro.roadnet.shortest_path import DistanceOracle, shortest_path_distance
from repro.vehicles.vehicle import Vehicle

from tests.conftest import assign_request, build_fleet


@given(
    rows=st.integers(min_value=2, max_value=6),
    columns=st.integers(min_value=2, max_value=6),
    grid_rows=st.integers(min_value=1, max_value=5),
    grid_columns=st.integers(min_value=1, max_value=5),
    jitter=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=40, deadline=None)
def test_cell_lower_bounds_are_admissible_on_grid_networks(
    rows, columns, grid_rows, grid_columns, jitter, seed
):
    network = grid_network(rows, columns, weight_jitter=jitter, seed=seed)
    index = GridIndex(network, rows=grid_rows, columns=grid_columns)
    vertices = network.vertices()
    sample = vertices[:: max(1, len(vertices) // 8)]
    for u in sample:
        for v in sample:
            bound = index.distance_lower_bound(u, v)
            if math.isinf(bound):
                continue
            assert bound <= shortest_path_distance(network, u, v) + 1e-9


@given(
    count=st.integers(min_value=10, max_value=40),
    radius=st.floats(min_value=0.15, max_value=0.5),
    grid_rows=st.integers(min_value=1, max_value=4),
    grid_columns=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=25, deadline=None)
def test_cell_lower_bounds_are_admissible_on_geometric_networks(
    count, radius, grid_rows, grid_columns, seed
):
    network = random_geometric_network(count, radius=radius, seed=seed)
    index = GridIndex(network, rows=grid_rows, columns=grid_columns)
    vertices = network.vertices()
    sample = vertices[:: max(1, len(vertices) // 6)]
    for u in sample:
        for v in sample:
            bound = index.distance_lower_bound(u, v)
            if math.isinf(bound):
                continue
            assert bound <= shortest_path_distance(network, u, v) + 1e-9


@given(
    seed=st.integers(min_value=0, max_value=5_000),
    vehicle_vertex=st.integers(min_value=1, max_value=36),
    start=st.integers(min_value=1, max_value=36),
    destination=st.integers(min_value=1, max_value=36),
)
@settings(max_examples=40, deadline=None)
def test_added_distance_lower_bound_is_admissible(seed, vehicle_vertex, start, destination):
    """The destination-side bound never exceeds the true added distance of any insertion."""
    if start == destination:
        return
    network = grid_network(6, 6, weight_jitter=0.4, seed=seed)
    fleet = build_fleet(network, [vehicle_vertex], grid_rows=3, grid_columns=3)
    oracle = fleet.oracle
    seed_request = Request(
        start=start, destination=destination, riders=1, max_waiting=1e9, service_constraint=10.0,
        request_id=f"seed-{seed}",
    )
    assign_request(fleet, "c1", seed_request)
    vehicle = fleet.get("c1")

    probe = (vehicle_vertex % 36) + 1
    bound = added_distance_lower_bound(vehicle, probe, fleet.grid, oracle)

    # true minimal added distance over every insertion position of the probe stop
    for schedule in vehicle.kinetic_tree.schedules():
        vertices = [vehicle.location] + [stop.vertex for stop in schedule]
        best = min(
            oracle.distance(vertices[i], probe) + oracle.distance(probe, vertices[i + 1])
            - oracle.distance(vertices[i], vertices[i + 1])
            for i in range(len(vertices) - 1)
        )
        best = min(best, oracle.distance(vertices[-1], probe))
        assert bound <= best + 1e-9
