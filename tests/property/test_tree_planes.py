"""Property tests for vectorised tree planes and the all-pairs table backend.

The batch prefetch path computes many start-rooted trees with one
``scipy.csgraph.dijkstra(indices=[...])`` call and the table backend builds
its all-pairs matrix from the same plane primitive, so the whole vectorised
stack rests on one claim: a plane row is **bit-identical** to the tree the
single-source path computes for that source.  If the claim ever broke, the
batched pipeline would stop reproducing the sequential loop's floats and the
byte-identical dispatch property would fail far from the cause.  The tests
below pin the claim directly, on both the SciPy and the pure-Python path,
and pin the table backend to the CSR engine float-for-float.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.roadnet import routing
from repro.roadnet.generators import grid_network
from repro.roadnet.routing import CSREngine, CSRGraph, TableEngine

HAVE_SCIPY = routing._csgraph_dijkstra is not None  # noqa: SLF001


def _sample_indices(graph, seed, count):
    step = max(1, len(graph) // count)
    offset = seed % step
    return list(range(offset, len(graph), step))


@st.composite
def grids(draw):
    rows = draw(st.integers(min_value=2, max_value=7))
    columns = draw(st.integers(min_value=2, max_value=7))
    jitter = draw(st.floats(min_value=0.0, max_value=1.0))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return grid_network(rows, columns, weight_jitter=jitter, seed=seed), seed


@pytest.mark.skipif(not HAVE_SCIPY, reason="exercises the SciPy plane path")
@given(grids())
@settings(max_examples=30, deadline=None)
def test_scipy_plane_rows_bit_identical_to_single_source_trees(case):
    network, seed = case
    graph = CSRGraph(network)
    indices = _sample_indices(graph, seed, count=5)
    plane = graph.trees(indices)
    assert plane.shape == (len(indices), len(graph))
    for position, index in enumerate(indices):
        single = graph.tree(index)
        # Bit-identical, not approximately equal: the batched pipeline's
        # byte-identical dispatch guarantee rests on exact float equality.
        assert list(plane[position]) == list(single)


@given(grids())
@settings(max_examples=20, deadline=None)
def test_pure_python_plane_rows_bit_identical_to_single_source_trees(case):
    network, seed = case
    graph = CSRGraph(network)
    graph.matrix = None  # force the pure-Python fallback for both paths
    indices = _sample_indices(graph, seed, count=4)
    plane = graph.trees(indices)
    assert len(plane) == len(indices)
    for position, index in enumerate(indices):
        assert list(plane[position]) == list(graph.tree(index))


@given(grids())
@settings(max_examples=20, deadline=None)
def test_table_engine_distances_bit_identical_to_csr(case):
    """On strongly connected grids the table is float-for-float the CSR engine."""
    network, seed = case
    table = TableEngine(network)
    csr = CSREngine(network)
    vertices = network.vertices()
    step = max(1, len(vertices) // 6)
    sample = vertices[seed % step :: step]
    for u in sample:
        for v in sample:
            assert table.distance(u, v) == csr.distance(u, v)
    for source in sample[:3]:
        table_tree = table.distances_from(source)
        csr_tree = csr.distances_from(source)
        assert set(table_tree) == set(csr_tree)
        assert {v: table_tree[v] for v in table_tree} == {v: csr_tree[v] for v in csr_tree}


@given(grids())
@settings(max_examples=20, deadline=None)
def test_prefetched_trees_bit_identical_to_on_demand_trees(case):
    """The prefetch plane serves the very floats distances_from would compute."""
    network, seed = case
    vertices = network.vertices()
    step = max(1, len(vertices) // 5)
    sources = vertices[seed % step :: step]

    prefetching = CSREngine(network)
    views = prefetching.prefetch_trees(sources)
    assert set(views) == set(sources)
    assert prefetching.stats.dijkstra_runs == len(set(sources))

    on_demand = CSREngine(network)
    for source in sources:
        fresh = on_demand.distances_from(source)
        view = views[source]
        assert set(view) == set(fresh)
        assert {v: view[v] for v in view} == {v: fresh[v] for v in fresh}


@given(grids())
@settings(max_examples=15, deadline=None)
def test_table_lower_bound_is_exact_and_admissible(case):
    network, seed = case
    engine = TableEngine(network)
    vertices = network.vertices()
    step = max(1, len(vertices) // 5)
    sample = vertices[seed % step :: step]
    for u in sample:
        for v in sample:
            assert engine.distance_lower_bound(u, v) == engine.distance(u, v)
