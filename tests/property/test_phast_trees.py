"""Property tests: PHAST tree planes are bit-identical to CSR tree rows.

The ch backend's hierarchy-native tree path rests on one claim, the same
claim every other tree producer honours: a row the
:class:`~repro.roadnet.routing.PHASTTreeProvider` returns -- single source
or batched plane, NumPy path or pure-Python path -- is the **same float
array** :meth:`CSRGraph.tree` computes for that source.  The batched
dispatch pipeline's byte-identical-outcomes guarantee across ``--routing``
and ``--tree-provider`` ablations rests on it, so everything here asserts
with ``==``, never ``isclose``.

Jitter strategies exclude the ulp-degenerate regime (see
``test_ch_equivalence._jitters``): the refolding contract holds on networks
with unique shortest paths or exact-arithmetic ties, which is every real
network and every benchmark generator -- but not a grid whose weights were
jittered by machine epsilon.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.roadnet import routing
from repro.roadnet.generators import (
    arterial_grid_network,
    grid_network,
    random_geometric_network,
)
from repro.roadnet.routing import (
    CHEngine,
    CSREngine,
    CSRGraph,
    ContractionHierarchy,
    PHASTTreeProvider,
)

HAVE_NUMPY = routing._np is not None  # noqa: SLF001


def _jitters(max_value):
    """Jitter inside the bit-identity contract: zero, or far above ulps."""
    return st.one_of(st.just(0.0), st.floats(min_value=0.05, max_value=max_value))


def _sample_indices(graph, seed, count):
    step = max(1, len(graph) // count)
    return list(range(seed % step, len(graph), step))


@st.composite
def networks(draw):
    """Grids, arterial grids and (possibly disconnected) geometric nets."""
    kind = draw(st.sampled_from(["grid", "arterial", "geometric"]))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    if kind == "grid":
        return (
            grid_network(
                draw(st.integers(min_value=2, max_value=7)),
                draw(st.integers(min_value=2, max_value=7)),
                weight_jitter=draw(_jitters(1.0)),
                seed=seed,
            ),
            seed,
        )
    if kind == "arterial":
        return (
            arterial_grid_network(
                draw(st.integers(min_value=3, max_value=7)),
                draw(st.integers(min_value=3, max_value=7)),
                weight_jitter=draw(_jitters(0.6)),
                arterial_every=draw(st.integers(min_value=2, max_value=4)),
                seed=seed,
            ),
            seed,
        )
    return (
        random_geometric_network(
            draw(st.integers(min_value=5, max_value=30)),
            radius=draw(st.floats(min_value=0.15, max_value=0.5)),
            seed=seed,
        ),
        seed,
    )


@pytest.mark.skipif(not HAVE_NUMPY, reason="exercises the NumPy sweep path")
@given(networks())
@settings(max_examples=40, deadline=None)
def test_numpy_phast_planes_bit_identical_to_csr_rows(case):
    network, seed = case
    graph = CSRGraph(network)
    hierarchy = ContractionHierarchy.build(graph)
    provider = PHASTTreeProvider(graph, hierarchy)
    indices = _sample_indices(graph, seed, count=5)
    plane = provider.trees(indices)
    for position, index in enumerate(indices):
        # Bit-identical, not approximately equal -- including inf placement
        # for unreachable vertices on disconnected geometric networks.
        assert list(plane[position]) == list(graph.tree(index))
    single = provider.tree(indices[0])
    assert list(single) == list(graph.tree(indices[0]))


@pytest.mark.skipif(not HAVE_NUMPY, reason="exercises the NumPy refold paths")
@given(networks())
@settings(max_examples=30, deadline=None)
def test_scatter_refold_bit_identical_to_segmented_refold(case):
    """The reduceat-free (scatter-min) refold is the same fold, bit for bit.

    Both folds gather a generation's already-folded labels before writing,
    and float min is exact, so flipping ``PTRIDER_PHAST_SCATTER_REFOLD``
    must change nothing about the rows -- including against the CSR
    reference, which is the contract everything else rests on.
    """
    import os

    network, seed = case
    graph = CSRGraph(network)
    hierarchy = ContractionHierarchy.build(graph)
    provider = PHASTTreeProvider(graph, hierarchy)
    indices = _sample_indices(graph, seed, count=5)
    segmented = provider.trees(indices)
    os.environ[routing.PHAST_SCATTER_REFOLD_ENV] = "1"
    try:
        scattered = provider.trees(indices)
    finally:
        os.environ.pop(routing.PHAST_SCATTER_REFOLD_ENV, None)
    for position, index in enumerate(indices):
        assert list(scattered[position]) == list(segmented[position])
        assert list(scattered[position]) == list(graph.tree(index))


@given(networks())
@settings(max_examples=25, deadline=None)
def test_pure_python_phast_bit_identical_to_python_dijkstra(case):
    network, seed = case
    graph = CSRGraph(network)
    hierarchy = ContractionHierarchy.build(graph)
    provider = PHASTTreeProvider(graph, hierarchy)
    reference = CSRGraph(network)
    reference.matrix = None  # force the pure-Python Dijkstra rows
    for index in _sample_indices(graph, seed, count=4):
        assert provider._tree_python(index) == [  # noqa: SLF001
            float(value) for value in reference.tree(index)
        ]


@given(networks())
@settings(max_examples=20, deadline=None)
def test_phast_engine_trees_match_csr_engine(case):
    """End to end through the engine seam: distances_from and prefetch."""
    network, seed = case
    ch = CHEngine(network, tree_provider="phast")
    csr = CSREngine(network)
    vertices = network.vertices()
    step = max(1, len(vertices) // 5)
    sources = vertices[seed % step :: step]

    views = ch.prefetch_trees(sources)
    assert set(views) == set(sources)
    for source in sources:
        fresh = csr.distances_from(source)
        view = views[source]
        assert set(view) == set(fresh)
        assert {v: view[v] for v in view} == {v: fresh[v] for v in fresh}

    assert ch.stats.phast_sweeps == len(set(sources))
    assert ch.stats.dijkstra_runs == 0


@given(networks())
@settings(max_examples=15, deadline=None)
def test_phast_point_distances_match_csr_engine(case):
    """The tree LRU now holds PHAST rows; point reads must stay identical."""
    network, seed = case
    ch = CHEngine(network, tree_provider="phast")
    csr = CSREngine(network)
    vertices = network.vertices()
    step = max(1, len(vertices) // 4)
    sample = vertices[seed % step :: step]
    from repro.errors import DisconnectedError

    for u in sample:
        ch.distances_from(u)  # pin a PHAST row into the LRU
        for v in sample:
            try:
                expected = csr.distance(u, v)
            except DisconnectedError:
                expected = None
            try:
                actual = ch.distance(u, v)
            except DisconnectedError:
                actual = None
            assert actual == expected
