"""Property-based equivalence of the batched dispatch pipeline with the loop.

The batched pipeline (`Dispatcher.dispatch_batch`) restructures *where* the
greedy strategy's work happens -- pooled routing contexts, per-shard
skylines merged by dominance, commit-driven shard invalidation -- but must
not change *what* it computes: for any fleet, any burst of simultaneous
requests and any shard count, the outcomes (offered skylines, chosen
vehicles, fleet end-state) must be byte-identical to the literal
request-by-request greedy loop of Section 2.5.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SystemConfig
from repro.core.dispatcher import Dispatcher, OptionPolicy
from repro.core.dual_side import DualSideSearchMatcher
from repro.core.naive import NaiveKineticTreeMatcher
from repro.core.single_side import SingleSideSearchMatcher
from repro.model.request import Request
from repro.roadnet.generators import grid_network
from repro.roadnet.routing import make_engine

from tests.conftest import build_fleet

MATCHERS = {
    "naive": NaiveKineticTreeMatcher,
    "single_side": SingleSideSearchMatcher,
    "dual_side": DualSideSearchMatcher,
}


@st.composite
def batch_scenarios(draw):
    """A seeded fleet blueprint plus a burst of simultaneous requests."""
    seed = draw(st.integers(min_value=0, max_value=100_000))
    rng = random.Random(seed)
    rows = draw(st.integers(min_value=4, max_value=7))
    columns = draw(st.integers(min_value=4, max_value=7))
    network = grid_network(rows, columns, weight_jitter=0.4, seed=seed)
    vertices = network.vertices()

    vehicle_count = draw(st.integers(min_value=1, max_value=8))
    locations = [rng.choice(vertices) for _ in range(vehicle_count)]
    grid_rows = draw(st.integers(min_value=2, max_value=4))

    request_count = draw(st.integers(min_value=1, max_value=6))
    # A couple of shared start vertices exercise the tree pooling.
    starts = [rng.choice(vertices) for _ in range(max(1, request_count // 2))]
    requests = []
    for index in range(request_count):
        start = rng.choice(starts) if rng.random() < 0.5 else rng.choice(vertices)
        destination = rng.choice([v for v in vertices if v != start])
        requests.append(
            Request(
                start=start, destination=destination, riders=rng.randint(1, 2),
                max_waiting=6.0, service_constraint=0.6, request_id=f"b-{seed}-{index}",
            )
        )

    matcher_name = draw(st.sampled_from(sorted(MATCHERS)))
    shards = draw(st.sampled_from([1, 2, 4]))
    policy = draw(st.sampled_from([OptionPolicy.CHEAPEST, OptionPolicy.FASTEST, OptionPolicy.BALANCED]))
    max_pickup = draw(st.sampled_from([None, 4.0, 8.0]))
    blueprint = (network, locations, grid_rows)
    config = SystemConfig(max_waiting=6.0, service_constraint=0.6, max_pickup_distance=max_pickup)
    return blueprint, requests, matcher_name, shards, policy, config


def _build_dispatcher(blueprint, matcher_name, config, backend=None):
    network, locations, grid_rows = blueprint
    fleet = build_fleet(network, locations, capacity=4, grid_rows=grid_rows, grid_columns=grid_rows)
    if backend is not None:
        # Swap before the matcher is built: matchers snapshot the engine.
        fleet.set_routing_engine(make_engine(network, backend))
    matcher = MATCHERS[matcher_name](fleet, config=config)
    return Dispatcher(fleet, matcher, config)


def _fleet_state(fleet):
    """A comparable snapshot of every vehicle's full state."""
    return [
        (
            vehicle.vehicle_id,
            vehicle.location,
            vehicle.offset,
            sorted(vehicle.unfinished_request_ids()),
            tuple(
                sorted(
                    tuple((stop.vertex, stop.request_id, stop.kind.value) for stop in schedule)
                    for schedule in vehicle.kinetic_tree.schedules()
                )
            ),
        )
        for vehicle in fleet.vehicles()
    ]


@given(batch_scenarios())
@settings(max_examples=40, deadline=None)
def test_dispatch_batch_equals_sequential_loop(scenario):
    blueprint, requests, matcher_name, shards, policy, config = scenario
    sequential = _build_dispatcher(blueprint, matcher_name, config)
    batched = _build_dispatcher(blueprint, matcher_name, config)

    loop_outcomes = sequential.dispatch_sequential(requests, policy=policy)
    pipeline_outcomes = batched.dispatch_batch(requests, policy=policy, shards=shards)

    assert len(loop_outcomes) == len(pipeline_outcomes)
    for loop, pipe in zip(loop_outcomes, pipeline_outcomes):
        # Byte-identical skylines: same options, same order, same floats,
        # same schedules -- and therefore the same chosen vehicle.
        assert loop.options == pipe.options
        assert loop.chosen == pipe.chosen
        assert loop.request.request_id == pipe.request.request_id
    assert _fleet_state(sequential.fleet) == _fleet_state(batched.fleet)


@given(batch_scenarios())
@settings(max_examples=20, deadline=None)
def test_match_batch_equals_individual_submits(scenario):
    """The no-commit batch flow answers exactly like per-request submits."""
    blueprint, requests, matcher_name, shards, _policy, config = scenario
    individual = _build_dispatcher(blueprint, matcher_name, config)
    batched = _build_dispatcher(blueprint, matcher_name, config)

    one_by_one = [individual.submit(individual.normalise(r)) for r in requests]
    pooled = batched.match_batch(requests, shards=shards)
    assert one_by_one == pooled


@given(batch_scenarios())
@settings(max_examples=15, deadline=None)
def test_shared_tree_statistics_are_consistent(scenario):
    blueprint, requests, matcher_name, shards, policy, config = scenario
    dispatcher = _build_dispatcher(blueprint, matcher_name, config)
    dispatcher.dispatch_batch(requests, policy=policy, shards=shards)
    stats = dispatcher.last_batch_statistics
    assert stats is not None
    assert stats.requests == len(requests)
    # The dict backend has no bulk path: every distinct start is computed.
    assert stats.prefetched_trees == 0
    assert stats.trees_computed == len({r.start for r in requests})
    assert stats.trees_computed + stats.shared_tree_hits == len(requests)
    assert 0.0 <= stats.shared_tree_hit_rate <= 1.0


@given(batch_scenarios(), st.sampled_from(["csr", "table"]))
@settings(max_examples=16, deadline=None)
def test_prefetched_batch_equals_sequential_on_vector_backends(scenario, backend):
    """The one-shot tree-plane prefetch is pure restructuring: on the CSR and
    table backends the batched pipeline must reproduce the sequential loop's
    options, choices and fleet end-state float for float."""
    blueprint, requests, matcher_name, shards, policy, config = scenario
    sequential = _build_dispatcher(blueprint, matcher_name, config, backend=backend)
    batched = _build_dispatcher(blueprint, matcher_name, config, backend=backend)

    loop_outcomes = sequential.dispatch_sequential(requests, policy=policy)
    pipeline_outcomes = batched.dispatch_batch(requests, policy=policy, shards=shards)

    assert len(loop_outcomes) == len(pipeline_outcomes)
    for loop, pipe in zip(loop_outcomes, pipeline_outcomes):
        assert loop.options == pipe.options
        assert loop.chosen == pipe.chosen
    assert _fleet_state(sequential.fleet) == _fleet_state(batched.fleet)

    stats = batched.last_batch_statistics
    assert stats is not None
    # Every tree came through the vectorised prefetch, counted exactly once.
    assert stats.prefetched_trees == len({r.start for r in requests})
    assert stats.trees_computed == 0
    assert (
        stats.prefetched_trees + stats.shared_tree_hits == len(requests)
    )


@given(batch_scenarios(), st.sampled_from(["csr", "table"]))
@settings(max_examples=16, deadline=None)
def test_leg_prefetch_equals_sequential_on_busy_fleets(scenario, backend):
    """``prefetch_legs=True`` folds the fleet's schedule-leg sources (vehicle
    locations + committed stops) into the batch's prefetch plane.  Like the
    start-tree plane it is pure restructuring: insertion verification must
    read exactly the distances the engine would have computed cold, so a
    busy fleet -- warmed by a first committed burst -- answers a second
    burst byte-identically to the sequential loop."""
    blueprint, requests, matcher_name, shards, policy, config = scenario
    if len(requests) < 2:
        return
    warm, burst = requests[: len(requests) // 2], requests[len(requests) // 2 :]
    sequential = _build_dispatcher(blueprint, matcher_name, config, backend=backend)
    batched = _build_dispatcher(blueprint, matcher_name, config, backend=backend)

    # identical warm-up commitments give both fleets non-empty schedules,
    # so the second burst actually exercises the leg-tree lookups
    sequential.dispatch_sequential(warm, policy=policy)
    batched.dispatch_sequential(warm, policy=policy)

    loop_outcomes = sequential.dispatch_sequential(burst, policy=policy)
    pipeline_outcomes = batched.dispatch_batch(
        burst, policy=policy, shards=shards, prefetch_legs=True
    )

    assert len(loop_outcomes) == len(pipeline_outcomes)
    for loop, pipe in zip(loop_outcomes, pipeline_outcomes):
        assert loop.options == pipe.options
        assert loop.chosen == pipe.chosen
    assert _fleet_state(sequential.fleet) == _fleet_state(batched.fleet)

    stats = batched.last_batch_statistics
    assert stats is not None
    # leg sources are the prefetched trees beyond the burst's start set
    assert stats.leg_sources_prefetched >= 0
    assert stats.leg_tree_hits >= 0
    payload = stats.as_dict()
    assert payload["leg_sources_prefetched"] == float(stats.leg_sources_prefetched)
    assert payload["leg_tree_hits"] == float(stats.leg_tree_hits)
