"""Property-based tests for dominance and skyline maintenance."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.options import RideOption, Skyline, dominates, skyline_of

prices = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False, allow_infinity=False)
distances = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False, allow_infinity=False)


@st.composite
def options(draw, max_size: int = 40):
    count = draw(st.integers(min_value=0, max_value=max_size))
    return [
        RideOption(vehicle_id=f"v{i}", pickup_distance=draw(distances), price=draw(prices))
        for i in range(count)
    ]


@given(options())
@settings(max_examples=150)
def test_skyline_members_are_mutually_non_dominated(candidates):
    result = skyline_of(candidates)
    for first in result:
        for second in result:
            if first is not second:
                assert not dominates(first, second)


@given(options())
@settings(max_examples=150)
def test_every_candidate_is_dominated_or_represented(candidates):
    """Every input option is either in the skyline, dominated by a member, or a duplicate of one."""
    result = skyline_of(candidates)
    for candidate in candidates:
        represented = any(
            abs(kept.pickup_distance - candidate.pickup_distance) <= 1e-9
            and abs(kept.price - candidate.price) <= 1e-9
            for kept in result
        )
        assert represented or any(dominates(kept, candidate) for kept in result)


@given(options())
@settings(max_examples=150)
def test_skyline_is_idempotent(candidates):
    once = skyline_of(candidates)
    twice = skyline_of(once)
    assert {(o.pickup_distance, o.price) for o in once} == {(o.pickup_distance, o.price) for o in twice}


@given(options())
@settings(max_examples=100)
def test_incremental_skyline_matches_batch(candidates):
    incremental = Skyline()
    incremental.extend(candidates)
    batch = skyline_of(candidates)
    assert {(o.pickup_distance, o.price) for o in incremental.options()} == {
        (o.pickup_distance, o.price) for o in batch
    }


@given(options(), distances, prices)
@settings(max_examples=100)
def test_order_independence(candidates, shift, _unused):
    forward = skyline_of(candidates)
    backward = skyline_of(list(reversed(candidates)))
    assert {(o.pickup_distance, o.price) for o in forward} == {
        (o.pickup_distance, o.price) for o in backward
    }


@given(distances, prices, distances, prices)
@settings(max_examples=200)
def test_dominance_is_antisymmetric(t1, p1, t2, p2):
    a = RideOption(vehicle_id="a", pickup_distance=t1, price=p1)
    b = RideOption(vehicle_id="b", pickup_distance=t2, price=p2)
    assert not (dominates(a, b) and dominates(b, a))


@given(distances, prices)
@settings(max_examples=50)
def test_dominance_is_irreflexive(t, p):
    a = RideOption(vehicle_id="a", pickup_distance=t, price=p)
    assert not dominates(a, a)


@given(options(), distances, prices)
@settings(max_examples=100)
def test_would_be_dominated_is_conservative(candidates, probe_time, probe_price):
    """If the skyline claims a bound pair is dominated, adding an option at least
    as bad as the bounds never changes the skyline point set."""
    skyline = Skyline()
    skyline.extend(candidates)
    if skyline.would_be_dominated(probe_time, probe_price):
        before = {(o.pickup_distance, o.price) for o in skyline.options()}
        worse = RideOption(vehicle_id="probe", pickup_distance=probe_time + 1.0, price=probe_price + 1.0)
        skyline.add(worse)
        after = {(o.pickup_distance, o.price) for o in skyline.options()}
        assert before == after
