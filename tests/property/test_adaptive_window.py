"""Invariants of the adaptive micro-batch window controller.

ISSUE 10's tentpole replaces the static ``batch_window`` with a closed-loop
:class:`~repro.service.ingest.WindowController`: MIMD on the flush-wall /
window-length ratio, EWMAs of flush wall and arrival rate, clamped to
``[window_min, window_max]`` and to the ``latency_budget`` headroom.  These
tests pin the control law's safety and liveness properties:

* the window never leaves its configured bounds, whatever observation
  sequence is fed (including pathological walls: zero, huge, NaN-free
  extremes);
* with a ``latency_budget`` the window never exceeds the headroom the
  budget leaves after the expected flush wall, so the controller cannot
  schedule a close the deadline close would have to pre-empt;
* under stationary load (constant flush wall) the window converges into
  the MIMD dead band and then *stays* there -- no steady-state
  oscillation;
* the controller is deterministic: the same observation sequence yields
  the same window trajectory, and the trajectory survives a
  ``state()``/``restore()`` round-trip mid-sequence;
* an adaptive batcher whose bounds collapse the controller to the fixed
  window answers a replayed schedule byte-identically to a fixed-window
  batcher under the injected deterministic clock -- adaptivity changes
  *when* windows close, never *what* a window's flush answers.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SystemConfig
from repro.core.dispatcher import Dispatcher
from repro.core.single_side import SingleSideSearchMatcher
from repro.errors import ConfigurationError
from repro.model.request import Request
from repro.roadnet.generators import grid_network
from repro.roadnet.grid_index import GridIndex
from repro.roadnet.routing import make_engine
from repro.service.ingest import MicroBatcher, WindowController
from repro.vehicles.fleet import Fleet
from repro.vehicles.vehicle import Vehicle

_NETWORK = grid_network(6, 6, weight_jitter=0.2, seed=9)
_VERTICES = _NETWORK.vertices()

# Observations: (flush_wall, batch_size, window_span) triples spanning
# idle flushes, saturated flushes and everything between.
_observations = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False, allow_infinity=False),
        st.integers(min_value=0, max_value=64),
        st.floats(min_value=0.0, max_value=20.0, allow_nan=False, allow_infinity=False),
    ),
    min_size=1,
    max_size=60,
)


@given(observations=_observations)
@settings(max_examples=120, deadline=None)
def test_window_stays_in_bounds(observations):
    controller = WindowController(window=1.0, window_min=0.125, window_max=8.0)
    for flush_wall, batch_size, span in observations:
        controller.observe(flush_wall, batch_size, span)
        assert 0.125 - 1e-12 <= controller.window <= 8.0 + 1e-12


@given(observations=_observations)
@settings(max_examples=120, deadline=None)
def test_window_never_exceeds_latency_budget_headroom(observations):
    budget = 4.0
    controller = WindowController(
        window=1.0, window_min=0.125, window_max=8.0, latency_budget=budget
    )
    for flush_wall, batch_size, span in observations:
        controller.observe(flush_wall, batch_size, span)
        headroom = max(0.125, budget - controller.ewma_flush_wall)
        assert controller.window <= headroom + 1e-12
        # The budget dominates the static upper bound whenever it is tighter.
        assert controller.window <= budget + 1e-12


@given(
    flush_wall=st.floats(
        min_value=0.01, max_value=10.0, allow_nan=False, allow_infinity=False
    )
)
@settings(max_examples=80, deadline=None)
def test_converges_under_stationary_load(flush_wall):
    """A constant flush wall drives the window into the dead band for good.

    The dead band [wall/HIGH, wall/LOW] is 2x wide while the step factor is
    1.5x, so once inside the controller holds; the bounds cap the cases
    where the band lies outside [window_min, window_max].
    """
    controller = WindowController(window=1.0, window_min=1e-3, window_max=1e3)
    resized_after_settle = 0
    settled = False
    for step in range(200):
        resized = controller.observe(flush_wall, 8, controller.window)
        if settled:
            resized_after_settle += abs(resized)
        elif resized == 0:
            settled = True
    assert settled, "controller never settled under a stationary flush wall"
    assert resized_after_settle == 0, "controller oscillated after settling"
    # Steady state sits in the dead band (or pinned at a bound).
    ratio = controller.ewma_flush_wall / controller.window
    at_bound = (
        abs(controller.window - controller.window_min) < 1e-9
        or abs(controller.window - controller.window_max) < 1e-9
    )
    assert at_bound or (
        WindowController.LOW_RATIO - 1e-9
        <= ratio
        <= WindowController.HIGH_RATIO + 1e-9
    )


@given(observations=_observations)
@settings(max_examples=60, deadline=None)
def test_trajectory_deterministic_and_restorable(observations):
    """Same observations => same trajectory, across a state() round-trip."""
    split = len(observations) // 2
    reference = WindowController(window=1.0, window_min=0.125, window_max=8.0)
    trajectory = []
    for flush_wall, batch_size, span in observations:
        reference.observe(flush_wall, batch_size, span)
        trajectory.append(reference.window)
    # Replay the prefix, round-trip through the snapshot payload, finish.
    prefix = WindowController(window=1.0, window_min=0.125, window_max=8.0)
    resumed_trajectory = []
    for flush_wall, batch_size, span in observations[:split]:
        prefix.observe(flush_wall, batch_size, span)
        resumed_trajectory.append(prefix.window)
    resumed = WindowController(window=1.0, window_min=0.125, window_max=8.0)
    resumed.restore(prefix.state())
    for flush_wall, batch_size, span in observations[split:]:
        resumed.observe(flush_wall, batch_size, span)
        resumed_trajectory.append(resumed.window)
    assert resumed_trajectory == trajectory
    assert resumed.state() == reference.state()


def test_bounds_validation():
    with pytest.raises(ConfigurationError):
        WindowController(window=1.0, window_min=0.0, window_max=4.0)
    with pytest.raises(ConfigurationError):
        WindowController(window=1.0, window_min=2.0, window_max=1.0)
    with pytest.raises(ConfigurationError):
        WindowController(
            window=1.0, window_min=2.0, window_max=4.0, latency_budget=1.0
        )


# ----------------------------------------------------------------------
# batcher-level equivalence under the injected clock
# ----------------------------------------------------------------------
def _build_batcher(window_mode, batch_window=2.0, window_min=None,
                   window_max=None, wall_clock=None):
    grid = GridIndex(_NETWORK, rows=3, columns=3)
    fleet = Fleet(grid, make_engine(_NETWORK, "dict"))
    for index in range(4):
        fleet.add_vehicle(
            Vehicle(
                f"c{index + 1}",
                location=_VERTICES[(index * 9) % len(_VERTICES)],
                capacity=4,
            )
        )
    config = SystemConfig(max_waiting=8.0, service_constraint=0.5)
    matcher = SingleSideSearchMatcher(fleet, config=config)
    dispatcher = Dispatcher(fleet, matcher, config)
    outcomes = []
    batcher = MicroBatcher(
        dispatcher,
        batch_window=batch_window,
        max_batch_size=256,
        speed=1.0,
        window_mode=window_mode,
        window_min=window_min,
        window_max=window_max,
        wall_clock=wall_clock,
        on_outcome=lambda outcome: outcomes.append(
            (
                outcome.request.request_id,
                None if outcome.chosen is None else outcome.chosen.vehicle_id,
                None if outcome.chosen is None else outcome.chosen.price,
            )
        ),
    )
    return batcher, outcomes


def _request(index: int, submit: float) -> Request:
    start = _VERTICES[(index * 5) % len(_VERTICES)]
    destination = _VERTICES[(index * 5 + 7) % len(_VERTICES)]
    if destination == start:
        destination = _VERTICES[(index * 5 + 8) % len(_VERTICES)]
    return Request(
        start=start, destination=destination, riders=1, max_waiting=8.0,
        service_constraint=0.5, request_id=f"A{index}", submit_time=submit,
    )


class _FakeWall:
    """Deterministic wall clock: each reading advances by a fixed step."""

    def __init__(self, step: float = 0.001) -> None:
        self._now = 0.0
        self._step = step

    def __call__(self) -> float:
        self._now += self._step
        return self._now


@given(
    schedule=st.lists(
        st.floats(min_value=0.0, max_value=1.5, allow_nan=False,
                  allow_infinity=False),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=25, deadline=None)
def test_collapsed_adaptive_equals_fixed(schedule):
    """Bounds that pin the controller reproduce fixed mode byte-for-byte."""
    fixed, fixed_outcomes = _build_batcher("fixed", wall_clock=_FakeWall())
    pinned, pinned_outcomes = _build_batcher(
        "adaptive", window_min=2.0, window_max=2.0, wall_clock=_FakeWall()
    )
    for batcher, outcomes in ((fixed, fixed_outcomes), (pinned, pinned_outcomes)):
        now = 0.0
        for index, gap in enumerate(schedule):
            now += gap
            batcher.pump(now=now)
            batcher.submit(_request(index, now), now=now)
        batcher.drain(now=now + 100.0)
    assert fixed_outcomes == pinned_outcomes
    assert fixed.statistics.answered == pinned.statistics.answered
    assert fixed.statistics.window_closed == pinned.statistics.window_closed


@given(
    schedule=st.lists(
        st.floats(min_value=0.0, max_value=1.5, allow_nan=False,
                  allow_infinity=False),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=25, deadline=None)
def test_adaptive_run_is_deterministic(schedule):
    """Same schedule + same injected clocks => identical adaptive runs."""
    runs = []
    for _ in range(2):
        batcher, outcomes = _build_batcher("adaptive", wall_clock=_FakeWall())
        now = 0.0
        windows = []
        for index, gap in enumerate(schedule):
            now += gap
            batcher.pump(now=now)
            batcher.submit(_request(index, now), now=now)
            windows.append(batcher.current_window)
        batcher.drain(now=now + 100.0)
        runs.append((outcomes, windows, batcher.controller_state()))
    assert runs[0] == runs[1]


def test_adaptive_answers_match_fixed_outcome_set():
    """Adaptive windows re-time flushes but answer the same requests.

    Every admitted request is answered exactly once in both modes (window
    boundaries differ, outcomes-per-request do not go missing).
    """
    fixed, fixed_outcomes = _build_batcher("fixed", wall_clock=_FakeWall())
    adaptive, adaptive_outcomes = _build_batcher(
        "adaptive", window_min=0.25, window_max=8.0,
        wall_clock=_FakeWall(step=0.4),
    )
    for batcher in (fixed, adaptive):
        now = 0.0
        for index in range(30):
            now += 0.5
            batcher.pump(now=now)
            batcher.submit(_request(index, now), now=now)
        batcher.drain(now=now + 100.0)
    assert sorted(rid for rid, _, _ in fixed_outcomes) == sorted(
        rid for rid, _, _ in adaptive_outcomes
    )
    assert fixed.statistics.answered == adaptive.statistics.answered
