"""Property-based tests: every routing backend answers identically.

The matchers treat the routing engine as an exact shortest-path oracle; if
the CSR backend ever disagreed with the reference dict-Dijkstra backend, the
skylines would silently change with the ``--routing`` ablation flag.  The
tests below generate random networks and check

* point-to-point distances and full trees agree across backends;
* returned paths are valid walks whose length equals the reported distance;
* ALT landmark lower bounds are admissible (never exceed the true distance),
  which is what makes the combined grid/ALT pruning safe.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.roadnet.generators import grid_network, random_geometric_network
from repro.roadnet.routing import CSREngine, DictDijkstraEngine, make_engine
from repro.roadnet.shortest_path import path_length


def _sample(vertices, step_hint):
    return vertices[:: max(1, len(vertices) // step_hint)]


@given(
    rows=st.integers(min_value=2, max_value=6),
    columns=st.integers(min_value=2, max_value=6),
    jitter=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=30, deadline=None)
def test_csr_distances_match_dict_on_grid_networks(rows, columns, jitter, seed):
    network = grid_network(rows, columns, weight_jitter=jitter, seed=seed)
    dict_engine = DictDijkstraEngine(network)
    csr_engine = CSREngine(network)
    sample = _sample(network.vertices(), 8)
    for u in sample:
        for v in sample:
            # Summation order can differ by an ulp between the C and Python
            # Dijkstra when equal-length paths tie; anything beyond that is a
            # real disagreement.
            assert math.isclose(
                csr_engine.distance(u, v), dict_engine.distance(u, v),
                rel_tol=1e-12, abs_tol=1e-12,
            )


@given(
    count=st.integers(min_value=10, max_value=40),
    radius=st.floats(min_value=0.15, max_value=0.5),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=20, deadline=None)
def test_csr_trees_match_dict_on_geometric_networks(count, radius, seed):
    """Geometric networks may be disconnected: the trees must agree on the
    reachable set, not just on values."""
    network = random_geometric_network(count, radius=radius, seed=seed)
    dict_engine = DictDijkstraEngine(network)
    csr_engine = CSREngine(network)
    for source in _sample(network.vertices(), 5):
        dict_tree = dict_engine.distances_from(source)
        csr_tree = csr_engine.distances_from(source)
        assert set(csr_tree) == set(dict_tree)
        for vertex, value in dict_tree.items():
            assert math.isclose(csr_tree[vertex], value, rel_tol=1e-12, abs_tol=1e-12)


@given(
    rows=st.integers(min_value=2, max_value=6),
    columns=st.integers(min_value=2, max_value=6),
    jitter=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=20, deadline=None)
def test_csr_paths_are_valid_and_optimal(rows, columns, jitter, seed):
    network = grid_network(rows, columns, weight_jitter=jitter, seed=seed)
    dict_engine = DictDijkstraEngine(network)
    csr_engine = CSREngine(network)
    vertices = network.vertices()
    for u in _sample(vertices, 4):
        for v in _sample(vertices, 3):
            result = csr_engine.path(u, v)
            assert result.path[0] == u and result.path[-1] == v
            # A shortest path may tie-break differently between backends, but
            # its walk length must equal the (agreed) optimal distance.
            assert math.isclose(path_length(network, result.path), result.distance)
            assert math.isclose(
                result.distance, dict_engine.distance(u, v), rel_tol=1e-12, abs_tol=1e-12
            )


@given(
    rows=st.integers(min_value=2, max_value=6),
    columns=st.integers(min_value=2, max_value=6),
    jitter=st.floats(min_value=0.0, max_value=1.0),
    landmarks=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=25, deadline=None)
def test_alt_lower_bounds_are_admissible(rows, columns, jitter, landmarks, seed):
    network = grid_network(rows, columns, weight_jitter=jitter, seed=seed)
    engine = CSREngine(network, landmarks=landmarks)
    sample = _sample(network.vertices(), 8)
    for u in sample:
        for v in sample:
            bound = engine.distance_lower_bound(u, v)
            assert bound <= engine.distance(u, v) + 1e-9


@given(
    rows=st.integers(min_value=3, max_value=6),
    columns=st.integers(min_value=3, max_value=6),
    jitter=st.floats(min_value=0.0, max_value=0.8),
    seed=st.integers(min_value=0, max_value=5_000),
)
@settings(max_examples=15, deadline=None)
def test_backend_factory_names_round_trip(rows, columns, jitter, seed):
    network = grid_network(rows, columns, weight_jitter=jitter, seed=seed)
    engines = {
        name: make_engine(network, name) for name in ("dict", "csr", "csr+alt", "table")
    }
    u, v = network.vertices()[0], network.vertices()[-1]
    reference = engines["dict"].distance(u, v)
    for name, engine in engines.items():
        assert engine.backend == name
        assert math.isclose(engine.distance(u, v), reference, rel_tol=1e-12, abs_tol=1e-12)


@given(
    count=st.integers(min_value=10, max_value=30),
    radius=st.floats(min_value=0.15, max_value=0.5),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=15, deadline=None)
def test_table_trees_match_dict_on_geometric_networks(count, radius, seed):
    """Possibly-disconnected networks: the table must agree with the dict
    backend on the reachable set as well as the values."""
    network = random_geometric_network(count, radius=radius, seed=seed)
    dict_engine = DictDijkstraEngine(network)
    table_engine = make_engine(network, "table")
    for source in _sample(network.vertices(), 5):
        dict_tree = dict_engine.distances_from(source)
        table_tree = table_engine.distances_from(source)
        assert set(table_tree) == set(dict_tree)
        for vertex, value in dict_tree.items():
            assert math.isclose(table_tree[vertex], value, rel_tol=1e-12, abs_tol=1e-12)
