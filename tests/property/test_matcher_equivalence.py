"""Property-based equivalence of the optimized matchers with the naive reference.

The central correctness claim of PTRider's optimisations (grid pruning,
lower-bound short-circuiting, dual-side destination pruning) is that they are
*lossless*: the skyline returned for any request equals the skyline that the
naive kinetic-tree matcher computes by verifying every vehicle.  These tests
generate random fleets, random pre-assigned requests and random probe
requests, and assert the equality of the returned (pick-up, price) point sets.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SystemConfig
from repro.core.dual_side import DualSideSearchMatcher
from repro.core.naive import NaiveKineticTreeMatcher
from repro.core.single_side import SingleSideSearchMatcher
from repro.model.request import Request
from repro.roadnet.generators import grid_network

from tests.conftest import assign_request, build_fleet, option_points


@st.composite
def fleet_scenarios(draw):
    """A random fleet with some vehicles already serving requests, plus a probe request."""
    seed = draw(st.integers(min_value=0, max_value=100_000))
    rng = random.Random(seed)
    rows = draw(st.integers(min_value=4, max_value=7))
    columns = draw(st.integers(min_value=4, max_value=7))
    network = grid_network(rows, columns, weight_jitter=0.4, seed=seed)
    vertices = network.vertices()

    vehicle_count = draw(st.integers(min_value=1, max_value=8))
    locations = [rng.choice(vertices) for _ in range(vehicle_count)]
    grid_rows = draw(st.integers(min_value=2, max_value=4))
    fleet = build_fleet(network, locations, capacity=4, grid_rows=grid_rows, grid_columns=grid_rows)

    # Pre-assign a few requests so non-empty vehicles (kinetic trees) exist.
    preassigned = draw(st.integers(min_value=0, max_value=3))
    for index in range(preassigned):
        vehicle_id = f"c{rng.randint(1, vehicle_count)}"
        start, destination = rng.sample(vertices, 2)
        request = Request(
            start=start, destination=destination, riders=rng.randint(1, 2),
            max_waiting=6.0, service_constraint=0.6, request_id=f"pre-{seed}-{index}",
        )
        try:
            assign_request(fleet, vehicle_id, request)
        except AssertionError:
            continue

    start, destination = rng.sample(vertices, 2)
    probe = Request(
        start=start, destination=destination, riders=rng.randint(1, 3),
        max_waiting=6.0, service_constraint=0.6, request_id=f"probe-{seed}",
    )
    max_pickup = draw(st.sampled_from([None, 4.0, 8.0]))
    config = SystemConfig(max_waiting=6.0, service_constraint=0.6, max_pickup_distance=max_pickup)
    return fleet, probe, config


@given(fleet_scenarios())
@settings(max_examples=40, deadline=None)
def test_single_side_equals_naive(scenario):
    fleet, probe, config = scenario
    naive = NaiveKineticTreeMatcher(fleet, config=config)
    single = SingleSideSearchMatcher(fleet, config=config)
    assert option_points(single.match(probe)) == option_points(naive.match(probe))


@given(fleet_scenarios())
@settings(max_examples=40, deadline=None)
def test_dual_side_equals_naive(scenario):
    fleet, probe, config = scenario
    naive = NaiveKineticTreeMatcher(fleet, config=config)
    dual = DualSideSearchMatcher(fleet, config=config)
    assert option_points(dual.match(probe)) == option_points(naive.match(probe))


@given(fleet_scenarios())
@settings(max_examples=25, deadline=None)
def test_optimised_matchers_never_do_more_verification_work(scenario):
    fleet, probe, config = scenario
    naive = NaiveKineticTreeMatcher(fleet, config=config)
    single = SingleSideSearchMatcher(fleet, config=config)
    dual = DualSideSearchMatcher(fleet, config=config)
    naive.match(probe)
    single.match(probe)
    dual.match(probe)
    assert single.statistics.vehicles_evaluated <= naive.statistics.vehicles_evaluated
    assert dual.statistics.vehicles_evaluated <= single.statistics.vehicles_evaluated
