"""Invariants of incremental (delta) snapshots and retention.

ISSUE 10's durability half replaces the every-cadence full state serialise
with dirty-partition *delta* files folded over the last full snapshot, plus
a ``retention_horizon`` that prunes fully-served bookings from live state.
These tests drive mixed workloads (ingest, pumps, drains, per-request
bookings, time advances) against durable services and pin:

* **fold == full at every cadence**: whenever a snapshot point lands, the
  state recovered by folding the delta chain over the last full snapshot is
  *exactly* the state a full serialise would have captured at that journal
  position -- same bookings in the same order, same vehicles, same
  counters;
* **crash mid-delta falls back cleanly**: a truncated or corrupt delta
  (including a break in the middle of the chain) only shortens the folded
  prefix; journal replay covers the difference and recovery still
  reproduces the live service byte-for-byte;
* **mode equivalence**: the same workload under ``snapshot_mode="full"``
  and ``"incremental"`` recovers to the same canonical state, via deltas,
  via full snapshots, and via full-journal replay from the baseline;
* **retention conserves**: pruned bookings are counted in ``retired``,
  never double-counted, and a recovered service reproduces the same
  retirement decisions (simulated time keys them, so replay is exact).
"""

from __future__ import annotations

import json
import random

import pytest

from repro.model.request import Request
from repro.service.api import PTRiderService, build_system
from repro.service.journal import ServiceJournal
from repro.service.recovery import (
    canonical_state,
    load_snapshot_state,
    serialize_state,
)


def _build(tmp_path, name, snapshot_mode, seed=11, retention_horizon=None,
           snapshot_interval=3):
    return build_system(
        network_rows=8,
        network_columns=8,
        vehicles=5,
        seed=seed,
        durability="journal+snapshot",
        journal_path=str(tmp_path / name),
        snapshot_interval=snapshot_interval,
        snapshot_mode=snapshot_mode,
        retention_horizon=retention_horizon,
    )


def _step(service, rng, verts, index):
    roll = rng.random()
    if roll < 0.5:
        service.ingest(rng.choice(verts), rng.choice(verts))
    elif roll < 0.65:
        service.pump()
    elif roll < 0.8:
        service.advance(rng.uniform(0.5, 2.0))
    elif roll < 0.9:
        service.drain()
    else:
        booking = service.book(rng.choice(verts), rng.choice(verts))
        if booking.options:
            service.choose(booking.booking_id, 0)


def _drive(service, seed, steps):
    rng = random.Random(seed)
    verts = service.fleet.grid.network.vertices()
    for index in range(steps):
        _step(service, rng, verts, index)


def _script(seed, steps, verts):
    """A reproducible command script with *pre-built* requests.

    Request ids come from a process-global counter, so two services driven
    through ``ingest``/``book`` mint different ids for the same trips.
    Scripting the exact request objects (ids included) lets two services
    process identical histories and compare canonical states directly.
    Advance durations are whole ticks so the mirrored clock stays exact.
    """
    rng = random.Random(seed)
    now = 0.0
    commands = []
    for index in range(steps):
        roll = rng.random()
        if roll < 0.55:
            start, destination = rng.choice(verts), rng.choice(verts)
            commands.append(
                (
                    "ingest",
                    Request(
                        start=start, destination=destination, riders=1,
                        max_waiting=5.0, service_constraint=0.2,
                        request_id=f"S{seed}-{index}", submit_time=now,
                    ),
                    now,
                )
            )
        elif roll < 0.7:
            commands.append(("pump", now))
        elif roll < 0.85:
            duration = float(rng.randint(1, 2))
            now += duration
            commands.append(("advance", duration))
        else:
            commands.append(("drain", now))
    # Leave no pending window: close() journals a final drain for pending
    # admissions, which would put the recovered state *past* a reference
    # captured before close.
    commands.append(("drain", now))
    return commands


def _apply(service, commands):
    for command in commands:
        if command[0] == "ingest":
            service.ingest_request(command[1], now=command[2])
        elif command[0] == "pump":
            service.pump(now=command[1])
        elif command[0] == "advance":
            service.advance(command[1])
        else:
            service.drain(now=command[1])


def _canonical_json(state):
    """JSON round-trip a state dict so tuples/keys compare like a file's."""
    return json.loads(json.dumps(state, separators=(",", ":")))


@pytest.mark.parametrize("seed", [11, 29])
def test_folded_equals_full_at_every_cadence(tmp_path, seed):
    service = _build(tmp_path, f"inc-{seed}", "incremental", seed=seed)
    rng = random.Random(seed)
    verts = service.fleet.grid.network.vertices()
    checked = 0
    try:
        for index in range(45):
            _step(service, rng, verts, index)
            point = service._prev_snapshot_point
            if point > 0 and point == service._applied_seq:
                # A snapshot point landed on this very command: the folded
                # chain must reproduce a full serialise of the live state.
                loaded_seq, folded = load_snapshot_state(service.journal)
                assert loaded_seq == point
                assert folded == _canonical_json(serialize_state(service))
                checked += 1
    finally:
        service.close()
    assert checked >= 5, "workload produced too few snapshot points to test"


def test_crash_mid_delta_falls_back(tmp_path):
    service = _build(tmp_path, "torn", "incremental", seed=17,
                     snapshot_interval=2)
    _drive(service, 17, 40)
    service.drain()  # close() would journal a drain past the reference
    reference = canonical_state(service)
    journal_dir = service.journal.directory
    service.close()

    probe = ServiceJournal(journal_dir)
    deltas = probe.delta_files()
    probe.close()
    assert len(deltas) >= 2, "workload wrote too few deltas to corrupt"

    # Crash mid-write of the newest delta: truncated JSON.
    newest = deltas[-1][1]
    newest.write_text(newest.read_text(encoding="utf-8")[: newest.stat().st_size // 2],
                      encoding="utf-8")
    recovered = PTRiderService.recover(journal_dir)
    assert canonical_state(recovered) == reference
    recovered.close()

    # Corrupt a delta in the *middle* of the chain: the fold must stop at
    # the break (never skip over it) and replay the rest from the journal.
    middle = deltas[len(deltas) // 2][1]
    middle.write_text("garbage", encoding="utf-8")
    recovered = PTRiderService.recover(journal_dir)
    assert canonical_state(recovered) == reference
    recovered.close()

    # A leftover .tmp from a crash mid-rename is invisible to recovery.
    (journal_dir / "delta-000000000099.json.123.tmp").write_text(
        "partial", encoding="utf-8"
    )
    recovered = PTRiderService.recover(journal_dir)
    assert canonical_state(recovered) == reference
    recovered.close()


def _comparable(state):
    """Strip the fields that legitimately differ between the two modes."""
    state = dict(state)
    config = dict(state["config"])
    config.pop("journal_path", None)
    config.pop("snapshot_mode", None)
    state["config"] = config
    return state


def test_incremental_matches_full_mode(tmp_path):
    full = _build(tmp_path, "full", "full", seed=23)
    incremental = _build(tmp_path, "incr", "incremental", seed=23)
    commands = _script(23, 35, full.fleet.grid.network.vertices())
    _apply(full, commands)
    _apply(incremental, commands)
    reference = canonical_state(incremental)
    assert _comparable(canonical_state(full)) == _comparable(reference)
    full_dir, incr_dir = full.journal.directory, incremental.journal.directory
    full.close()
    incremental.close()

    recovered_full = PTRiderService.recover(full_dir)
    recovered_incr = PTRiderService.recover(incr_dir)
    baseline_incr = PTRiderService.recover(incr_dir, prefer_snapshot=False)
    try:
        assert _comparable(canonical_state(recovered_full)) == _comparable(
            reference
        )
        assert canonical_state(recovered_incr) == reference
        assert canonical_state(baseline_incr) == reference
    finally:
        recovered_full.close()
        recovered_incr.close()
        baseline_incr.close()


def test_retention_prunes_and_conserves(tmp_path):
    horizon = 10.0
    service = _build(tmp_path, "ret", "incremental", seed=31,
                     retention_horizon=horizon)
    rng = random.Random(31)
    verts = service.fleet.grid.network.vertices()
    created = 0
    for index in range(25):
        service.ingest(rng.choice(verts), rng.choice(verts))
        service.advance(1.0)
        service.pump()
    service.drain()
    created = len(service._bookings) + service.batcher.statistics.retired
    # Age everything out: every completed trip ends more than the horizon
    # before the final clock.
    service.advance(300.0)
    service.drain()  # close() would journal a drain past the reference
    stats = service.batcher.statistics
    assert stats.retired > 0, "nothing aged out despite the long advance"
    # Conservation: every booking ever created is live or retired (this
    # workload neither cancels nor leaves bookings unanswered).
    assert len(service._bookings) + stats.retired == created + 0
    # Anything still live either never completed or finished recently.
    records = service._engine.statistics._records
    for booking in service._bookings.values():
        record = records.get(booking.request.request_id)
        if booking.chosen is not None and record is not None:
            assert (
                record.dropoff_time is None
                or record.dropoff_time > service.current_time - horizon
            )
    reference = canonical_state(service)
    journal_dir = service.journal.directory
    service.close()
    recovered = PTRiderService.recover(journal_dir)
    try:
        # Replay reproduces the same retirement decisions and counter.
        assert canonical_state(recovered) == reference
        assert recovered.batcher.statistics.retired == stats.retired
    finally:
        recovered.close()
