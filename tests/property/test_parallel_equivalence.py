"""Byte-identity of parallel shard dispatch with the sequential greedy loop.

The worker pool (:class:`~repro.core.parallel.ParallelDispatchPool`) moves
the per-shard collect/verify stage of ``dispatch_batch`` into spawned
processes that re-wrap the engine's shared-memory arrays; merge and greedy
commit stay on the parent.  For every (backend, workers, shards) combination
the outcomes -- offered skylines, chosen vehicles, commit order, fleet
end-state -- must be byte-identical to ``dispatch_sequential``, and the
matcher/engine work counters folded back from the workers must equal the
in-process pipeline's.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import SystemConfig
from repro.core.dispatcher import Dispatcher, OptionPolicy
from repro.core.parallel import parallel_available
from repro.core.single_side import SingleSideSearchMatcher
from repro.roadnet.generators import grid_network
from repro.roadnet.routing import make_engine
from repro.sim.workload import random_requests

from tests.conftest import build_fleet

pytestmark = pytest.mark.skipif(
    not parallel_available(),
    reason="parallel dispatch needs numpy + shared memory + spawn",
)

SEED = 23
VEHICLES = 8
REQUESTS = 10


def _build_dispatcher(backend: str) -> Dispatcher:
    """A deterministic small city (identical per call, per backend)."""
    network = grid_network(6, 6, weight_jitter=0.35, seed=SEED)
    rng = random.Random(SEED)
    vertices = network.vertices()
    locations = [rng.choice(vertices) for _ in range(VEHICLES)]
    fleet = build_fleet(network, locations, capacity=4, grid_rows=3, grid_columns=3)
    fleet.set_routing_engine(make_engine(network, backend))
    config = SystemConfig(max_waiting=6.0, service_constraint=0.6, max_pickup_distance=10.0)
    matcher = SingleSideSearchMatcher(fleet, config=config)
    return Dispatcher(fleet, matcher, config)


def _burst(dispatcher: Dispatcher):
    return random_requests(
        dispatcher.fleet.grid.network, REQUESTS, 6.0, 0.6, seed=SEED + 1,
        id_prefix="p-",
    )


def _outcome_key(outcome):
    return (outcome.request.request_id, tuple(outcome.options), outcome.chosen)


def _fleet_state(fleet):
    return [
        (
            vehicle.vehicle_id,
            vehicle.location,
            vehicle.offset,
            sorted(vehicle.unfinished_request_ids()),
            tuple(
                sorted(
                    tuple((stop.vertex, stop.request_id, stop.kind.value) for stop in schedule)
                    for schedule in vehicle.kinetic_tree.schedules()
                )
            ),
        )
        for vehicle in fleet.vehicles()
    ]


@pytest.mark.parametrize("backend", ("csr", "ch"))
@pytest.mark.parametrize("workers", (1, 2, 4))
@pytest.mark.parametrize("shards", (1, 2, 4))
def test_parallel_dispatch_equals_sequential(backend, workers, shards):
    sequential = _build_dispatcher(backend)
    requests = _burst(sequential)
    loop_outcomes = sequential.dispatch_sequential(requests, policy=OptionPolicy.CHEAPEST)

    parallel = _build_dispatcher(backend)
    try:
        pipeline_outcomes = parallel.dispatch_batch(
            requests, policy=OptionPolicy.CHEAPEST, shards=shards, workers=workers
        )
    finally:
        parallel.close()

    assert [_outcome_key(o) for o in loop_outcomes] == [
        _outcome_key(o) for o in pipeline_outcomes
    ]
    assert _fleet_state(sequential.fleet) == _fleet_state(parallel.fleet)

    stats = parallel.last_batch_statistics
    assert stats is not None
    if workers > 1:
        # The pool actually served the batch (these backends all export
        # their arrays), and the IPC/wall accounting is populated.
        assert stats.parallel_workers == workers
        assert stats.ipc_seconds >= 0.0
        assert len(stats.shard_wall_seconds) == shards
    else:
        assert stats.parallel_workers == 0


@pytest.mark.parametrize("workers", (2, 4))
def test_worker_counters_fold_back_exactly(workers):
    """Worker-side matcher/engine counters aggregate to the in-process totals.

    The collect/verify work is deterministic and identically distributed
    whether it runs locally or in workers, so after folding the per-worker
    deltas the parent's matcher statistics must equal the in-process
    pipeline's, and the pipeline-level request accounting must match.
    """
    in_process = _build_dispatcher("csr")
    requests = _burst(in_process)
    in_process.dispatch_batch(requests, policy=OptionPolicy.CHEAPEST, shards=2, workers=1)

    parallel = _build_dispatcher("csr")
    try:
        parallel.dispatch_batch(
            requests, policy=OptionPolicy.CHEAPEST, shards=2, workers=workers
        )
    finally:
        parallel.close()

    assert parallel.matcher.statistics.as_dict() == in_process.matcher.statistics.as_dict()


def test_second_batch_reuses_the_pool():
    """A dispatcher keeps its pool across batches (one spawn, many batches)."""
    dispatcher = _build_dispatcher("csr")
    requests = _burst(dispatcher)
    try:
        dispatcher.dispatch_batch(
            requests[:5], policy=OptionPolicy.CHEAPEST, shards=2, workers=2
        )
        pool = dispatcher._pool
        assert pool is not None and pool.batches_executed == 1
        dispatcher.dispatch_batch(
            requests[5:], policy=OptionPolicy.CHEAPEST, shards=2, workers=2
        )
        assert dispatcher._pool is pool and pool.batches_executed == 2
        assert dispatcher.last_batch_statistics.parallel_workers == 2
    finally:
        dispatcher.close()
