"""Property-based tests: the CH backend is float-identical to the CSR backend.

The contraction-hierarchy engine promises more than approximate agreement:
its point queries refold the unpacked original-edge path in the exact
addition order the CSR backend's distance tree uses, so every answer is the
*same float*, not a float within tolerance.  The batch pipeline's
byte-identical-outcomes guarantee across ``--routing`` ablations rests on
this, so it is asserted with ``==`` throughout -- no ``isclose``.

Also property-tested here: an artifact-cache round trip (``save`` on the
first build, ``load`` on the second) reproduces identical distances and
identical query-side ``EngineStats`` behaviour.
"""

from __future__ import annotations

import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DisconnectedError
from repro.roadnet import artifacts
from repro.roadnet.generators import (
    arterial_grid_network,
    grid_network,
    random_geometric_network,
)
from repro.roadnet.routing import CHEngine, CSREngine, make_engine


def _sample(vertices, step_hint):
    return vertices[:: max(1, len(vertices) // step_hint)]


def _jitters(max_value):
    """Weight jitters inside the bit-identity contract.

    The refolding guarantee holds on networks with *unique* shortest paths
    (any genuinely jittered or real network) and on unjittered networks
    (where path sums are exact in floats).  Jitter at machine-epsilon scale
    is neither: it manufactures paths whose lengths differ by less than the
    accumulated rounding of summing them, where no refolding order can
    recover which path a Dijkstra's float comparison happened to prefer
    (hypothesis found ``jitter=2.2e-16`` doing exactly that).

    The floor is 0.05 rather than "just above epsilon" because the failure
    mode is probabilistic, not a cliff: two distinct path sums collide to
    within rounding with probability ~(rounding scale / jitter scale) per
    sampled pair, so e.g. 1e-9 jitter flakes about once per ~1e4 pairs --
    a seed lottery -- while at 0.05 the collision odds are ~1e-12.  The
    uniform-small-jitter band is not lost coverage: it exercises the same
    refold code as 0.05 with worse-conditioned ties, and cross-backend
    agreement at *all* jitters (approximate, not bitwise) stays covered by
    ``test_routing_equivalence.py``.
    """
    return st.one_of(
        st.just(0.0), st.floats(min_value=0.05, max_value=max_value)
    )


@given(
    rows=st.integers(min_value=2, max_value=6),
    columns=st.integers(min_value=2, max_value=6),
    jitter=_jitters(1.0),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=30, deadline=None)
def test_ch_distances_are_float_identical_to_csr_on_grids(rows, columns, jitter, seed):
    network = grid_network(rows, columns, weight_jitter=jitter, seed=seed)
    csr = CSREngine(network, max_cached_sources=1)
    ch = CHEngine(network, max_cached_sources=1)
    sample = _sample(network.vertices(), 8)
    for u in sample:
        for v in sample:
            assert ch.distance(u, v) == csr.distance(u, v)


@given(
    rows=st.integers(min_value=3, max_value=8),
    columns=st.integers(min_value=3, max_value=8),
    jitter=_jitters(0.6),
    every=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=20, deadline=None)
def test_ch_distances_are_float_identical_on_arterial_grids(
    rows, columns, jitter, every, seed
):
    """The E14 benchmark topology: fast arterials over slow local streets."""
    network = arterial_grid_network(
        rows, columns, weight_jitter=jitter, arterial_every=every, seed=seed
    )
    csr = CSREngine(network, max_cached_sources=1)
    ch = CHEngine(network, max_cached_sources=1)
    sample = _sample(network.vertices(), 7)
    for u in sample:
        for v in sample:
            assert ch.distance(u, v) == csr.distance(u, v)


@given(
    count=st.integers(min_value=10, max_value=35),
    radius=st.floats(min_value=0.15, max_value=0.5),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=20, deadline=None)
def test_ch_agrees_with_csr_on_disconnected_networks(count, radius, seed):
    """Geometric networks may be disconnected: both backends must raise
    ``DisconnectedError`` for exactly the same pairs, and the CH tree views
    (inherited CSR planes) must cover exactly the reachable set."""
    network = random_geometric_network(count, radius=radius, seed=seed)
    csr = CSREngine(network, max_cached_sources=1)
    ch = CHEngine(network, max_cached_sources=1)
    sample = _sample(network.vertices(), 6)
    for u in sample:
        for v in sample:
            try:
                expected = csr.distance(u, v)
            except DisconnectedError:
                expected = None
            try:
                actual = ch.distance(u, v)
            except DisconnectedError:
                actual = None
            assert actual == expected
    for source in sample[:3]:
        csr_tree = csr.distances_from(source)
        ch_tree = ch.distances_from(source)
        assert set(ch_tree) == set(csr_tree)
        for vertex in csr_tree:
            assert ch_tree[vertex] == csr_tree[vertex]


@pytest.mark.skipif(
    artifacts._np is None, reason="the artifact cache serialises through NumPy"
)
@given(
    rows=st.integers(min_value=3, max_value=6),
    columns=st.integers(min_value=3, max_value=6),
    jitter=st.floats(min_value=0.0, max_value=0.8),
    backend=st.sampled_from(["csr", "csr+alt", "table", "ch"]),
    seed=st.integers(min_value=0, max_value=5_000),
)
@settings(max_examples=15, deadline=None)
def test_cache_round_trip_reproduces_engine_behaviour(
    rows, columns, jitter, backend, seed
):
    """save -> load must reproduce identical distances *and* identical
    query-side statistics traces (queries / cache_hits / dijkstra_runs /
    bidirectional_runs move in lockstep on both engines)."""
    network = grid_network(rows, columns, weight_jitter=jitter, seed=seed)
    vertices = network.vertices()
    probes = [(vertices[0], vertices[-1]), (vertices[-1], vertices[0])] + [
        (u, v) for u in _sample(vertices, 4) for v in _sample(vertices, 3)
    ]

    def query_trace(engine):
        # Deltas from the post-construction state: a loaded table engine
        # honestly reports 0 build Dijkstras where a built one reports n,
        # but from the first query on the counters must move in lockstep.
        base = (
            engine.stats.queries,
            engine.stats.cache_hits,
            engine.stats.dijkstra_runs,
            engine.stats.bidirectional_runs,
        )
        trace = []
        for u, v in probes:
            value = engine.distance(u, v)
            tree = engine.distances_from(u)
            counters = (
                engine.stats.queries,
                engine.stats.cache_hits,
                engine.stats.dijkstra_runs,
                engine.stats.bidirectional_runs,
            )
            trace.append(
                (value, tree[v]) + tuple(c - b for c, b in zip(counters, base))
            )
        return trace

    with tempfile.TemporaryDirectory() as cache_dir:
        built = make_engine(network, backend, cache_dir=cache_dir)
        loaded = make_engine(network, backend, cache_dir=cache_dir)
        assert built.stats.build_seconds > 0.0
        assert loaded.stats.build_seconds == 0.0
        assert loaded.stats.load_seconds > 0.0
        built.stats.build_seconds = loaded.stats.load_seconds = 0.0
        assert query_trace(loaded) == query_trace(built)
