"""Deadline-ordered overload control invariants of the ingest queue.

ISSUE 9's overload-control tentpole changes *which* admission a full queue
drops under ``queue_policy="shed"``: the loosest-deadline pending entry is
evicted to make room, and only an incoming request that would itself be the
loosest is refused.  These tests drive random admission schedules -- varying
per-request ``max_waiting`` slack and a non-decreasing clock -- against a
bounded :class:`~repro.service.ingest.MicroBatcher` and check it against an
explicit reference model:

* the pending window always matches the model exactly (same deadlines, same
  order), so eviction picks the *first* loosest entry and ties refuse the
  incoming request;
* the queue never exceeds ``queue_capacity``;
* conservation holds at every step and after a final drain:
  ``admitted == answered + pending + errored + cancelled + evicted``;
* with a ``latency_budget``, a pump leaves no pending admission within the
  budget of its deadline (the deadline-driven window close), and late
  flushes are counted as deadline misses.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SystemConfig
from repro.core.dispatcher import Dispatcher
from repro.core.single_side import SingleSideSearchMatcher
from repro.model.request import Request
from repro.roadnet.generators import grid_network
from repro.roadnet.grid_index import GridIndex
from repro.roadnet.routing import make_engine
from repro.service.ingest import MicroBatcher
from repro.vehicles.fleet import Fleet
from repro.vehicles.vehicle import Vehicle

_NETWORK = grid_network(6, 6, weight_jitter=0.2, seed=9)
_VERTICES = _NETWORK.vertices()


def _build_batcher(queue_capacity, queue_policy="shed", batch_window=1000.0,
                   latency_budget=None):
    grid = GridIndex(_NETWORK, rows=3, columns=3)
    fleet = Fleet(grid, make_engine(_NETWORK, "dict"))
    for index in range(4):
        fleet.add_vehicle(
            Vehicle(f"c{index + 1}", location=_VERTICES[(index * 9) % len(_VERTICES)], capacity=4)
        )
    config = SystemConfig(max_waiting=8.0, service_constraint=0.5)
    matcher = SingleSideSearchMatcher(fleet, config=config)
    dispatcher = Dispatcher(fleet, matcher, config)
    return MicroBatcher(
        dispatcher,
        batch_window=batch_window,
        max_batch_size=256,
        queue_capacity=queue_capacity,
        queue_policy=queue_policy,
        speed=1.0,
        latency_budget=latency_budget,
    )


def _request(index: int, submit: float, max_waiting: float) -> Request:
    start = _VERTICES[(index * 5) % len(_VERTICES)]
    destination = _VERTICES[(index * 5 + 7) % len(_VERTICES)]
    if destination == start:
        destination = _VERTICES[(index * 5 + 8) % len(_VERTICES)]
    return Request(
        start=start, destination=destination, riders=1, max_waiting=max_waiting,
        service_constraint=0.5, request_id=f"D{index}", submit_time=submit,
    )


def _check_conservation(batcher):
    stats = batcher.statistics
    assert stats.admitted == (
        stats.answered + batcher.pending + stats.errored
        + stats.cancelled + stats.evicted
    )


#: One admission: the request's waiting slack (discrete, so equal deadlines
#: actually occur and exercise the tie-refusal branch) and the clock advance
#: before it arrives.
_admissions = st.lists(
    st.tuples(
        st.sampled_from([2.0, 4.0, 4.0, 6.0, 8.0]),
        st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
    ),
    min_size=1,
    max_size=25,
)


@settings(max_examples=25, deadline=None)
@given(admissions=_admissions, capacity=st.integers(min_value=1, max_value=5))
def test_shed_evicts_the_loosest_deadline_first(admissions, capacity):
    """The batcher's pending window tracks an explicit reference model of
    loosest-deadline-first eviction, entry for entry."""
    batcher = _build_batcher(capacity)
    clock = 0.0
    model = []  # deadlines of the pending admissions, in window order
    refused = 0
    for sequence, (max_waiting, advance) in enumerate(admissions, start=1):
        clock += advance
        incoming = clock + max_waiting  # speed=1.0
        admitted = batcher.submit(_request(sequence, clock, max_waiting), now=clock)
        if len(model) < capacity:
            assert admitted
            model.append(incoming)
        elif max(model) > incoming + 1e-12:
            # a strictly looser incumbent made room: the *first* loosest goes
            assert admitted
            del model[model.index(max(model))]
            model.append(incoming)
        else:
            # the incoming request would be the loosest: refuse it
            assert not admitted
            refused += 1
        actual = [
            batcher.deadline(request, admit)
            for request, admit in batcher.pending_entries()
        ]
        assert actual == model
        assert batcher.pending <= capacity
        _check_conservation(batcher)
    assert batcher.statistics.shed == refused
    assert batcher.statistics.evicted == batcher.statistics.admitted - len(model)
    # the final drain answers exactly the surviving admissions
    batcher.drain(now=clock)
    assert batcher.pending == 0
    assert batcher.statistics.answered == len(model)
    _check_conservation(batcher)


@settings(max_examples=25, deadline=None)
@given(
    admissions=_admissions,
    budget=st.floats(min_value=0.5, max_value=4.0, allow_nan=False),
)
def test_latency_budget_pump_never_leaves_a_nearly_due_admission(admissions, budget):
    """After any pump, every still-pending admission has more than
    ``latency_budget`` of slack left -- the deadline-driven close fired for
    anything closer than that."""
    batcher = _build_batcher(None, batch_window=1000.0, latency_budget=budget)
    clock = 0.0
    for sequence, (max_waiting, advance) in enumerate(admissions, start=1):
        clock += advance
        batcher.submit(_request(sequence, clock, max_waiting), now=clock)
        batcher.pump(now=clock)
        entries = batcher.pending_entries()
        if entries:
            oldest = min(
                batcher.deadline(request, admit) for request, admit in entries
            )
            assert oldest - clock > budget - 1e-9
        _check_conservation(batcher)
    # the schedule is far shorter than batch_window: every flush so far was
    # the deadline close, never the window timer
    assert batcher.statistics.window_closed == 0
    stats = batcher.statistics
    assert stats.deadline_closed + stats.size_closed == stats.flushes


def test_deadline_misses_are_counted_on_late_flushes():
    """A window flushed long past its admissions' deadlines counts every
    answer as a deadline miss."""
    batcher = _build_batcher(None)
    for sequence in range(1, 4):
        assert batcher.submit(_request(sequence, 0.0, 4.0), now=0.0)
    outcomes = batcher.flush(now=100.0)
    assert len(outcomes) == 3
    assert batcher.statistics.deadline_misses == 3
    _check_conservation(batcher)


def test_eviction_that_empties_the_window_closes_it():
    """Evicting the only pending admission resets the window clock before
    the incoming admission re-opens it."""
    batcher = _build_batcher(1)
    assert batcher.submit(_request(1, 0.0, 8.0), now=0.0)
    assert batcher.window_opened == 0.0
    # tighter deadline evicts the incumbent; the window re-opens *now*
    assert batcher.submit(_request(2, 5.0, 2.0), now=5.0)
    assert batcher.statistics.evicted == 1
    assert batcher.pending == 1
    assert batcher.window_opened == 5.0
    _check_conservation(batcher)
