"""Evening rush hour: replay a Shanghai-like demand peak against a small fleet.

The paper's motivating scenario is a couple at the seaside after dinner: few
vehicles are nearby, so getting picked up quickly costs extra, while waiting
longer is cheaper.  This example reproduces that situation statistically: a
synthetic evening peak (17:00--20:00) is replayed against a deliberately
undersized fleet, and the script reports

* the website-panel statistics (response time, match rate, sharing rate),
* the distribution of skyline sizes (how often riders actually get a choice),
* a concrete "wait longer, pay less" example pulled from the run.

Run with::

    python examples/evening_rush.py
"""

from __future__ import annotations

import random

from repro.core.config import SystemConfig
from repro.core.dispatcher import Dispatcher, OptionPolicy
from repro.core.single_side import SingleSideSearchMatcher
from repro.roadnet.generators import grid_network
from repro.roadnet.grid_index import GridIndex
from repro.roadnet.shortest_path import DistanceOracle
from repro.sim.engine import SimulationEngine
from repro.sim.trips import ShanghaiLikeTripGenerator
from repro.sim.workload import RequestWorkload
from repro.vehicles.fleet import Fleet
from repro.vehicles.vehicle import Vehicle

SEED = 7
FLEET_SIZE = 14
TRIPS = 160
PEAK_DURATION = 400.0  # simulated time units covering the evening peak


def build_world():
    network = grid_network(14, 14, weight_jitter=0.3, seed=SEED)
    grid = GridIndex(network, rows=7, columns=7)
    fleet = Fleet(grid, DistanceOracle(network))
    rng = random.Random(SEED)
    for index in range(FLEET_SIZE):
        fleet.add_vehicle(Vehicle(f"taxi-{index + 1}", location=rng.choice(network.vertices())))
    config = SystemConfig(max_waiting=10.0, service_constraint=0.8, max_pickup_distance=18.0)
    matcher = SingleSideSearchMatcher(fleet, config=config)
    dispatcher = Dispatcher(fleet, matcher, config)
    return network, dispatcher, config


def main() -> None:
    network, dispatcher, config = build_world()

    # Concentrated evening demand: strong hot-spot bias, everything within the peak window.
    generator = ShanghaiLikeTripGenerator(network, seed=SEED, hotspot_bias=0.85)
    trips = generator.generate(TRIPS, day_seconds=PEAK_DURATION)
    workload = RequestWorkload.from_trips(trips, config.max_waiting, config.service_constraint)

    engine = SimulationEngine(
        dispatcher, workload, speed=1.0, tick=1.0, seed=SEED, policy=OptionPolicy.BALANCED
    )
    report = engine.run(until=PEAK_DURATION + 300.0)
    stats = report.statistics

    print(f"Evening rush: {TRIPS} requests, {FLEET_SIZE} taxis, {PEAK_DURATION:.0f} time units")
    print(f"  match rate            : {stats.match_rate:.2f}")
    print(f"  completed trips       : {stats.completed_requests}")
    print(f"  sharing rate          : {stats.sharing_rate:.2f}")
    print(f"  average detour ratio  : {stats.average_detour_ratio:.3f}")
    print(f"  average response time : {stats.average_response_time * 1000:.2f} ms")
    print(f"  average options/req   : {stats.average_option_count:.2f}")

    sizes = sorted(set(stats.option_counts))
    print("\nSkyline sizes offered to riders:")
    for size in sizes:
        count = sum(1 for value in stats.option_counts if value == size)
        print(f"  {size:>2} option(s): {count:>4} requests")

    # Pull one concrete price/time trade-off from a fresh probe on the ending state.
    matcher = dispatcher.matcher
    rng = random.Random(SEED + 1)
    for _ in range(200):
        start, destination = rng.sample(network.vertices(), 2)
        from repro.model.request import Request

        probe = Request(start=start, destination=destination, riders=2,
                        max_waiting=config.max_waiting, service_constraint=config.service_constraint)
        options = matcher.match(probe)
        if len(options) >= 2:
            print("\nA concrete trade-off (the seaside-couple situation):")
            for option in options:
                print(
                    f"  vehicle {option.vehicle_id:>8}: pick-up in {option.pickup_distance:6.2f}"
                    f" distance units, price {option.price:6.2f}"
                )
            fastest = min(options, key=lambda o: o.pickup_distance)
            cheapest = min(options, key=lambda o: o.price)
            saving = (fastest.price - cheapest.price) / fastest.price * 100.0
            extra_wait = cheapest.pickup_distance - fastest.pickup_distance
            print(
                f"  -> waiting {extra_wait:.2f} longer saves {saving:.0f}% of the fare"
            )
            break
    else:
        print("\n(no multi-option probe found on the final state)")


if __name__ == "__main__":
    main()
