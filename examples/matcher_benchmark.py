"""Compare the three PTRider matchers and the baseline systems on one workload.

The demo website lets an administrator switch the matching algorithm between
single-side and dual-side search; this example goes further and runs the same
burst of requests through every matcher in the repository, reporting

* end-to-end matching latency,
* how many vehicles each algorithm had to verify exactly,
* how many options riders received,

which is a command-line rendition of experiments E3 / E9 / E11.

Run with::

    python examples/matcher_benchmark.py
"""

from __future__ import annotations

import random
import time

from repro.baselines.nearest import NearestVehicleMatcher
from repro.baselines.sharek import SharekStyleMatcher
from repro.baselines.tshare import TShareStyleMatcher
from repro.core.config import SystemConfig
from repro.core.dispatcher import Dispatcher, OptionPolicy
from repro.core.dual_side import DualSideSearchMatcher
from repro.core.naive import NaiveKineticTreeMatcher
from repro.core.single_side import SingleSideSearchMatcher
from repro.roadnet.generators import grid_network
from repro.roadnet.grid_index import GridIndex
from repro.roadnet.shortest_path import DistanceOracle
from repro.sim.workload import random_requests
from repro.vehicles.fleet import Fleet
from repro.vehicles.vehicle import Vehicle

SEED = 11
VEHICLES = 80
WARMUP_REQUESTS = 25
PROBE_REQUESTS = 40

MATCHERS = [
    ("naive", NaiveKineticTreeMatcher),
    ("single_side", SingleSideSearchMatcher),
    ("dual_side", DualSideSearchMatcher),
    ("nearest", NearestVehicleMatcher),
    ("sharek", SharekStyleMatcher),
    ("tshare", TShareStyleMatcher),
]


def build_busy_fleet(config: SystemConfig):
    """Build a fleet and commit a warm-up batch so kinetic trees are non-trivial."""
    network = grid_network(16, 16, weight_jitter=0.3, seed=SEED)
    grid = GridIndex(network, rows=8, columns=8)
    fleet = Fleet(grid, DistanceOracle(network))
    rng = random.Random(SEED)
    for index in range(VEHICLES):
        fleet.add_vehicle(Vehicle(f"c{index + 1}", location=rng.choice(network.vertices())))
    warmup = random_requests(network, WARMUP_REQUESTS, config.max_waiting,
                             config.service_constraint, seed=SEED, id_prefix="warm")
    dispatcher = Dispatcher(fleet, SingleSideSearchMatcher(fleet, config=config), config)
    dispatcher.dispatch_batch(warmup, policy=OptionPolicy.BALANCED)
    return network, fleet


def main() -> None:
    config = SystemConfig(max_waiting=8.0, service_constraint=0.6, max_pickup_distance=14.0)
    network, fleet = build_busy_fleet(config)
    probes = random_requests(network, PROBE_REQUESTS, config.max_waiting,
                             config.service_constraint, seed=SEED + 1, id_prefix="probe")

    print(f"{VEHICLES} taxis ({len(fleet.nonempty_vehicles())} busy), {PROBE_REQUESTS} probe requests\n")
    header = f"{'matcher':>12} {'total ms':>10} {'ms/request':>11} {'verified/req':>13} {'options/req':>12}"
    print(header)
    print("-" * len(header))

    for name, matcher_class in MATCHERS:
        matcher = matcher_class(fleet, config=config)
        started = time.perf_counter()
        option_lists = [matcher.match(request) for request in probes]
        elapsed = time.perf_counter() - started
        stats = matcher.statistics
        verified = stats.vehicles_evaluated / len(probes)
        options = sum(len(options) for options in option_lists) / len(probes)
        print(
            f"{name:>12} {elapsed * 1000:>10.1f} {elapsed * 1000 / len(probes):>11.2f} "
            f"{verified:>13.1f} {options:>12.2f}"
        )

    print(
        "\nReading the table: the indexed searches (single_side, dual_side) verify a fraction of"
        "\nthe vehicles the naive kinetic-tree matcher touches while returning the same skylines;"
        "\nthe single-option baselines (nearest, tshare) are fast but offer no price/time choice,"
        "\nand the SHAREK-style matcher only ever offers idle vehicles."
    )


if __name__ == "__main__":
    main()
