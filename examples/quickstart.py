"""Quickstart: build a PTRider system, book a ride, pick an option, watch it happen.

This walks through the exact flow of the demo's smartphone interface
(Section 4.1 of the paper):

1. the rider enters a start location, a destination and the group size;
2. PTRider returns every non-dominated <vehicle, pick-up time, price> option;
3. the rider picks the one matching their preference;
4. the vehicle drives, picks the riders up and drops them off.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import build_system


def main() -> None:
    # A 12x12 synthetic city with 30 taxis placed uniformly at random.
    system = build_system(network_rows=12, network_columns=12, vehicles=30, seed=2024)
    network = system.fleet.grid.network

    # Make the fleet a little busy first, so price/time trade-offs exist.
    vertices = network.vertices()
    for start, destination in [(5, 130), (20, 100), (77, 12), (140, 30)]:
        booking = system.book(vertices[start], vertices[destination], riders=1)
        if booking.options:
            system.choose(booking.booking_id, 0)
    system.advance(3.0)

    # --- step 1: the rider books a trip -------------------------------------
    start, destination = vertices[8], vertices[120]
    booking = system.book(start, destination, riders=2)
    print(f"Request: 2 riders from vertex {start} to vertex {destination}")
    print(f"Matching took {booking.response_seconds * 1000:.2f} ms")

    # --- step 2: PTRider returns the non-dominated options ------------------
    if not booking.options:
        print("No vehicle can serve this request right now.")
        return
    print(f"\n{len(booking.options)} non-dominated option(s):")
    for index, option in enumerate(booking.options):
        print(
            f"  [{index}] vehicle {option.vehicle_id:>4}:"
            f" pick-up distance {option.pickup_distance:6.2f},"
            f" price {option.price:6.2f}"
        )

    # --- step 3: the rider chooses (here: the cheapest offer) ---------------
    cheapest = min(range(len(booking.options)), key=lambda i: booking.options[i].price)
    chosen = system.choose(booking.booking_id, cheapest)
    print(f"\nChose option [{cheapest}] -> vehicle {chosen.vehicle_id}")
    print("That vehicle's trip schedules (kinetic-tree branches):")
    for schedule in system.vehicle_schedules(chosen.vehicle_id):
        legs = " -> ".join(f"{kind}:{request}@{vertex}" for vertex, kind, request in schedule)
        print(f"  {legs}")

    # --- step 4: the world moves on ------------------------------------------
    system.advance(60.0)
    stats = system.statistics()
    print("\nAfter 60 time units:")
    print(f"  pick-ups fired : {stats['pickups']:.0f}")
    print(f"  drop-offs fired: {stats['dropoffs']:.0f}")
    print(f"  sharing rate   : {stats['sharing_rate']:.2f}")
    print(f"  avg response   : {stats['average_response_time'] * 1000:.2f} ms")


if __name__ == "__main__":
    main()
