"""A fleet operator's day: run a scaled day of demand and inspect the operation.

This example takes the website-interface perspective (Section 4.2 of the
paper): the operator watches live statistics, inspects individual taxis'
kinetic trees and tunes global parameters.  It runs a scaled-down day of
Shanghai-like demand twice -- once with the default service constraint and
once with a looser one -- and prints the operator-facing comparison.

Run with::

    python examples/fleet_operations_day.py
"""

from __future__ import annotations

import random

from repro.core.config import SystemConfig
from repro.core.dispatcher import Dispatcher, OptionPolicy
from repro.core.dual_side import DualSideSearchMatcher
from repro.roadnet.generators import grid_network
from repro.roadnet.grid_index import GridIndex
from repro.roadnet.shortest_path import DistanceOracle
from repro.sim.engine import SimulationEngine
from repro.sim.trips import ShanghaiLikeTripGenerator
from repro.sim.workload import RequestWorkload
from repro.vehicles.fleet import Fleet
from repro.vehicles.vehicle import Vehicle

SEED = 42
FLEET_SIZE = 25
TRIPS = 260
DAY = 700.0  # compressed "day" in simulation time units


def run_day(service_constraint: float) -> dict:
    network = grid_network(15, 15, weight_jitter=0.3, seed=SEED)
    grid = GridIndex(network, rows=7, columns=7)
    fleet = Fleet(grid, DistanceOracle(network))
    rng = random.Random(SEED)
    for index in range(FLEET_SIZE):
        fleet.add_vehicle(Vehicle(f"taxi-{index + 1}", location=rng.choice(network.vertices())))

    config = SystemConfig(
        max_waiting=10.0, service_constraint=service_constraint, max_pickup_distance=16.0
    )
    dispatcher = Dispatcher(fleet, DualSideSearchMatcher(fleet, config=config), config)
    trips = ShanghaiLikeTripGenerator(network, seed=SEED).generate(TRIPS, day_seconds=DAY)
    workload = RequestWorkload.from_trips(trips, config.max_waiting, config.service_constraint)
    engine = SimulationEngine(dispatcher, workload, speed=1.0, tick=1.0, seed=SEED,
                              policy=OptionPolicy.CHEAPEST)
    report = engine.run(until=DAY + 300.0)
    stats = report.statistics

    occupied = sum(vehicle.occupied_distance for vehicle in fleet.vehicles())
    driven = sum(vehicle.distance_driven for vehicle in fleet.vehicles())
    busiest = max(fleet.vehicles(), key=lambda vehicle: vehicle.occupied_distance)

    return {
        "service_constraint": service_constraint,
        "match_rate": stats.match_rate,
        "completed": stats.completed_requests,
        "sharing_rate": stats.sharing_rate,
        "avg_detour": stats.average_detour_ratio,
        "avg_response_ms": stats.average_response_time * 1000.0,
        "occupied_fraction": occupied / driven if driven else 0.0,
        "busiest_taxi": busiest.vehicle_id,
        "busiest_occupied": busiest.occupied_distance,
        "fleet": fleet,
    }


def main() -> None:
    print(f"Scaled day: {TRIPS} trips, {FLEET_SIZE} taxis, {DAY:.0f} time units\n")
    results = [run_day(0.3), run_day(0.9)]

    header = (
        f"{'eps':>5} {'match rate':>11} {'completed':>10} {'sharing':>8} "
        f"{'avg detour':>11} {'occupied %':>11} {'resp [ms]':>10}"
    )
    print(header)
    print("-" * len(header))
    for result in results:
        print(
            f"{result['service_constraint']:>5.1f} {result['match_rate']:>11.2f} "
            f"{result['completed']:>10d} {result['sharing_rate']:>8.2f} "
            f"{result['avg_detour']:>11.3f} {result['occupied_fraction'] * 100:>10.1f}% "
            f"{result['avg_response_ms']:>10.2f}"
        )

    print(
        "\nLoosening the service constraint lets the matcher pool more riders per taxi:"
        "\nsharing and vehicle utilisation go up while each rider's detour grows a little."
    )

    # Operator drill-down: look at the busiest taxi of the second run.
    result = results[1]
    fleet = result["fleet"]
    busiest = fleet.get(result["busiest_taxi"])
    print(f"\nBusiest taxi of the looser run: {busiest.vehicle_id}")
    print(f"  distance driven while occupied: {busiest.occupied_distance:.1f}")
    print(f"  total distance driven        : {busiest.distance_driven:.1f}")
    print(f"  unfinished requests right now: {busiest.unfinished_request_ids() or 'none'}")
    branches = busiest.kinetic_tree.schedule_count()
    print(f"  kinetic-tree branches        : {branches}")


if __name__ == "__main__":
    main()
