"""E8 -- scalability with the number of taxis (admin panel, Fig. 4(c)).

The demo exposes the fleet size as an administrator knob; the underlying
research claim is that the indexed matchers stay fast as the fleet grows
because the grid prunes most vehicles, whereas the naive matcher's work grows
linearly with the fleet.  The benchmark sweeps the fleet size and compares the
average number of vehicles each matcher verifies per request.
"""

from __future__ import annotations

import time

import pytest

from repro.roadnet.generators import grid_network

from common import (
    HAVE_SCIPY,
    build_city,
    format_table,
    option_points,
    probe_requests,
    record_result,
    routing_layer_seconds,
    warm_up_fleet,
)


def verification_work(matcher_name: str, vehicles: int, seed: int = 61):
    city = build_city(
        rows=14, columns=14, vehicles=vehicles, grid_rows=7, grid_columns=7, seed=seed
    )
    warm_up_fleet(city, requests=max(6, vehicles // 6), seed=seed)
    matcher = city.matcher(matcher_name)
    requests = probe_requests(city, count=15, seed=seed + 1)
    for request in requests:
        matcher.match(request)
    stats = matcher.statistics
    return stats.vehicles_evaluated / len(requests)


@pytest.mark.parametrize("matcher_name", ["naive", "single_side", "dual_side"])
@pytest.mark.parametrize("vehicles", [30, 90])
def test_e8_work_per_request(benchmark, matcher_name, vehicles):
    started = time.perf_counter()
    work = benchmark.pedantic(
        lambda: verification_work(matcher_name, vehicles), rounds=1, iterations=1
    )
    wall = time.perf_counter() - started
    benchmark.extra_info["vehicles"] = vehicles
    benchmark.extra_info["verified_per_request"] = round(work, 2)
    record_result(
        "E8", wall, vehicles_evaluated=round(work, 2), matcher=matcher_name, vehicles=vehicles
    )


def test_e8_routing_backends_agree_and_csr_is_faster():
    """On the largest seed network the CSR routing layer is >= 2x faster than
    the dict backend while producing identical skylines."""
    skylines = {}
    for backend in ("dict", "csr"):
        city = build_city(
            rows=14, columns=14, vehicles=120, grid_rows=7, grid_columns=7,
            seed=61, routing=backend,
        )
        warm_up_fleet(city, requests=20, seed=61)
        matcher = city.matcher("single_side")
        skylines[backend] = [
            option_points(matcher.match(request))
            for request in probe_requests(city, count=15, seed=62)
        ]
    assert skylines["dict"] == skylines["csr"]

    if not HAVE_SCIPY:
        pytest.skip("pure-Python CSR fallback is correct but not 2x faster")
    # The largest seed network of the harness: city-scale routing is where
    # the CSR arrays pay off hardest.
    network = grid_network(28, 28, weight_jitter=0.3, seed=61)
    sources = network.vertices()[::7][:50]
    dict_seconds = routing_layer_seconds(network, "dict", sources)
    csr_seconds = routing_layer_seconds(network, "csr", sources)
    record_result("E8", csr_seconds, routing_backend="csr",
                  speedup_vs_dict=round(dict_seconds / csr_seconds, 2))
    assert csr_seconds * 2.0 <= dict_seconds


def test_e8_indexed_matchers_scale_sublinearly():
    sizes = (30, 60, 120)
    table = {}
    for matcher_name in ("naive", "single_side", "dual_side"):
        table[matcher_name] = [verification_work(matcher_name, size) for size in sizes]

    # the naive matcher verifies every vehicle: work is (essentially) the fleet size
    for size, work in zip(sizes, table["naive"]):
        assert work == pytest.approx(size, rel=0.01)
    # the indexed matchers verify a small fraction of a large fleet
    assert table["single_side"][-1] < 0.6 * table["naive"][-1]
    assert table["dual_side"][-1] <= table["single_side"][-1]
    # growth factor from the smallest to the largest fleet is much smaller than naive's
    naive_growth = table["naive"][-1] / table["naive"][0]
    single_growth = table["single_side"][-1] / max(table["single_side"][0], 1e-9)
    assert single_growth < naive_growth

    rows = [
        (matcher, *(f"{value:.1f}" for value in values)) for matcher, values in table.items()
    ]
    print("\nE8 -- vehicles verified per request vs fleet size\n"
          + format_table(("matcher", *(f"{size} taxis" for size in sizes)), rows))
