"""E15 -- hierarchy-native distance trees: PHAST planes vs SciPy planes.

PR 4 made the ch backend's *point queries* hierarchy-native; its full
distance trees still rode the SciPy ``dijkstra(indices=[...])`` plane.
This experiment measures what the :class:`PHASTTreeProvider` changes on the
E14 city (19,600-vertex arterial grid):

* **tree planes** -- a batch of cold start-rooted trees computed by the
  forced ``plane`` and ``phast`` providers of the same ch engine must be
  **bit-identical**, and both throughputs are recorded.  The honest
  headline is recorded, not spun: SciPy's C Dijkstra stays the fastest
  tree path where SciPy exists (which is why ``auto`` keeps it), while the
  NumPy sweep beats the *pure-Python* Dijkstra planes -- the tree path a
  SciPy-less deployment would otherwise be stuck with -- severalfold;
* **dispatch ablation** -- the same burst dispatched with ``plane`` and
  ``phast`` trees commits byte-identical outcomes (same options, same
  prices, same winners): the provider is a pure accelerator seam;
* **SciPy-free serving** -- with the plane path stubbed out entirely, the
  phast engine still answers ``distances_from`` / ``prefetch_trees``
  (billed to ``phast_sweeps``, with zero ``dijkstra_runs``): no tree
  request can leak back to SciPy.
"""

from __future__ import annotations

import time

import pytest

from repro.core.config import SystemConfig
from repro.core.dispatcher import OptionPolicy
from repro.roadnet.generators import arterial_grid_network
from repro.roadnet.routing import CSRGraph, make_engine
from repro.sim.workload import random_requests

from common import DEFAULT_CONFIG, HAVE_SCIPY, build_city, record_result

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the benchmark needs the fast path
    _np = None

pytestmark = pytest.mark.skipif(
    _np is None, reason="E15 measures the NumPy PHAST sweep"
)

ROWS = 140
COLUMNS = 140
ARTERIAL_EVERY = 7
SEED = 23
#: distinct tree sources of the plane-throughput phase
TREE_SOURCES = 48
#: best-of repetitions (damps scheduler noise on CI runners)
REPEATS = 3
#: sources of the pure-Python-plane comparison -- enough for the sweep's
#: per-batch overhead to amortise, small enough that the deliberately slow
#: pure-Python side stays CI-friendly (~25 ms per tree on 19.6k vertices)
PYTHON_TREE_SOURCES = 24
VEHICLES = 24
REQUESTS = 30


@pytest.fixture(scope="module")
def network():
    """The E14 city: 19,600 vertices, fast arterials over slow locals."""
    return arterial_grid_network(
        ROWS, COLUMNS, weight_jitter=0.3, arterial_every=ARTERIAL_EVERY, seed=SEED
    )


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    """One artifact cache shared by every engine of the module (one CH build)."""
    return str(tmp_path_factory.mktemp("routing-artifacts"))


@pytest.fixture(scope="module")
def phast_engine(network, cache_dir):
    """The ch engine with hierarchy-native trees forced on."""
    return make_engine(network, "ch", cache_dir=cache_dir, tree_provider="phast")


def _tree_sources(network, count):
    step = max(1, network.vertex_count // count)
    return network.vertices()[::step][:count]


def _best_of(callable_, repeats=REPEATS):
    best, result = float("inf"), None
    for _ in range(repeats):
        started = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - started)
    return best, result


def test_e15_phast_planes_bit_identical_and_throughput(network, cache_dir, phast_engine):
    """PHAST planes == SciPy planes bit for bit; both throughputs recorded."""
    if not HAVE_SCIPY:
        pytest.skip("the plane-throughput comparison needs the SciPy C path")
    sources = _tree_sources(network, TREE_SOURCES)
    indices = [phast_engine.graph.index(vertex) for vertex in sources]
    plane_engine = make_engine(network, "ch", cache_dir=cache_dir, tree_provider="plane")
    assert phast_engine.tree_provider_name == "phast"
    assert plane_engine.tree_provider_name == "plane"

    phast_wall, phast_plane = _best_of(
        lambda: phast_engine.tree_provider.trees(indices)
    )
    scipy_wall, scipy_plane = _best_of(
        lambda: plane_engine.tree_provider.trees(indices)
    )
    # Bit-identical, not approximately equal: the whole ablation rests on it.
    assert _np.array_equal(_np.asarray(phast_plane), _np.asarray(scipy_plane))

    record_result(
        "E15",
        scipy_wall,
        routing_backend="ch",
        phase="tree_planes",
        tree_provider="plane",
        trees=len(indices),
        ms_per_tree=round(scipy_wall / len(indices) * 1000, 3),
        trees_per_second=round(len(indices) / scipy_wall, 1),
        vertices=network.vertex_count,
    )
    record_result(
        "E15",
        phast_wall,
        routing_backend="ch",
        phase="tree_planes",
        tree_provider="phast",
        trees=len(indices),
        ms_per_tree=round(phast_wall / len(indices) * 1000, 3),
        trees_per_second=round(len(indices) / phast_wall, 1),
        vertices=network.vertex_count,
        # same convention as speedup_vs_python: other / phast, so < 1 means
        # the other side (here SciPy's C plane) is faster
        speedup_vs_scipy=round(scipy_wall / phast_wall, 3),
    )
    # No speed *claim* against the C path -- `auto` already encodes the
    # honest verdict (SciPy wins where it exists; measured ~3x here) -- but
    # a collapse past 10x would mean the sweep itself broke.
    assert phast_wall < 10 * scipy_wall, (
        f"PHAST planes collapsed to {phast_wall / scipy_wall:.1f}x the SciPy "
        f"plane wall ({phast_wall:.3f}s vs {scipy_wall:.3f}s)"
    )


def test_e15_phast_beats_pure_python_planes(network, phast_engine):
    """The deployment story: NumPy-only environments (no SciPy) get trees
    from the sweep several times faster than from per-source pure-Python
    Dijkstras, which is exactly when ``auto`` switches over."""
    sources = _tree_sources(network, PYTHON_TREE_SOURCES)
    indices = [phast_engine.graph.index(vertex) for vertex in sources]

    python_graph = CSRGraph(network)
    python_graph.matrix = None  # what CSRGraph.trees degrades to without SciPy
    # same best-of-N on both sides: the comparison must not hand the slow
    # side a single (hiccup-exposed) run while the fast side takes a min
    python_wall, python_plane = _best_of(lambda: python_graph.trees(indices))

    phast_wall, phast_plane = _best_of(
        lambda: phast_engine.tree_provider.trees(indices)
    )
    for position in range(len(indices)):
        assert [float(v) for v in phast_plane[position]] == [
            float(v) for v in python_plane[position]
        ]
    speedup = python_wall / phast_wall
    record_result(
        "E15",
        python_wall,
        routing_backend="ch",
        phase="python_planes",
        tree_provider="python-dijkstra",
        trees=len(indices),
        ms_per_tree=round(python_wall / len(indices) * 1000, 3),
        vertices=network.vertex_count,
    )
    record_result(
        "E15",
        phast_wall,
        routing_backend="ch",
        phase="python_planes",
        tree_provider="phast",
        trees=len(indices),
        ms_per_tree=round(phast_wall / len(indices) * 1000, 3),
        vertices=network.vertex_count,
        speedup_vs_python=round(speedup, 2),
    )
    assert speedup >= 1.5, (
        f"PHAST planes only {speedup:.2f}x over pure-Python Dijkstra planes "
        f"(python {python_wall:.3f}s, phast {phast_wall:.3f}s)"
    )


def test_e15_refold_scatter_microbench(network, phast_engine, monkeypatch):
    """The reduceat-free refold prototype: bit-identity + honest delta.

    ``PTRIDER_PHAST_SCATTER_REFOLD`` swaps the refold's segmented
    ``minimum.reduceat`` generations for scatter-min (``minimum.at``) into
    the destination cells.  Both walls and their ratio are recorded either
    way -- the flag is a measurement seam, not a claimed win (``ufunc.at``
    is unbuffered, so the segmented fold is expected to keep the edge on
    CPython/NumPy; the prototype exists to keep that verdict measured, not
    assumed).
    """
    from repro.roadnet.routing import PHAST_SCATTER_REFOLD_ENV

    sources = _tree_sources(network, TREE_SOURCES)
    indices = [phast_engine.graph.index(vertex) for vertex in sources]
    provider = phast_engine.tree_provider

    monkeypatch.delenv(PHAST_SCATTER_REFOLD_ENV, raising=False)
    segmented_wall, segmented_plane = _best_of(lambda: provider.trees(indices))
    monkeypatch.setenv(PHAST_SCATTER_REFOLD_ENV, "1")
    scatter_wall, scatter_plane = _best_of(lambda: provider.trees(indices))

    # The flag must never change a single bit of any row.
    assert _np.array_equal(
        _np.asarray(segmented_plane), _np.asarray(scatter_plane)
    )
    delta = scatter_wall / segmented_wall
    record_result(
        "E15",
        segmented_wall,
        routing_backend="ch",
        phase="refold_microbench",
        refold="reduceat",
        trees=len(indices),
        ms_per_tree=round(segmented_wall / len(indices) * 1000, 3),
        vertices=network.vertex_count,
    )
    record_result(
        "E15",
        scatter_wall,
        routing_backend="ch",
        phase="refold_microbench",
        refold="scatter",
        trees=len(indices),
        ms_per_tree=round(scatter_wall / len(indices) * 1000, 3),
        vertices=network.vertex_count,
        # > 1 means scatter is slower than the segmented fold
        wall_vs_reduceat=round(delta, 3),
    )
    # No direction is claimed, but a collapse past 20x would mean the
    # prototype broke (e.g. fell off the vectorised path entirely).
    assert scatter_wall < 20 * segmented_wall, (
        f"scatter refold collapsed to {delta:.1f}x the segmented fold "
        f"({scatter_wall:.3f}s vs {segmented_wall:.3f}s)"
    )


def test_e15_dispatch_outcomes_byte_identical_across_providers(network, cache_dir):
    """The same burst dispatched on plane vs phast trees commits identically."""

    def run(provider):
        config = DEFAULT_CONFIG.with_updates(tree_provider=provider)
        city = build_city(
            vehicles=VEHICLES,
            grid_rows=10,
            grid_columns=10,
            seed=SEED,
            routing="ch",
            cache_dir=cache_dir,
            network=network,
            config=config,
        )
        requests = random_requests(
            city.network,
            REQUESTS,
            city.config.max_waiting,
            city.config.service_constraint,
            seed=11,
        )
        dispatcher = city.dispatcher("single_side")
        started = time.perf_counter()
        outcomes = dispatcher.dispatch_batch(requests, policy=OptionPolicy.CHEAPEST)
        wall = time.perf_counter() - started
        stats = dispatcher.last_batch_statistics
        keys = [(o.request.request_id, tuple(o.options), o.chosen) for o in outcomes]
        return keys, wall, stats

    plane_keys, plane_wall, plane_stats = run("plane")
    phast_keys, phast_wall, phast_stats = run("phast")
    assert phast_keys == plane_keys
    assert plane_stats.tree_provider == "plane"
    assert phast_stats.tree_provider == "phast"
    for provider, wall, stats in (
        ("plane", plane_wall, plane_stats),
        ("phast", phast_wall, phast_stats),
    ):
        record_result(
            "E15",
            wall,
            routing_backend="ch",
            phase="dispatch",
            tree_provider=provider,
            requests=REQUESTS,
            vehicles=VEHICLES,
            prefetched_trees=stats.prefetched_trees,
            prefetch_seconds=round(stats.prefetch_seconds, 6),
            vertices=network.vertex_count,
        )


def test_e15_ch_serves_with_scipy_absent_from_the_tree_path(
    network, phast_engine, monkeypatch
):
    """No tree request may reach the SciPy plane seam on the phast engine."""

    def forbidden(*args, **kwargs):  # pragma: no cover - failure path
        raise AssertionError("tree request leaked to the SciPy plane path")

    monkeypatch.setattr(CSRGraph, "tree", forbidden)
    monkeypatch.setattr(CSRGraph, "trees", forbidden)
    sources = _tree_sources(network, 12)
    sweeps_before = phast_engine.stats.phast_sweeps
    started = time.perf_counter()
    tree = phast_engine.distances_from(sources[0])
    views = phast_engine.prefetch_trees(sources)
    wall = time.perf_counter() - started
    assert len(tree) == network.vertex_count
    assert set(views) == set(sources)
    assert phast_engine.stats.phast_sweeps > sweeps_before
    assert phast_engine.stats.dijkstra_runs == 0
    record_result(
        "E15",
        wall,
        routing_backend="ch",
        phase="scipy_free_serving",
        tree_provider="phast",
        trees=phast_engine.stats.phast_sweeps - sweeps_before,
        vertices=network.vertex_count,
    )
