"""E18 -- durability: journal overhead and snapshot+replay recovery walls.

The durability subsystem (:mod:`repro.service.journal`,
:mod:`repro.service.recovery`) must be cheap enough to leave on in
production and fast enough to restart from after a crash.  Two questions,
two measurement families:

* **Journal overhead** -- the E17 surge/lull day (bimodal arrivals over
  hotspot origins, answered through the micro-batched ingest path) is
  replayed on a plain in-memory service and again with the SQLite
  write-ahead journal recording every admission, pump and flush outcome.
  Serving wall time -- admissions plus window flushes, world advancement
  excluded on both arms -- is compared; the headline claim is that the
  journaled arm stays within 10% of the throughput of the in-memory arm.
  A third arm adds periodic snapshots, whose full-state serialisation
  cost is recorded (unasserted) as the price of the
  ``snapshot_interval`` cadence knob.
* **Recovery wall** -- journals holding 10k- and 100k-event tails are
  recovered end to end (snapshot restore + sequence-ordered replay), the
  wall clocked, and the recovered state asserted ``==`` (canonical state)
  to the pre-crash service.  Plain-journal mode keeps only the baseline
  snapshot, so these replays exercise the full tail.

The smoke legs (selected in CI via ``-k smoke``) run the same checks at a
small scale -- including a crash + recover + resume round trip asserting
state equality -- and record trend rows: the durable serving throughput
gates as a rate (``--rate-phases``), the recovery wall as a normal phase.

Scale knobs: ``PTRIDER_E18_REQUESTS`` (headline replay, default 20k),
``PTRIDER_E18_SMOKE_REQUESTS`` (CI smoke, default 1500) and
``PTRIDER_E18_TAILS`` (comma-separated recovery tail sizes, default
``10000,100000``).
"""

from __future__ import annotations

import os
import random
import time

import pytest

from common import HAVE_SCIPY, record_result

from repro.core.config import SystemConfig
from repro.roadnet.generators import grid_network
from repro.roadnet.grid_index import GridIndex
from repro.roadnet.routing import make_engine
from repro.service.api import PTRiderService
from repro.service.recovery import canonical_state
from repro.sim.workload import RequestWorkload
from repro.vehicles.fleet import Fleet
from repro.vehicles.vehicle import Vehicle

SEED = 18
TICK = 1.0
RATE = 400.0
MAX_WAITING = 8.0
SERVICE_CONSTRAINT = 0.6

#: The replay city (E17's backend-matrix shape: large enough for real
#: dispatch work per window, small enough that two arms + a recovery fit
#: a CI smoke budget).
CITY = dict(rows=30, grid=6, vehicles=24, capacity=2, cache=8,
            max_pickup=3.0, speed=6.0, hotspots=48)
#: The recovery-scaling city: tiny, so a 100k-event tail measures the
#: replay machinery (record decode, sequence ordering, re-execution
#: bookkeeping), not the routing engine.
TAIL_CITY = dict(rows=8, grid=4, vehicles=3, capacity=2, cache=8,
                 max_pickup=6.0, speed=6.0, hotspots=8)

HEADLINE_REQUESTS = int(os.environ.get("PTRIDER_E18_REQUESTS", "20000"))
SMOKE_REQUESTS = int(os.environ.get("PTRIDER_E18_SMOKE_REQUESTS", "1500"))
TAILS = tuple(
    int(part)
    for part in os.environ.get("PTRIDER_E18_TAILS", "10000,100000").split(",")
    if part.strip()
)
SMOKE_TAIL = 2000


def _build_service(city: dict, journal_dir=None, mode="journal+snapshot",
                   snapshot_interval=1000) -> PTRiderService:
    network = grid_network(city["rows"], city["rows"], weight_jitter=0.3, seed=SEED)
    grid = GridIndex(network, rows=city["grid"], columns=city["grid"])
    engine = make_engine(network, "csr", max_cached_sources=city["cache"])
    fleet = Fleet(grid, engine)
    rng = random.Random(SEED)
    vertices = network.vertices()
    for index in range(city["vehicles"]):
        fleet.add_vehicle(
            Vehicle(f"c{index + 1}", location=rng.choice(vertices),
                    capacity=city["capacity"])
        )
    durability = {}
    if journal_dir is not None:
        durability = dict(
            durability=mode,
            journal_path=str(journal_dir),
            snapshot_interval=snapshot_interval,
        )
    config = SystemConfig(
        vehicle_capacity=city["capacity"],
        max_waiting=MAX_WAITING,
        service_constraint=SERVICE_CONSTRAINT,
        speed=city["speed"],
        max_pickup_distance=city["max_pickup"],
        routing_backend="csr",
        batch_window=TICK,
        max_batch_size=65536,
        **durability,
    )
    return PTRiderService(fleet, config=config, seed=SEED)


def _build_workload(city: dict, total: int) -> RequestWorkload:
    network = grid_network(city["rows"], city["rows"], weight_jitter=0.3, seed=SEED)
    return RequestWorkload.daily(
        network,
        total=total,
        duration=total / RATE,
        max_waiting=MAX_WAITING,
        service_constraint=SERVICE_CONSTRAINT,
        hotspot_count=city["hotspots"],
        hotspot_bias=1.0,
        seed=SEED,
    )


def _replay_day(service: PTRiderService, workload: RequestWorkload) -> float:
    """Replay the day through the ingest path; returns serving wall seconds.

    Serving = admissions + window flushes (both of which the durable arm
    journals); world advancement is excluded on both arms, exactly as E17
    measures its serving walls.
    """
    serving = 0.0
    t = 0.0
    while True:
        t += TICK
        started = time.perf_counter()
        flushed = service.pump(now=t)
        serving += time.perf_counter() - started
        due = workload.due(t)
        started = time.perf_counter()
        for request in due:
            assert service.ingest_request(request, now=t)
        serving += time.perf_counter() - started
        if not due and not flushed and not workload.remaining:
            assert service.batcher.pending == 0
            break
        service.advance(TICK)
    return serving


def _journal_with_tail(journal_dir, events: int) -> PTRiderService:
    """A durable service whose journal holds ``events`` command records.

    Plain-journal mode (baseline snapshot only), so recovering it replays
    the full tail.  The mix -- mostly sim-tick advances, with an
    admission+pump pair every 50 events -- keeps per-event cost flat and
    the state non-trivial (live vehicles, bookings, ingest counters).
    """
    service = _build_service(TAIL_CITY, journal_dir, mode="journal")
    vertices = service.fleet.grid.network.vertices()
    emitted = 0
    index = 0
    while emitted < events:
        if emitted % 50 == 48 and events - emitted >= 2:
            index += 1
            origin = vertices[(index * 13) % len(vertices)]
            destination = vertices[(index * 13 + 7) % len(vertices)]
            if destination == origin:
                destination = vertices[(index * 13 + 8) % len(vertices)]
            from repro.model.request import Request

            service.ingest_request(Request(
                start=origin, destination=destination, riders=1,
                max_waiting=MAX_WAITING,
                service_constraint=SERVICE_CONSTRAINT,
                request_id=f"T{index}", submit_time=service.current_time,
            ))
            service.pump(now=service.current_time + TICK)
            emitted += 2
        else:
            service.advance(0.25)
            emitted += 1
    return service


def _measure_recovery(journal_dir, events: int, phase: str) -> float:
    """Build an ``events``-record journal, crash, recover, clock the wall."""
    service = _journal_with_tail(journal_dir, events)
    expected = canonical_state(service)
    tail_records = service.journal.last_seq()
    service._journal.close()  # crash
    del service

    started = time.perf_counter()
    recovered = PTRiderService.recover(journal_dir)
    wall = time.perf_counter() - started
    assert canonical_state(recovered) == expected, (
        f"{events}-event recovery did not reproduce the pre-crash state"
    )
    record_result(
        "E18", wall, routing_backend="csr", phase=phase,
        events=float(events), journal_seq=float(tail_records),
        events_per_second=round(events / wall, 1),
    )
    return wall


# ----------------------------------------------------------------------
# the CI smoke legs (selected via -k smoke): small scale, full checks
# ----------------------------------------------------------------------
def test_e18_smoke_overhead_and_crash_round_trip(tmp_path):
    """Durable serving at smoke scale + a crash/recover/resume round trip."""
    if not HAVE_SCIPY:
        pytest.skip("the csr backend needs scipy")
    workload = _build_workload(CITY, SMOKE_REQUESTS)
    total = len(workload)

    plain_serving = _replay_day(_build_service(CITY), workload)
    record_result(
        "E18", plain_serving, routing_backend="csr", phase="smoke_serve_off",
        requests=total, throughput=round(total / plain_serving, 1),
    )

    workload.reset()
    journal_dir = tmp_path / "journal"
    durable = _build_service(CITY, journal_dir, snapshot_interval=2000)
    durable_serving = _replay_day(durable, workload)
    stats = durable.batcher.statistics
    assert stats.answered == total and durable.batcher.pending == 0
    durable_throughput = total / durable_serving
    record_result(
        "E18", durable_serving, routing_backend="csr",
        phase="smoke_serve_durable", requests=total,
        throughput=round(durable_throughput, 1),
        journal_seq=float(durable.journal.last_seq()),
        overhead_vs_off=round(durable_serving / plain_serving - 1.0, 4),
    )
    record_result("E18", durable_throughput, routing_backend="csr",
                  phase="smoke_durable_throughput", requests=total)
    # the 10% bound is the headline's; smoke scale only guards against
    # the journal becoming pathologically expensive on a noisy runner
    assert durable_serving <= 2.0 * plain_serving, (
        f"journaling doubled smoke serving wall "
        f"({durable_serving:.2f}s vs {plain_serving:.2f}s)"
    )

    # crash, recover, verify, resume: the recovered service equals the
    # pre-crash one and keeps serving (and journaling) afterwards
    expected = canonical_state(durable)
    durable._journal.close()
    started = time.perf_counter()
    recovered = PTRiderService.recover(journal_dir)
    recovery_wall = time.perf_counter() - started
    assert canonical_state(recovered) == expected
    record_result(
        "E18", recovery_wall, routing_backend="csr", phase="smoke_recovery",
        journal_seq=float(recovered.journal.last_seq()),
    )
    seq_before = recovered.journal.last_seq()
    recovered.advance(TICK)
    assert recovered.journal.last_seq() > seq_before  # recording resumed


def test_e18_smoke_recovery_tail(tmp_path):
    """Recovery wall of a small synthetic tail (the trend-gated phase)."""
    if not HAVE_SCIPY:
        pytest.skip("the csr backend needs scipy")
    _measure_recovery(tmp_path / "journal", SMOKE_TAIL, "smoke_recovery_tail")


# ----------------------------------------------------------------------
# the headline: surge/lull day overhead + recovery scaling (local-only)
# ----------------------------------------------------------------------
def test_e18_headline_overhead(tmp_path):
    """The tentpole bound: journaled serving within 10% of in-memory.

    Three arms: durability off, plain ``journal`` (every admission, pump
    and flush outcome written ahead -- the 10% bound binds here), and
    ``journal+snapshot`` with a 5000-record cadence.  The snapshot arm is
    recorded but unasserted: a periodic snapshot serialises the *whole*
    accumulated state (every booking of the day so far) on the serving
    path, so its cost grows with history and ``snapshot_interval`` is
    exactly the knob trading that serving overhead against the recovery
    tail the ``recovery_tail_*`` phases clock.
    """
    if not HAVE_SCIPY:
        pytest.skip("the csr backend needs scipy")
    workload = _build_workload(CITY, HEADLINE_REQUESTS)
    total = len(workload)

    plain_serving = _replay_day(_build_service(CITY), workload)
    plain_throughput = total / plain_serving
    record_result(
        "E18", plain_serving, routing_backend="csr", phase="serve_off",
        requests=total, throughput=round(plain_throughput, 1),
    )

    workload.reset()
    durable = _build_service(CITY, tmp_path / "journal", mode="journal")
    durable_serving = _replay_day(durable, workload)
    stats = durable.batcher.statistics
    assert stats.answered == total
    durable_throughput = total / durable_serving
    record_result(
        "E18", durable_serving, routing_backend="csr", phase="serve_durable",
        requests=total, throughput=round(durable_throughput, 1),
        journal_seq=float(durable.journal.last_seq()),
        overhead_vs_off=round(durable_serving / plain_serving - 1.0, 4),
    )
    record_result("E18", durable_throughput, routing_backend="csr",
                  phase="durable_throughput", requests=total)

    workload.reset()
    snapshotting = _build_service(CITY, tmp_path / "journal-snap",
                                  snapshot_interval=5000)
    snapshot_serving = _replay_day(snapshotting, workload)
    assert snapshotting.batcher.statistics.answered == total
    record_result(
        "E18", snapshot_serving, routing_backend="csr",
        phase="serve_durable_snapshots", requests=total,
        throughput=round(total / snapshot_serving, 1),
        snapshots=float(len(snapshotting.journal.snapshot_files())),
        overhead_vs_off=round(snapshot_serving / plain_serving - 1.0, 4),
    )

    assert durable_throughput >= 0.90 * plain_throughput, (
        f"journaled serving ({durable_throughput:.0f} req/s) fell more than "
        f"10% below in-memory serving ({plain_throughput:.0f} req/s)"
    )


@pytest.mark.parametrize("events", TAILS)
def test_e18_recovery_scaling(tmp_path, events):
    """Recovery wall at 10k/100k-event tails; state-equal every time."""
    if not HAVE_SCIPY:
        pytest.skip("the csr backend needs scipy")
    _measure_recovery(tmp_path / "journal", events, f"recovery_tail_{events}")
