"""E13 -- batch tree-prefetch ablation across the vectorised backends.

ISSUE 3's tentpole moves the batched pipeline's tree work into one
``scipy.csgraph.dijkstra(indices=[...])`` call (CSR backend) or into O(1)
row lookups of a precomputed all-pairs table (table backend).  This
experiment isolates that knob: the same E12-style burst (120 Shanghai-like
trips, hot-spot start structure, cache-pressured engines) is dispatched with
the one-shot prefetch on and off, on both backends, recording

* trees/second resolved on the request side (the paper's bottleneck for
  simultaneous requests, Section 2.5);
* per-request p95 latency (the real-time promise is a tail claim, not an
  average claim);
* the shared/prefetched tree counters of :class:`BatchStatistics`.

Prefetch on/off must be byte-identical in what riders are offered -- the
ablation only moves where trees are computed -- which is asserted here and
property-tested in ``tests/property/test_batch_equivalence.py``.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.core.config import SystemConfig
from repro.core.dispatcher import Dispatcher, OptionPolicy
from repro.roadnet.generators import grid_network
from repro.roadnet.grid_index import GridIndex
from repro.roadnet.routing import make_engine
from repro.sim.trips import ShanghaiLikeTripGenerator
from repro.sim.workload import RequestWorkload
from repro.vehicles.fleet import Fleet
from repro.vehicles.vehicle import Vehicle

from common import MATCHERS, format_table, record_result

#: Same cache pressure as E12: city scale cannot hold a tree per hot vertex.
CACHE_SLOTS = 16
ROWS = 20
VEHICLES = 10
TRIPS = 120
SEED = 17

BACKENDS = ("csr", "table")


def _build_dispatcher(routing: str) -> Dispatcher:
    """The E12 city on the requested backend (identical per call)."""
    network = grid_network(ROWS, ROWS, weight_jitter=0.3, seed=SEED)
    grid = GridIndex(network, rows=6, columns=6)
    fleet = Fleet(grid, make_engine(network, routing, max_cached_sources=CACHE_SLOTS))
    rng = random.Random(SEED)
    vertices = network.vertices()
    for index in range(VEHICLES):
        fleet.add_vehicle(Vehicle(f"c{index + 1}", location=rng.choice(vertices), capacity=4))
    config = SystemConfig(max_waiting=8.0, service_constraint=0.6, max_pickup_distance=12.0)
    matcher = MATCHERS["single_side"](fleet, config=config)
    return Dispatcher(fleet, matcher, config)


def _burst(dispatcher: Dispatcher):
    network = dispatcher.fleet.grid.network
    generator = ShanghaiLikeTripGenerator(
        network, seed=SEED, hotspot_bias=0.85, hotspot_count=4
    )
    trips = generator.generate(TRIPS, day_seconds=300.0)
    workload = RequestWorkload.from_trips(trips, 8.0, 0.6)
    return list(workload.due(float("inf")))


def _p95_ms(outcomes) -> float:
    latencies = sorted(outcome.match_seconds for outcome in outcomes)
    return latencies[int(0.95 * (len(latencies) - 1))] * 1000.0


def _run_arm(backend: str, prefetch: bool):
    dispatcher = _build_dispatcher(backend)
    requests = _burst(dispatcher)
    started = time.perf_counter()
    outcomes = dispatcher.dispatch_batch(
        requests, policy=OptionPolicy.CHEAPEST, prefetch=prefetch
    )
    wall = time.perf_counter() - started
    return dispatcher, requests, outcomes, wall


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("prefetch", [True, False])
def test_e13_prefetch_ablation(backend, prefetch):
    dispatcher, requests, outcomes, wall = _run_arm(backend, prefetch)
    stats = dispatcher.last_batch_statistics
    assert stats is not None and stats.requests == len(requests)

    trees_resolved = stats.prefetched_trees + stats.trees_computed
    assert trees_resolved + stats.shared_tree_hits == len(requests)
    if prefetch:
        # Both vector backends answer the whole batch from one plane/table.
        assert stats.prefetched_trees == trees_resolved
        assert stats.trees_computed == 0
    else:
        assert stats.prefetched_trees == 0
        assert stats.trees_computed == trees_resolved

    record_result(
        "E13",
        wall,
        routing_backend=backend,
        vehicles_evaluated=dispatcher.matcher.statistics.vehicles_evaluated,
        matcher="single_side",
        prefetch=prefetch,
        requests=len(requests),
        trees_resolved=trees_resolved,
        trees_per_second=round(trees_resolved / wall, 1) if wall > 0 else None,
        prefetch_seconds=round(stats.prefetch_seconds, 6),
        p95_latency_ms=round(_p95_ms(outcomes), 3),
        shared_tree_hit_rate=round(stats.shared_tree_hit_rate, 3),
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_e13_prefetch_is_pure_restructuring(backend):
    """Prefetch on/off must offer and commit byte-identical rides."""

    def keys(outcomes):
        return [(o.request.request_id, tuple(o.options), o.chosen) for o in outcomes]

    _, _, with_prefetch, _ = _run_arm(backend, prefetch=True)
    _, _, without_prefetch, _ = _run_arm(backend, prefetch=False)
    assert keys(with_prefetch) == keys(without_prefetch)


def test_e13_summary_table(capsys):
    """Print the prefetch-ablation grid (run with -s to see it)."""
    rows = []
    for backend in BACKENDS:
        for prefetch in (True, False):
            dispatcher, requests, outcomes, wall = _run_arm(backend, prefetch)
            stats = dispatcher.last_batch_statistics
            trees = stats.prefetched_trees + stats.trees_computed
            rows.append(
                (
                    backend,
                    "on" if prefetch else "off",
                    f"{wall * 1000:.1f}",
                    f"{trees / wall:.0f}" if wall > 0 else "-",
                    f"{_p95_ms(outcomes):.2f}",
                )
            )
    table = format_table(
        ("backend", "prefetch", "batch [ms]", "trees/s", "p95 [ms]"), rows
    )
    print("\nE13 -- one-shot batch tree prefetch ablation\n" + table)
