"""E11 -- rider outcomes vs a single-option, system-optimal dispatcher (Section 1).

Paper claim: existing systems return one option chosen to minimise the
system-wide extra travel distance, which may be neither the cheapest nor the
fastest ride for the individual traveller; PTRider lets the rider pick.  The
benchmark answers the same requests with the nearest-vehicle baseline and with
PTRider, then measures how often the skyline contains a strictly cheaper
option, a strictly earlier option, or both, than the single system-optimal
assignment.
"""

from __future__ import annotations

import pytest

from common import build_city, format_table, probe_requests, warm_up_fleet


def build_busy_city(seed: int = 97):
    city = build_city(rows=12, columns=12, vehicles=40, seed=seed)
    warm_up_fleet(city, requests=16, seed=seed)
    return city


@pytest.mark.parametrize("matcher_name", ["nearest", "single_side"])
def test_e11_latency(benchmark, matcher_name):
    city = build_busy_city()
    matcher = city.matcher(matcher_name)
    requests = probe_requests(city, count=20, seed=101)
    benchmark(lambda: [matcher.match(request) for request in requests])
    benchmark.extra_info["options_per_request"] = round(
        matcher.statistics.options_returned / max(1, matcher.statistics.requests_answered), 2
    )


def test_e11_rider_outcomes():
    city = build_busy_city()
    baseline = city.matcher("nearest")
    ptrider = city.matcher("single_side")
    requests = probe_requests(city, count=30, seed=103)

    cheaper = faster = both = comparable = 0
    for request in requests:
        single = baseline.match(request)
        skyline = ptrider.match(request)
        if not single or not skyline:
            continue
        comparable += 1
        target = single[0]
        has_cheaper = min(o.price for o in skyline) < target.price - 1e-9
        has_faster = min(o.pickup_distance for o in skyline) < target.pickup_distance - 1e-9
        cheaper += has_cheaper
        faster += has_faster
        both += has_cheaper and has_faster
        # sanity: the baseline assignment is itself a feasible option, so the
        # skyline is never strictly worse in both dimensions simultaneously.
        assert min(o.price for o in skyline) <= target.price + 1e-9 or min(
            o.pickup_distance for o in skyline
        ) <= target.pickup_distance + 1e-9

    assert comparable >= 20
    # the headline claim: a large share of riders can do better on at least one axis
    assert (cheaper + faster) > 0
    assert cheaper / comparable > 0.2 or faster / comparable > 0.2

    rows = [
        ("strictly cheaper option exists", f"{cheaper}/{comparable}"),
        ("strictly earlier option exists", f"{faster}/{comparable}"),
        ("both exist simultaneously", f"{both}/{comparable}"),
    ]
    print("\nE11 -- PTRider skyline vs the system-optimal single option\n"
          + format_table(("outcome", "requests"), rows))
