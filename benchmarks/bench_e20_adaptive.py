"""E20 -- adaptive windows + incremental snapshots on the surge/lull day.

ISSUE 10's two serving-path changes are measured together, because they
sell as one story: keep the micro-batched pipeline's throughput while
cutting tail latency, and keep durability on without paying full-state
serialisation inside serving windows.

* **Adaptive vs fixed windows** -- the E17 surge/lull day (bimodal
  arrivals over hotspot origins) is replayed through four *durable*
  services: three fixed ``batch_window`` arms under
  ``snapshot_mode="full"`` (the pre-ISSUE configuration: every cadence
  crossing serialises the whole service state inside the admission/pump
  that tripped it) and one adaptive arm under
  ``snapshot_mode="incremental"`` (dirty-partition deltas on the hot
  path, compaction deferred to gaps between windows).  Serving wall =
  admissions + pumps, world advancement excluded, exactly as E18 measures
  durable serving.  The headline assertions: the adaptive arm matches or
  beats the best fixed arm on throughput while beating it on p99 in
  *both* arrival phases (surge seconds and lull seconds split by the
  day's mean arrival rate).
* **Byte-identity under the controller** -- window sizing must change
  *when* windows close, never *what* a window answers.  An adaptive
  service with an injected deterministic wall clock records its window
  trajectory and per-window outcomes; replaying the same windows at the
  same instants through raw ``dispatch_batch`` must reproduce every
  outcome byte for byte (E17's identity contract, now under resizing),
  and a second run under the same injected clock must reproduce the
  trajectory exactly.
* **Incremental snapshots off the hot path** -- the same adaptive day is
  run twice under an injected clock (so both arms execute an identical
  command stream), once with full-state snapshots and once with deltas.
  Live canonical state must match between modes, every recovery flavour
  (full-mode, delta fold, full-journal replay) must reproduce it, and
  the mean per-snapshot hot-path stall of the delta arm must be under
  10% of the full arm's mean serialisation stall.

Scale knobs: ``PTRIDER_E20_REQUESTS`` (headline replay, default 24k) and
``PTRIDER_E20_SMOKE_REQUESTS`` (the CI smoke leg, default 6000).
"""

from __future__ import annotations

import math
import os
import random
import time

import pytest

from common import HAVE_SCIPY, percentiles, record_result

from repro.core.config import SystemConfig
from repro.core.dispatcher import OptionPolicy
from repro.roadnet.generators import grid_network
from repro.roadnet.grid_index import GridIndex
from repro.roadnet.routing import make_engine
from repro.service.api import PTRiderService
from repro.service.recovery import canonical_state
from repro.sim.workload import RequestWorkload
from repro.vehicles.fleet import Fleet
from repro.vehicles.vehicle import Vehicle

SEED = 20
#: serving-loop cadence: four pumps per simulated second, so fractional
#: windows (the controller's whole reason to exist) actually differ from
#: whole-tick windows
SUBTICK = 0.25
#: mean arrival rate of the replayed day (requests per simulated second);
#: high enough that window sizing moves real money -- each window holds
#: hundreds of requests and the per-flush fixed cost (fleet leg prefetch)
#: is worth amortising
RATE = 600.0
MAX_WAITING = 8.0
SERVICE_CONSTRAINT = 0.6

#: E17's headline city: 50x50 jittered grid, 80 exact-vertex hotspots, a
#: deliberately small tree LRU -- the regime where window size trades
#: per-flush amortisation against queue wait.
CITY = dict(rows=50, grid=14, vehicles=40, capacity=2, cache=8,
            max_pickup=3.0, speed=6.0, hotspots=80)

#: the fixed-window sweep the adaptive arm must match-or-beat
FIXED_WINDOWS = (0.5, 1.0, 2.0)
ADAPTIVE_START = 0.5
ADAPTIVE_MIN = 0.125
ADAPTIVE_MAX = 4.0
#: journal records between snapshot points in the serving comparison --
#: dozens of cadence crossings per replay, so the full-mode arms pay the
#: serialisation bill many times inside measured serving
SNAPSHOT_EVERY = 250

HEADLINE_REQUESTS = int(os.environ.get("PTRIDER_E20_REQUESTS", "24000"))
SMOKE_REQUESTS = int(os.environ.get("PTRIDER_E20_SMOKE_REQUESTS", "6000"))
IDENTITY_REQUESTS = 2500
PAIR_REQUESTS = 6000
#: tighter cadence for the full-vs-incremental pair, so the dirty set per
#: delta stays a small fraction of total state (the <10% stall claim is
#: about exactly that ratio: change-per-interval over state-for-the-day)
PAIR_SNAPSHOT_EVERY = 50


class _FakeWall:
    """Deterministic wall clock: each reading advances by a fixed step.

    Injected through ``PTRiderService(wall_clock=...)`` it makes the
    adaptive controller's diet -- flush walls -- a pure function of the
    command stream, so window trajectories replay byte-identically.
    """

    def __init__(self, step: float = 0.001) -> None:
        self._now = 0.0
        self._step = step

    def __call__(self) -> float:
        self._now += self._step
        return self._now


# ----------------------------------------------------------------------
# builders
# ----------------------------------------------------------------------
def _build_service(*, window_mode="fixed", batch_window=1.0, window_min=None,
                   window_max=None, journal_dir=None, snapshot_mode="full",
                   snapshot_interval=SNAPSHOT_EVERY, wall_clock=None,
                   city=CITY) -> PTRiderService:
    """A fresh durable-or-not service on the E20 city; identical per seed."""
    network = grid_network(city["rows"], city["rows"], weight_jitter=0.3, seed=SEED)
    grid = GridIndex(network, rows=city["grid"], columns=city["grid"])
    engine = make_engine(network, "csr", max_cached_sources=city["cache"])
    fleet = Fleet(grid, engine)
    rng = random.Random(SEED)
    vertices = network.vertices()
    for index in range(city["vehicles"]):
        fleet.add_vehicle(
            Vehicle(f"c{index + 1}", location=rng.choice(vertices),
                    capacity=city["capacity"])
        )
    durability = {}
    if journal_dir is not None:
        durability = dict(
            durability="journal+snapshot",
            journal_path=str(journal_dir),
            snapshot_interval=snapshot_interval,
            snapshot_mode=snapshot_mode,
        )
    config = SystemConfig(
        vehicle_capacity=city["capacity"],
        max_waiting=MAX_WAITING,
        service_constraint=SERVICE_CONSTRAINT,
        speed=city["speed"],
        max_pickup_distance=city["max_pickup"],
        routing_backend="csr",
        batch_window=batch_window,
        # windows close by time only, so every arm's windows are exactly
        # what its window policy dictates
        max_batch_size=65536,
        batch_window_mode=window_mode,
        batch_window_min=window_min,
        batch_window_max=window_max,
        **durability,
    )
    return PTRiderService(fleet, config=config, seed=SEED, wall_clock=wall_clock)


def _build_workload(total: int) -> RequestWorkload:
    network = grid_network(CITY["rows"], CITY["rows"], weight_jitter=0.3, seed=SEED)
    return RequestWorkload.daily(
        network,
        total=total,
        duration=total / RATE,
        max_waiting=MAX_WAITING,
        service_constraint=SERVICE_CONSTRAINT,
        hotspot_count=CITY["hotspots"],
        hotspot_bias=1.0,
        seed=SEED,
    )


def _phase_map(workload: RequestWorkload, total: int):
    """Per-second surge/lull labels: surge = arrivals at or above the mean.

    The daily profile is bimodal, so this splits the day into the two
    rush-hour plateaus versus everything else -- the two regimes a fixed
    window must compromise between.
    """
    duration = total / RATE
    bins = int(math.ceil(duration)) + 1
    counts = [0] * bins
    for request in list(workload):
        counts[min(int(request.submit_time), bins - 1)] += 1
    mean = total / duration
    return [count >= mean for count in counts]


def _option_key(option):
    return None if option is None else (
        option.vehicle_id, option.pickup_distance, option.price
    )


def _outcome_key(outcome):
    return (
        outcome.request.request_id,
        tuple(_option_key(option) for option in outcome.options),
        _option_key(outcome.chosen),
    )


def _booking_key(booking):
    return (
        booking.request.request_id,
        tuple(_option_key(option) for option in booking.options),
        _option_key(booking.chosen),
    )


# ----------------------------------------------------------------------
# replay loops
# ----------------------------------------------------------------------
def _replay_timed(service: PTRiderService, workload: RequestWorkload, surge):
    """Replay the day; returns (serving wall, surge latencies, lull latencies).

    Serving wall = admissions + pumps (the commands a durable service
    journals and, in full-snapshot mode, serialises state inside); world
    advancement is excluded, exactly as E17/E18 measure serving.  Each
    flush's latencies are attributed to the arrival phase of the second
    it flushed in.
    """
    serving = 0.0
    surge_lat, lull_lat = [], []
    latencies = service.batcher.statistics.latencies
    seen = 0
    t = 0.0
    while True:
        t += SUBTICK
        started = time.perf_counter()
        flushed = service.pump(now=t)
        serving += time.perf_counter() - started
        if len(latencies) > seen:
            second = min(int(t), len(surge) - 1)
            bucket = surge_lat if surge[second] else lull_lat
            bucket.extend(latencies[seen:])
            seen = len(latencies)
        due = workload.due(t)
        started = time.perf_counter()
        for request in due:
            assert service.ingest_request(request, now=t)  # replay: unbounded
        serving += time.perf_counter() - started
        if (not due and not flushed and not workload.remaining
                and service.batcher.pending == 0):
            break
        service.advance(SUBTICK)
    return serving, surge_lat, lull_lat


def _replay_recorded(service: PTRiderService, workload: RequestWorkload):
    """Adaptive arm for the identity leg: record windows and the trajectory.

    Subticks are integer-indexed (``t = k * SUBTICK``) so the mirror arm
    can align on exact keys instead of float instants.
    """
    windows, flush_ticks, trajectory = [], [], []
    k = 0
    while True:
        k += 1
        t = k * SUBTICK
        flushed = service.pump(now=t)
        if flushed:
            windows.append([_booking_key(b) for b in flushed])
            flush_ticks.append(k)
        trajectory.append(service.batcher.current_window)
        due = workload.due(t)
        for request in due:
            assert service.ingest_request(request, now=t)
        if (not due and not flushed and not workload.remaining
                and service.batcher.pending == 0):
            break
        service.advance(SUBTICK)
    return windows, flush_ticks, trajectory


def _replay_direct_at(service: PTRiderService, workload: RequestWorkload,
                      flush_ticks):
    """The mirror arm: raw ``dispatch_batch`` at the recorded instants."""
    flush_at = set(flush_ticks)
    last = max(flush_ticks)
    windows, carry = [], []
    k = 0
    while True:
        k += 1
        t = k * SUBTICK
        if k in flush_at:
            outcomes = service.dispatcher.dispatch_batch(
                carry, policy=OptionPolicy.CHEAPEST, prefetch_legs=True
            )
            windows.append([_outcome_key(o) for o in outcomes])
            carry = []
        carry.extend(workload.due(t))
        if k >= last and not carry and not workload.remaining:
            break
        service.advance(SUBTICK)
    return windows


def _snapshot_panel(service: PTRiderService) -> dict:
    """The admin panel's persistence-cost attribution, keyed without prefix."""
    panel = service.routing_statistics()
    return {
        key[len("snapshot_"):]: value
        for key, value in panel.items()
        if key.startswith("snapshot_")
    }


def _run_arm(tmp_path, label: str, workload: RequestWorkload, surge,
             total: int, *, window_mode: str, batch_window: float,
             window_min=None, window_max=None, snapshot_mode: str) -> dict:
    """One durable serving arm of the adaptive-vs-fixed comparison."""
    workload.reset()
    service = _build_service(
        window_mode=window_mode, batch_window=batch_window,
        window_min=window_min, window_max=window_max,
        journal_dir=tmp_path / label, snapshot_mode=snapshot_mode,
    )
    try:
        serving, surge_lat, lull_lat = _replay_timed(service, workload, surge)
        stats = service.batcher.statistics
        # Conservation: the arm answered the whole day, shed nothing.
        assert stats.admitted == total == stats.answered
        assert stats.shed == 0 and service.batcher.pending == 0
        return dict(
            label=label,
            window=batch_window,
            serving=serving,
            throughput=total / serving,
            p99=percentiles(stats.latencies).get("p99", 0.0),
            surge_p99=percentiles(surge_lat).get("p99", 0.0),
            lull_p99=percentiles(lull_lat).get("p99", 0.0),
            surge_count=len(surge_lat),
            lull_count=len(lull_lat),
            flushes=stats.flushes,
            grown=stats.window_grown,
            shrunk=stats.window_shrunk,
            final_window=service.batcher.current_window,
            snapshots=_snapshot_panel(service),
        )
    finally:
        service.close()


def _arm_extras(arm: dict) -> dict:
    """Record fields shared by every serving-arm row."""
    snapshots = arm["snapshots"]
    return dict(
        throughput=round(arm["throughput"], 1),
        latency_p99=round(arm["p99"], 6),
        surge_p99=round(arm["surge_p99"], 6),
        lull_p99=round(arm["lull_p99"], 6),
        flushes=float(arm["flushes"]),
        snapshot_full_count=snapshots["full_count"],
        snapshot_delta_count=snapshots["delta_count"],
        snapshot_full_seconds=round(snapshots["full_seconds"], 6),
        snapshot_delta_seconds=round(snapshots["delta_seconds"], 6),
    )


def _compare_arms(tmp_path, total: int, prefix: str) -> None:
    """The adaptive-vs-fixed serving comparison at ``total`` requests."""
    workload = _build_workload(total)
    total = len(workload)
    surge = _phase_map(workload, total)

    fixed_arms = [
        _run_arm(
            tmp_path, f"fixed-{window}", workload, surge, total,
            window_mode="fixed", batch_window=window, snapshot_mode="full",
        )
        for window in FIXED_WINDOWS
    ]
    adaptive = _run_arm(
        tmp_path, "adaptive", workload, surge, total,
        window_mode="adaptive", batch_window=ADAPTIVE_START,
        window_min=ADAPTIVE_MIN, window_max=ADAPTIVE_MAX,
        snapshot_mode="incremental",
    )
    best = max(fixed_arms, key=lambda arm: arm["throughput"])

    # Every phase produced enough answers for a meaningful p99.
    assert adaptive["surge_count"] >= 100 and adaptive["lull_count"] >= 100
    # The controller actually steered (this day's regimes differ enough
    # that a fixed starting window cannot be optimal everywhere).
    assert adaptive["grown"] + adaptive["shrunk"] > 0
    # Durability bookkeeping worked as configured: the fixed arms paid
    # full serialisations on the hot path, the adaptive arm paid deltas
    # (plus at least one deferred compaction between windows).
    assert best["snapshots"]["full_count"] >= 3
    assert adaptive["snapshots"]["delta_count"] >= 10
    assert adaptive["snapshots"]["full_count"] >= 1

    # The tentpole: throughput of the best fixed arm matched-or-beaten,
    # p99 strictly beaten in at least one arrival phase.  The lull is the
    # structural win (the controller shrinks the window when flushes are
    # cheap, so answers stop waiting out a surge-sized window); during the
    # surge the controller deliberately grows the window to amortise flush
    # cost -- that is where the throughput comes from -- so surge p99 is
    # only bounded, not required to win.
    assert adaptive["throughput"] >= best["throughput"], (
        f"adaptive {adaptive['throughput']:.0f}/s lost to "
        f"fixed-{best['window']} {best['throughput']:.0f}/s"
    )
    assert adaptive["lull_p99"] < best["lull_p99"], (
        f"lull p99 {adaptive['lull_p99']:.3f} not under "
        f"fixed-{best['window']}'s {best['lull_p99']:.3f}"
    )
    assert adaptive["surge_p99"] < 1.5 * best["surge_p99"], (
        f"surge p99 {adaptive['surge_p99']:.3f} blew past "
        f"fixed-{best['window']}'s {best['surge_p99']:.3f}"
    )

    for arm in fixed_arms:
        record_result(
            "E20", arm["serving"], routing_backend="csr",
            phase=f"{prefix}_serve_fixed", window=arm["window"],
            requests=total, **_arm_extras(arm),
        )
    record_result(
        "E20", adaptive["serving"], routing_backend="csr",
        phase=f"{prefix}_serve_adaptive", requests=total,
        window_min=ADAPTIVE_MIN, window_max=ADAPTIVE_MAX,
        window_grown=float(adaptive["grown"]),
        window_shrunk=float(adaptive["shrunk"]),
        final_window=round(adaptive["final_window"], 6),
        speedup_vs_best_fixed=round(
            adaptive["throughput"] / best["throughput"], 3
        ),
        **_arm_extras(adaptive),
    )
    # The trend row: adaptive serving throughput gates as a rate.
    record_result(
        "E20", adaptive["throughput"], routing_backend="csr",
        phase=f"{prefix}_adaptive_throughput", requests=total,
    )


# ----------------------------------------------------------------------
# the CI smoke legs (selected via -k smoke)
# ----------------------------------------------------------------------
def test_e20_smoke_adaptive_vs_fixed(tmp_path):
    """Adaptive matches-or-beats the best fixed window, wins the lull p99."""
    if not HAVE_SCIPY:
        pytest.skip("the csr backend needs scipy")
    _compare_arms(tmp_path, SMOKE_REQUESTS, "smoke")


def test_e20_smoke_window_identity():
    """Resizing changes when windows close, never what a window answers."""
    if not HAVE_SCIPY:
        pytest.skip("the csr backend needs scipy")
    workload = _build_workload(IDENTITY_REQUESTS)
    total = len(workload)

    runs = []
    replay_wall = 0.0
    for attempt in range(2):
        workload.reset()
        service = _build_service(
            window_mode="adaptive", batch_window=ADAPTIVE_START,
            window_min=0.25, window_max=2.0, wall_clock=_FakeWall(0.004),
        )
        started = time.perf_counter()
        windows, flush_ticks, trajectory = _replay_recorded(service, workload)
        replay_wall = time.perf_counter() - started
        stats = service.batcher.statistics
        assert stats.answered == total and service.batcher.pending == 0
        runs.append((windows, flush_ticks, trajectory,
                     stats.window_grown, stats.window_shrunk))

    # Determinism: under an injected wall clock the whole run -- window
    # contents, flush instants, controller trajectory -- replays exactly.
    assert runs[0] == runs[1]
    windows, flush_ticks, trajectory, grown, shrunk = runs[0]
    # The trajectory moved: this leg exercises resizing, not a fixed pin.
    assert grown + shrunk > 0 and len(set(trajectory)) > 1

    # Byte-identity: the same windows at the same instants through raw
    # dispatch_batch answer byte-for-byte the same.
    workload.reset()
    mirror = _build_service()
    direct = _replay_direct_at(mirror, workload, flush_ticks)
    assert windows == direct

    record_result(
        "E20", replay_wall, routing_backend="csr",
        phase="smoke_window_identity",
        requests=total, windows=float(len(windows)),
        window_grown=float(grown), window_shrunk=float(shrunk),
        distinct_windows=float(len(set(trajectory))),
    )


def _comparable(state: dict) -> dict:
    """Strip the fields that legitimately differ between snapshot modes."""
    state = dict(state)
    config = dict(state["config"])
    config.pop("journal_path", None)
    config.pop("snapshot_mode", None)
    state["config"] = config
    return state


def test_e20_smoke_incremental_off_hot_path(tmp_path):
    """Deltas cut the per-snapshot hot-path stall to <10% of a full save.

    Both arms replay the identical command stream (same pre-built
    requests, same injected wall clock, so the adaptive controller takes
    the identical trajectory); the only difference is what each snapshot
    cadence crossing writes.  State equality pins that deltas lose
    nothing; the stall ratio pins that they cost almost nothing where it
    hurts.
    """
    if not HAVE_SCIPY:
        pytest.skip("the csr backend needs scipy")
    workload = _build_workload(PAIR_REQUESTS)
    total = len(workload)
    surge = _phase_map(workload, total)

    arms = {}
    for mode in ("full", "incremental"):
        workload.reset()
        service = _build_service(
            window_mode="adaptive", batch_window=ADAPTIVE_START,
            window_min=ADAPTIVE_MIN, window_max=ADAPTIVE_MAX,
            journal_dir=tmp_path / mode, snapshot_mode=mode,
            snapshot_interval=PAIR_SNAPSHOT_EVERY, wall_clock=_FakeWall(),
        )
        serving, _, _ = _replay_timed(service, workload, surge)
        stats = service.batcher.statistics
        assert stats.answered == total and service.batcher.pending == 0
        arms[mode] = dict(
            serving=serving,
            reference=canonical_state(service),
            snapshots=_snapshot_panel(service),
            journal_dir=service.journal.directory,
            fingerprint=(stats.flushes, stats.window_grown,
                         stats.window_shrunk,
                         service.batcher.current_window),
        )
        service.close()

    # Identical command streams: the two arms took the same trajectory
    # and hold the same state (modulo the mode knob itself).
    assert arms["full"]["fingerprint"] == arms["incremental"]["fingerprint"]
    reference = arms["incremental"]["reference"]
    assert _comparable(arms["full"]["reference"]) == _comparable(reference)

    # Every recovery flavour reproduces the live state: full snapshots,
    # the delta fold, and full-journal replay from the baseline.
    recovered = PTRiderService.recover(arms["full"]["journal_dir"])
    try:
        assert _comparable(canonical_state(recovered)) == _comparable(reference)
    finally:
        recovered.close()
    for prefer_snapshot in (True, False):
        recovered = PTRiderService.recover(
            arms["incremental"]["journal_dir"], prefer_snapshot=prefer_snapshot
        )
        try:
            assert canonical_state(recovered) == reference
        finally:
            recovered.close()

    # The stall claim: mean per-delta hot-path cost under 10% of the mean
    # full-serialisation cost at the same cadence.
    full_snap = arms["full"]["snapshots"]
    delta_snap = arms["incremental"]["snapshots"]
    assert full_snap["full_count"] >= 10
    assert delta_snap["delta_count"] >= 10
    assert delta_snap["full_count"] >= 1  # compaction ran, between windows
    full_stall = full_snap["full_seconds"] / full_snap["full_count"]
    delta_stall = delta_snap["delta_seconds"] / delta_snap["delta_count"]
    assert delta_stall < 0.10 * full_stall, (
        f"mean delta stall {delta_stall * 1e3:.2f}ms not under 10% of "
        f"mean full stall {full_stall * 1e3:.2f}ms"
    )

    record_result(
        "E20", full_stall, routing_backend="csr",
        phase="smoke_snapshot_full_stall", requests=total,
        snapshot_interval=float(PAIR_SNAPSHOT_EVERY),
        snapshots=full_snap["full_count"],
        serving=round(arms["full"]["serving"], 6),
    )
    record_result(
        "E20", delta_stall, routing_backend="csr",
        phase="smoke_snapshot_delta_stall", requests=total,
        snapshot_interval=float(PAIR_SNAPSHOT_EVERY),
        snapshots=delta_snap["delta_count"],
        compactions=delta_snap["full_count"],
        serving=round(arms["incremental"]["serving"], 6),
        stall_ratio=round(delta_stall / full_stall, 4),
    )


# ----------------------------------------------------------------------
# the headline replay (scaled by PTRIDER_E20_REQUESTS; not part of smoke)
# ----------------------------------------------------------------------
def test_e20_headline_adaptive_vs_fixed(tmp_path):
    """The smoke comparison at headline scale."""
    if not HAVE_SCIPY:
        pytest.skip("the csr backend needs scipy")
    _compare_arms(tmp_path, HEADLINE_REQUESTS, "headline")
