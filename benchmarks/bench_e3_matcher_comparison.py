"""E3 -- single-side and dual-side search vs. the naive kinetic-tree matcher.

Paper claim (Section 3.3): the naive method "can be improved in two ways" --
filtering unqualified vehicles in advance and reducing shortest-path
computations -- which is exactly what the single-side and dual-side searches
do.  The benchmark answers the same probe requests with all three matchers on
an identical fleet snapshot and compares (a) matching latency and (b) the
number of vehicles fully verified; the result sets are asserted equal, so the
speed-up is not bought with missing options.
"""

from __future__ import annotations

import pytest

from common import build_city, format_table, option_points, probe_requests, warm_up_fleet


def build_busy_city(vehicles: int = 60, seed: int = 23):
    city = build_city(rows=14, columns=14, vehicles=vehicles, grid_rows=7, grid_columns=7, seed=seed)
    warm_up_fleet(city, requests=18, seed=seed)
    return city


@pytest.mark.parametrize("matcher_name", ["naive", "single_side", "dual_side"])
def test_e3_matching_latency(benchmark, matcher_name):
    city = build_busy_city()
    matcher = city.matcher(matcher_name)
    requests = probe_requests(city, count=20, seed=41)

    def answer_all():
        return [matcher.match(request) for request in requests]

    results = benchmark(answer_all)
    stats = matcher.statistics
    benchmark.extra_info["vehicles_evaluated_per_request"] = round(
        stats.vehicles_evaluated / max(1, stats.requests_answered), 2
    )
    benchmark.extra_info["vehicles_pruned_per_request"] = round(
        stats.vehicles_pruned / max(1, stats.requests_answered), 2
    )
    benchmark.extra_info["options_per_request"] = round(
        sum(len(options) for options in results) / len(results), 2
    )


def test_e3_equivalence_and_work_reduction():
    city = build_busy_city()
    requests = probe_requests(city, count=25, seed=43)
    matchers = {name: city.matcher(name) for name in ("naive", "single_side", "dual_side")}

    for request in requests:
        reference = option_points(matchers["naive"].match(request))
        assert option_points(matchers["single_side"].match(request)) == reference
        assert option_points(matchers["dual_side"].match(request)) == reference

    naive_work = matchers["naive"].statistics.vehicles_evaluated
    single_work = matchers["single_side"].statistics.vehicles_evaluated
    dual_work = matchers["dual_side"].statistics.vehicles_evaluated
    # The paper's ordering: dual-side <= single-side << naive.
    assert single_work < naive_work
    assert dual_work <= single_work

    rows = [
        (name, matcher.statistics.vehicles_evaluated, matcher.statistics.vehicles_pruned)
        for name, matcher in matchers.items()
    ]
    print("\nE3 -- verification work per matcher (25 requests, 60 vehicles)\n"
          + format_table(("matcher", "vehicles verified", "vehicles pruned"), rows))
