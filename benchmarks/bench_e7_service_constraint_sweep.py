"""E7 -- sensitivity to the service constraint ``epsilon`` (admin panel, Fig. 4(c)).

``epsilon`` caps the detour riders tolerate between their start and
destination.  A larger value admits more shared schedules (higher sharing
rate, more options) while the realised detour ratio of completed trips stays
below ``1 + epsilon`` -- that bound is the correctness half of the experiment.
"""

from __future__ import annotations

import pytest

from common import DEFAULT_CONFIG, build_city, format_table, run_trip_simulation


def sweep_point(epsilon: float, seed: int = 59):
    config = DEFAULT_CONFIG.with_updates(service_constraint=epsilon)
    city = build_city(rows=10, columns=10, vehicles=12, grid_rows=5, grid_columns=5, seed=seed,
                      config=config)
    report = run_trip_simulation(city, trips=80, duration=150.0, speed=0.8)
    stats = report.statistics
    max_detour = max(stats.detour_ratios) if stats.detour_ratios else 1.0
    return stats.sharing_rate, stats.average_detour_ratio, max_detour, stats.average_option_count


@pytest.mark.parametrize("epsilon", [0.2, 0.8])
def test_e7_service_constraint(benchmark, epsilon):
    sharing, avg_detour, max_detour, avg_options = benchmark.pedantic(
        lambda: sweep_point(epsilon), rounds=1, iterations=1
    )
    benchmark.extra_info["epsilon"] = epsilon
    benchmark.extra_info["sharing_rate"] = round(sharing, 3)
    benchmark.extra_info["avg_detour_ratio"] = round(avg_detour, 3)
    # the service constraint of Definition 2 is never violated
    assert max_detour <= 1.0 + epsilon + 1e-6


def test_e7_looser_detours_increase_sharing():
    series = [(eps, *sweep_point(eps)) for eps in (0.1, 0.4, 1.0)]
    sharing = [row[1] for row in series]
    assert sharing[-1] >= sharing[0]
    for eps, _, _, max_detour, _ in series:
        assert max_detour <= 1.0 + eps + 1e-6
    rows = [
        (eps, f"{share:.2f}", f"{avg:.3f}", f"{mx:.3f}", f"{opts:.2f}")
        for eps, share, avg, mx, opts in series
    ]
    print("\nE7 -- effect of the service constraint epsilon\n"
          + format_table(("epsilon", "sharing rate", "avg detour", "max detour", "avg options"), rows))
