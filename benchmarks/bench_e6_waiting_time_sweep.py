"""E6 -- sensitivity to the maximum waiting time ``w`` (admin panel, Fig. 4(c)).

The global waiting budget controls how much an already-promised pick-up may
slip when new riders are inserted.  A larger ``w`` admits more candidate
schedules, so riders see more options and the fleet shares more, at the cost
of more verification work per request.
"""

from __future__ import annotations

import pytest

from common import DEFAULT_CONFIG, build_city, format_table, probe_requests, run_trip_simulation, warm_up_fleet


def sweep_point(max_waiting: float, seed: int = 47):
    config = DEFAULT_CONFIG.with_updates(max_waiting=max_waiting)
    city = build_city(rows=12, columns=12, vehicles=30, seed=seed, config=config)
    warm_up_fleet(city, requests=15, seed=seed)
    matcher = city.matcher("single_side")
    requests = probe_requests(city, count=25, seed=seed + 1)
    options = [matcher.match(request) for request in requests]
    average_options = sum(len(o) for o in options) / len(options)
    evaluated = matcher.statistics.vehicles_evaluated
    return average_options, evaluated


@pytest.mark.parametrize("max_waiting", [2.0, 8.0])
def test_e6_waiting_budget(benchmark, max_waiting):
    average_options, evaluated = benchmark.pedantic(
        lambda: sweep_point(max_waiting), rounds=1, iterations=1
    )
    benchmark.extra_info["max_waiting"] = max_waiting
    benchmark.extra_info["average_options"] = round(average_options, 2)
    benchmark.extra_info["vehicles_evaluated"] = evaluated


def test_e6_larger_waiting_budget_gives_more_options():
    series = [(w, *sweep_point(w)) for w in (1.0, 4.0, 12.0)]
    options = [row[1] for row in series]
    assert options[-1] >= options[0]
    rows = [(w, f"{avg:.2f}", evaluated) for w, avg, evaluated in series]
    print("\nE6 -- effect of the maximum waiting time w\n"
          + format_table(("w", "avg options", "vehicles verified"), rows))


def test_e6_waiting_budget_affects_service_quality():
    """End-to-end: a tighter w keeps promised pick-ups honest (smaller waiting slip)."""
    tight = DEFAULT_CONFIG.with_updates(max_waiting=1.0)
    loose = DEFAULT_CONFIG.with_updates(max_waiting=12.0)
    results = {}
    for name, config in (("tight", tight), ("loose", loose)):
        city = build_city(rows=10, columns=10, vehicles=12, seed=53, config=config)
        report = run_trip_simulation(city, trips=70, duration=150.0)
        stats = report.statistics
        max_wait = max(stats.waiting_distances) if stats.waiting_distances else 0.0
        results[name] = (stats.sharing_rate, max_wait, config.max_waiting)
    # the waiting-time condition is enforced: observed slip never exceeds w
    for sharing, max_wait, budget in results.values():
        assert max_wait <= budget + 1e-6
    # a looser budget should never share less
    assert results["loose"][0] >= results["tight"][0] - 0.05
