"""E5 -- the average sharing rate (Section 4.2).

Paper claim: the website panel shows a *high* average sharing rate -- the
system is effective at making riders share vehicles.  The benchmark replays
trip workloads of increasing demand density against a fixed fleet and reports
the sharing rate; it must grow with demand and become substantial when demand
clearly exceeds the fleet.
"""

from __future__ import annotations

import pytest

from common import build_city, format_table, run_trip_simulation


def sharing_rate_for(trips: int, vehicles: int = 12, seed: int = 37) -> float:
    city = build_city(rows=10, columns=10, vehicles=vehicles, grid_rows=5, grid_columns=5, seed=seed)
    report = run_trip_simulation(city, trips=trips, duration=150.0, speed=0.8)
    return report.statistics.sharing_rate


@pytest.mark.parametrize("trips", [30, 90])
def test_e5_sharing_rate(benchmark, trips):
    rate = benchmark.pedantic(lambda: sharing_rate_for(trips), rounds=1, iterations=1)
    benchmark.extra_info["trips"] = trips
    benchmark.extra_info["sharing_rate"] = round(rate, 3)
    assert 0.0 <= rate <= 1.0


def test_e5_sharing_grows_with_demand():
    series = [(trips, sharing_rate_for(trips)) for trips in (30, 60, 120)]
    rates = [rate for _, rate in series]
    # denser demand on the same fleet forces more sharing
    assert rates[-1] >= rates[0]
    assert rates[-1] > 0.15
    rows = [(trips, f"{rate:.2f}") for trips, rate in series]
    print("\nE5 -- sharing rate vs demand (12 vehicles, 150 time units)\n"
          + format_table(("trips", "sharing rate"), rows))
