"""E12 -- batched dispatch pipeline versus the sequential greedy loop.

Section 2.5's greedy strategy fixes *what* simultaneous requests get (each
request decided in submission order against the fleet state its predecessors
left behind); the batched pipeline (`Dispatcher.dispatch_batch`) restructures
*where* the work happens: one :class:`~repro.core.batch.BatchContext` pools
the start-rooted distance trees (requests sharing a start vertex share one
tree) and memoises the schedule-leg distances every verification of the batch
re-asks, matching runs per fleet shard with the per-shard skylines merged by
dominance, and a commit changes exactly one shard's contents (the chosen
vehicle's), keeping every other shard's results valid mid-batch.

At city scale the routing engine cannot cache a full distance tree per
recently seen vertex (each tree is O(V)), so this experiment builds its
engines with a deliberately small tree cache -- the same device
``routing_layer_seconds`` uses (``max_cached_sources=1``) to measure cold
trees in E2/E8.  Under that cache pressure the sequential loop keeps
re-running Dijkstra for starts and schedule legs it has already answered,
while the batch pays each exactly once; the recorded speedup is the honest
value of sharing routing contexts across a tick's worth of requests.

The pipeline's outcomes are asserted byte-identical to the loop's here (and
property-tested in ``tests/property/test_batch_equivalence.py``), so the
speedup is pure restructuring, not a semantics change.

The *vectorised* arm measures the next rung: the same burst on the CSR
backend with the one-shot batch tree prefetch (every distinct start tree
computed by one ``scipy.csgraph.dijkstra(indices=[...])`` call).  Its wall
time is asserted at least 2x better than the committed dict-backend E12
record (the PR-over-PR contract of ISSUE 3), again at byte-identical
outcomes versus the sequential loop on the same engine.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.core.config import SystemConfig
from repro.core.dispatcher import Dispatcher, OptionPolicy
from repro.roadnet.generators import grid_network
from repro.roadnet.grid_index import GridIndex
from repro.roadnet.routing import make_engine
from repro.sim.trips import ShanghaiLikeTripGenerator
from repro.sim.workload import RequestWorkload
from repro.vehicles.fleet import Fleet
from repro.vehicles.vehicle import Vehicle

import common
from common import HAVE_SCIPY, MATCHERS, committed_baseline_wall, record_result

#: Modest tree cache modelling city-scale cache pressure (a real deployment
#: cannot hold a full O(V) tree for every recently queried vertex).
CACHE_SLOTS = 16
ROWS = 20
VEHICLES = 10
TRIPS = 120
SEED = 17


def _build_dispatcher(matcher_name: str = "single_side", routing: str = "dict") -> Dispatcher:
    """A seeded city with a cache-pressured engine (identical per call).

    Honours the session-wide ``--workers`` override (``common.DEFAULT_WORKERS``)
    so the CI smoke leg can run the same experiment through the parallel
    shard pool; results are byte-identical either way.
    """
    network = grid_network(ROWS, ROWS, weight_jitter=0.3, seed=SEED)
    grid = GridIndex(network, rows=6, columns=6)
    fleet = Fleet(grid, make_engine(network, routing, max_cached_sources=CACHE_SLOTS))
    rng = random.Random(SEED)
    vertices = network.vertices()
    for index in range(VEHICLES):
        fleet.add_vehicle(Vehicle(f"c{index + 1}", location=rng.choice(vertices), capacity=4))
    config = SystemConfig(
        max_waiting=8.0, service_constraint=0.6, max_pickup_distance=12.0,
        dispatch_workers=common.DEFAULT_WORKERS,
    )
    matcher = MATCHERS[matcher_name](fleet, config=config)
    return Dispatcher(fleet, matcher, config)


def _burst(dispatcher: Dispatcher):
    """The E2 workload (Shanghai-like trips, hot-spot structure) as one burst."""
    network = dispatcher.fleet.grid.network
    generator = ShanghaiLikeTripGenerator(
        network, seed=SEED, hotspot_bias=0.85, hotspot_count=4
    )
    trips = generator.generate(TRIPS, day_seconds=300.0)
    workload = RequestWorkload.from_trips(trips, 8.0, 0.6)
    return list(workload.due(float("inf")))


def _outcome_key(outcome):
    return (
        outcome.request.request_id,
        tuple(outcome.options),
        outcome.chosen,
    )


@pytest.mark.parametrize("shards", [1, 4])
def test_e12_batched_pipeline_beats_sequential_loop(shards):
    """Batched dispatch is >= 1.5x faster than the loop, with identical results."""
    sequential = _build_dispatcher()
    requests = _burst(sequential)
    started = time.perf_counter()
    loop_outcomes = sequential.dispatch_sequential(requests, policy=OptionPolicy.CHEAPEST)
    sequential_seconds = time.perf_counter() - started

    batched = _build_dispatcher()
    started = time.perf_counter()
    try:
        pipeline_outcomes = batched.dispatch_batch(
            requests, policy=OptionPolicy.CHEAPEST, shards=shards
        )
    finally:
        batched.close()
    batched_seconds = time.perf_counter() - started

    # Pure restructuring: byte-identical skylines, choices and commit order.
    assert [_outcome_key(o) for o in loop_outcomes] == [
        _outcome_key(o) for o in pipeline_outcomes
    ]

    stats = batched.last_batch_statistics
    assert stats is not None and stats.requests == len(requests)
    speedup = sequential_seconds / batched_seconds
    record_result(
        "E12",
        batched_seconds,
        routing_backend="dict",
        vehicles_evaluated=batched.matcher.statistics.vehicles_evaluated,
        matcher="single_side",
        shards=shards,
        workers=common.DEFAULT_WORKERS,
        requests=len(requests),
        sequential_seconds=round(sequential_seconds, 6),
        speedup_vs_sequential=round(speedup, 2),
        shared_tree_hit_rate=round(stats.shared_tree_hit_rate, 3),
        trees_computed=stats.trees_computed,
    )
    assert stats.shared_tree_hit_rate > 0.1  # the hot-spot workload shares starts
    assert speedup >= 1.5, (
        f"batched dispatch ({batched_seconds:.3f}s) should be >=1.5x faster than "
        f"the sequential loop ({sequential_seconds:.3f}s); got {speedup:.2f}x"
    )


def _run_vectorised_arm(routing: str):
    """One vectorised-pipeline measurement: byte-identical check + wall time."""
    sequential = _build_dispatcher(routing=routing)
    requests = _burst(sequential)
    loop_outcomes = sequential.dispatch_sequential(requests, policy=OptionPolicy.CHEAPEST)

    batched = _build_dispatcher(routing=routing)
    started = time.perf_counter()
    try:
        pipeline_outcomes = batched.dispatch_batch(requests, policy=OptionPolicy.CHEAPEST)
    finally:
        batched.close()
    batched_seconds = time.perf_counter() - started

    # Same semantics as ever: the vectorised plane changes where trees are
    # computed, not a single float of what the riders are offered.
    assert [_outcome_key(o) for o in loop_outcomes] == [
        _outcome_key(o) for o in pipeline_outcomes
    ]

    stats = batched.last_batch_statistics
    assert stats is not None
    assert stats.prefetched_trees == stats.requests - stats.shared_tree_hits
    assert stats.trees_computed == 0  # every tree came through the one plane
    return batched, requests, stats, batched_seconds


def test_e12_vectorised_prefetch_halves_the_committed_batch_wall_time():
    """ISSUE 3's acceptance gate: the vectorised pipeline (one-shot tree-plane
    prefetch on the CSR and table backends) beats the committed
    pre-vectorisation dict-backend E12 record by >= 2x, at byte-identical
    dispatch outcomes.

    The hard assert is one-shot by construction: it only fires while the
    committed ``BENCH_results.json`` still predates this change (no E12 "csr"
    record).  Once the baseline is regenerated with vectorised records, E12
    wall-time regressions are guarded by ``scripts/check_bench_trend.py``
    (median-of-3, 25% threshold) instead of an ever-tightening 2x bar.
    """
    if not HAVE_SCIPY:
        pytest.skip("the vectorised tree plane needs scipy.sparse.csgraph")

    baseline = committed_baseline_wall("E12", "dict")
    speedups = {}
    for routing in ("csr", "table"):
        batched, requests, stats, batched_seconds = _run_vectorised_arm(routing)
        if baseline is not None:
            speedups[routing] = baseline / batched_seconds
        record_result(
            "E12",
            batched_seconds,
            routing_backend=routing,
            vehicles_evaluated=batched.matcher.statistics.vehicles_evaluated,
            matcher="single_side",
            shards=1,
            workers=common.DEFAULT_WORKERS,
            requests=len(requests),
            prefetched_trees=stats.prefetched_trees,
            prefetch_seconds=round(stats.prefetch_seconds, 6),
            baseline_dict_seconds=round(baseline, 6) if baseline is not None else None,
            speedup_vs_dict_baseline=(
                round(baseline / batched_seconds, 2) if baseline is not None else None
            ),
        )

    if baseline is None:
        pytest.skip("no committed dict-backend E12 record to compare against")
    if committed_baseline_wall("E12", "csr") is not None:
        pytest.skip(
            "committed baseline is already post-vectorisation; E12 is guarded "
            "by the trend check"
        )
    best = max(speedups.values())
    assert best >= 2.0, (
        f"the vectorised batch should be >=2x faster than the committed "
        f"dict-backend record ({baseline:.3f}s); best arm achieved {best:.2f}x "
        f"({ {k: round(v, 2) for k, v in speedups.items()} })"
    )


def test_e12_sharded_matching_work_equals_unsharded():
    """Sharding redistributes verification work; it must not add or lose any."""
    results = {}
    for shards in (1, 2, 4):
        dispatcher = _build_dispatcher()
        requests = _burst(dispatcher)[:40]
        try:
            outcomes = dispatcher.dispatch_batch(
                requests, policy=OptionPolicy.CHEAPEST, shards=shards
            )
        finally:
            dispatcher.close()
        results[shards] = (
            [_outcome_key(o) for o in outcomes],
            dispatcher.matcher.statistics.vehicles_evaluated,
        )
    baseline_outcomes, _ = results[1]
    for shards in (2, 4):
        sharded_outcomes, _ = results[shards]
        assert sharded_outcomes == baseline_outcomes


def test_e12_summary_table(capsys):
    """Print the batched-vs-sequential comparison (run with -s to see it)."""
    from common import format_table

    rows = []
    for shards in (1, 2, 4):
        sequential = _build_dispatcher()
        requests = _burst(sequential)
        started = time.perf_counter()
        sequential.dispatch_sequential(requests, policy=OptionPolicy.CHEAPEST)
        loop_seconds = time.perf_counter() - started

        batched = _build_dispatcher()
        started = time.perf_counter()
        try:
            batched.dispatch_batch(requests, policy=OptionPolicy.CHEAPEST, shards=shards)
        finally:
            batched.close()
        pipeline_seconds = time.perf_counter() - started
        stats = batched.last_batch_statistics
        rows.append(
            (
                shards,
                f"{loop_seconds * 1000:.1f}",
                f"{pipeline_seconds * 1000:.1f}",
                f"{loop_seconds / pipeline_seconds:.2f}x",
                f"{stats.shared_tree_hit_rate:.0%}",
            )
        )
    table = format_table(
        ("shards", "sequential [ms]", "batched [ms]", "speedup", "tree hit rate"), rows
    )
    print("\nE12 -- batched dispatch pipeline vs sequential greedy loop\n" + table)
