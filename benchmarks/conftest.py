"""Pytest configuration for the benchmark harness."""

from __future__ import annotations

import sys
from pathlib import Path

# Make `import common` work regardless of the invocation directory.
sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.roadnet.routing import ROUTING_BACKENDS  # noqa: E402


def pytest_addoption(parser):
    parser.addoption(
        "--routing",
        choices=ROUTING_BACKENDS,
        default=None,
        help="routing backend every experiment builds its city with",
    )
    parser.addoption(
        "--workers",
        type=int,
        default=None,
        help="dispatch worker processes for batch-pipeline experiments "
        "(1 keeps dispatch in-process)",
    )


def pytest_configure(config):
    import common

    backend = config.getoption("--routing", default=None)
    if backend:
        common.DEFAULT_ROUTING = backend
    workers = config.getoption("--workers", default=None)
    if workers:
        common.DEFAULT_WORKERS = workers


def pytest_sessionfinish(session, exitstatus):
    import common

    target = common.write_results()
    if target is not None:
        print(f"\nbenchmark records written to {target}")
