"""Pytest configuration for the benchmark harness."""

from __future__ import annotations

import sys
from pathlib import Path

# Make `import common` work regardless of the invocation directory.
sys.path.insert(0, str(Path(__file__).resolve().parent))
