"""E1 -- the worked example of Section 2 (Fig. 1).

Paper claim: for the Fig. 1 scenario the system returns exactly the two
non-dominated results r1 = <c1, 14, 4> and r2 = <c2, 8, 8.8>.  The benchmark
verifies the values and measures how long one such fully indexed match takes
with each matcher.
"""

from __future__ import annotations

import pytest

from repro.core.config import SystemConfig
from repro.core.dual_side import DualSideSearchMatcher
from repro.core.naive import NaiveKineticTreeMatcher
from repro.core.single_side import SingleSideSearchMatcher
from repro.core.insertion import feasible_schedules_for_commit
from repro.model.request import Request
from repro.roadnet.generators import figure1_network
from repro.roadnet.grid_index import GridIndex
from repro.roadnet.shortest_path import DistanceOracle
from repro.vehicles.fleet import Fleet
from repro.vehicles.vehicle import Vehicle

MATCHERS = {
    "naive": NaiveKineticTreeMatcher,
    "single_side": SingleSideSearchMatcher,
    "dual_side": DualSideSearchMatcher,
}


def build_paper_scenario():
    network = figure1_network()
    grid = GridIndex(network, rows=4, columns=4)
    oracle = DistanceOracle(network)
    fleet = Fleet(grid, oracle)
    fleet.add_vehicle(Vehicle("c1", location=1, capacity=4))
    fleet.add_vehicle(Vehicle("c2", location=13, capacity=4))
    r1 = Request(start=2, destination=16, riders=2, max_waiting=5.0, service_constraint=0.2,
                 request_id="R1")
    c1 = fleet.get("c1")
    schedules = feasible_schedules_for_commit(c1, r1, oracle, grid)
    c1.assign(r1, planned_pickup_distance=8.0, direct_distance=oracle.distance(2, 16),
              schedules=schedules)
    fleet.refresh_vehicle("c1")
    config = SystemConfig(max_waiting=5.0, service_constraint=0.2)
    request = Request(start=12, destination=17, riders=2, max_waiting=5.0, service_constraint=0.2,
                      request_id="R2")
    return fleet, config, request


@pytest.mark.parametrize("matcher_name", sorted(MATCHERS))
def test_e1_worked_example(benchmark, matcher_name):
    fleet, config, request = build_paper_scenario()
    matcher = MATCHERS[matcher_name](fleet, config=config)

    options = benchmark(lambda: matcher.match(request))

    by_vehicle = {option.vehicle_id: option for option in options}
    assert set(by_vehicle) == {"c1", "c2"}
    assert by_vehicle["c1"].pickup_distance == pytest.approx(14.0)
    assert by_vehicle["c1"].price == pytest.approx(4.0)
    assert by_vehicle["c2"].pickup_distance == pytest.approx(8.0)
    assert by_vehicle["c2"].price == pytest.approx(8.8)

    benchmark.extra_info["options"] = [
        (option.vehicle_id, option.pickup_distance, option.price) for option in options
    ]
    benchmark.extra_info["paper_expectation"] = [("c1", 14.0, 4.0), ("c2", 8.0, 8.8)]
