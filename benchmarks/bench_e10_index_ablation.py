"""E10 -- index ablation: grid granularity and lower-bound pruning (Section 3.2).

The paper's design bets on two index structures: the grid over the road
network (with cell-pair lower bounds) and the kinetic tree over vehicles.
This ablation quantifies the first bet:

* sweep the grid granularity and measure verification work and index build
  time -- too coarse a grid prunes nothing, too fine a grid costs more to
  build while pruning little extra;
* disable the insertion-time lower-bound rejection (the naive matcher's
  behaviour) and count how many extra exact schedule evaluations are paid.
"""

from __future__ import annotations

import time

import pytest

from repro.core.config import SystemConfig
from repro.roadnet.grid_index import GridIndex

from common import DEFAULT_CONFIG, build_city, format_table, probe_requests, warm_up_fleet


def work_for_granularity(cells_per_side: int, seed: int = 83):
    city = build_city(
        rows=14, columns=14, vehicles=50,
        grid_rows=cells_per_side, grid_columns=cells_per_side, seed=seed,
    )
    warm_up_fleet(city, requests=15, seed=seed)
    matcher = city.matcher("single_side")
    requests = probe_requests(city, count=15, seed=seed + 1)
    for request in requests:
        matcher.match(request)
    return matcher.statistics.vehicles_evaluated / len(requests)


@pytest.mark.parametrize("cells_per_side", [2, 7])
def test_e10_grid_granularity(benchmark, cells_per_side):
    work = benchmark.pedantic(lambda: work_for_granularity(cells_per_side), rounds=1, iterations=1)
    benchmark.extra_info["cells_per_side"] = cells_per_side
    benchmark.extra_info["verified_per_request"] = round(work, 2)


def test_e10_finer_grids_prune_more():
    series = [(side, work_for_granularity(side)) for side in (1, 4, 8)]
    work = [w for _, w in series]
    # a 1x1 grid cannot prune anything beyond per-vehicle bounds; finer grids only help
    assert work[-1] <= work[0]
    rows = [(f"{side}x{side}", f"{w:.1f}") for side, w in series]
    print("\nE10 -- vehicles verified per request vs grid granularity (50 vehicles)\n"
          + format_table(("grid", "verified per request"), rows))


def test_e10_index_build_cost_grows_with_granularity():
    city = build_city(rows=14, columns=14, vehicles=1, seed=83)
    timings = []
    for side in (2, 6, 12):
        started = time.perf_counter()
        index = GridIndex(city.network, rows=side, columns=side, precompute=True)
        elapsed = time.perf_counter() - started
        timings.append((side, elapsed, index.summary()["border_vertices"]))
    # build cost and border-vertex count increase with granularity
    assert timings[-1][1] >= timings[0][1] * 0.5  # noisy, but must not collapse
    assert timings[-1][2] >= timings[0][2]
    rows = [(f"{side}x{side}", f"{seconds * 1000:.1f}", int(borders)) for side, seconds, borders in timings]
    print("\nE10 -- index build time vs granularity\n"
          + format_table(("grid", "build time [ms]", "border vertices"), rows))


def test_e10_insertion_bound_rejection_saves_exact_work():
    """Disabling the lower-bound short-circuit forces more exact schedule evaluations."""
    config = DEFAULT_CONFIG.with_updates(service_constraint=0.3)
    city = build_city(rows=14, columns=14, vehicles=50, grid_rows=7, grid_columns=7, seed=89,
                      config=config)
    warm_up_fleet(city, requests=18, seed=89)
    requests = probe_requests(city, count=20, seed=90)

    with_bounds = city.matcher("single_side")
    for request in requests:
        with_bounds.match(request)
    rejected = with_bounds.statistics.insertion.candidates_rejected_by_bounds
    enumerated = with_bounds.statistics.insertion.candidates_enumerated
    assert rejected > 0, "the tight service constraint should let bounds reject some candidates"
    print(
        f"\nE10 -- insertion-time bound rejection: {rejected} of {enumerated} "
        f"candidate schedules rejected without exact evaluation"
    )
