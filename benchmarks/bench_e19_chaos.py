"""E19 -- chaos: the serving path under injected faults, degrading gracefully.

ISSUE 9's failure-containment machinery (the pool watchdog, dispatch retry,
deadline-aware ingest and the durable journal) is only worth its complexity
if the *whole* serving path survives a hostile run.  This experiment replays
the E17 surge/lull day twice on identical durable services:

* the **reference arm** runs fault-free and pins the expected trajectory --
  every window's bookings, every chosen option, the canonical end state;
* the **faulted arm** replays the same day under a seeded
  :class:`~repro.service.faults.FaultPlan`: a pool worker *killed* outright
  at a mid-run batch command (the begin failure is retried once against a
  freshly spawned pool), a worker *stalled* mid-turn in the final window
  (SIGTERM-ignoring -- only the watchdog's SIGKILL removes it), slow
  flushes (injected sleeps), and transient journal-append failures on
  admissions and pumps, which the driver retries once -- the modelled
  client behaviour for a reported write-ahead failure.  The worker-fault
  occurrence indices are *placed from the deterministic window sizes* (a
  worker's counters restart at zero on every respawn, so naive indices
  recur once per pool lifetime): each fault fires exactly once.

Graceful degradation is then asserted, not hoped for:

* **zero lost, zero double-answered** -- every admitted request is answered
  exactly once;
* **byte-identity** -- the faulted arm's windows and chosen options equal
  the reference arm's, window for window (fallbacks recompute, never
  approximate);
* **containment** -- the stalled worker was killed by the watchdog (within
  ``worker_timeout``, which also bounds the latency tail: p99 grows by at
  most the timeout plus scheduling noise, never the stall's full hour), and
  the pool was respawned a bounded number of times;
* **durability under faults** -- recovering the faulted arm's journal
  reproduces its canonical state exactly (failed appends never half-executed);
* **bounded slowdown** -- faulted throughput stays within 40% of the
  reference arm's (the trend-gated ``*_faulted_throughput`` rate phase).

Scale knobs: ``PTRIDER_E19_REQUESTS`` (headline, default 12000) and
``PTRIDER_E19_SMOKE_REQUESTS`` (CI smoke, default 6000).  Without parallel
dispatch support (or a window shape with no exactly-once placement) the
worker faults are skipped and the remaining plan (journal + flush faults)
still runs.
"""

from __future__ import annotations

import os
import random
import time

import pytest

from common import HAVE_SCIPY, percentiles, record_result

from repro.core.config import SystemConfig
from repro.core.parallel import parallel_available
from repro.roadnet.generators import grid_network
from repro.roadnet.grid_index import GridIndex
from repro.roadnet.routing import make_engine
from repro.service.api import PTRiderService
from repro.service.faults import FaultInjected, FaultPlan, FaultSpec
from repro.service.recovery import canonical_state
from repro.sim.workload import RequestWorkload
from repro.vehicles.fleet import Fleet
from repro.vehicles.vehicle import Vehicle

SEED = 19
TICK = 1.0
RATE = 400.0
MAX_WAITING = 8.0
SERVICE_CONSTRAINT = 0.6

#: E17's backend-matrix city: big enough for real per-window dispatch work,
#: small enough that two replay arms plus a recovery fit a CI smoke budget.
CITY = dict(rows=30, grid=6, vehicles=24, capacity=2, cache=8,
            max_pickup=3.0, speed=6.0, hotspots=48)

#: Watchdog bound for both arms: a stalled worker costs at most this much
#: wall before the batch falls back in-process.
WORKER_TIMEOUT = 1.0

HEADLINE_REQUESTS = int(os.environ.get("PTRIDER_E19_REQUESTS", "12000"))
SMOKE_REQUESTS = int(os.environ.get("PTRIDER_E19_SMOKE_REQUESTS", "6000"))

#: Pool-respawn ceiling asserted after the faulted replay: the schedule
#: breaks the pool exactly twice (the kill's begin-retry respawns once; the
#: final-window stall leaves a condemned pool nothing ever respawns), so
#: more than a few respawns means containment churned instead of containing.
MAX_RESPAWNS = 3


# ----------------------------------------------------------------------
# builders
# ----------------------------------------------------------------------
def _build_service(journal_dir, workers: int) -> PTRiderService:
    network = grid_network(CITY["rows"], CITY["rows"], weight_jitter=0.3, seed=SEED)
    grid = GridIndex(network, rows=CITY["grid"], columns=CITY["grid"])
    engine = make_engine(network, "csr", max_cached_sources=CITY["cache"])
    fleet = Fleet(grid, engine)
    rng = random.Random(SEED)
    vertices = network.vertices()
    for index in range(CITY["vehicles"]):
        fleet.add_vehicle(
            Vehicle(f"c{index + 1}", location=rng.choice(vertices),
                    capacity=CITY["capacity"])
        )
    config = SystemConfig(
        vehicle_capacity=CITY["capacity"],
        max_waiting=MAX_WAITING,
        service_constraint=SERVICE_CONSTRAINT,
        speed=CITY["speed"],
        max_pickup_distance=CITY["max_pickup"],
        routing_backend="csr",
        dispatch_workers=workers,
        match_shards=workers,  # both workers carry shards: faults reach both
        batch_window=TICK,
        max_batch_size=65536,
        worker_timeout=WORKER_TIMEOUT,
        max_dispatch_retries=1,
        durability="journal",
        journal_path=str(journal_dir),
    )
    return PTRiderService(fleet, config=config, seed=SEED)


def _build_workload(total: int) -> RequestWorkload:
    network = grid_network(CITY["rows"], CITY["rows"], weight_jitter=0.3, seed=SEED)
    return RequestWorkload.daily(
        network,
        total=total,
        duration=total / RATE,
        max_waiting=MAX_WAITING,
        service_constraint=SERVICE_CONSTRAINT,
        hotspot_count=CITY["hotspots"],
        hotspot_bias=1.0,
        seed=SEED,
    )


def _window_sizes(total: int):
    """The deterministic per-window request counts of a ``total``-request
    day: one window per tick with arrivals (admitted at tick ``t``, flushed
    by the pump at ``t + TICK``)."""
    probe = _build_workload(total)
    sizes, t = [], 0.0
    while probe.remaining:
        t += TICK
        due = probe.due(t)
        if due:
            sizes.append(len(due))
    return sizes


def _worker_fault_indices(sizes):
    """Occurrence indices placing each worker fault to fire *exactly once*.

    A worker's fault counters restart at zero on every respawn, so indices
    must be placed against pool *lifetimes*, not the whole day.  The kill
    hits worker 1's batch command at window ``kill_occ`` (0-based): the
    begin failure is retried once on a fresh pool, so lifetime 1 serves
    windows ``0..kill_occ-1`` and lifetime 2 the rest.  The stall index is
    then chosen inside lifetime 2's *final* window -- past every turn
    lifetime 1 saw (no early fire) and past lifetime 2's earlier windows --
    so the condemned pool is never respawned.  Returns ``None`` when no
    such placement exists for this window shape.
    """
    count = len(sizes)
    for kill_occ in range((count + 1) // 2, count - 1):
        first_lifetime_turns = sum(sizes[:kill_occ])
        second_lifetime_turns = sum(sizes[kill_occ:])
        before_last_window = second_lifetime_turns - sizes[-1]
        lowest = max(first_lifetime_turns, before_last_window)
        highest = second_lifetime_turns - 1
        if lowest <= highest:
            return kill_occ, (lowest + highest) // 2
    return None


def _chaos_plan(sizes, parallel_ok: bool) -> FaultPlan:
    """The seeded fault schedule for a day with the given window sizes.

    The service-layer faults are drawn pseudo-randomly from the seed; the
    worker faults are placed deterministically by ``_worker_fault_indices``.
    """
    total = sum(sizes)
    sleeps = FaultPlan.seeded(
        SEED, [("ingest.flush", "sleep", 2, 6)], seconds=0.05
    )
    admit_span = max(2, min(400, total // 2))
    admit_errors = FaultPlan.seeded(
        SEED + 1, [("journal.append", "error", 2, admit_span)], tag="admit"
    )
    pump_errors = FaultPlan.seeded(
        SEED + 2, [("journal.append", "error", 1, 6)], tag="pump"
    )
    specs = sleeps.specs + admit_errors.specs + pump_errors.specs
    placement = _worker_fault_indices(sizes) if parallel_ok else None
    if placement is not None:
        kill_occ, stall_at = placement
        specs += (
            # worker 1 dies abruptly at a mid-run batch command; the begin
            # failure is retried once against a freshly spawned pool
            FaultSpec(point="worker.batch", action="kill", position=1,
                      at=(kill_occ,)),
            # worker 0 wedges (SIGTERM ignored) partway through the final
            # window; only the watchdog's SIGKILL removes it
            FaultSpec(point="worker.turn", action="stall", position=0,
                      at=(stall_at,)),
        )
    return FaultPlan(specs, name="e19-chaos")


def _option_key(option):
    return None if option is None else (
        option.vehicle_id, option.pickup_distance, option.price
    )


def _booking_key(booking):
    return (
        booking.request.request_id,
        tuple(_option_key(option) for option in booking.options),
        _option_key(booking.chosen),
    )


def _retry_once(call):
    """The driver-side contract for injected write-ahead failures: a failed
    append means the command never executed, so one retry is safe and the
    retried call lands on the next (un-faulted) occurrence index."""
    try:
        return call()
    except FaultInjected:
        return call()


def _replay(service: PTRiderService, workload: RequestWorkload):
    """E17's tick loop (admit due requests, pump once per tick), with the
    retry-once harness around every journaled call.  Returns the per-window
    booking keys and the per-request chosen option keys."""
    windows, chosen = [], {}
    t = 0.0
    while True:
        t += TICK
        flushed = _retry_once(lambda: service.pump(now=t))
        if flushed:
            windows.append([_booking_key(b) for b in flushed])
            for booking in flushed:
                chosen[booking.request.request_id] = _option_key(booking.chosen)
        due = workload.due(t)
        for request in due:
            admitted = _retry_once(lambda r=request: service.ingest_request(r, now=t))
            assert admitted  # replay queue is unbounded: nothing sheds
        if not due and not flushed and not workload.remaining:
            assert service.batcher.pending == 0
            break
        service.advance(TICK)
    return windows, chosen


def _assert_served_exactly_once(windows, workload_total: int):
    """Zero lost, zero double-answered."""
    seen = {}
    for window in windows:
        for request_id, _options, _chosen in window:
            seen[request_id] = seen.get(request_id, 0) + 1
    doubles = {rid: n for rid, n in seen.items() if n > 1}
    assert not doubles, f"double-answered requests: {sorted(doubles)[:5]}"
    assert len(seen) == workload_total, (
        f"lost requests: answered {len(seen)} of {workload_total}"
    )


def _run_chaos(tmp_path, total: int, phase_prefix: str) -> None:
    """Both arms + assertions + records; shared by smoke and headline."""
    workers = 2 if parallel_available() else 1
    workload = _build_workload(total)
    total = len(workload)
    sizes = _window_sizes(total)

    # --- reference arm: fault-free trajectory and canonical end state ----
    reference = _build_service(tmp_path / "reference", workers)
    ref_windows, ref_chosen = _replay(reference, workload)
    ref_stats = reference.batcher.statistics
    assert ref_stats.answered == total
    ref_throughput = ref_stats.throughput
    ref_tail = percentiles(ref_stats.latencies)
    record_result(
        "E19", ref_stats.serving_seconds, routing_backend="csr",
        phase=f"{phase_prefix}_reference", requests=total, workers=workers,
        throughput=round(ref_throughput, 1),
        latency_p99=round(ref_tail.get("p99", 0.0), 6),
    )

    # --- faulted arm: same day under the seeded chaos plan ---------------
    workload.reset()
    faulted = _build_service(tmp_path / "chaos", workers)
    plan = _chaos_plan(sizes, workers > 1)
    worker_faults = any(spec.point.startswith("worker.") for spec in plan.specs)
    with plan:
        fault_windows, fault_chosen = _replay(faulted, workload)
    stats = faulted.batcher.statistics
    health = faulted.dispatcher.health

    # graceful degradation, clause by clause (module docstring order)
    _assert_served_exactly_once(fault_windows, total)
    assert fault_windows == ref_windows, "faulted windows diverged from reference"
    assert fault_chosen == ref_chosen
    assert stats.admitted == total == stats.answered
    assert stats.errored == 0 and faulted.batcher.pending == 0

    journal_faults = sum(
        count for label, count in plan.fired.items()
        if label.startswith("journal.append")
    )
    assert journal_faults >= 2, "the journal fault schedule never fired"
    assert plan.fired.get("ingest.flush:sleep", 0) >= 1

    if worker_faults:
        # worker-side fires count in the *worker's* rebuilt plan, which dies
        # with the process -- the parent-side evidence is the containment
        # machinery reacting: the watchdog caught the stall (a timeout and a
        # kill), the abrupt worker death condemned a begin that was retried
        # on a respawned pool, and nothing churned beyond those two breaks
        assert health.worker_timeouts >= 1, "the watchdog never caught the stall"
        assert health.worker_kills >= 1
        assert health.batch_failures >= 2, "the worker kill never surfaced"
        assert health.dispatch_retries >= 1, "the killed begin was never retried"
        assert health.pool_respawns >= 1
        assert health.pool_respawns <= MAX_RESPAWNS, (
            f"fault churn respawned the pool {health.pool_respawns} times"
        )
        # the watchdog bounds the hang: the latency tail grows by at most
        # the timeout plus slack, never the stall's full hour
        fault_tail = percentiles(stats.latencies)
        assert fault_tail["p99"] <= ref_tail["p99"] + WORKER_TIMEOUT + 5.0

    faulted_throughput = stats.throughput
    assert faulted_throughput >= 0.6 * ref_throughput, (
        f"faulted throughput {faulted_throughput:.0f} req/s degraded more "
        f"than 40% from the reference {ref_throughput:.0f} req/s"
    )
    record_result(
        "E19", stats.serving_seconds, routing_backend="csr",
        phase=f"{phase_prefix}_faulted", requests=total, workers=workers,
        throughput=round(faulted_throughput, 1),
        degradation=round(faulted_throughput / ref_throughput, 4),
        latency_p99=round(percentiles(stats.latencies).get("p99", 0.0), 6),
        worker_timeouts=float(health.worker_timeouts),
        worker_kills=float(health.worker_kills),
        pool_respawns=float(health.pool_respawns),
        dispatch_retries=float(health.dispatch_retries),
        journal_faults=float(journal_faults),
        faults_fired=float(sum(plan.fired.values())),
    )
    record_result("E19", faulted_throughput, routing_backend="csr",
                  phase=f"{phase_prefix}_faulted_throughput", requests=total)

    # --- durability under faults: recover the chaos journal --------------
    expected = canonical_state(faulted)
    faulted._journal.close()
    started = time.perf_counter()
    recovered = PTRiderService.recover(tmp_path / "chaos")
    recovery_wall = time.perf_counter() - started
    assert canonical_state(recovered) == expected, (
        "recovering the faulted journal did not reproduce the end state"
    )
    record_result(
        "E19", recovery_wall, routing_backend="csr",
        phase=f"{phase_prefix}_recovery",
        journal_seq=float(recovered.journal.last_seq()),
    )
    recovered.close()
    reference.close()
    faulted.close()


# ----------------------------------------------------------------------
# the CI smoke leg (selected via -k smoke) and the local headline
# ----------------------------------------------------------------------
def test_e19_smoke_chaos_replay(tmp_path):
    if not HAVE_SCIPY:
        pytest.skip("the csr backend needs scipy")
    _run_chaos(tmp_path, SMOKE_REQUESTS, "smoke")


def test_e19_headline_chaos_replay(tmp_path):
    if not HAVE_SCIPY:
        pytest.skip("the csr backend needs scipy")
    _run_chaos(tmp_path, HEADLINE_REQUESTS, "headline")
