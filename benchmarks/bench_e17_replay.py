"""E17 -- micro-batched serving: replaying a synthetic high-volume day.

Every earlier experiment measured the batch pipeline on hand-assembled
bursts; this one measures it as the *serving architecture*.  A synthetic
day of requests (surge/lull arrivals from the bimodal demand profile,
exact-vertex hotspot origins -- :meth:`RequestWorkload.daily`) is replayed
tick by tick against a full :class:`PTRiderService` twice:

* the **sequential arm** answers each released request immediately through
  the per-request ``book_request`` / ``choose`` flow -- the smartphone loop
  every request paid before this PR;
* the **batched arm** admits released requests into the service's
  :class:`~repro.service.ingest.MicroBatcher` and pumps it once per tick,
  so each tick's arrivals are answered by one ``dispatch_batch`` flush
  (pooled start trees, prefetched fleet leg trees, shards/workers).

Both arms advance the simulated world identically between ticks, so the
only difference is *how* a tick's arrivals are answered.  Matching
semantics are pinned, not assumed: a third replay drives the same windows
through raw ``dispatch_batch`` calls at the same instants and every
window's outcomes must be byte-identical to the ingest path's (and the
sequential arm must choose exactly the same options request by request).

Throughput is answered requests per wall second spent serving (world
advancement is excluded on both sides); admission-to-answer latency --
simulated queue wait plus the request's share of in-flush wall time -- is
summarised as nearest-rank p50/p95/p99.  The headline assertion is the
tentpole claim: micro-batched serving >= 2x the per-request loop.

Scale knobs: ``PTRIDER_E17_REQUESTS`` (headline replay, default 100k; set
it to a million locally for the full day) and
``PTRIDER_E17_SMOKE_REQUESTS`` (the CI smoke leg, default 4000).  The
worker matrix self-gates exactly like E16: byte-identity runs at every
worker count, wall-clock comparisons only bind where there are cores.
"""

from __future__ import annotations

import os
import random
import time

import pytest

import common
from common import HAVE_SCIPY, percentiles, record_result

from repro.core.config import SystemConfig
from repro.core.dispatcher import OptionPolicy
from repro.core.parallel import parallel_available
from repro.roadnet.generators import grid_network
from repro.roadnet.grid_index import GridIndex
from repro.roadnet.routing import make_engine
from repro.service.api import PTRiderService
from repro.sim.workload import RequestWorkload
from repro.vehicles.fleet import Fleet
from repro.vehicles.vehicle import Vehicle

SEED = 17
#: serving-loop cadence: one pump per simulated second
TICK = 1.0
#: mean arrival rate of the replayed day (requests per simulated second)
RATE = 400.0
#: per-request constraints of the day's riders
MAX_WAITING = 8.0
SERVICE_CONSTRAINT = 0.6

#: The headline city: a 50x50 jittered grid with 80 exact-vertex hotspot
#: origins and a deliberately small tree LRU.  Each serving window then
#: holds many *distinct* hot starts -- far more than the cache -- which is
#: precisely the regime where per-request serving thrashes cold trees and
#: the batch pipeline's pooled prefetch (start planes + fleet leg trees)
#: amortises them.
HEADLINE = dict(rows=50, grid=14, vehicles=40, capacity=2, cache=8,
                max_pickup=3.0, speed=6.0, hotspots=80)
#: The backend-matrix city: smaller, so the ch/table preprocessing and the
#: workers=4 identity legs stay cheap -- identity does not need scale.
MATRIX = dict(rows=30, grid=6, vehicles=24, capacity=2, cache=8,
              max_pickup=3.0, speed=6.0, hotspots=48)

HEADLINE_REQUESTS = int(os.environ.get("PTRIDER_E17_REQUESTS", "100000"))
SMOKE_REQUESTS = int(os.environ.get("PTRIDER_E17_SMOKE_REQUESTS", "4000"))
MATRIX_REQUESTS = 2500


# ----------------------------------------------------------------------
# builders
# ----------------------------------------------------------------------
def _build_service(city: dict, routing: str = "csr", workers: int = 1,
                   queue_capacity=None, queue_policy: str = "shed") -> PTRiderService:
    """A fresh service on the city's network; identical per (city, seed)."""
    network = grid_network(city["rows"], city["rows"], weight_jitter=0.3, seed=SEED)
    grid = GridIndex(network, rows=city["grid"], columns=city["grid"])
    engine = make_engine(network, routing, max_cached_sources=city["cache"])
    fleet = Fleet(grid, engine)
    rng = random.Random(SEED)
    vertices = network.vertices()
    for index in range(city["vehicles"]):
        fleet.add_vehicle(
            Vehicle(f"c{index + 1}", location=rng.choice(vertices),
                    capacity=city["capacity"])
        )
    config = SystemConfig(
        vehicle_capacity=city["capacity"],
        max_waiting=MAX_WAITING,
        service_constraint=SERVICE_CONSTRAINT,
        speed=city["speed"],
        max_pickup_distance=city["max_pickup"],
        routing_backend=routing,
        dispatch_workers=workers,
        batch_window=TICK,
        # windows must close by time, never by size, so each window is
        # exactly one tick's arrivals and the three replay arms stay
        # aligned window for window
        max_batch_size=65536,
        queue_capacity=queue_capacity,
        queue_policy=queue_policy,
    )
    return PTRiderService(fleet, config=config, seed=SEED)


def _build_workload(city: dict, total: int) -> RequestWorkload:
    """The synthetic day: surge/lull arrivals over hotspot origins."""
    network = grid_network(city["rows"], city["rows"], weight_jitter=0.3, seed=SEED)
    return RequestWorkload.daily(
        network,
        total=total,
        duration=total / RATE,
        max_waiting=MAX_WAITING,
        service_constraint=SERVICE_CONSTRAINT,
        hotspot_count=city["hotspots"],
        hotspot_bias=1.0,
        seed=SEED,
    )


def _option_key(option):
    return None if option is None else (
        option.vehicle_id, option.pickup_distance, option.price
    )


def _outcome_key(outcome):
    """Byte-identity key of one dispatch outcome (options + committed choice)."""
    return (
        outcome.request.request_id,
        tuple(_option_key(option) for option in outcome.options),
        _option_key(outcome.chosen),
    )


def _booking_key(booking):
    return (
        booking.request.request_id,
        tuple(_option_key(option) for option in booking.options),
        _option_key(booking.chosen),
    )


def _cheapest_index(options) -> int:
    """Index the CHEAPEST policy would choose (price, pickup, id tiebreak)."""
    return min(
        range(len(options)),
        key=lambda i: (options[i].price, options[i].pickup_distance,
                       options[i].vehicle_id),
    )


# ----------------------------------------------------------------------
# replay arms (identical tick loops; only the serving differs)
# ----------------------------------------------------------------------
def _replay_ingest(service: PTRiderService, workload: RequestWorkload):
    """The micro-batched arm: admit due requests, pump once per tick.

    Returns ``(per-window key lists, {request_id: chosen key})``; serving
    wall time accumulates in the batcher's ``serving_seconds``.
    """
    windows, chosen = [], {}
    t = 0.0
    while True:
        t += TICK
        flushed = service.pump(now=t)
        if flushed:
            windows.append([_booking_key(b) for b in flushed])
            for booking in flushed:
                chosen[booking.request.request_id] = _option_key(booking.chosen)
        due = workload.due(t)
        for request in due:
            assert service.ingest_request(request, now=t)  # replay: unbounded
        if not due and not flushed and not workload.remaining:
            assert service.batcher.pending == 0
            break
        service.advance(TICK)
    return windows, chosen


def _replay_direct(service: PTRiderService, workload: RequestWorkload):
    """The reference arm: the same windows through raw ``dispatch_batch``."""
    windows = []
    carry = []
    t = 0.0
    while True:
        t += TICK
        flushed = bool(carry)
        if carry:
            outcomes = service.dispatcher.dispatch_batch(
                carry, policy=OptionPolicy.CHEAPEST, prefetch_legs=True
            )
            windows.append([_outcome_key(o) for o in outcomes])
        carry = workload.due(t)
        if not carry and not flushed and not workload.remaining:
            break
        service.advance(TICK)
    return windows


def _replay_book(service: PTRiderService, workload: RequestWorkload):
    """The sequential arm: the per-request book/choose (or cancel) loop.

    Requests are answered at the same instants as the batched arm's window
    flushes (one tick after release), so both arms serve identical groups
    against identical fleet states and the measurement isolates *how* each
    group is answered.  Returns ``(serving wall seconds, {request_id:
    chosen key})``.
    """
    serving = 0.0
    chosen = {}
    carry = []
    t = 0.0
    while True:
        t += TICK
        flushed = bool(carry)
        started = time.perf_counter()
        for request in carry:
            booking = service.book_request(request)
            if booking.options:
                option = service.choose(
                    booking.booking_id, _cheapest_index(booking.options)
                )
                chosen[request.request_id] = _option_key(option)
            else:
                service.cancel(booking.booking_id)
                chosen[request.request_id] = None
        serving += time.perf_counter() - started
        carry = workload.due(t)
        if not carry and not flushed and not workload.remaining:
            break
        service.advance(TICK)
    return serving, chosen


def _ingest_extras(stats) -> dict:
    """Record fields shared by every batched-arm row."""
    tail = percentiles(stats.latencies)
    return dict(
        throughput=round(stats.throughput, 1),
        latency_p50=round(tail.get("p50", 0.0), 6),
        latency_p95=round(tail.get("p95", 0.0), 6),
        latency_p99=round(tail.get("p99", 0.0), 6),
        shed=float(stats.shed),
        peak_queue_depth=float(stats.peak_queue_depth),
        mean_window_fill=round(stats.mean_window_fill, 6),
        flushes=float(stats.flushes),
    )


# ----------------------------------------------------------------------
# the CI smoke leg (selected via -k smoke): small replay, full checks
# ----------------------------------------------------------------------
def test_e17_smoke_replay():
    """Identity + throughput + observability on a small day (csr backend)."""
    if not HAVE_SCIPY:
        pytest.skip("the csr backend needs scipy")
    city = HEADLINE
    workload = _build_workload(city, SMOKE_REQUESTS)
    total = len(workload)

    direct_windows = _replay_direct(_build_service(city), workload)

    workload.reset()
    sequential_seconds, book_chosen = _replay_book(_build_service(city), workload)
    sequential_throughput = total / sequential_seconds
    record_result(
        "E17", sequential_seconds, routing_backend="csr",
        phase="smoke_serve_sequential", requests=total,
        throughput=round(sequential_throughput, 1),
    )

    worker_counts = sorted({1, common.DEFAULT_WORKERS})
    for workers in worker_counts:
        if workers != 1 and not parallel_available():
            continue
        workload.reset()
        service = _build_service(city, workers=workers)
        windows, chosen = _replay_ingest(service, workload)
        stats = service.batcher.statistics

        # Byte-identity: every window's outcomes are exactly what raw
        # dispatch_batch answers for the same requests at the same instant,
        # and the per-request book loop chose exactly the same options.
        assert windows == direct_windows, f"workers={workers} diverged"
        assert chosen == book_chosen

        # Conservation: nothing admitted is lost, nothing was shed.
        assert stats.admitted == total == stats.answered
        assert stats.shed == 0 and service.batcher.pending == 0

        # Observability: the serving path surfaces through the admin panel.
        panel = service.routing_statistics()
        for key in ("ingest_throughput", "ingest_latency_p95", "ingest_shed",
                    "ingest_queue_depth", "ingest_mean_window_fill"):
            assert key in panel, f"missing {key} in routing_statistics()"
        assert panel["ingest_answered"] == float(total)

        record_result(
            "E17", stats.serving_seconds, routing_backend="csr",
            phase="smoke_serve_batched", requests=total, workers=workers,
            speedup_vs_sequential=round(sequential_seconds / stats.serving_seconds, 2),
            **_ingest_extras(stats),
        )
        if workers == 1:
            # dedicated trend rows: throughput is gated as a rate (higher is
            # better, --rate-phases), the latency tail as a plain wall
            record_result("E17", stats.throughput, routing_backend="csr",
                          phase="smoke_throughput", requests=total)
            record_result("E17", percentiles(stats.latencies)["p95"],
                          routing_backend="csr", phase="smoke_latency_p95",
                          requests=total)


def test_e17_smoke_backpressure_is_bounded():
    """A surge beyond ``queue_capacity`` sheds -- visibly, never unboundedly."""
    if not HAVE_SCIPY:
        pytest.skip("the csr backend needs scipy")
    capacity = 50
    service = _build_service(MATRIX, queue_capacity=capacity, queue_policy="shed")
    workload = _build_workload(MATRIX, 120)
    admitted = 0
    for request in list(workload):
        admitted += 1 if service.ingest_request(request, now=1.0) else 0
        assert service.batcher.pending <= capacity
    stats = service.batcher.statistics
    assert admitted == capacity
    assert stats.shed == len(workload) - capacity
    assert service.routing_statistics()["ingest_shed"] == float(stats.shed)
    started = time.perf_counter()
    answered = service.drain(now=2.0)
    wall = time.perf_counter() - started
    assert len(answered) == capacity and service.batcher.pending == 0
    record_result(
        "E17", wall, routing_backend="csr", phase="smoke_backpressure",
        requests=float(len(workload)), shed=float(stats.shed),
        peak_queue_depth=float(stats.peak_queue_depth),
        queue_capacity=float(capacity),
    )


# ----------------------------------------------------------------------
# the backend x workers matrix: identity everywhere, records per cell
# ----------------------------------------------------------------------
@pytest.mark.parametrize("routing", ("csr", "ch", "table"))
def test_e17_backend_matrix(routing):
    """Ingest serving is byte-identical to dispatch_batch on every backend."""
    if routing in ("csr", "table") and not HAVE_SCIPY:
        pytest.skip(f"the {routing} backend needs scipy")
    workload = _build_workload(MATRIX, MATRIX_REQUESTS)
    total = len(workload)
    direct_windows = _replay_direct(_build_service(MATRIX, routing=routing), workload)
    for workers in (1, 4):
        if workers != 1 and not parallel_available():
            continue
        workload.reset()
        service = _build_service(MATRIX, routing=routing, workers=workers)
        windows, _ = _replay_ingest(service, workload)
        assert windows == direct_windows, (
            f"{routing} workers={workers} diverged from dispatch_batch"
        )
        stats = service.batcher.statistics
        assert stats.answered == total and service.batcher.pending == 0
        record_result(
            "E17", stats.serving_seconds, routing_backend=routing,
            phase="matrix_serve_batched", requests=total, workers=workers,
            **_ingest_extras(stats),
        )


# ----------------------------------------------------------------------
# the headline: a >=100k-request day, batched vs sequential serving
# ----------------------------------------------------------------------
def test_e17_headline_throughput():
    """The tentpole claim: micro-batched serving >= 2x the book loop."""
    if not HAVE_SCIPY:
        pytest.skip("the csr backend needs scipy")
    city = HEADLINE
    workload = _build_workload(city, HEADLINE_REQUESTS)
    total = len(workload)

    direct_windows = _replay_direct(_build_service(city), workload)

    workload.reset()
    service = _build_service(city)
    windows, ingest_chosen = _replay_ingest(service, workload)
    assert windows == direct_windows
    stats = service.batcher.statistics
    assert stats.admitted == total == stats.answered and stats.shed == 0

    workload.reset()
    sequential_seconds, book_chosen = _replay_book(_build_service(city), workload)
    assert ingest_chosen == book_chosen

    sequential_throughput = total / sequential_seconds
    batched_throughput = stats.throughput
    tail = percentiles(stats.latencies)
    record_result(
        "E17", sequential_seconds, routing_backend="csr",
        phase="serve_sequential", requests=total,
        throughput=round(sequential_throughput, 1),
    )
    record_result(
        "E17", stats.serving_seconds, routing_backend="csr",
        phase="serve_batched", requests=total,
        speedup_vs_sequential=round(sequential_seconds / stats.serving_seconds, 2),
        **_ingest_extras(stats),
    )
    record_result("E17", batched_throughput, routing_backend="csr",
                  phase="throughput", requests=total)
    record_result("E17", tail["p95"], routing_backend="csr",
                  phase="latency_p95", requests=total)

    assert batched_throughput >= 2.0 * sequential_throughput, (
        f"micro-batched serving ({batched_throughput:.0f} req/s) should be "
        f">=2x the per-request book loop ({sequential_throughput:.0f} req/s); "
        f"got {batched_throughput / sequential_throughput:.2f}x"
    )


def test_e17_summary_table(capsys):
    """Print the serving comparison at smoke scale (run with -s to see it)."""
    from common import format_table

    if not HAVE_SCIPY:
        pytest.skip("the csr backend needs scipy")
    workload = _build_workload(HEADLINE, SMOKE_REQUESTS)
    total = len(workload)
    sequential_seconds, _ = _replay_book(_build_service(HEADLINE), workload)
    workload.reset()
    service = _build_service(HEADLINE)
    _replay_ingest(service, workload)
    stats = service.batcher.statistics
    tail = percentiles(stats.latencies)
    rows = [
        ("book loop", f"{sequential_seconds:.2f}",
         f"{total / sequential_seconds:.0f}", "-", "-"),
        ("micro-batched", f"{stats.serving_seconds:.2f}",
         f"{stats.throughput:.0f}", f"{tail['p50']:.3f}", f"{tail['p95']:.3f}"),
    ]
    table = format_table(
        ("serving path", "serve [s]", "req/s", "lat p50 [s]", "lat p95 [s]"), rows
    )
    print(f"\nE17 -- micro-batched serving ({total} requests, csr)\n" + table)
