"""E4 -- multiple non-dominated options per request (Sections 1 and 2).

Paper claim: unlike single-option systems, PTRider returns several options
with different pick-up times and prices (the seaside-couple example: wait
longer, pay less).  The benchmark measures how many non-dominated options a
request receives as the fleet around it gets busier, and checks the trade-off
structure: within one skyline, a later pick-up never costs more.
"""

from __future__ import annotations

import pytest

from common import build_city, format_table, probe_requests, warm_up_fleet


def skyline_sizes(vehicles: int, warm_requests: int, seed: int = 29):
    city = build_city(rows=12, columns=12, vehicles=vehicles, seed=seed)
    if warm_requests:
        warm_up_fleet(city, requests=warm_requests, seed=seed)
    matcher = city.matcher("single_side")
    counts = []
    for request in probe_requests(city, count=30, seed=seed + 1):
        options = matcher.match(request)
        counts.append(len(options))
        # skyline structure: sorted by pick-up, prices must be non-increasing
        ordered = sorted(options, key=lambda o: o.pickup_distance)
        for earlier, later in zip(ordered, ordered[1:]):
            assert later.price <= earlier.price + 1e-9
    return counts


@pytest.mark.parametrize("load", ["idle_fleet", "busy_fleet"])
def test_e4_skyline_size(benchmark, load):
    warm = 0 if load == "idle_fleet" else 20

    def run():
        return skyline_sizes(vehicles=40, warm_requests=warm)

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["average_options"] = round(sum(counts) / len(counts), 2)
    benchmark.extra_info["max_options"] = max(counts)
    benchmark.extra_info["share_with_choice"] = round(
        sum(1 for c in counts if c >= 2) / len(counts), 2
    )


def test_e4_busier_fleets_offer_more_choice():
    idle = skyline_sizes(vehicles=40, warm_requests=0)
    busy = skyline_sizes(vehicles=40, warm_requests=20)
    # An idle fleet of empty vehicles collapses to a single cheapest-and-fastest
    # offer; trade-offs (and hence >= 2 options) appear once schedules exist.
    assert max(busy) >= 2
    assert sum(busy) / len(busy) >= sum(idle) / len(idle)
    rows = [
        ("idle fleet", f"{sum(idle) / len(idle):.2f}", max(idle)),
        ("busy fleet", f"{sum(busy) / len(busy):.2f}", max(busy)),
    ]
    print("\nE4 -- non-dominated options per request\n"
          + format_table(("fleet state", "avg options", "max options"), rows))
