"""E16 -- parallel shard dispatch: the worker pool versus in-process batching.

The batched pipeline (E12) already shards the fleet and merges per-shard
skylines by dominance; this experiment measures the next rung: fanning the
per-shard collect/verify stage out to a pool of worker processes
(:class:`~repro.core.parallel.ParallelDispatchPool`).  The engine's immutable
arrays (CSR adjacency, contraction-hierarchy planes, the batch's prefetched
tree plane) are published once into POSIX shared memory and re-wrapped
zero-copy by every worker, so the only per-turn traffic is pickled request
batches out and skyline options back; merge and greedy commit stay on the
parent, which keeps the outcomes byte-identical to the sequential loop at
every worker count.

Byte-identity is asserted unconditionally for every (backend, workers)
combination.  The wall-clock speedup assertion is gated on the runner
actually having cores to parallelise across (``os.cpu_count() >= 4``): on a
single-core CI container the pool still works -- that is the identity leg --
but four workers time-slicing one core cannot beat one process, and a
speedup assert there would only measure the scheduler.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.dispatcher import OptionPolicy
from repro.core.parallel import parallel_available

from common import HAVE_SCIPY, record_result
from bench_e12_batch_dispatch import _build_dispatcher, _burst, _outcome_key

#: Worker counts of the sweep; 1 is the in-process baseline the speedup
#: (and byte-identity) is measured against.
WORKER_COUNTS = (1, 2, 4)
#: Shards the fleet is partitioned into; four shards give a four-worker pool
#: one shard each, and smaller pools own several shards round-robin.
SHARDS = 4
#: Backends whose immutable arrays the pool publishes into shared memory.
BACKENDS = ("csr", "ch", "table")

pytestmark = pytest.mark.skipif(
    not parallel_available(),
    reason="parallel dispatch needs numpy + POSIX shared memory + spawn",
)


def _run_batched(routing: str, workers: int, requests):
    """One batched measurement; returns (outcome keys, wall, batch stats)."""
    dispatcher = _build_dispatcher(routing=routing)
    started = time.perf_counter()
    try:
        outcomes = dispatcher.dispatch_batch(
            requests, policy=OptionPolicy.CHEAPEST, shards=SHARDS, workers=workers
        )
    finally:
        dispatcher.close()
    wall = time.perf_counter() - started
    return [_outcome_key(o) for o in outcomes], wall, dispatcher.last_batch_statistics


@pytest.mark.parametrize("routing", BACKENDS)
def test_e16_parallel_dispatch_is_byte_identical(routing):
    """Every worker count returns exactly the sequential loop's outcomes."""
    if routing in ("csr", "table") and not HAVE_SCIPY:
        pytest.skip("the csr/table backends need scipy")
    sequential = _build_dispatcher(routing=routing)
    requests = _burst(sequential)
    started = time.perf_counter()
    loop_outcomes = sequential.dispatch_sequential(requests, policy=OptionPolicy.CHEAPEST)
    sequential_seconds = time.perf_counter() - started
    loop_keys = [_outcome_key(o) for o in loop_outcomes]

    walls = {}
    for workers in WORKER_COUNTS:
        keys, wall, stats = _run_batched(routing, workers, requests)
        # The pool only redistributes the collect stage; a single float of
        # drift in any skyline, choice or commit order is a bug.
        assert keys == loop_keys, f"workers={workers} diverged from sequential"
        assert stats is not None
        expected_pool = workers if workers > 1 else 0
        assert stats.parallel_workers == expected_pool
        walls[workers] = wall
        record_result(
            "E16",
            wall,
            routing_backend=routing,
            matcher="single_side",
            shards=SHARDS,
            workers=workers,
            requests=len(requests),
            parallel_workers=stats.parallel_workers,
            ipc_seconds=round(stats.ipc_seconds, 6),
            sequential_seconds=round(sequential_seconds, 6),
            speedup_vs_workers1=(
                round(walls[1] / wall, 2) if workers != 1 and wall > 0 else None
            ),
        )

    # The speedup bar only binds where there are cores to parallelise
    # across; on a 1-core container four workers time-slice one CPU and the
    # measurement is of the scheduler, not of the pool.  Byte-identity above
    # ran either way.
    cores = os.cpu_count() or 1
    if cores >= 4:
        speedup = walls[1] / walls[4]
        assert speedup >= 1.8, (
            f"four workers ({walls[4]:.3f}s) should be >=1.8x faster than the "
            f"in-process batch ({walls[1]:.3f}s) on a {cores}-core runner; "
            f"got {speedup:.2f}x"
        )


def test_e16_summary_table(capsys):
    """Print the worker sweep on the csr backend (run with -s to see it)."""
    from common import format_table

    if not HAVE_SCIPY:
        pytest.skip("the csr backend needs scipy")
    sequential = _build_dispatcher(routing="csr")
    requests = _burst(sequential)
    rows = []
    baseline = None
    for workers in WORKER_COUNTS:
        _, wall, stats = _run_batched("csr", workers, requests)
        if baseline is None:
            baseline = wall
        rows.append(
            (
                workers,
                f"{wall * 1000:.1f}",
                f"{baseline / wall:.2f}x",
                f"{stats.ipc_seconds * 1000:.1f}",
            )
        )
    table = format_table(("workers", "batched [ms]", "vs workers=1", "ipc [ms]"), rows)
    print("\nE16 -- parallel shard dispatch (csr backend, 4 shards)\n" + table)
