"""E9 -- comparison with the SHAREK-style baseline (Section 1).

The paper rejects SHAREK [4] for two reasons: its one-group-per-vehicle model
"limits the usability and scalability of the ridesharing system", and its
Euclidean-distance pruning "is inefficient".  The benchmark quantifies both at
reproduction scale:

* option coverage -- on a busy fleet, SHAREK can only offer empty vehicles,
  so riders see fewer (and never cheaper) options than PTRider's skyline;
* pruning efficiency -- for the same probe requests, Euclidean screening
  leaves more vehicles to verify than the grid's road-network lower bounds.
"""

from __future__ import annotations

import pytest

from common import build_city, format_table, probe_requests, warm_up_fleet


def build_busy_city(seed: int = 67):
    city = build_city(rows=12, columns=12, vehicles=50, grid_rows=6, grid_columns=6, seed=seed)
    warm_up_fleet(city, requests=20, seed=seed)
    return city


@pytest.mark.parametrize("matcher_name", ["sharek", "single_side"])
def test_e9_latency(benchmark, matcher_name):
    city = build_busy_city()
    matcher = city.matcher(matcher_name)
    requests = probe_requests(city, count=20, seed=71)
    benchmark(lambda: [matcher.match(request) for request in requests])
    stats = matcher.statistics
    benchmark.extra_info["vehicles_evaluated_per_request"] = round(
        stats.vehicles_evaluated / max(1, stats.requests_answered), 2
    )
    benchmark.extra_info["options_per_request"] = round(
        stats.options_returned / max(1, stats.requests_answered), 2
    )


def test_e9_option_coverage_and_prices():
    city = build_busy_city()
    sharek = city.matcher("sharek")
    ptrider = city.matcher("single_side")
    requests = probe_requests(city, count=25, seed=73)

    sharek_options = 0
    ptrider_options = 0
    price_improvements = 0
    comparable = 0
    for request in requests:
        sharek_result = sharek.match(request)
        ptrider_result = ptrider.match(request)
        sharek_options += len(sharek_result)
        ptrider_options += len(ptrider_result)
        if sharek_result and ptrider_result:
            comparable += 1
            if min(o.price for o in ptrider_result) < min(o.price for o in sharek_result) - 1e-9:
                price_improvements += 1

    # PTRider offers at least as many options and often strictly cheaper ones,
    # because it can pool riders into already-moving vehicles.
    assert ptrider_options >= sharek_options
    assert comparable > 0
    assert price_improvements >= comparable * 0.3

    rows = [
        ("SHAREK-style", sharek_options, "--"),
        ("PTRider", ptrider_options, f"{price_improvements}/{comparable} cheaper"),
    ]
    print("\nE9 -- options offered over 25 requests (50 vehicles, 20 busy)\n"
          + format_table(("system", "total options", "best-price wins"), rows))


def test_e9_grid_pruning_beats_euclidean_pruning():
    city = build_busy_city()
    sharek = city.matcher("sharek")
    single = city.matcher("single_side")
    requests = probe_requests(city, count=25, seed=79)
    for request in requests:
        sharek.match(request)
        single.match(request)
    # Fewer exact verifications per request with road-network lower bounds,
    # measured against the empty-vehicle pool both systems screen.
    sharek_rate = sharek.statistics.vehicles_evaluated / sharek.statistics.vehicles_considered
    single_rate = single.statistics.vehicles_evaluated / single.statistics.vehicles_considered
    assert single_rate <= sharek_rate + 0.05
