"""E2 -- real-time response under a high request/update workload (Section 4).

Paper claim: PTRider answers every ridesharing request "in real time" while
17,000 taxis move and a day of 432,327 trips is replayed -- the website panel
shows a low average response time.  At reproduction scale (a pure-Python
substrate, a laptop-sized city) the claim becomes: per-request matching
latency stays in the low milliseconds while the whole simulation (movement,
pick-ups, drop-offs, index updates) runs, and latency does not blow up as the
fleet gets busier during the run.
"""

from __future__ import annotations

import time

import pytest

from repro.roadnet.generators import grid_network

from common import (
    HAVE_SCIPY,
    build_city,
    format_table,
    option_points,
    probe_requests,
    record_result,
    routing_layer_seconds,
    run_trip_simulation,
    warm_up_fleet,
)


@pytest.mark.parametrize("matcher_name", ["single_side", "dual_side"])
def test_e2_day_fraction_simulation(benchmark, matcher_name):
    def run():
        city = build_city(rows=12, columns=12, vehicles=40, seed=17)
        return run_trip_simulation(city, trips=120, duration=240.0, matcher_name=matcher_name)

    started = time.perf_counter()
    report = benchmark.pedantic(run, rounds=1, iterations=1)
    wall = time.perf_counter() - started
    stats = report.statistics

    # Real-time at this scale: well under 100 ms per request on any laptop.
    assert stats.average_response_time < 0.1
    assert stats.total_requests == 120
    assert stats.match_rate > 0.5

    benchmark.extra_info["average_response_ms"] = round(stats.average_response_time * 1000.0, 3)
    benchmark.extra_info["p95_response_ms"] = round(
        sorted(stats.response_times)[int(0.95 * (len(stats.response_times) - 1))] * 1000.0, 3
    )
    benchmark.extra_info["match_rate"] = round(stats.match_rate, 3)
    benchmark.extra_info["sharing_rate"] = round(stats.sharing_rate, 3)
    record_result(
        "E2",
        wall,
        vehicles_evaluated=report.matcher_statistics["vehicles_evaluated"],
        matcher=matcher_name,
        average_response_ms=round(stats.average_response_time * 1000.0, 3),
    )


def test_e2_routing_backends_agree_and_csr_is_faster():
    """The CSR backend returns the exact same skylines, and its routing layer
    is at least twice as fast as the dict backend on cold trees."""
    skylines = {}
    for backend in ("dict", "csr"):
        city = build_city(rows=12, columns=12, vehicles=40, seed=17, routing=backend)
        warm_up_fleet(city, requests=10, seed=23)
        matcher = city.matcher("single_side")
        skylines[backend] = [
            option_points(matcher.match(request))
            for request in probe_requests(city, count=20, seed=29)
        ]
    assert skylines["dict"] == skylines["csr"]

    if not HAVE_SCIPY:
        pytest.skip("pure-Python CSR fallback is correct but not 2x faster")
    # Time on a larger network than the match city: per-call overheads even
    # out and the ratio is stable against runner noise.
    network = grid_network(20, 20, weight_jitter=0.3, seed=17)
    sources = network.vertices()[::5][:40]
    dict_seconds = routing_layer_seconds(network, "dict", sources)
    csr_seconds = routing_layer_seconds(network, "csr", sources)
    record_result("E2", csr_seconds, routing_backend="csr",
                  speedup_vs_dict=round(dict_seconds / csr_seconds, 2))
    assert csr_seconds * 2.0 <= dict_seconds


def test_e2_summary_table(capsys):
    """Print the website-panel style summary (run with -s to see it)."""
    rows = []
    for matcher_name in ("single_side", "dual_side", "naive"):
        city = build_city(rows=12, columns=12, vehicles=40, seed=17)
        report = run_trip_simulation(city, trips=80, duration=160.0, matcher_name=matcher_name)
        stats = report.statistics
        rows.append(
            (
                matcher_name,
                f"{stats.average_response_time * 1000:.2f}",
                f"{stats.match_rate:.2f}",
                f"{stats.sharing_rate:.2f}",
                f"{stats.average_option_count:.2f}",
            )
        )
    table = format_table(
        ("matcher", "avg response [ms]", "match rate", "sharing rate", "avg options"), rows
    )
    print("\nE2 -- real-time response (website statistics panel)\n" + table)
    # the optimized matchers must not be slower than the naive baseline
    naive_ms = float(rows[2][1])
    assert float(rows[0][1]) <= naive_ms * 1.5
