"""E2 -- real-time response under a high request/update workload (Section 4).

Paper claim: PTRider answers every ridesharing request "in real time" while
17,000 taxis move and a day of 432,327 trips is replayed -- the website panel
shows a low average response time.  At reproduction scale (a pure-Python
substrate, a laptop-sized city) the claim becomes: per-request matching
latency stays in the low milliseconds while the whole simulation (movement,
pick-ups, drop-offs, index updates) runs, and latency does not blow up as the
fleet gets busier during the run.
"""

from __future__ import annotations

import pytest

from common import build_city, format_table, run_trip_simulation


@pytest.mark.parametrize("matcher_name", ["single_side", "dual_side"])
def test_e2_day_fraction_simulation(benchmark, matcher_name):
    def run():
        city = build_city(rows=12, columns=12, vehicles=40, seed=17)
        return run_trip_simulation(city, trips=120, duration=240.0, matcher_name=matcher_name)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = report.statistics

    # Real-time at this scale: well under 100 ms per request on any laptop.
    assert stats.average_response_time < 0.1
    assert stats.total_requests == 120
    assert stats.match_rate > 0.5

    benchmark.extra_info["average_response_ms"] = round(stats.average_response_time * 1000.0, 3)
    benchmark.extra_info["p95_response_ms"] = round(
        sorted(stats.response_times)[int(0.95 * (len(stats.response_times) - 1))] * 1000.0, 3
    )
    benchmark.extra_info["match_rate"] = round(stats.match_rate, 3)
    benchmark.extra_info["sharing_rate"] = round(stats.sharing_rate, 3)


def test_e2_summary_table(capsys):
    """Print the website-panel style summary (run with -s to see it)."""
    rows = []
    for matcher_name in ("single_side", "dual_side", "naive"):
        city = build_city(rows=12, columns=12, vehicles=40, seed=17)
        report = run_trip_simulation(city, trips=80, duration=160.0, matcher_name=matcher_name)
        stats = report.statistics
        rows.append(
            (
                matcher_name,
                f"{stats.average_response_time * 1000:.2f}",
                f"{stats.match_rate:.2f}",
                f"{stats.sharing_rate:.2f}",
                f"{stats.average_option_count:.2f}",
            )
        )
    table = format_table(
        ("matcher", "avg response [ms]", "match rate", "sharing rate", "avg options"), rows
    )
    print("\nE2 -- real-time response (website statistics panel)\n" + table)
    # the optimized matchers must not be slower than the naive baseline
    naive_ms = float(rows[2][1])
    assert float(rows[0][1]) <= naive_ms * 1.5
