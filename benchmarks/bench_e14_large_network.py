"""E14 -- contraction-hierarchy routing on a network too large for the table.

The all-pairs table backend (E12/E13's fastest) refuses networks beyond
``SystemConfig.table_max_vertices`` because the n^2 matrix stops being a
sensible trade; ROADMAP's answer for that regime is a contraction-hierarchy
backend plus persisted compiled artifacts.  This experiment exercises both on
a ~20k-vertex arterial grid (140 x 140 with fast arterial rows/columns every
7 lines -- the highway structure any real road network, and in particular an
OSM extract, exhibits):

* the table backend **refuses** the network, recommending ``ch``;
* cold point-to-point queries: the CSR backend answers each one with a full
  per-query Dijkstra (one `scipy` C call over all ~20k vertices), the CH
  backend with a bidirectional upward search settling a few hundred --
  asserted >= 5x faster wall-clock *and* bit-identical in every answer;
* a burst dispatched through the batch pipeline on ``csr`` vs ``ch``
  produces **byte-identical** outcomes (same options, same prices, same
  winners) -- the backend is a pure accelerator;
* a warm restart from the artifact cache loads the hierarchy instead of
  re-contracting: load time is asserted < 10% of build time (measured:
  < 1%), with both durations recorded in the bench JSON.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.core.dispatcher import OptionPolicy
from repro.errors import ConfigurationError
from repro.roadnet.generators import arterial_grid_network
from repro.roadnet.routing import make_engine
from repro.sim.workload import random_requests

from common import HAVE_SCIPY, build_city, record_result

pytestmark = pytest.mark.skipif(
    not HAVE_SCIPY, reason="E14 compares against the SciPy-backed CSR Dijkstra"
)

ROWS = 140
COLUMNS = 140
ARTERIAL_EVERY = 7
SEED = 23
#: distinct-source query pairs of the cold point-query phase
QUERY_PAIRS = 80
#: best-of repetitions per backend (damps scheduler noise on CI runners)
QUERY_REPEATS = 3
VEHICLES = 24
REQUESTS = 30


@pytest.fixture(scope="module")
def network():
    """The ~20k-vertex arterial city (19600 vertices, shared per module)."""
    return arterial_grid_network(
        ROWS, COLUMNS, weight_jitter=0.3, arterial_every=ARTERIAL_EVERY, seed=SEED
    )


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    """One artifact-cache directory shared by every engine of the module."""
    return str(tmp_path_factory.mktemp("routing-artifacts"))


@pytest.fixture(scope="module")
def ch_engine(network, cache_dir):
    """The CH engine, built once (cold) and persisted into the cache."""
    return make_engine(network, "ch", cache_dir=cache_dir)


def _query_pairs(network, count=QUERY_PAIRS):
    """Random far-flung pairs with *distinct* sources (keeps CSR cold)."""
    rng = random.Random(7)
    vertices = network.vertices()
    pairs, seen = [], set()
    while len(pairs) < count:
        u, v = rng.choice(vertices), rng.choice(vertices)
        if u != v and u not in seen:
            seen.add(u)
            pairs.append((u, v))
    return pairs


def _timed_queries(engine, pairs):
    """Best-of-N wall time answering ``pairs``, plus the answers."""
    best = float("inf")
    values = None
    for _ in range(QUERY_REPEATS):
        started = time.perf_counter()
        values = [engine.distance(u, v) for u, v in pairs]
        best = min(best, time.perf_counter() - started)
    return best, values


def test_e14_table_refuses_and_recommends_ch(network):
    """Above its vertex cap the table backend must fail fast, naming ch."""
    with pytest.raises(ConfigurationError) as excinfo:
        make_engine(network, "table")
    assert "ch" in str(excinfo.value)
    assert "19600" in str(excinfo.value)


def test_e14_ch_point_query_speedup(network, ch_engine):
    """CH >= 5x faster than per-query CSR Dijkstra, bit-identical answers."""
    pairs = _query_pairs(network)
    # max_cached_sources=1 + distinct sources: every CSR answer is a cold
    # full-network Dijkstra, the exact cost the matchers pay per uncached
    # schedule leg.
    csr = make_engine(network, "csr", max_cached_sources=1)
    csr_wall, csr_values = _timed_queries(csr, pairs)
    ch_wall, ch_values = _timed_queries(ch_engine, pairs)
    assert ch_values == csr_values  # bit-identical, not approximately equal
    assert ch_engine.stats.bidirectional_runs >= len(pairs)
    speedup = csr_wall / ch_wall
    record_result(
        "E14",
        csr_wall,
        routing_backend="csr",
        phase="point_queries",
        queries=len(pairs),
        ms_per_query=round(csr_wall / len(pairs) * 1000, 3),
        vertices=network.vertex_count,
    )
    record_result(
        "E14",
        ch_wall,
        routing_backend="ch",
        phase="point_queries",
        queries=len(pairs),
        ms_per_query=round(ch_wall / len(pairs) * 1000, 3),
        vertices=network.vertex_count,
        shortcuts=ch_engine.hierarchy.shortcut_count,
        speedup_vs_csr=round(speedup, 2),
    )
    # Measured 5.2-6.1x on the dev machine (the committed BENCH_results.json
    # record carries the exact figure).  The hard gate sits at 3x so a CI
    # runner whose scipy build or CPU contention shifts the ratio by a few
    # tens of percent cannot fail the build without a real regression --
    # same margin philosophy as E12's 1.5x gate against a measured 2.6-3.3x.
    assert speedup >= 3.0, (
        f"CH point queries only {speedup:.1f}x faster than per-query CSR "
        f"Dijkstra (csr {csr_wall:.3f}s, ch {ch_wall:.3f}s)"
    )


def test_e14_dispatch_outcomes_byte_identical(network, cache_dir):
    """The same burst dispatched on csr and ch commits identical rides."""

    def run(backend):
        city = build_city(
            vehicles=VEHICLES,
            grid_rows=10,
            grid_columns=10,
            seed=SEED,
            routing=backend,
            cache_dir=cache_dir,
            network=network,
        )
        requests = random_requests(
            city.network,
            REQUESTS,
            city.config.max_waiting,
            city.config.service_constraint,
            seed=11,
        )
        dispatcher = city.dispatcher("single_side")
        started = time.perf_counter()
        outcomes = dispatcher.dispatch_batch(requests, policy=OptionPolicy.CHEAPEST)
        wall = time.perf_counter() - started
        keys = [
            (o.request.request_id, tuple(o.options), o.chosen) for o in outcomes
        ]
        return keys, wall

    csr_keys, csr_wall = run("csr")
    ch_keys, ch_wall = run("ch")
    assert ch_keys == csr_keys
    for backend, wall in (("csr", csr_wall), ("ch", ch_wall)):
        record_result(
            "E14",
            wall,
            routing_backend=backend,
            phase="dispatch",
            requests=REQUESTS,
            vehicles=VEHICLES,
            vertices=network.vertex_count,
        )


def test_e14_artifact_cache_warm_restart(network, cache_dir, ch_engine):
    """A restart loads the persisted hierarchy instead of re-contracting."""
    build_seconds = ch_engine.stats.build_seconds
    assert build_seconds > 0.0, "the module's first CH engine should have built"
    started = time.perf_counter()
    warm = make_engine(network, "ch", cache_dir=cache_dir)
    restart_wall = time.perf_counter() - started
    assert warm.stats.build_seconds == 0.0, "warm restart must not rebuild"
    assert warm.stats.load_seconds > 0.0
    assert warm.stats.load_seconds < 0.1 * build_seconds, (
        f"cache load {warm.stats.load_seconds:.3f}s is not < 10% of "
        f"build {build_seconds:.3f}s"
    )
    # The loaded hierarchy answers exactly like the built one.
    pairs = _query_pairs(network, count=20)
    assert [warm.distance(u, v) for u, v in pairs] == [
        ch_engine.distance(u, v) for u, v in pairs
    ]
    record_result(
        "E14",
        restart_wall,
        routing_backend="ch",
        phase="warm_restart",
        build_seconds=round(build_seconds, 6),
        load_seconds=round(warm.stats.load_seconds, 6),
        load_over_build=round(warm.stats.load_seconds / build_seconds, 6),
        vertices=network.vertex_count,
    )
