#!/usr/bin/env python3
"""Fail CI when benchmark wall times regress against the committed record.

``benchmarks/`` writes every session's machine-readable records to
``BENCH_results.json`` (committed at the repo root, archived per-commit as a
CI artifact).  This script compares a freshly produced set of records against
the committed previous record and exits non-zero when a monitored
experiment's best wall time regressed by more than the threshold
(default 25%), so a PR that slows the hot path fails its workflow instead of
silently shipping.

Per ``(experiment, routing backend, phase, tree provider, workers)`` an
aggregate of the wall times on each side is compared -- the records of one
experiment mix entry kinds (whole-simulation runs, routing-layer probes) and
repetitions; separating backends keeps a regression in one backend from
hiding behind a faster record of another, and separating phases, tree
providers and worker counts (records without the field form their own
unnamed group for that dimension) keeps e.g. a point-query regression from
hiding behind a faster artifact-cache disk read, a PHAST-plane regression
behind the faster SciPy plane, or an in-process dispatch regression behind
a faster multi-worker run, in the same experiment.  Records at ``workers``
absent *or 1* share the unnamed group: one worker means the pool was
bypassed and the measurement is the same in-process pipeline the historical
records timed, so the committed baseline stays comparable.  ``--skip-phases`` drops named phases from the *comparison*
(never from archiving) for measurements too noise-dominated to gate on,
such as warm-restart disk reads.  ``--rate-phases`` names phases whose
``wall_seconds`` field actually holds a *rate* (E17's serving throughput in
req/s): for those, higher is better, so the regression ratio is inverted --
a throughput drop beyond the threshold fails just like a wall-time rise
does elsewhere.  Two aggregates are offered:

* ``min`` (default) -- "how fast can this experiment go on this machine";
  the most noise-tolerant choice when each side holds a single run.
* ``median`` -- the right choice when the fresh side holds *repeated runs*
  of the same experiment (CI reruns E12 three times): the median absorbs a
  single slow outlier that would poison a mean and a single lucky run that
  would let ``min`` mask a real regression.

Pairs present on only one side are skipped, so the committed record and the
CI runs don't have to cover identical backend matrices.

Caveat: the committed baseline was produced on whatever machine last
regenerated ``BENCH_results.json``; across very different hardware the
threshold flags machine deltas, not code deltas.  Regenerate the committed
record when that happens (the CI artifact archive keeps the trajectory).

With ``--archive`` the fresh records are additionally appended to a
trajectory file (default ``BENCH_trajectory.jsonl``): one JSON line per
``(experiment, routing backend)`` aggregate, stamped with the current commit,
so the perf history over *many* commits is readable directly instead of only
pairwise against the last committed baseline.  Every experiment present in
the fresh files is archived (not just the monitored ones), and archiving
happens regardless of the regression verdict -- a regression is exactly what
the trajectory should show.

Usage::

    python scripts/check_bench_trend.py \
        --baseline bench-records/baseline.json \
        --fresh bench-records/e2-dict.json bench-records/e8-csr.json \
        --experiments E2 E8 E12 [--threshold 0.25] [--aggregate median] \
        [--archive] [--trajectory BENCH_trajectory.jsonl] [--commit SHA]
"""

from __future__ import annotations

import argparse
import json
import statistics
import subprocess
import sys
from pathlib import Path
from typing import Dict, Iterable, List


def load_records(paths: Iterable[Path]) -> List[dict]:
    """Concatenate the record lists of several ``BENCH_results.json`` files."""
    records: List[dict] = []
    for path in paths:
        payload = json.loads(Path(path).read_text())
        if not isinstance(payload, list):
            raise SystemExit(f"{path}: expected a JSON list of records")
        records.extend(payload)
    return records


def aggregate_wall_seconds(
    records: List[dict],
    experiments: Iterable[str],
    aggregate: str = "min",
    skip_phases: Iterable[str] = (),
) -> Dict[tuple, float]:
    """Aggregated ``wall_seconds`` per (experiment, backend, phase, provider).

    Records without a ``phase`` / ``tree_provider`` field share one unnamed
    ("") group for that dimension, so experiments that never adopted the
    fields keep their historical keys.  Both dimensions exist for the same
    reason: an ablation's slow side must never hide behind its faster
    sibling in a shared min/median (E14's point queries vs its disk reads,
    E15's PHAST planes vs its SciPy planes).  Phases named in
    ``skip_phases`` are dropped entirely.
    """
    walls: Dict[tuple, List[float]] = {}
    wanted = set(experiments)
    skipped = set(skip_phases)
    for record in records:
        experiment = record.get("experiment")
        wall = record.get("wall_seconds")
        if experiment not in wanted or not isinstance(wall, (int, float)):
            continue
        phase = str(record.get("phase") or "")
        if phase in skipped:
            continue
        provider = str(record.get("tree_provider") or "")
        workers = record.get("workers")
        # workers absent or 1 → the in-process pipeline → the historical
        # unnamed group; only real pool runs form their own aggregates.
        workers_group = "" if workers in (None, "", 0, 1) else str(workers)
        key = (
            experiment, record.get("routing_backend", "dict"), phase, provider,
            workers_group,
        )
        walls.setdefault(key, []).append(float(wall))
    reduce = min if aggregate == "min" else statistics.median
    return {key: reduce(values) for key, values in walls.items()}


def describe(key: tuple) -> str:
    """Human label of an aggregate key: ``E16 [csr w4]``, ``E15 [ch:planes@phast]``."""
    experiment, backend, phase, provider, workers = key
    suffix = f":{phase}" if phase else ""
    if provider:
        suffix += f"@{provider}"
    if workers:
        suffix += f" w{workers}"
    return f"{experiment} [{backend}{suffix}]"


def current_commit() -> str:
    """The HEAD commit id, or "unknown" outside a git checkout."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True,
        ).stdout.strip() or "unknown"
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def archive_records(
    records: List[dict], trajectory: Path, commit: str, aggregate: str
) -> int:
    """Append per-(experiment, backend) aggregates as JSON lines; returns count."""
    experiments = sorted(
        {
            record["experiment"]
            for record in records
            if isinstance(record.get("experiment"), str)
        }
    )
    walls = aggregate_wall_seconds(records, experiments, aggregate)
    trajectory.parent.mkdir(parents=True, exist_ok=True)
    with trajectory.open("a") as handle:
        for (experiment, backend, phase, provider, workers), wall in sorted(
            walls.items()
        ):
            row = {
                "commit": commit,
                "experiment": experiment,
                "routing_backend": backend,
                "wall_seconds": round(wall, 6),
                "aggregate": aggregate,
            }
            if phase:
                row["phase"] = phase
            if provider:
                row["tree_provider"] = provider
            if workers:
                row["workers"] = int(workers)
            handle.write(json.dumps(row, sort_keys=True) + "\n")
    return len(walls)


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", type=Path, required=True,
        help="the committed previous BENCH_results.json",
    )
    parser.add_argument(
        "--fresh", type=Path, nargs="+", required=True,
        help="freshly produced record file(s)",
    )
    parser.add_argument(
        "--experiments", nargs="+", default=["E2", "E8", "E12"],
        help="experiments whose wall time is monitored (default: E2 E8 E12)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="maximum tolerated relative regression (default: 0.25 = 25%%)",
    )
    parser.add_argument(
        "--aggregate", choices=("min", "median"), default="min",
        help="per-(experiment, backend, phase) summary: 'min' for single "
        "runs, 'median' when the fresh side holds repeated runs (default: min)",
    )
    parser.add_argument(
        "--skip-phases", nargs="*", default=[],
        help="record phases excluded from the regression comparison (still "
        "archived); e.g. warm_restart, whose wall is a page-cache lottery",
    )
    parser.add_argument(
        "--rate-phases", nargs="*", default=[],
        help="record phases whose wall_seconds holds a *rate* (e.g. req/s), "
        "where higher is better: the regression ratio is inverted "
        "(baseline/fresh) so a throughput drop trips the threshold; "
        "within-key reduction still uses --aggregate on both sides",
    )
    parser.add_argument(
        "--archive", action="store_true",
        help="append the fresh aggregates (every experiment present, all "
        "backends) to the trajectory file, stamped with the current commit",
    )
    parser.add_argument(
        "--trajectory", type=Path, default=Path("BENCH_trajectory.jsonl"),
        help="trajectory file --archive appends to (default: "
        "BENCH_trajectory.jsonl)",
    )
    parser.add_argument(
        "--commit", default=None,
        help="commit id recorded in archived lines (default: git HEAD)",
    )
    args = parser.parse_args(argv)

    fresh_records = load_records(args.fresh)
    baseline = aggregate_wall_seconds(
        load_records([args.baseline]), args.experiments, args.aggregate,
        args.skip_phases,
    )
    fresh = aggregate_wall_seconds(
        fresh_records, args.experiments, args.aggregate, args.skip_phases
    )

    if args.archive:
        commit = args.commit or current_commit()
        archived = archive_records(
            fresh_records, args.trajectory, commit, args.aggregate
        )
        print(f"archived {archived} aggregate(s) to {args.trajectory} @ {commit}")

    compared = sorted(set(baseline) & set(fresh))
    for key in sorted(set(baseline) ^ set(fresh)):
        side = "fresh" if key in baseline else "committed baseline"
        print(f"{describe(key)}: no {side} record -- skipped")

    failures = []
    rate_phases = set(args.rate_phases)
    for key in compared:
        before, after = baseline[key], fresh[key]
        if key[2] in rate_phases:
            # the recorded value is a rate: a drop (after < before) is the
            # regression, so the ratio is inverted relative to wall times
            ratio = before / after if after > 0 else float("inf")
            unit = "/s"
        else:
            ratio = after / before if before > 0 else float("inf")
            unit = "s"
        verdict = "OK" if ratio <= 1.0 + args.threshold else "REGRESSED"
        print(
            f"{describe(key)}: baseline {before:.4f}{unit} -> fresh "
            f"{after:.4f}{unit} ({ratio:.2f}x) {verdict}"
        )
        if verdict == "REGRESSED":
            failures.append(describe(key))

    if not compared:
        print("no overlapping (experiment, backend) records -- nothing compared")
    if failures:
        print(
            f"wall-time regression over {args.threshold:.0%} in: {', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
