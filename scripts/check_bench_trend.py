#!/usr/bin/env python3
"""Fail CI when benchmark wall times regress against the committed record.

``benchmarks/`` writes every session's machine-readable records to
``BENCH_results.json`` (committed at the repo root, archived per-commit as a
CI artifact).  This script compares a freshly produced set of records against
the committed previous record and exits non-zero when a monitored
experiment's best wall time regressed by more than the threshold
(default 25%), so a PR that slows the hot path fails its workflow instead of
silently shipping.

Per ``(experiment, routing backend)`` pair the *minimum* wall time on each
side is compared -- the records of one experiment mix entry kinds
(whole-simulation runs, routing-layer probes) and repetitions, and
min-vs-min is the most noise-tolerant summary of "how fast can this
experiment go on this machine"; separating backends keeps a regression in
one backend from hiding behind a faster record of another.  Pairs present on
only one side are skipped, so the committed record and the CI runs don't
have to cover identical backend matrices.

Caveat: the committed baseline was produced on whatever machine last
regenerated ``BENCH_results.json``; across very different hardware the
threshold flags machine deltas, not code deltas.  Regenerate the committed
record when that happens (the CI artifact archive keeps the trajectory).

Usage::

    python scripts/check_bench_trend.py \
        --baseline bench-records/baseline.json \
        --fresh bench-records/e2-dict.json bench-records/e8-csr.json \
        --experiments E2 E8 [--threshold 0.25]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, Iterable, List


def load_records(paths: Iterable[Path]) -> List[dict]:
    """Concatenate the record lists of several ``BENCH_results.json`` files."""
    records: List[dict] = []
    for path in paths:
        payload = json.loads(Path(path).read_text())
        if not isinstance(payload, list):
            raise SystemExit(f"{path}: expected a JSON list of records")
        records.extend(payload)
    return records


def best_wall_seconds(
    records: List[dict], experiments: Iterable[str]
) -> Dict[tuple, float]:
    """Minimum ``wall_seconds`` per monitored (experiment, routing backend)."""
    best: Dict[tuple, float] = {}
    wanted = set(experiments)
    for record in records:
        experiment = record.get("experiment")
        wall = record.get("wall_seconds")
        if experiment not in wanted or not isinstance(wall, (int, float)):
            continue
        key = (experiment, record.get("routing_backend", "dict"))
        if key not in best or wall < best[key]:
            best[key] = float(wall)
    return best


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", type=Path, required=True,
        help="the committed previous BENCH_results.json",
    )
    parser.add_argument(
        "--fresh", type=Path, nargs="+", required=True,
        help="freshly produced record file(s)",
    )
    parser.add_argument(
        "--experiments", nargs="+", default=["E2", "E8"],
        help="experiments whose wall time is monitored (default: E2 E8)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="maximum tolerated relative regression (default: 0.25 = 25%%)",
    )
    args = parser.parse_args(argv)

    baseline = best_wall_seconds(load_records([args.baseline]), args.experiments)
    fresh = best_wall_seconds(load_records(args.fresh), args.experiments)

    compared = sorted(set(baseline) & set(fresh))
    for key in sorted(set(baseline) ^ set(fresh)):
        side = "fresh" if key in baseline else "committed baseline"
        print(f"{key[0]} [{key[1]}]: no {side} record -- skipped")

    failures = []
    for key in compared:
        experiment, backend = key
        before, after = baseline[key], fresh[key]
        ratio = after / before if before > 0 else float("inf")
        verdict = "OK" if ratio <= 1.0 + args.threshold else "REGRESSED"
        print(
            f"{experiment} [{backend}]: baseline {before:.4f}s -> fresh {after:.4f}s "
            f"({ratio:.2f}x) {verdict}"
        )
        if verdict == "REGRESSED":
            failures.append(f"{experiment} [{backend}]")

    if not compared:
        print("no overlapping (experiment, backend) records -- nothing compared")
    if failures:
        print(
            f"wall-time regression over {args.threshold:.0%} in: {', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
