#!/usr/bin/env python3
"""Render ``BENCH_trajectory.jsonl`` into a wall-time report (markdown + SVG).

``check_bench_trend.py --archive`` appends one JSON line per
``(experiment, routing backend)`` aggregate to the trajectory file at every
monitored run, stamped with the commit that produced it.  That file is the
perf history of the repository -- but a pile of JSON lines is unreadable in
a CI artifact listing.  This script turns it into:

* ``trajectory.md`` -- one section per experiment: a commit x backend table
  of wall seconds (commits in file order, i.e. chronological), each
  experiment's fastest cell marked, plus a delta column against the first
  recorded commit;
* ``<experiment>.svg`` -- a dependency-free line chart per experiment (one
  polyline per backend over the commit sequence), linked from the markdown.

Everything is stdlib-only, so the script runs in any CI leg -- including the
no-accelerator one -- and the SVGs are committed-artifact friendly (pure
text, deterministic output for identical input).

Usage::

    python scripts/plot_bench_trajectory.py \
        [--trajectory BENCH_trajectory.jsonl] [--output-dir bench-report] \
        [--experiments E2 E12 ...]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

#: Chart geometry (pixels).
WIDTH, HEIGHT = 720, 300
MARGIN_LEFT, MARGIN_RIGHT, MARGIN_TOP, MARGIN_BOTTOM = 64, 16, 28, 52

#: One fixed colour per backend so every chart reads the same way.
BACKEND_COLOURS = {
    "dict": "#888888",
    "csr": "#1f77b4",
    "csr+alt": "#17becf",
    "table": "#2ca02c",
    "ch": "#d62728",
}
FALLBACK_COLOURS = ("#9467bd", "#8c564b", "#e377c2", "#bcbd22", "#ff7f0e")


def load_trajectory(path: Path) -> List[dict]:
    """Parse the JSONL trajectory; malformed lines fail loudly with context."""
    rows: List[dict] = []
    for line_number, line in enumerate(path.read_text().splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except ValueError as error:
            raise SystemExit(f"{path}:{line_number}: not JSON: {error}")
        if not isinstance(row, dict):
            raise SystemExit(f"{path}:{line_number}: expected a JSON object")
        rows.append(row)
    return rows


def organise(
    rows: List[dict], experiments: Optional[List[str]] = None
) -> Dict[str, Tuple[List[str], Dict[str, Dict[str, float]]]]:
    """Group rows per experiment.

    Returns ``{experiment: (commits_in_order, {series: {commit: wall}})}``
    where a series is the routing backend, suffixed ``:phase`` and/or
    ``@tree_provider`` and/or `` wN`` (dispatch workers) for rows that carry
    those fields (each ablation arm charts as its own line).  A commit
    appearing multiple times for the same series keeps its latest value (a
    re-run of the same commit supersedes).
    """
    result: Dict[str, Tuple[List[str], Dict[str, Dict[str, float]]]] = {}
    wanted = set(experiments) if experiments else None
    for row in rows:
        experiment = row.get("experiment")
        commit = row.get("commit")
        backend = row.get("routing_backend", "dict")
        phase = row.get("phase")
        if isinstance(phase, str) and phase:
            backend = f"{backend}:{phase}"
        provider = row.get("tree_provider")
        if isinstance(provider, str) and provider:
            backend = f"{backend}@{provider}"
        workers = row.get("workers")
        if isinstance(workers, int) and workers > 1:
            backend = f"{backend} w{workers}"
        wall = row.get("wall_seconds")
        if not isinstance(experiment, str) or not isinstance(commit, str):
            continue
        if not isinstance(wall, (int, float)):
            continue
        if wanted is not None and experiment not in wanted:
            continue
        commits, series = result.setdefault(experiment, ([], {}))
        if commit not in commits:
            commits.append(commit)
        series.setdefault(backend, {})[commit] = float(wall)
    return result


def _colour(backend: str, position: int) -> str:
    return BACKEND_COLOURS.get(
        backend, FALLBACK_COLOURS[position % len(FALLBACK_COLOURS)]
    )


def render_svg(
    experiment: str, commits: List[str], series: Dict[str, Dict[str, float]]
) -> str:
    """One line chart: wall seconds (y) over the commit sequence (x)."""
    walls = [
        wall for by_commit in series.values() for wall in by_commit.values()
    ]
    top = max(walls) * 1.08 if walls else 1.0
    plot_w = WIDTH - MARGIN_LEFT - MARGIN_RIGHT
    plot_h = HEIGHT - MARGIN_TOP - MARGIN_BOTTOM

    def x_of(index: int) -> float:
        if len(commits) == 1:
            return MARGIN_LEFT + plot_w / 2
        return MARGIN_LEFT + plot_w * index / (len(commits) - 1)

    def y_of(wall: float) -> float:
        return MARGIN_TOP + plot_h * (1 - wall / top)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" '
        f'height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" '
        f'font-family="monospace" font-size="11">',
        f'<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>',
        f'<text x="{MARGIN_LEFT}" y="16" font-size="13" fill="#333">'
        f"{experiment} wall seconds (lower is better)</text>",
    ]
    # y grid: 4 lines
    for step in range(5):
        value = top * step / 4
        y = y_of(value)
        parts.append(
            f'<line x1="{MARGIN_LEFT}" y1="{y:.1f}" x2="{WIDTH - MARGIN_RIGHT}" '
            f'y2="{y:.1f}" stroke="#dddddd" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{MARGIN_LEFT - 6}" y="{y + 4:.1f}" text-anchor="end" '
            f'fill="#666">{value:.3g}</text>'
        )
    # x labels: commits, thinned to at most 8
    stride = max(1, (len(commits) + 7) // 8)
    for index, commit in enumerate(commits):
        if index % stride and index != len(commits) - 1:
            continue
        x = x_of(index)
        parts.append(
            f'<text x="{x:.1f}" y="{HEIGHT - MARGIN_BOTTOM + 16}" '
            f'text-anchor="middle" fill="#666">{commit[:12]}</text>'
        )
    # series
    for position, backend in enumerate(sorted(series)):
        by_commit = series[backend]
        colour = _colour(backend, position)
        points = [
            (x_of(index), y_of(by_commit[commit]))
            for index, commit in enumerate(commits)
            if commit in by_commit
        ]
        if len(points) > 1:
            path = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
            parts.append(
                f'<polyline points="{path}" fill="none" stroke="{colour}" '
                f'stroke-width="2"/>'
            )
        for x, y in points:
            parts.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="3" fill="{colour}"/>'
            )
        legend_y = MARGIN_TOP + 14 * position
        legend_x = WIDTH - MARGIN_RIGHT - 170  # room for backend:phase names
        parts.append(
            f'<rect x="{legend_x}" y="{legend_y - 8}" width="10" height="10" '
            f'fill="{colour}"/>'
        )
        parts.append(
            f'<text x="{legend_x + 14}" y="{legend_y}" fill="#333">{backend}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def render_markdown(
    organised: Dict[str, Tuple[List[str], Dict[str, Dict[str, float]]]],
    svg_names: Dict[str, str],
) -> str:
    """The per-experiment wall-time tables, linking each experiment's chart."""
    lines = [
        "# Benchmark wall-time trajectory",
        "",
        "Per-commit aggregates from `BENCH_trajectory.jsonl` "
        "(appended by `check_bench_trend.py --archive`; commits in file "
        "order, oldest first).  `*` marks each backend's fastest commit.",
        "",
    ]
    for experiment in sorted(organised):
        commits, series = organised[experiment]
        backends = sorted(series)
        lines.append(f"## {experiment}")
        lines.append("")
        if experiment in svg_names:
            lines.append(f"![{experiment} trend]({svg_names[experiment]})")
            lines.append("")
        lines.append("| commit | " + " | ".join(backends) + " |")
        lines.append("|---" * (len(backends) + 1) + "|")
        fastest = {
            backend: min(series[backend].values()) for backend in backends
        }
        for commit in commits:
            cells = []
            for backend in backends:
                wall = series[backend].get(commit)
                if wall is None:
                    cells.append("--")
                else:
                    marker = " \\*" if wall == fastest[backend] else ""
                    cells.append(f"{wall:.4f}s{marker}")
            lines.append(f"| `{commit}` | " + " | ".join(cells) + " |")
        # delta of the newest commit against the oldest with data, per backend
        deltas = []
        for backend in backends:
            with_data = [c for c in commits if c in series[backend]]
            if len(with_data) >= 2:
                first, last = series[backend][with_data[0]], series[backend][with_data[-1]]
                if first > 0:
                    deltas.append(f"{backend} {last / first:.2f}x")
        if deltas:
            lines.append("")
            lines.append(
                "Newest vs oldest recorded commit: " + ", ".join(deltas) + "."
            )
        lines.append("")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trajectory", type=Path, default=Path("BENCH_trajectory.jsonl"),
        help="trajectory file to render (default: BENCH_trajectory.jsonl)",
    )
    parser.add_argument(
        "--output-dir", type=Path, default=Path("bench-report"),
        help="directory the report is written into (default: bench-report)",
    )
    parser.add_argument(
        "--experiments", nargs="*", default=None,
        help="restrict the report to these experiments (default: all present)",
    )
    args = parser.parse_args(argv)

    if not args.trajectory.exists():
        print(f"{args.trajectory}: no trajectory file -- nothing to render")
        return 0
    organised = organise(load_trajectory(args.trajectory), args.experiments)
    if not organised:
        print(f"{args.trajectory}: no matching records -- nothing to render")
        return 0
    args.output_dir.mkdir(parents=True, exist_ok=True)
    svg_names: Dict[str, str] = {}
    for experiment, (commits, series) in sorted(organised.items()):
        name = f"{experiment}.svg"
        (args.output_dir / name).write_text(
            render_svg(experiment, commits, series)
        )
        svg_names[experiment] = name
    report = args.output_dir / "trajectory.md"
    report.write_text(render_markdown(organised, svg_names))
    print(
        f"wrote {report} and {len(svg_names)} chart(s) covering "
        f"{', '.join(sorted(organised))}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
