"""A SHAREK-style baseline (Cao et al., MDM 2015).

The paper contrasts PTRider with SHAREK on two points (Section 1):

1. **Problem definition** -- SHAREK assumes every vehicle has a fixed start
   and destination and serves only *one* group of riders per trip.  The
   baseline therefore only offers options from vehicles that currently carry
   at most one rider group, and never mixes two groups in the same vehicle.
2. **Pruning** -- SHAREK prunes candidate vehicles with Euclidean distances
   rather than road-network lower bounds.  The baseline screens vehicles with
   a Euclidean bound on the pick-up distance (admissible whenever edge
   weights are at least the Euclidean length of the edge, which holds for
   every generator in :mod:`repro.roadnet.generators`), then verifies the
   survivors exactly.

Experiment E9 measures how much more verification work the Euclidean pruning
needs compared to PTRider's grid lower bounds, and how the one-group-per-trip
rule reduces the options riders see.
"""

from __future__ import annotations

from typing import List

from repro.core.context import MatchContext
from repro.core.matcher import Matcher
from repro.model.options import RideOption, Skyline
from repro.vehicles.vehicle import Vehicle

__all__ = ["SharekStyleMatcher"]


class SharekStyleMatcher(Matcher):
    """Price-and-time options with Euclidean pruning and one group per trip."""

    name = "sharek"

    def _collect_options(self, context: MatchContext, fleet) -> List[RideOption]:
        request, direct = context.request, context.direct
        network = self._grid.network
        max_pickup = self._config.max_pickup_distance
        skyline = Skyline()

        candidates: List[Vehicle] = [
            vehicle for vehicle in fleet.vehicles() if self._eligible(vehicle)
        ]
        # SHAREK sorts candidates by Euclidean proximity to the pick-up point.
        candidates.sort(key=lambda vehicle: network.euclidean_distance(vehicle.location, request.start))
        for vehicle in candidates:
            self.statistics.vehicles_considered += 1
            euclidean_lb = (
                network.euclidean_distance(vehicle.location, request.start) + vehicle.offset
            )
            if max_pickup is not None and euclidean_lb > max_pickup + 1e-9:
                self.statistics.vehicles_pruned += 1
                continue
            price_lb = self._price_model.price(request.riders, 0.0, direct)
            if skyline.would_be_dominated(euclidean_lb, price_lb):
                self.statistics.vehicles_pruned += 1
                continue
            skyline.extend(self._verify_vehicle(vehicle, context, use_bound_rejection=False))
        return skyline.options()

    @staticmethod
    def _eligible(vehicle: Vehicle) -> bool:
        """SHAREK vehicles serve one rider group per trip: only idle vehicles qualify."""
        return vehicle.is_empty
