"""Comparison systems PTRider is evaluated against.

* :mod:`repro.baselines.nearest` -- a single-option dispatcher in the spirit
  of lyft / uberPOOL as characterised in the paper's introduction: it returns
  the one assignment minimising the system-wide extra travel distance;
* :mod:`repro.baselines.sharek` -- a SHAREK-style matcher (Cao et al., MDM
  2015): price-and-time options, but Euclidean-distance pruning and only one
  rider group per vehicle trip;
* :mod:`repro.baselines.tshare` -- a T-Share-style matcher (Ma et al., ICDE
  2013): grid-based search that returns the single earliest-pick-up feasible
  vehicle.

All baselines implement the common :class:`repro.core.matcher.Matcher`
interface so they can be swapped into the dispatcher, the simulation engine
and the benchmarks without further glue.
"""

from repro.baselines.nearest import NearestVehicleMatcher
from repro.baselines.sharek import SharekStyleMatcher
from repro.baselines.tshare import TShareStyleMatcher

__all__ = ["NearestVehicleMatcher", "SharekStyleMatcher", "TShareStyleMatcher"]
