"""A single-option, system-optimal baseline.

The paper's introduction characterises existing real-time ridesharing systems
(lyft, uberPOOL, T-Share, Noah, Xhare-a-Ride) as returning *one* option per
request, chosen to minimise the system-wide vehicle travel time or distance.
:class:`NearestVehicleMatcher` reproduces that behaviour on top of the same
substrate as PTRider: every vehicle is evaluated with the same feasibility
rules, but only the single assignment with the smallest **added distance**
(the system-wide objective) is returned to the rider.

Experiment E11 compares the rider-facing outcomes (price paid, pick-up time)
of this baseline against PTRider's skyline of options.
"""

from __future__ import annotations

from typing import List

from repro.core.context import MatchContext
from repro.core.matcher import Matcher
from repro.model.options import RideOption

__all__ = ["NearestVehicleMatcher"]


class NearestVehicleMatcher(Matcher):
    """Return at most one option: the feasible insertion with minimal added distance."""

    name = "nearest"
    # A single system-optimal option is not a dominance skyline, so per-shard
    # results cannot be merged losslessly; the pipeline always matches this
    # baseline against the whole fleet.
    supports_sharding = False

    def _collect_options(self, context: MatchContext, fleet) -> List[RideOption]:
        best: RideOption | None = None
        for vehicle in fleet.vehicles():
            self.statistics.vehicles_considered += 1
            for option in self._verify_vehicle(vehicle, context):
                if best is None or (option.added_distance, option.pickup_distance) < (
                    best.added_distance,
                    best.pickup_distance,
                ):
                    best = option
        return [best] if best is not None else []
