"""A T-Share-style baseline (Ma et al., ICDE 2013).

T-Share answers each request with a single taxi found by searching grid cells
outwards from the pick-up point and choosing the first taxi that can serve
the request within its time windows -- i.e. it optimises the pick-up time and
offers no price/time trade-off.  The baseline reproduces that search shape on
PTRider's substrate: cells are expanded in ascending lower-bound order from
the start cell, vehicles are verified with the shared feasibility rules, and
the single option with the earliest pick-up is returned.

The search stops as soon as further cells provably cannot beat the best
pick-up found so far, which is the analogue of T-Share's temporal grid
filtering.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.core.context import MatchContext
from repro.core.matcher import Matcher
from repro.model.options import RideOption

__all__ = ["TShareStyleMatcher"]


class TShareStyleMatcher(Matcher):
    """Return the single feasible option with the earliest pick-up."""

    name = "tshare"
    # The earliest-pickup single option is not a dominance skyline, so
    # per-shard results cannot be merged losslessly; the pipeline always
    # matches this baseline against the whole fleet.
    supports_sharding = False

    def _collect_options(self, context: MatchContext, fleet) -> List[RideOption]:
        request = context.request
        start_cell = self._grid.cell_of_vertex(request.start).cell_id
        start_min = self._grid.vertex_min(request.start)
        max_pickup = self._config.max_pickup_distance
        best: Optional[RideOption] = None
        seen: Set[str] = set()

        for cell_bound, cell in self._grid.expand_from(start_cell):
            self.statistics.cells_visited += 1
            cell_pickup_lb = 0.0 if cell.cell_id == start_cell else cell_bound + start_min
            if best is not None and cell_pickup_lb >= best.pickup_distance:
                break
            if max_pickup is not None and cell_pickup_lb > max_pickup:
                break
            vehicles = fleet.empty_vehicles_in_cell(cell.cell_id)
            vehicles += fleet.nonempty_vehicles_in_cell(cell.cell_id)
            for vehicle in vehicles:
                if vehicle.vehicle_id in seen:
                    continue
                seen.add(vehicle.vehicle_id)
                self.statistics.vehicles_considered += 1
                pickup_lb = self._pickup_lower_bound(vehicle, context)
                if best is not None and pickup_lb >= best.pickup_distance:
                    self.statistics.vehicles_pruned += 1
                    continue
                if max_pickup is not None and pickup_lb > max_pickup + 1e-9:
                    self.statistics.vehicles_pruned += 1
                    continue
                for option in self._verify_vehicle(vehicle, context):
                    if best is None or option.pickup_distance < best.pickup_distance:
                        best = option
        return [best] if best is not None else []
