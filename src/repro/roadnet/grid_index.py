"""The grid index over the road network (Section 3.2.1 of the paper).

PTRider partitions the road network with a uniform grid.  Following the
paper, every grid cell maintains

1. a *border vertex* list -- vertices incident to an edge that leaves the
   cell;
2. a *vertex list* -- every vertex located in the cell, annotated with its
   shortest-path distance to each border vertex of the cell and with
   ``v.min`` (the minimum of those distances);
3. a *grid cell list* -- the other cells sorted in ascending order of the
   lower-bound distance from them to this cell;
4. an *empty vehicle list* -- vehicles currently in the cell with no assigned
   requests;
5. a *non-empty vehicle list* -- vehicles whose kinetic tree contains an edge
   that intersects the cell.

In addition, a matrix of lower-bound distances between every pair of grid
cells is maintained (realised lazily here, one multi-source Dijkstra per
row, so small networks stay cheap and large ones only pay for the rows the
matchers actually touch).

The crucial property the matchers rely on is **admissibility**: for any two
vertices ``u`` in cell ``g_i`` and ``v`` in cell ``g_j``,

    dist(u, v)  >=  u.min + lb(g_i, g_j) + v.min        (g_i != g_j)

because any path between them must cross a border vertex of ``g_i`` and a
border vertex of ``g_j``.  The property is verified by the property-based
tests in ``tests/property/test_grid_bounds.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import GridIndexError, InvalidNetworkError, VertexNotFoundError
from repro.roadnet.geometry import BoundingBox
from repro.roadnet.graph import RoadNetwork, VertexId
from repro.roadnet.shortest_path import INFINITY, dijkstra_all, multi_source_dijkstra

__all__ = ["CellId", "GridCell", "GridIndex"]

#: Grid cells are addressed by their (row, column) pair.
CellId = Tuple[int, int]


@dataclass
class GridCell:
    """One cell of the grid partition, with the five lists of Fig. 1(b)."""

    cell_id: CellId
    box: BoundingBox
    vertices: List[VertexId] = field(default_factory=list)
    border_vertices: List[VertexId] = field(default_factory=list)
    #: vehicles with an empty request set currently located in this cell
    empty_vehicles: Set[str] = field(default_factory=set)
    #: vehicles with a non-empty request set whose schedule intersects this cell
    nonempty_vehicles: Set[str] = field(default_factory=set)

    @property
    def row(self) -> int:
        """Row of the cell in the grid."""
        return self.cell_id[0]

    @property
    def column(self) -> int:
        """Column of the cell in the grid."""
        return self.cell_id[1]

    @property
    def is_empty(self) -> bool:
        """``True`` when no road-network vertex lies in the cell."""
        return not self.vertices

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"GridCell(id={self.cell_id}, vertices={len(self.vertices)}, "
            f"borders={len(self.border_vertices)}, empty_vehicles={len(self.empty_vehicles)}, "
            f"nonempty_vehicles={len(self.nonempty_vehicles)})"
        )


class GridIndex:
    """Uniform grid partition of a road network with lower-bound distances.

    Args:
        network: the road network to index.  Every vertex must carry a planar
            coordinate.
        rows: number of grid rows.
        columns: number of grid columns.
        precompute: when ``True`` the full cell-pair lower-bound matrix and
            every per-vertex border-distance annotation are computed eagerly;
            when ``False`` (the default) rows of the matrix are computed on
            first use, which is what a city-scale deployment would do.

    Raises:
        InvalidNetworkError: if the network has no coordinates.
        GridIndexError: if ``rows`` or ``columns`` is not positive.
    """

    def __init__(
        self,
        network: RoadNetwork,
        rows: int,
        columns: int,
        precompute: bool = False,
    ) -> None:
        if rows <= 0 or columns <= 0:
            raise GridIndexError(f"grid dimensions must be positive, got {rows}x{columns}")
        network.validate(require_coordinates=True)
        self._network = network
        self._rows = rows
        self._columns = columns
        self._box = network.bounding_box()
        # Guard against degenerate (zero-width) boxes: give them a tiny extent
        # so every vertex still maps to a valid cell.
        width = self._box.width or 1.0
        height = self._box.height or 1.0
        self._cell_width = width / columns
        self._cell_height = height / rows

        self._cells: Dict[CellId, GridCell] = {}
        self._vertex_cell: Dict[VertexId, CellId] = {}
        self._vertex_min: Dict[VertexId, float] = {}
        self._border_distances: Dict[VertexId, Dict[VertexId, float]] = {}
        self._lower_bound_rows: Dict[CellId, Dict[CellId, float]] = {}
        self._sorted_cell_lists: Dict[CellId, List[Tuple[float, CellId]]] = {}
        # Memo of finished vertex-pair bounds.  The insertion pruning asks the
        # same schedule-leg pairs hundreds of times per dispatch batch (the
        # legs are fleet state, not request state), and each computation costs
        # several dict/tuple operations; one flat lookup answers repeats.
        self._pair_bounds: Dict[Tuple[VertexId, VertexId], float] = {}

        self._build_cells()
        self._identify_border_vertices()
        self._compute_vertex_minimums()
        if precompute:
            for cell_id in self._cells:
                self._lower_bound_row(cell_id)
                self.cells_in_lower_bound_order(cell_id)
            self._compute_detailed_border_distances()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _build_cells(self) -> None:
        for row in range(self._rows):
            for column in range(self._columns):
                min_x = self._box.min_x + column * self._cell_width
                min_y = self._box.min_y + row * self._cell_height
                box = BoundingBox(
                    min_x,
                    min_y,
                    min_x + self._cell_width,
                    min_y + self._cell_height,
                )
                cell_id = (row, column)
                self._cells[cell_id] = GridCell(cell_id=cell_id, box=box)
        for vertex in self._network.vertices():
            cell_id = self._locate(self._network.coordinate(vertex).as_tuple())
            self._vertex_cell[vertex] = cell_id
            self._cells[cell_id].vertices.append(vertex)

    def _identify_border_vertices(self) -> None:
        for edge in self._network.edges():
            cell_u = self._vertex_cell[edge.u]
            cell_v = self._vertex_cell[edge.v]
            if cell_u != cell_v:
                # The edge belongs to more than one grid cell, so both of its
                # endpoints are border vertices (Section 3.2.1).
                self._add_border(edge.u, cell_u)
                self._add_border(edge.v, cell_v)

    def _add_border(self, vertex: VertexId, cell_id: CellId) -> None:
        cell = self._cells[cell_id]
        if vertex not in cell.border_vertices:
            cell.border_vertices.append(vertex)

    def _compute_vertex_minimums(self) -> None:
        """Compute ``v.min`` for every vertex via one multi-source Dijkstra per cell."""
        for cell in self._cells.values():
            if not cell.vertices:
                continue
            if not cell.border_vertices:
                # A cell with no border vertex is either the only populated
                # cell or holds an isolated component; its vertices can never
                # be pruned through the cell bound, so v.min is zero.
                for vertex in cell.vertices:
                    self._vertex_min[vertex] = 0.0
                continue
            distances = multi_source_dijkstra(self._network, cell.border_vertices)
            for vertex in cell.vertices:
                self._vertex_min[vertex] = distances.get(vertex, 0.0)

    def _compute_detailed_border_distances(self) -> None:
        """Annotate every vertex with its distance to each border vertex of its cell."""
        for cell in self._cells.values():
            if not cell.vertices or not cell.border_vertices:
                continue
            for border in cell.border_vertices:
                tree = dijkstra_all(self._network, border)
                for vertex in cell.vertices:
                    if vertex in tree:
                        self._border_distances.setdefault(vertex, {})[border] = tree[vertex]

    # ------------------------------------------------------------------
    # basic geometry / lookup
    # ------------------------------------------------------------------
    @property
    def network(self) -> RoadNetwork:
        """The indexed road network."""
        return self._network

    @property
    def rows(self) -> int:
        """Number of grid rows."""
        return self._rows

    @property
    def columns(self) -> int:
        """Number of grid columns."""
        return self._columns

    @property
    def cell_count(self) -> int:
        """Total number of grid cells (``rows * columns``)."""
        return self._rows * self._columns

    def _locate(self, point: Tuple[float, float]) -> CellId:
        column = int((point[0] - self._box.min_x) / self._cell_width)
        row = int((point[1] - self._box.min_y) / self._cell_height)
        column = min(max(column, 0), self._columns - 1)
        row = min(max(row, 0), self._rows - 1)
        return (row, column)

    def cell_of_point(self, point: Tuple[float, float]) -> GridCell:
        """Return the grid cell containing an arbitrary planar point."""
        return self._cells[self._locate(point)]

    def cell_of_vertex(self, vertex: VertexId) -> GridCell:
        """Return the grid cell containing ``vertex``.

        Raises:
            VertexNotFoundError: if the vertex is not indexed.
        """
        try:
            return self._cells[self._vertex_cell[vertex]]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def cell(self, cell_id: CellId) -> GridCell:
        """Return the cell with identifier ``cell_id``.

        Raises:
            GridIndexError: if the identifier is outside the grid.
        """
        try:
            return self._cells[cell_id]
        except KeyError:
            raise GridIndexError(f"cell {cell_id} is outside the {self._rows}x{self._columns} grid") from None

    def cells(self) -> Iterator[GridCell]:
        """Iterate over every grid cell (row-major order)."""
        return iter(self._cells.values())

    def populated_cells(self) -> List[GridCell]:
        """Return only the cells that contain at least one vertex."""
        return [cell for cell in self._cells.values() if cell.vertices]

    def vertex_min(self, vertex: VertexId) -> float:
        """Return ``v.min``: the distance from ``vertex`` to its cell's nearest border vertex."""
        try:
            return self._vertex_min[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def border_distances(self, vertex: VertexId) -> Dict[VertexId, float]:
        """Return the per-border-vertex distances stored for ``vertex``.

        Only populated when the index was built with ``precompute=True``
        (Fig. 1(b) keeps the full annotation; the lazily built index keeps
        only ``v.min`` which is all the pruning bounds need).
        """
        return dict(self._border_distances.get(vertex, {}))

    # ------------------------------------------------------------------
    # lower bounds
    # ------------------------------------------------------------------
    def _lower_bound_row(self, cell_id: CellId) -> Dict[CellId, float]:
        """Return (computing if necessary) lower bounds from ``cell_id`` to every cell."""
        row = self._lower_bound_rows.get(cell_id)
        if row is not None:
            return row
        cell = self._cells[cell_id]
        row = {}
        if cell.border_vertices:
            distances = multi_source_dijkstra(self._network, cell.border_vertices)
            for other_id, other in self._cells.items():
                if other_id == cell_id:
                    row[other_id] = 0.0
                    continue
                best = INFINITY
                for border in other.border_vertices:
                    candidate = distances.get(border, INFINITY)
                    if candidate < best:
                        best = candidate
                row[other_id] = best
        else:
            # No border vertices: the cell is not connected to any other cell
            # through the road network (or it is the only populated cell).
            for other_id in self._cells:
                row[other_id] = 0.0 if other_id == cell_id else INFINITY
        self._lower_bound_rows[cell_id] = row
        return row

    def lower_bound_between_cells(self, cell_a: CellId, cell_b: CellId) -> float:
        """Return the lower-bound distance between two cells.

        The bound is the minimum shortest-path distance between any border
        vertex of ``cell_a`` and any border vertex of ``cell_b`` (0 for the
        same cell, ``inf`` when the cells are not connected).
        """
        if cell_a == cell_b:
            return 0.0
        if cell_a not in self._cells or cell_b not in self._cells:
            missing = cell_a if cell_a not in self._cells else cell_b
            raise GridIndexError(f"cell {missing} is outside the {self._rows}x{self._columns} grid")
        return self._lower_bound_row(cell_a).get(cell_b, INFINITY)

    #: Memo entries are tiny (two ints -> float) but the pair space is O(V^2);
    #: past this size the memo is simply dropped and rebuilt from the hot set.
    _MAX_PAIR_BOUNDS = 1 << 20

    def distance_lower_bound(self, u: VertexId, v: VertexId) -> float:
        """Return an admissible lower bound on ``dist(u, v)``.

        The bound is ``0`` when both vertices share a cell, otherwise
        ``u.min + lb(cell(u), cell(v)) + v.min``.  Finished values are
        memoised under the order-normalised pair (the cell-row choice is
        rooted at the smaller vertex, so the answer is the same whichever
        direction a leg is asked in).
        """
        if u == v:
            return 0.0
        key = (u, v) if u <= v else (v, u)
        value = self._pair_bounds.get(key)
        if value is not None:
            return value
        a, b = key
        cell_a = self._vertex_cell.get(a)
        cell_b = self._vertex_cell.get(b)
        if cell_a is None:
            raise VertexNotFoundError(u if u == a else v)
        if cell_b is None:
            raise VertexNotFoundError(u if u == b else v)
        if cell_a == cell_b:
            value = 0.0
        else:
            cell_bound = self.lower_bound_between_cells(cell_a, cell_b)
            if math.isinf(cell_bound):
                value = cell_bound
            else:
                value = self._vertex_min[a] + cell_bound + self._vertex_min[b]
        if len(self._pair_bounds) >= self._MAX_PAIR_BOUNDS:
            self._pair_bounds.clear()
        self._pair_bounds[key] = value
        return value

    def cells_in_lower_bound_order(self, cell_id: CellId) -> List[Tuple[float, CellId]]:
        """Return every cell sorted by ascending lower-bound distance from ``cell_id``.

        This is the *grid cell list* of Fig. 1(b); the single-side and
        dual-side searches expand cells in exactly this order.
        """
        cached = self._sorted_cell_lists.get(cell_id)
        if cached is not None:
            return cached
        row = self._lower_bound_row(cell_id)
        ordered = sorted(
            ((bound, other_id) for other_id, bound in row.items()),
            key=lambda item: (item[0], item[1]),
        )
        self._sorted_cell_lists[cell_id] = ordered
        return ordered

    def expand_from(self, cell_id: CellId) -> Iterator[Tuple[float, GridCell]]:
        """Yield ``(lower_bound, cell)`` pairs in ascending lower-bound order.

        Unreachable cells (infinite lower bound) are skipped.
        """
        for bound, other_id in self.cells_in_lower_bound_order(cell_id):
            if math.isinf(bound):
                continue
            yield bound, self._cells[other_id]

    # ------------------------------------------------------------------
    # vehicle bookkeeping (used by repro.vehicles.fleet)
    # ------------------------------------------------------------------
    def register_empty_vehicle(self, vehicle_id: str, vertex: VertexId) -> CellId:
        """Place an empty vehicle in the cell of ``vertex`` and return that cell id."""
        cell = self.cell_of_vertex(vertex)
        cell.empty_vehicles.add(vehicle_id)
        return cell.cell_id

    def unregister_empty_vehicle(self, vehicle_id: str, cell_id: CellId) -> None:
        """Remove an empty vehicle from ``cell_id`` (no-op when absent)."""
        self.cell(cell_id).empty_vehicles.discard(vehicle_id)

    def register_nonempty_vehicle(self, vehicle_id: str, cell_ids: Iterable[CellId]) -> None:
        """Add a non-empty vehicle to every cell its schedule intersects."""
        for cell_id in cell_ids:
            self.cell(cell_id).nonempty_vehicles.add(vehicle_id)

    def unregister_nonempty_vehicle(self, vehicle_id: str, cell_ids: Iterable[CellId]) -> None:
        """Remove a non-empty vehicle from the given cells (no-op when absent)."""
        for cell_id in cell_ids:
            self.cell(cell_id).nonempty_vehicles.discard(vehicle_id)

    def cells_on_path(self, path: Sequence[VertexId]) -> Set[CellId]:
        """Return the ids of every cell containing a vertex of ``path``.

        The paper registers a kinetic-tree edge with every cell its shortest
        path intersects; callers therefore pass the expanded vertex sequence
        of the path, not just its endpoints.
        """
        cells: Set[CellId] = set()
        for vertex in path:
            cell_id = self._vertex_cell.get(vertex)
            if cell_id is None:
                raise VertexNotFoundError(vertex)
            cells.add(cell_id)
        return cells

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        """Return basic statistics about the index (used by the admin view)."""
        populated = self.populated_cells()
        border_total = sum(len(cell.border_vertices) for cell in populated)
        return {
            "rows": float(self._rows),
            "columns": float(self._columns),
            "cells": float(self.cell_count),
            "populated_cells": float(len(populated)),
            "border_vertices": float(border_total),
            "vertices": float(self._network.vertex_count),
            "edges": float(self._network.edge_count),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"GridIndex(rows={self._rows}, columns={self._columns}, vertices={self._network.vertex_count})"
