"""The pluggable routing engine behind every distance and path query.

Every price and pick-up time in PTRider derives from shortest-path distances
(Section 2.1 of the paper), so the matcher's latency is dominated by how fast
those queries are answered.  This module introduces a seam between *what* the
matchers ask (point-to-point distances, request-rooted distance trees, full
paths) and *how* the answer is computed:

* :class:`DictDijkstraEngine` -- the reference backend; a thin wrapper around
  the memoising :class:`~repro.roadnet.shortest_path.DistanceOracle`, which
  runs Dijkstra over the road network's dict-of-dicts adjacency.
* :class:`CSREngine` -- compiles the :class:`~repro.roadnet.graph.RoadNetwork`
  into flat CSR adjacency arrays (``indptr`` / ``indices`` / ``weights``) and
  answers single-source queries with an array-backed Dijkstra over integer
  vertex indices.  When SciPy is importable the tree computation runs in C
  via :func:`scipy.sparse.csgraph.dijkstra`; otherwise a pure-Python
  int-indexed heap Dijkstra over the same arrays is used.
* :class:`ALTIndex` -- an optional landmark (ALT) lower-bound index: for a set
  of landmarks ``L`` the triangle inequality gives the admissible bound
  ``dist(u, v) >= |dist(L, u) - dist(L, v)|``.  The matchers combine it with
  the grid-index cell bounds, taking the maximum of the two.

Backends are selected by name ("dict", "csr", "csr+alt") through
:func:`make_engine`; :class:`~repro.core.config.SystemConfig` carries the
chosen name so the service, the CLI, the simulation engine and the benchmark
harness can ablate the routing layer without touching the matchers.

Every engine exposes the same interface the matchers used to expect from the
distance oracle (``distance`` / ``distances_from`` / ``path`` /
``invalidate`` / ``stats``), so engines and oracles are interchangeable at
every call site.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, DisconnectedError, VertexNotFoundError
from repro.roadnet.graph import RoadNetwork, VertexId
from repro.roadnet.shortest_path import INFINITY, DistanceOracle, PathResult

try:  # SciPy accelerates the CSR backend but is not required for correctness.
    import numpy as _np
    from scipy.sparse import csr_array as _csr_array
    from scipy.sparse.csgraph import dijkstra as _csgraph_dijkstra
except ImportError:  # pragma: no cover - exercised via the fallback tests
    _np = None
    _csr_array = None
    _csgraph_dijkstra = None

__all__ = [
    "ROUTING_BACKENDS",
    "EngineStats",
    "RoutingEngine",
    "DictDijkstraEngine",
    "CSRGraph",
    "ALTIndex",
    "CSREngine",
    "make_engine",
    "ensure_engine",
]

#: Backend names accepted by :func:`make_engine` and ``SystemConfig``.
ROUTING_BACKENDS = ("dict", "csr", "csr+alt")

#: Default number of ALT landmarks (a handful is enough on city-sized nets).
DEFAULT_LANDMARKS = 8


@dataclass
class EngineStats:
    """Work counters every routing engine accumulates.

    The field names match ``DistanceOracle.stats`` so reports and tests can
    treat oracles and engines uniformly.
    """

    queries: int = 0
    cache_hits: int = 0
    dijkstra_runs: int = 0


class RoutingEngine(ABC):
    """Answers every distance / path query the rest of the system issues.

    Subclasses own whatever representation of the road network they need and
    are free to cache aggressively; callers must treat returned trees as
    immutable.
    """

    #: backend name as selected through ``SystemConfig.routing_backend``
    backend: str = "abstract"

    @property
    @abstractmethod
    def network(self) -> RoadNetwork:
        """The road network queries are answered on."""

    @abstractmethod
    def distance(self, source: VertexId, target: VertexId) -> float:
        """Return ``dist(source, target)``.

        Raises:
            VertexNotFoundError: if either endpoint is unknown.
            DisconnectedError: if no path connects the endpoints.
        """

    @abstractmethod
    def distances_from(self, source: VertexId) -> Mapping[VertexId, float]:
        """Return the full single-source distance tree rooted at ``source``.

        The mapping contains every *reachable* vertex; unreachable vertices
        are absent (lookups raise ``KeyError``).
        """

    @abstractmethod
    def path(self, source: VertexId, target: VertexId) -> PathResult:
        """Return the full shortest path between two vertices."""

    @abstractmethod
    def invalidate(self) -> None:
        """Drop every cached structure (call after the network is mutated)."""

    def distance_lower_bound(self, source: VertexId, target: VertexId) -> float:
        """An admissible lower bound on ``dist(source, target)``.

        The default engine offers no bound (0.0); the ALT-equipped CSR engine
        overrides this with landmark differences.  Matchers take the maximum
        of this bound and the grid-index cell bound.
        """
        return 0.0


class DictDijkstraEngine(RoutingEngine):
    """The reference backend: dict-of-dicts Dijkstra with a memoising oracle.

    Wraps an existing :class:`DistanceOracle` (or builds one), preserving its
    caching and statistics semantics exactly.
    """

    backend = "dict"

    def __init__(
        self,
        network: Optional[RoadNetwork] = None,
        oracle: Optional[DistanceOracle] = None,
        max_cached_sources: int = 1024,
    ) -> None:
        if oracle is None:
            if network is None:
                raise ValueError("DictDijkstraEngine needs a network or an oracle")
            oracle = DistanceOracle(network, max_cached_sources=max_cached_sources)
        self._oracle = oracle

    @property
    def network(self) -> RoadNetwork:
        return self._oracle.network

    @property
    def oracle(self) -> DistanceOracle:
        """The wrapped memoising oracle."""
        return self._oracle

    @property
    def stats(self):
        """The wrapped oracle's counters (same shape as :class:`EngineStats`)."""
        return self._oracle.stats

    def distance(self, source: VertexId, target: VertexId) -> float:
        return self._oracle.distance(source, target)

    def distances_from(self, source: VertexId) -> Mapping[VertexId, float]:
        return self._oracle.distances_from(source)

    def path(self, source: VertexId, target: VertexId) -> PathResult:
        return self._oracle.path(source, target)

    def invalidate(self) -> None:
        self._oracle.invalidate()


class CSRGraph:
    """Flat CSR (compressed sparse row) adjacency of a road network.

    Vertices are mapped to dense integer indices; the neighbours of index
    ``i`` are ``indices[indptr[i]:indptr[i+1]]`` with edge weights at the same
    positions of ``weights``.  Both directions of every undirected edge are
    stored, so the arrays describe a symmetric directed graph.
    """

    __slots__ = ("vertex_ids", "index_of", "indptr", "indices", "weights", "matrix")

    def __init__(self, network: RoadNetwork) -> None:
        self.vertex_ids: List[VertexId] = network.vertices()
        self.index_of: Dict[VertexId, int] = {
            vertex: index for index, vertex in enumerate(self.vertex_ids)
        }
        indptr: List[int] = [0]
        indices: List[int] = []
        weights: List[float] = []
        index_of = self.index_of
        for vertex in self.vertex_ids:
            for neighbour, weight in network.neighbours_view(vertex).items():
                indices.append(index_of[neighbour])
                weights.append(weight)
            indptr.append(len(indices))
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        if _csr_array is not None:
            n = len(self.vertex_ids)
            self.matrix = _csr_array(
                (
                    _np.asarray(weights, dtype=_np.float64),
                    _np.asarray(indices, dtype=_np.int64),
                    _np.asarray(indptr, dtype=_np.int64),
                ),
                shape=(n, n),
            )
        else:
            self.matrix = None

    def __len__(self) -> int:
        return len(self.vertex_ids)

    def index(self, vertex: VertexId) -> int:
        """Map a vertex id to its dense index.

        Raises:
            VertexNotFoundError: if the vertex is unknown.
        """
        try:
            return self.index_of[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    # ------------------------------------------------------------------
    # single-source trees
    # ------------------------------------------------------------------
    def tree(self, source_index: int) -> List[float]:
        """Distances from ``source_index`` to every index (inf = unreachable)."""
        if self.matrix is not None:
            return _csgraph_dijkstra(self.matrix, directed=True, indices=source_index).tolist()
        return self._tree_python(source_index)[0]

    def tree_with_parents(self, source_index: int) -> Tuple[List[float], List[int]]:
        """Distances plus parent indices (-1 = root / unreachable)."""
        if self.matrix is not None:
            dist, parents = _csgraph_dijkstra(
                self.matrix, directed=True, indices=source_index, return_predecessors=True
            )
            return dist.tolist(), [p if p >= 0 else -1 for p in parents.tolist()]
        return self._tree_python(source_index)

    def _tree_python(self, source_index: int) -> Tuple[List[float], List[int]]:
        """Array-backed Dijkstra over the CSR arrays with an int-indexed heap."""
        indptr, indices, weights = self.indptr, self.indices, self.weights
        dist = [INFINITY] * len(self.vertex_ids)
        parent = [-1] * len(self.vertex_ids)
        dist[source_index] = 0.0
        heap: List[Tuple[float, int]] = [(0.0, source_index)]
        push, pop = heapq.heappush, heapq.heappop
        while heap:
            d, u = pop(heap)
            if d > dist[u]:
                continue
            for k in range(indptr[u], indptr[u + 1]):
                v = indices[k]
                nd = d + weights[k]
                if nd < dist[v]:
                    dist[v] = nd
                    parent[v] = u
                    push(heap, (nd, v))
        return dist, parent


class _TreeView(Mapping):
    """Dict-like view of a dense distance array, keyed by vertex id.

    Mirrors the mapping ``DistanceOracle.distances_from`` returns: lookups of
    unreachable (or unknown) vertices raise ``KeyError``, iteration yields
    only reachable vertices.
    """

    __slots__ = ("_graph", "_dist")

    def __init__(self, graph: CSRGraph, dist: Sequence[float]) -> None:
        self._graph = graph
        self._dist = dist

    def __getitem__(self, vertex: VertexId) -> float:
        value = self._dist[self._graph.index_of[vertex]]
        if value == INFINITY:
            raise KeyError(vertex)
        return value

    def get(self, vertex: VertexId, default=None):
        index = self._graph.index_of.get(vertex)
        if index is None:
            return default
        value = self._dist[index]
        return default if value == INFINITY else value

    def __contains__(self, vertex: object) -> bool:
        index = self._graph.index_of.get(vertex)
        return index is not None and self._dist[index] != INFINITY

    def __iter__(self) -> Iterator[VertexId]:
        dist = self._dist
        for index, vertex in enumerate(self._graph.vertex_ids):
            if dist[index] != INFINITY:
                yield vertex

    def __len__(self) -> int:
        return sum(1 for value in self._dist if value != INFINITY)


class ALTIndex:
    """A landmark (ALT) lower-bound index over a CSR graph.

    Landmarks are chosen by farthest-point sampling so they spread over the
    network; each landmark stores its full distance array.  For any vertices
    ``u, v`` and landmark ``L`` the triangle inequality gives the admissible
    bound ``dist(u, v) >= |dist(L, u) - dist(L, v)|`` (the network is
    undirected); the index returns the maximum over all landmarks.
    """

    def __init__(self, graph: CSRGraph, landmarks: int = DEFAULT_LANDMARKS) -> None:
        if landmarks <= 0:
            raise ValueError(f"landmarks must be positive, got {landmarks}")
        self._graph = graph
        self.landmark_indices: List[int] = []
        tables: List[List[float]] = []
        n = len(graph)
        if n:
            # Seed with the vertex farthest from index 0, then repeatedly take
            # the vertex farthest from the already-chosen landmark set.
            seed_tree = graph.tree(0)
            first = self._farthest(seed_tree, exclude=set())
            self.landmark_indices.append(first)
            tables.append(graph.tree(first))
            closest = list(tables[0])
            while len(self.landmark_indices) < min(landmarks, n):
                candidate = self._farthest(closest, exclude=set(self.landmark_indices))
                if candidate is None:
                    break
                self.landmark_indices.append(candidate)
                tree = graph.tree(candidate)
                tables.append(tree)
                closest = [min(a, b) for a, b in zip(closest, tree)]
        self._tables = tables
        if _np is not None and tables:
            self._matrix = _np.asarray(tables, dtype=_np.float64)
        else:
            self._matrix = None

    @staticmethod
    def _farthest(dist: Sequence[float], exclude: set) -> Optional[int]:
        best_index, best_value = None, -1.0
        for index, value in enumerate(dist):
            if value != INFINITY and value > best_value and index not in exclude:
                best_index, best_value = index, value
        return best_index

    @property
    def landmark_count(self) -> int:
        """Number of landmarks in the index."""
        return len(self.landmark_indices)

    def lower_bound_indexed(self, source_index: int, target_index: int) -> float:
        """Admissible lower bound on the distance between two dense indices."""
        if source_index == target_index:
            return 0.0
        if self._matrix is not None:
            with _np.errstate(invalid="ignore"):
                diff = _np.abs(self._matrix[:, source_index] - self._matrix[:, target_index])
            best = _np.nanmax(diff) if diff.size else _np.nan
            return 0.0 if _np.isnan(best) else float(best)
        best = 0.0
        for table in self._tables:
            a, b = table[source_index], table[target_index]
            if a == INFINITY and b == INFINITY:
                continue  # landmark sees neither vertex: no information
            if a == INFINITY or b == INFINITY:
                # The network is undirected, so a landmark reaching exactly one
                # of the two vertices proves they are disconnected.
                return INFINITY
            bound = a - b if a >= b else b - a
            if bound > best:
                best = bound
        return best


class CSREngine(RoutingEngine):
    """Array-backed routing over flat CSR adjacency, with optional ALT bounds.

    Single-source trees are computed over the CSR arrays (in C via SciPy when
    available, otherwise with the pure-Python int-indexed heap Dijkstra) and
    cached with the same FIFO policy as :class:`DistanceOracle`, including the
    symmetric source/target reuse the matchers rely on.
    """

    backend = "csr"

    def __init__(
        self,
        network: RoadNetwork,
        max_cached_sources: int = 1024,
        landmarks: int = 0,
    ) -> None:
        if max_cached_sources <= 0:
            raise ValueError("max_cached_sources must be positive")
        self._network = network
        self._max_cached_sources = max_cached_sources
        self._landmarks = landmarks
        self._graph = CSRGraph(network)
        self._trees: "OrderedDict[int, List[float]]" = OrderedDict()
        self._alt = ALTIndex(self._graph, landmarks) if landmarks > 0 else None
        if landmarks > 0:
            self.backend = "csr+alt"
        self.stats = EngineStats()

    @property
    def network(self) -> RoadNetwork:
        return self._network

    @property
    def graph(self) -> CSRGraph:
        """The compiled CSR adjacency (rebuilt by :meth:`invalidate`)."""
        return self._graph

    @property
    def alt(self) -> Optional[ALTIndex]:
        """The landmark index, when the engine was built with one."""
        return self._alt

    # ------------------------------------------------------------------
    def distance(self, source: VertexId, target: VertexId) -> float:
        self.stats.queries += 1
        if source == target:
            return 0.0
        # Root the answering tree at the smaller vertex id (the network is
        # undirected, so either root is correct).  The canonical root makes
        # every answer bit-for-bit independent of which trees happen to be
        # cached -- the batched dispatch pipeline relies on this to reproduce
        # the sequential loop's floats exactly.
        root, leaf = (source, target) if source <= target else (target, source)
        root_index = self._graph.index(root)
        leaf_index = self._graph.index(leaf)
        value = self._tree(root_index)[leaf_index]
        if value == INFINITY:
            raise DisconnectedError(source, target)
        return value

    def distances_from(self, source: VertexId) -> Mapping[VertexId, float]:
        self.stats.queries += 1
        return _TreeView(self._graph, self._tree(self._graph.index(source)))

    def path(self, source: VertexId, target: VertexId) -> PathResult:
        source_index = self._graph.index(source)
        target_index = self._graph.index(target)
        if source == target:
            return PathResult(source, target, 0.0, (source,))
        dist, parents = self._graph.tree_with_parents(source_index)
        if dist[target_index] == INFINITY:
            raise DisconnectedError(source, target)
        vertex_ids = self._graph.vertex_ids
        indices = [target_index]
        while indices[-1] != source_index:
            indices.append(parents[indices[-1]])
        indices.reverse()
        return PathResult(
            source, target, dist[target_index], tuple(vertex_ids[i] for i in indices)
        )

    def distance_lower_bound(self, source: VertexId, target: VertexId) -> float:
        if self._alt is None:
            return 0.0
        return self._alt.lower_bound_indexed(
            self._graph.index(source), self._graph.index(target)
        )

    def invalidate(self) -> None:
        """Recompile the CSR arrays and landmark tables, drop cached trees."""
        self._graph = CSRGraph(self._network)
        self._trees.clear()
        self._alt = ALTIndex(self._graph, self._landmarks) if self._landmarks > 0 else None

    # ------------------------------------------------------------------
    def _tree(self, source_index: int) -> List[float]:
        tree = self._trees.get(source_index)
        if tree is not None:
            self.stats.cache_hits += 1
            return tree
        tree = self._graph.tree(source_index)
        self.stats.dijkstra_runs += 1
        self._trees[source_index] = tree
        if len(self._trees) > self._max_cached_sources:
            self._trees.popitem(last=False)
        return tree


def make_engine(
    network: RoadNetwork,
    backend: str = "dict",
    max_cached_sources: int = 1024,
    landmarks: int = DEFAULT_LANDMARKS,
) -> RoutingEngine:
    """Build a routing engine by backend name ("dict", "csr" or "csr+alt").

    Raises:
        ConfigurationError: for an unknown backend name.
    """
    if backend == "dict":
        return DictDijkstraEngine(network, max_cached_sources=max_cached_sources)
    if backend == "csr":
        return CSREngine(network, max_cached_sources=max_cached_sources)
    if backend == "csr+alt":
        return CSREngine(network, max_cached_sources=max_cached_sources, landmarks=landmarks)
    raise ConfigurationError(
        f"unknown routing backend {backend!r}; choose one of {ROUTING_BACKENDS}"
    )


def ensure_engine(value: object, network: RoadNetwork) -> RoutingEngine:
    """Coerce ``value`` (engine, bare oracle or ``None``) into a routing engine.

    Keeps call sites that still construct a :class:`DistanceOracle` working
    unchanged: a bare oracle is wrapped into a :class:`DictDijkstraEngine`
    that shares its caches and statistics.
    """
    if value is None:
        return DictDijkstraEngine(network)
    if isinstance(value, RoutingEngine):
        return value
    if isinstance(value, DistanceOracle):
        return DictDijkstraEngine(oracle=value)
    raise TypeError(f"expected a RoutingEngine or DistanceOracle, got {type(value)!r}")
