"""The pluggable routing engine behind every distance and path query.

Every price and pick-up time in PTRider derives from shortest-path distances
(Section 2.1 of the paper), so the matcher's latency is dominated by how fast
those queries are answered.  This module introduces a seam between *what* the
matchers ask (point-to-point distances, request-rooted distance trees, full
paths) and *how* the answer is computed:

* :class:`DictDijkstraEngine` -- the reference backend; a thin wrapper around
  the memoising :class:`~repro.roadnet.shortest_path.DistanceOracle`, which
  runs Dijkstra over the road network's dict-of-dicts adjacency.
* :class:`CSREngine` -- compiles the :class:`~repro.roadnet.graph.RoadNetwork`
  into flat CSR adjacency arrays (``indptr`` / ``indices`` / ``weights``) and
  answers single-source queries with an array-backed Dijkstra over integer
  vertex indices.  When SciPy is importable the tree computation runs in C
  via :func:`scipy.sparse.csgraph.dijkstra`; otherwise a pure-Python
  int-indexed heap Dijkstra over the same arrays is used.
* :class:`ALTIndex` -- an optional landmark (ALT) lower-bound index: for a set
  of landmarks ``L`` the triangle inequality gives the admissible bound
  ``dist(u, v) >= |dist(L, u) - dist(L, v)|``.  The matchers combine it with
  the grid-index cell bounds, taking the maximum of the two.
* :class:`TableEngine` -- precomputes the full all-pairs distance matrix at
  build time (blocked multi-source Dijkstra over the CSR arrays) and answers
  every ``distance`` / ``distances_from`` by O(1) array lookup.  The right
  trade for networks up to a few thousand vertices, where the whole table
  fits comfortably in memory (n^2 x 8 bytes).

Distance trees are NumPy-native end to end: :meth:`CSRGraph.tree` and
:meth:`CSRGraph.trees` return dense ``float64`` rows / 2-D planes (plain
Python lists only when NumPy/SciPy are unavailable), the per-tree LRU caches
hold those rows by reference and :class:`_TreeView` reads them zero-copy.
:meth:`CSRGraph.trees` computes a whole batch of start-rooted trees with
**one** ``scipy.sparse.csgraph.dijkstra(indices=[...])`` call, which is what
:meth:`RoutingEngine.prefetch_trees` -- and through it the batch dispatch
pipeline (:class:`~repro.core.batch.BatchContext`) -- uses to amortise the
per-call overhead across a tick's worth of simultaneous requests.

Backends are selected by name ("dict", "csr", "csr+alt", "table") through
:func:`make_engine`; :class:`~repro.core.config.SystemConfig` carries the
chosen name so the service, the CLI, the simulation engine and the benchmark
harness can ablate the routing layer without touching the matchers.

Every engine exposes the same interface the matchers used to expect from the
distance oracle (``distance`` / ``distances_from`` / ``path`` /
``invalidate`` / ``stats``), so engines and oracles are interchangeable at
every call site.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, DisconnectedError, VertexNotFoundError
from repro.roadnet.graph import RoadNetwork, VertexId
from repro.roadnet.shortest_path import INFINITY, DistanceOracle, PathResult

try:  # SciPy accelerates the CSR backend but is not required for correctness.
    import numpy as _np
    from scipy.sparse import csr_array as _csr_array
    from scipy.sparse.csgraph import dijkstra as _csgraph_dijkstra
except ImportError:  # pragma: no cover - exercised via the fallback tests
    _np = None
    _csr_array = None
    _csgraph_dijkstra = None

__all__ = [
    "ROUTING_BACKENDS",
    "EngineStats",
    "RoutingEngine",
    "DictDijkstraEngine",
    "CSRGraph",
    "ALTIndex",
    "CSREngine",
    "TableEngine",
    "make_engine",
    "ensure_engine",
]

#: Backend names accepted by :func:`make_engine` and ``SystemConfig``.
ROUTING_BACKENDS = ("dict", "csr", "csr+alt", "table")

#: Default number of ALT landmarks (a handful is enough on city-sized nets).
DEFAULT_LANDMARKS = 8

#: Sources per multi-source Dijkstra call while building the all-pairs table.
#: Large enough to amortise per-call overhead, small enough that one block's
#: plane stays cache-friendly.
DEFAULT_TABLE_BLOCK = 64

#: Refuse to build an all-pairs table beyond this vertex count: the table is
#: O(n^2) memory (4096^2 doubles = 128 MiB), the wrong trade past city scale.
DEFAULT_TABLE_MAX_VERTICES = 4096


@dataclass
class EngineStats:
    """Work counters every routing engine accumulates.

    The field names match ``DistanceOracle.stats`` so reports and tests can
    treat oracles and engines uniformly.
    """

    queries: int = 0
    cache_hits: int = 0
    dijkstra_runs: int = 0


class RoutingEngine(ABC):
    """Answers every distance / path query the rest of the system issues.

    Subclasses own whatever representation of the road network they need and
    are free to cache aggressively; callers must treat returned trees as
    immutable.
    """

    #: backend name as selected through ``SystemConfig.routing_backend``
    backend: str = "abstract"

    #: ``True`` when :meth:`distance_lower_bound` returns the *exact*
    #: distance (the all-pairs table backend): by definition no other
    #: admissible bound can beat it, so callers skip combining it with the
    #: grid-index cell bounds.
    exact_lower_bounds: bool = False

    @property
    @abstractmethod
    def network(self) -> RoadNetwork:
        """The road network queries are answered on."""

    @abstractmethod
    def distance(self, source: VertexId, target: VertexId) -> float:
        """Return ``dist(source, target)``.

        Raises:
            VertexNotFoundError: if either endpoint is unknown.
            DisconnectedError: if no path connects the endpoints.
        """

    @abstractmethod
    def distances_from(self, source: VertexId) -> Mapping[VertexId, float]:
        """Return the full single-source distance tree rooted at ``source``.

        The mapping contains every *reachable* vertex; unreachable vertices
        are absent (lookups raise ``KeyError``).
        """

    @abstractmethod
    def path(self, source: VertexId, target: VertexId) -> PathResult:
        """Return the full shortest path between two vertices."""

    @abstractmethod
    def invalidate(self) -> None:
        """Drop every cached structure (call after the network is mutated)."""

    def distance_lower_bound(self, source: VertexId, target: VertexId) -> float:
        """An admissible lower bound on ``dist(source, target)``.

        The default engine offers no bound (0.0); the ALT-equipped CSR engine
        overrides this with landmark differences, and the table engine returns
        the exact distance (trivially admissible).  Matchers take the maximum
        of this bound and the grid-index cell bound.
        """
        return 0.0

    def prefetch_trees(
        self, sources: Sequence[VertexId]
    ) -> Mapping[VertexId, Mapping[VertexId, float]]:
        """Compute the distance trees of many sources in one bulk operation.

        Returns a mapping from each *known* source vertex to its full distance
        tree; unknown vertices are silently skipped (callers that care raise
        per-request, exactly where the sequential path would).  Engines that
        can vectorise (the CSR backend's one-call
        ``scipy.csgraph.dijkstra(indices=[...])`` plane, the table backend's
        precomputed rows) amortise the whole batch; the default implementation
        is a no-op returning an empty mapping, so callers fall back to
        per-source :meth:`distances_from` -- the dict backend has no cheaper
        bulk path than that.

        Statistics contract: each tree *computed* by the bulk call counts as
        exactly one ``dijkstra_runs``, no matter how many requests later
        consume it; trees already cached are returned without touching any
        counter (pinning is not a query).
        """
        return {}


class DictDijkstraEngine(RoutingEngine):
    """The reference backend: dict-of-dicts Dijkstra with a memoising oracle.

    Wraps an existing :class:`DistanceOracle` (or builds one), preserving its
    caching and statistics semantics exactly.
    """

    backend = "dict"

    def __init__(
        self,
        network: Optional[RoadNetwork] = None,
        oracle: Optional[DistanceOracle] = None,
        max_cached_sources: int = 1024,
    ) -> None:
        if oracle is None:
            if network is None:
                raise ValueError("DictDijkstraEngine needs a network or an oracle")
            oracle = DistanceOracle(network, max_cached_sources=max_cached_sources)
        self._oracle = oracle

    @property
    def network(self) -> RoadNetwork:
        return self._oracle.network

    @property
    def oracle(self) -> DistanceOracle:
        """The wrapped memoising oracle."""
        return self._oracle

    @property
    def stats(self):
        """The wrapped oracle's counters (same shape as :class:`EngineStats`)."""
        return self._oracle.stats

    def distance(self, source: VertexId, target: VertexId) -> float:
        return self._oracle.distance(source, target)

    def distances_from(self, source: VertexId) -> Mapping[VertexId, float]:
        return self._oracle.distances_from(source)

    def path(self, source: VertexId, target: VertexId) -> PathResult:
        return self._oracle.path(source, target)

    def invalidate(self) -> None:
        self._oracle.invalidate()


class CSRGraph:
    """Flat CSR (compressed sparse row) adjacency of a road network.

    Vertices are mapped to dense integer indices; the neighbours of index
    ``i`` are ``indices[indptr[i]:indptr[i+1]]`` with edge weights at the same
    positions of ``weights``.  Both directions of every undirected edge are
    stored, so the arrays describe a symmetric directed graph.
    """

    __slots__ = ("vertex_ids", "index_of", "indptr", "indices", "weights", "matrix")

    def __init__(self, network: RoadNetwork) -> None:
        self.vertex_ids: List[VertexId] = network.vertices()
        self.index_of: Dict[VertexId, int] = {
            vertex: index for index, vertex in enumerate(self.vertex_ids)
        }
        indptr: List[int] = [0]
        indices: List[int] = []
        weights: List[float] = []
        index_of = self.index_of
        for vertex in self.vertex_ids:
            for neighbour, weight in network.neighbours_view(vertex).items():
                indices.append(index_of[neighbour])
                weights.append(weight)
            indptr.append(len(indices))
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        if _csr_array is not None:
            n = len(self.vertex_ids)
            self.matrix = _csr_array(
                (
                    _np.asarray(weights, dtype=_np.float64),
                    _np.asarray(indices, dtype=_np.int64),
                    _np.asarray(indptr, dtype=_np.int64),
                ),
                shape=(n, n),
            )
        else:
            self.matrix = None

    def __len__(self) -> int:
        return len(self.vertex_ids)

    def index(self, vertex: VertexId) -> int:
        """Map a vertex id to its dense index.

        Raises:
            VertexNotFoundError: if the vertex is unknown.
        """
        try:
            return self.index_of[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    # ------------------------------------------------------------------
    # single-source trees
    # ------------------------------------------------------------------
    def tree(self, source_index: int) -> Sequence[float]:
        """Distances from ``source_index`` to every index (inf = unreachable).

        With SciPy the row is a dense ``float64`` ndarray straight out of
        :func:`scipy.sparse.csgraph.dijkstra` -- no ``.tolist()`` copy on the
        hot path; the pure-Python fallback returns a plain list.  Either way
        callers must treat the row as immutable.
        """
        if self.matrix is not None:
            return _csgraph_dijkstra(self.matrix, directed=True, indices=source_index)
        return self._tree_python(source_index)[0]

    def trees(self, source_indices: Sequence[int]) -> Sequence[Sequence[float]]:
        """Distance rows for many sources as one 2-D plane.

        With SciPy the whole batch is **one**
        ``scipy.sparse.csgraph.dijkstra(indices=[...])`` call returning a
        ``(len(sources), n)`` float64 ndarray; ``plane[i]`` is a zero-copy
        view of source ``source_indices[i]``'s row, bit-identical to what
        :meth:`tree` computes for that source alone.  The pure-Python
        fallback returns the same shape as a list of per-source rows.
        """
        source_list = list(source_indices)
        if self.matrix is not None:
            if not source_list:
                return _np.empty((0, len(self.vertex_ids)), dtype=_np.float64)
            return _csgraph_dijkstra(self.matrix, directed=True, indices=source_list)
        return [self._tree_python(index)[0] for index in source_list]

    def tree_with_parents(self, source_index: int) -> Tuple[Sequence[float], List[int]]:
        """Distances plus parent indices (-1 = root / unreachable)."""
        if self.matrix is not None:
            dist, parents = _csgraph_dijkstra(
                self.matrix, directed=True, indices=source_index, return_predecessors=True
            )
            return dist, [p if p >= 0 else -1 for p in parents.tolist()]
        return self._tree_python(source_index)

    def _tree_python(self, source_index: int) -> Tuple[List[float], List[int]]:
        """Array-backed Dijkstra over the CSR arrays with an int-indexed heap."""
        indptr, indices, weights = self.indptr, self.indices, self.weights
        dist = [INFINITY] * len(self.vertex_ids)
        parent = [-1] * len(self.vertex_ids)
        dist[source_index] = 0.0
        heap: List[Tuple[float, int]] = [(0.0, source_index)]
        push, pop = heapq.heappush, heapq.heappop
        while heap:
            d, u = pop(heap)
            if d > dist[u]:
                continue
            for k in range(indptr[u], indptr[u + 1]):
                v = indices[k]
                nd = d + weights[k]
                if nd < dist[v]:
                    dist[v] = nd
                    parent[v] = u
                    push(heap, (nd, v))
        return dist, parent


class _TreeView(Mapping):
    """Dict-like view of a dense distance array, keyed by vertex id.

    Mirrors the mapping ``DistanceOracle.distances_from`` returns: lookups of
    unreachable (or unknown) vertices raise ``KeyError``, iteration yields
    only reachable vertices.  The backing row may be a NumPy ``float64``
    ndarray (zero-copy view into a tree plane) or a plain list; lookups
    coerce to built-in ``float`` so NumPy scalar types never leak into the
    matchers' arithmetic or the service's payloads (the coercion is
    value-exact).
    """

    __slots__ = ("_graph", "_dist")

    def __init__(self, graph: CSRGraph, dist: Sequence[float]) -> None:
        self._graph = graph
        self._dist = dist

    def __getitem__(self, vertex: VertexId) -> float:
        value = self._dist[self._graph.index_of[vertex]]
        if value == INFINITY:
            raise KeyError(vertex)
        return float(value)

    def get(self, vertex: VertexId, default=None):
        index = self._graph.index_of.get(vertex)
        if index is None:
            return default
        value = self._dist[index]
        return default if value == INFINITY else float(value)

    def __contains__(self, vertex: object) -> bool:
        index = self._graph.index_of.get(vertex)
        return index is not None and self._dist[index] != INFINITY

    def __iter__(self) -> Iterator[VertexId]:
        dist = self._dist
        for index, vertex in enumerate(self._graph.vertex_ids):
            if dist[index] != INFINITY:
                yield vertex

    def __len__(self) -> int:
        return sum(1 for value in self._dist if value != INFINITY)


class ALTIndex:
    """A landmark (ALT) lower-bound index over a CSR graph.

    Landmarks are chosen by farthest-point sampling so they spread over the
    network; each landmark stores its full distance array.  For any vertices
    ``u, v`` and landmark ``L`` the triangle inequality gives the admissible
    bound ``dist(u, v) >= |dist(L, u) - dist(L, v)|`` (the network is
    undirected); the index returns the maximum over all landmarks.
    """

    def __init__(self, graph: CSRGraph, landmarks: int = DEFAULT_LANDMARKS) -> None:
        if landmarks <= 0:
            raise ValueError(f"landmarks must be positive, got {landmarks}")
        self._graph = graph
        self.landmark_indices: List[int] = []
        tables: List[List[float]] = []
        n = len(graph)
        if n:
            # Seed with the vertex farthest from index 0, then repeatedly take
            # the vertex farthest from the already-chosen landmark set.
            seed_tree = graph.tree(0)
            first = self._farthest(seed_tree, exclude=set())
            self.landmark_indices.append(first)
            tables.append(graph.tree(first))
            closest = list(tables[0])
            while len(self.landmark_indices) < min(landmarks, n):
                candidate = self._farthest(closest, exclude=set(self.landmark_indices))
                if candidate is None:
                    break
                self.landmark_indices.append(candidate)
                tree = graph.tree(candidate)
                tables.append(tree)
                closest = [min(a, b) for a, b in zip(closest, tree)]
        self._tables = tables
        if _np is not None and tables:
            self._matrix = _np.asarray(tables, dtype=_np.float64)
        else:
            self._matrix = None

    @staticmethod
    def _farthest(dist: Sequence[float], exclude: set) -> Optional[int]:
        best_index, best_value = None, -1.0
        for index, value in enumerate(dist):
            if value != INFINITY and value > best_value and index not in exclude:
                best_index, best_value = index, value
        return best_index

    @property
    def landmark_count(self) -> int:
        """Number of landmarks in the index."""
        return len(self.landmark_indices)

    def lower_bound_indexed(self, source_index: int, target_index: int) -> float:
        """Admissible lower bound on the distance between two dense indices."""
        if source_index == target_index:
            return 0.0
        if self._matrix is not None:
            with _np.errstate(invalid="ignore"):
                diff = _np.abs(self._matrix[:, source_index] - self._matrix[:, target_index])
            best = _np.nanmax(diff) if diff.size else _np.nan
            return 0.0 if _np.isnan(best) else float(best)
        best = 0.0
        for table in self._tables:
            a, b = table[source_index], table[target_index]
            if a == INFINITY and b == INFINITY:
                continue  # landmark sees neither vertex: no information
            if a == INFINITY or b == INFINITY:
                # The network is undirected, so a landmark reaching exactly one
                # of the two vertices proves they are disconnected.
                return INFINITY
            bound = a - b if a >= b else b - a
            if bound > best:
                best = bound
        return best


def _path_from_parents(graph: CSRGraph, source: VertexId, target: VertexId) -> PathResult:
    """Reconstruct the shortest path over a CSR graph via a parent tree.

    Shared by the CSR and table engines (paths are only needed for vehicle
    movement, so neither caches them).
    """
    source_index = graph.index(source)
    target_index = graph.index(target)
    if source == target:
        return PathResult(source, target, 0.0, (source,))
    dist, parents = graph.tree_with_parents(source_index)
    if dist[target_index] == INFINITY:
        raise DisconnectedError(source, target)
    vertex_ids = graph.vertex_ids
    indices = [target_index]
    while indices[-1] != source_index:
        indices.append(parents[indices[-1]])
    indices.reverse()
    return PathResult(
        source, target, float(dist[target_index]), tuple(vertex_ids[i] for i in indices)
    )


class CSREngine(RoutingEngine):
    """Array-backed routing over flat CSR adjacency, with optional ALT bounds.

    Single-source trees are computed over the CSR arrays (in C via SciPy when
    available, otherwise with the pure-Python int-indexed heap Dijkstra) and
    cached with the same FIFO policy as :class:`DistanceOracle`, including the
    symmetric source/target reuse the matchers rely on.
    """

    backend = "csr"

    def __init__(
        self,
        network: RoadNetwork,
        max_cached_sources: int = 1024,
        landmarks: int = 0,
    ) -> None:
        if max_cached_sources <= 0:
            raise ValueError("max_cached_sources must be positive")
        self._network = network
        self._max_cached_sources = max_cached_sources
        self._landmarks = landmarks
        self._graph = CSRGraph(network)
        #: per-source tree LRU; rows are ndarray views (or lists without SciPy)
        self._trees: "OrderedDict[int, Sequence[float]]" = OrderedDict()
        self._alt = ALTIndex(self._graph, landmarks) if landmarks > 0 else None
        if landmarks > 0:
            self.backend = "csr+alt"
        self.stats = EngineStats()

    @property
    def network(self) -> RoadNetwork:
        return self._network

    @property
    def graph(self) -> CSRGraph:
        """The compiled CSR adjacency (rebuilt by :meth:`invalidate`)."""
        return self._graph

    @property
    def alt(self) -> Optional[ALTIndex]:
        """The landmark index, when the engine was built with one."""
        return self._alt

    # ------------------------------------------------------------------
    def distance(self, source: VertexId, target: VertexId) -> float:
        self.stats.queries += 1
        if source == target:
            return 0.0
        # Root the answering tree at the smaller vertex id (the network is
        # undirected, so either root is correct).  The canonical root makes
        # every answer bit-for-bit independent of which trees happen to be
        # cached -- the batched dispatch pipeline relies on this to reproduce
        # the sequential loop's floats exactly.
        root, leaf = (source, target) if source <= target else (target, source)
        root_index = self._graph.index(root)
        leaf_index = self._graph.index(leaf)
        value = self._tree(root_index)[leaf_index]
        if value == INFINITY:
            raise DisconnectedError(source, target)
        return float(value)

    def distances_from(self, source: VertexId) -> Mapping[VertexId, float]:
        self.stats.queries += 1
        return _TreeView(self._graph, self._tree(self._graph.index(source)))

    def prefetch_trees(
        self, sources: Sequence[VertexId]
    ) -> Mapping[VertexId, Mapping[VertexId, float]]:
        """Bulk-compute the missing trees of ``sources`` in one vectorised call.

        All missing sources go through **one** :meth:`CSRGraph.trees` plane
        (one SciPy C call when available); each computed row is detached from
        the plane, stored in the tree LRU and counted as exactly one
        ``dijkstra_runs``.  Sources whose tree is already cached are returned
        from the cache without touching any counter; unknown vertices are
        skipped.  The returned views pin their rows by reference, so cache
        eviction -- including churn caused by a prefetch larger than the LRU
        -- can never invalidate a caller's pinned tree mid-batch.
        """
        graph = self._graph
        resolved: Dict[VertexId, int] = {}
        for vertex in sources:
            if vertex in resolved:
                continue
            index = graph.index_of.get(vertex)
            if index is not None:
                resolved[vertex] = index
        rows: Dict[int, Sequence[float]] = {}
        missing: List[int] = []
        for index in resolved.values():
            cached = self._trees.get(index)
            if cached is not None:
                rows[index] = cached
            else:
                missing.append(index)
        if missing:
            plane = graph.trees(missing)
            self.stats.dijkstra_runs += len(missing)
            for position, index in enumerate(missing):
                row = plane[position]
                if _np is not None and isinstance(row, _np.ndarray):
                    # Detach the row from the plane: a view would keep the
                    # whole (k x n) plane alive for as long as any single row
                    # survives in the LRU, long after the batch released its
                    # pins.  The copy is value-exact, so bit-identity holds.
                    row = row.copy()
                rows[index] = row
                self._trees[index] = row
                if len(self._trees) > self._max_cached_sources:
                    self._trees.popitem(last=False)
        return {
            vertex: _TreeView(graph, rows[index]) for vertex, index in resolved.items()
        }

    def path(self, source: VertexId, target: VertexId) -> PathResult:
        return _path_from_parents(self._graph, source, target)

    def distance_lower_bound(self, source: VertexId, target: VertexId) -> float:
        if self._alt is None:
            return 0.0
        return self._alt.lower_bound_indexed(
            self._graph.index(source), self._graph.index(target)
        )

    def invalidate(self) -> None:
        """Recompile the CSR arrays and landmark tables, drop cached trees."""
        self._graph = CSRGraph(self._network)
        self._trees.clear()
        self._alt = ALTIndex(self._graph, self._landmarks) if self._landmarks > 0 else None

    # ------------------------------------------------------------------
    def _tree(self, source_index: int) -> Sequence[float]:
        tree = self._trees.get(source_index)
        if tree is not None:
            self.stats.cache_hits += 1
            return tree
        tree = self._graph.tree(source_index)
        self.stats.dijkstra_runs += 1
        self._trees[source_index] = tree
        if len(self._trees) > self._max_cached_sources:
            self._trees.popitem(last=False)
        return tree


class TableEngine(RoutingEngine):
    """All-pairs distance-table routing for small (city-benchmark) networks.

    The full ``n x n`` distance matrix is precomputed at build time by blocked
    multi-source Dijkstra (:meth:`CSRGraph.trees`, one SciPy call per block of
    :data:`DEFAULT_TABLE_BLOCK` sources), after which every ``distance`` is an
    O(1) array lookup and every ``distances_from`` a zero-copy row view.
    Rows are bit-identical to what :class:`CSREngine` computes per source, and
    point queries read the row of the *smaller* endpoint like every other
    backend, so answers are float-for-float interchangeable with the CSR
    engine's.

    The table is O(n^2) memory and O(n) Dijkstra runs to build -- the right
    trade for the <= 2k-vertex grids the benchmarks use and exactly the wrong
    one beyond :data:`DEFAULT_TABLE_MAX_VERTICES`, where construction refuses
    rather than silently swallowing gigabytes.
    """

    backend = "table"
    exact_lower_bounds = True

    def __init__(
        self,
        network: RoadNetwork,
        block_size: int = DEFAULT_TABLE_BLOCK,
        max_vertices: int = DEFAULT_TABLE_MAX_VERTICES,
    ) -> None:
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        self._network = network
        self._block_size = block_size
        self._max_vertices = max_vertices
        self.stats = EngineStats()
        self._graph = CSRGraph(network)
        self._table = self._build_table()

    def _build_table(self) -> Sequence[Sequence[float]]:
        n = len(self._graph)
        if n > self._max_vertices:
            raise ConfigurationError(
                f"table routing backend capped at {self._max_vertices} vertices "
                f"(network has {n}); use the csr backend for larger networks"
            )
        blocks = [
            self._graph.trees(range(start, min(start + self._block_size, n)))
            for start in range(0, n, self._block_size)
        ]
        self.stats.dijkstra_runs += n  # the build's honest cost, counted once
        if _np is not None and self._graph.matrix is not None:
            return _np.vstack(blocks) if blocks else _np.empty((0, 0))
        return [row for block in blocks for row in block]

    @property
    def network(self) -> RoadNetwork:
        return self._network

    @property
    def graph(self) -> CSRGraph:
        """The compiled CSR adjacency (rebuilt by :meth:`invalidate`)."""
        return self._graph

    @property
    def table(self) -> Sequence[Sequence[float]]:
        """The all-pairs distance matrix (row i = distances from index i)."""
        return self._table

    # ------------------------------------------------------------------
    def distance(self, source: VertexId, target: VertexId) -> float:
        self.stats.queries += 1
        if source == target:
            return 0.0
        # Same canonical rooting as every other backend: read the smaller
        # endpoint's row, so the answer is bit-identical to the CSR engine's.
        root, leaf = (source, target) if source <= target else (target, source)
        value = self._table[self._graph.index(root)][self._graph.index(leaf)]
        self.stats.cache_hits += 1  # every answer is served from the table
        if value == INFINITY:
            raise DisconnectedError(source, target)
        return float(value)

    def distances_from(self, source: VertexId) -> Mapping[VertexId, float]:
        self.stats.queries += 1
        self.stats.cache_hits += 1
        return _TreeView(self._graph, self._table[self._graph.index(source)])

    def prefetch_trees(
        self, sources: Sequence[VertexId]
    ) -> Mapping[VertexId, Mapping[VertexId, float]]:
        """Hand out precomputed row views; no work, no counters (not a query)."""
        graph = self._graph
        views: Dict[VertexId, Mapping[VertexId, float]] = {}
        for vertex in sources:
            index = graph.index_of.get(vertex)
            if index is not None and vertex not in views:
                views[vertex] = _TreeView(graph, self._table[index])
        return views

    def path(self, source: VertexId, target: VertexId) -> PathResult:
        return _path_from_parents(self._graph, source, target)

    def distance_lower_bound(self, source: VertexId, target: VertexId) -> float:
        """The exact distance -- the tightest admissible bound there is.

        Infinity for provably disconnected pairs, matching the ALT index's
        convention, so the matchers prune those vehicles outright.
        """
        if source == target:
            return 0.0
        root, leaf = (source, target) if source <= target else (target, source)
        return float(self._table[self._graph.index(root)][self._graph.index(leaf)])

    def invalidate(self) -> None:
        """Recompile the CSR arrays and rebuild the table (network mutated)."""
        self._graph = CSRGraph(self._network)
        self._table = self._build_table()


def make_engine(
    network: RoadNetwork,
    backend: str = "dict",
    max_cached_sources: int = 1024,
    landmarks: int = DEFAULT_LANDMARKS,
) -> RoutingEngine:
    """Build a routing engine by backend name ("dict", "csr", "csr+alt", "table").

    Raises:
        ConfigurationError: for an unknown backend name, or a "table" request
            on a network too large for an all-pairs table.
    """
    if backend == "dict":
        return DictDijkstraEngine(network, max_cached_sources=max_cached_sources)
    if backend == "csr":
        return CSREngine(network, max_cached_sources=max_cached_sources)
    if backend == "csr+alt":
        return CSREngine(network, max_cached_sources=max_cached_sources, landmarks=landmarks)
    if backend == "table":
        return TableEngine(network)
    raise ConfigurationError(
        f"unknown routing backend {backend!r}; choose one of {ROUTING_BACKENDS}"
    )


def ensure_engine(value: object, network: RoadNetwork) -> RoutingEngine:
    """Coerce ``value`` (engine, bare oracle or ``None``) into a routing engine.

    Keeps call sites that still construct a :class:`DistanceOracle` working
    unchanged: a bare oracle is wrapped into a :class:`DictDijkstraEngine`
    that shares its caches and statistics.
    """
    if value is None:
        return DictDijkstraEngine(network)
    if isinstance(value, RoutingEngine):
        return value
    if isinstance(value, DistanceOracle):
        return DictDijkstraEngine(oracle=value)
    raise TypeError(f"expected a RoutingEngine or DistanceOracle, got {type(value)!r}")
