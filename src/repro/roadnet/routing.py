"""The pluggable routing engine behind every distance and path query.

Every price and pick-up time in PTRider derives from shortest-path distances
(Section 2.1 of the paper), so the matcher's latency is dominated by how fast
those queries are answered.  This module introduces a seam between *what* the
matchers ask (point-to-point distances, request-rooted distance trees, full
paths) and *how* the answer is computed:

* :class:`DictDijkstraEngine` -- the reference backend; a thin wrapper around
  the memoising :class:`~repro.roadnet.shortest_path.DistanceOracle`, which
  runs Dijkstra over the road network's dict-of-dicts adjacency.
* :class:`CSREngine` -- compiles the :class:`~repro.roadnet.graph.RoadNetwork`
  into flat CSR adjacency arrays (``indptr`` / ``indices`` / ``weights``) and
  answers single-source queries with an array-backed Dijkstra over integer
  vertex indices.  When SciPy is importable the tree computation runs in C
  via :func:`scipy.sparse.csgraph.dijkstra`; otherwise a pure-Python
  int-indexed heap Dijkstra over the same arrays is used.
* :class:`ALTIndex` -- an optional landmark (ALT) lower-bound index: for a set
  of landmarks ``L`` the triangle inequality gives the admissible bound
  ``dist(u, v) >= |dist(L, u) - dist(L, v)|``.  The matchers combine it with
  the grid-index cell bounds, taking the maximum of the two.
* :class:`TableEngine` -- precomputes the full all-pairs distance matrix at
  build time (blocked multi-source Dijkstra over the CSR arrays) and answers
  every ``distance`` / ``distances_from`` by O(1) array lookup.  The right
  trade for networks up to a few thousand vertices, where the whole table
  fits comfortably in memory (n^2 x 8 bytes).
* :class:`CHEngine` -- a contraction hierarchy over the same CSR arrays, for
  the networks the table refuses.  A one-time preprocessing pass orders
  vertices by edge difference + deleted neighbours and contracts them in
  that order, inserting shortcut edges whenever a local witness search
  cannot certify a bypass; point-to-point queries then run a bidirectional
  Dijkstra that only ever climbs upward in the hierarchy, touching a few
  hundred vertices where a plain Dijkstra settles the whole network.  The
  answer is *refolded* from the unpacked original-edge path (left-to-right
  from the canonical smaller endpoint), so it is bit-identical to what the
  CSR backend's tree would report.  Full distance trees are hierarchy-native
  too: a :class:`PHASTTreeProvider` downward sweep (upward Dijkstra, then a
  rank-descending relaxation pass over the transpose of the upward graph)
  computes whole batches of trees as one NumPy plane, refolded to
  bit-identity with the CSR rows -- so the ch backend's tree path needs no
  SciPy at all.

Tree *production* is a seam of its own: every full distance tree flows
through a :class:`TreeProvider` (:class:`PlaneTreeProvider` for the CSR
plane path, :class:`PHASTTreeProvider` for the hierarchy sweep), while the
engines keep ownership of caching, pinning and statistics -- so
``MatchContext`` / ``BatchContext`` reuse, the tree LRU and
``prefetch_trees`` behave identically no matter which provider computes
the rows.  The ``tree_provider`` knob ("auto" / "plane" / "phast",
``SystemConfig.tree_provider``) ablates the seam from the CLI and the
service without touching the matchers.

Preprocessing artifacts (CSR compiles, ALT landmark tables, all-pairs
tables, CH hierarchies) can be persisted through an
:class:`~repro.roadnet.artifacts.ArtifactCache` keyed by a content hash of
the network, so a service restart or a repeated benchmark run skips the
build entirely; :class:`EngineStats` records the build-vs-load seconds.

Distance trees are NumPy-native end to end: :meth:`CSRGraph.tree` and
:meth:`CSRGraph.trees` return dense ``float64`` rows / 2-D planes (plain
Python lists only when NumPy/SciPy are unavailable), the per-tree LRU caches
hold those rows by reference and :class:`_TreeView` reads them zero-copy.
:meth:`CSRGraph.trees` computes a whole batch of start-rooted trees with
**one** ``scipy.sparse.csgraph.dijkstra(indices=[...])`` call, which is what
:meth:`RoutingEngine.prefetch_trees` -- and through it the batch dispatch
pipeline (:class:`~repro.core.batch.BatchContext`) -- uses to amortise the
per-call overhead across a tick's worth of simultaneous requests.

Backends are selected by name ("dict", "csr", "csr+alt", "table", "ch")
through
:func:`make_engine`; :class:`~repro.core.config.SystemConfig` carries the
chosen name so the service, the CLI, the simulation engine and the benchmark
harness can ablate the routing layer without touching the matchers.

Every engine exposes the same interface the matchers used to expect from the
distance oracle (``distance`` / ``distances_from`` / ``path`` /
``invalidate`` / ``stats``), so engines and oracles are interchangeable at
every call site.
"""

from __future__ import annotations

import heapq
import os
import time
from abc import ABC, abstractmethod
from bisect import bisect_right
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, DisconnectedError, VertexNotFoundError
from repro.roadnet.artifacts import ArtifactCache, network_fingerprint
from repro.roadnet.graph import RoadNetwork, VertexId
from repro.roadnet.shortest_path import INFINITY, DistanceOracle, PathResult

# NumPy and SciPy are imported separately on purpose: neither is required
# for correctness, but they gate *different* fast paths.  SciPy owns the C
# Dijkstra planes; NumPy alone is enough for the vectorised PHAST sweep (and
# the artifact cache), so a NumPy-only environment -- far more common than a
# SciPy one -- must not lose its accelerators because SciPy is missing.
try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the fallback tests
    _np = None
try:  # SciPy accelerates the CSR backend but is not required for correctness.
    from scipy.sparse import csr_array as _csr_array
    from scipy.sparse.csgraph import dijkstra as _csgraph_dijkstra
except ImportError:  # pragma: no cover - exercised via the fallback tests
    _csr_array = None
    _csgraph_dijkstra = None

__all__ = [
    "ROUTING_BACKENDS",
    "TREE_PROVIDERS",
    "EngineStats",
    "RoutingEngine",
    "DictDijkstraEngine",
    "CSRGraph",
    "ALTIndex",
    "ContractionHierarchy",
    "TreeProvider",
    "PlaneTreeProvider",
    "PHASTTreeProvider",
    "CSREngine",
    "TableEngine",
    "CHEngine",
    "make_engine",
    "ensure_engine",
    "attach_shared_engine",
]

#: Backend names accepted by :func:`make_engine` and ``SystemConfig``.
ROUTING_BACKENDS = ("dict", "csr", "csr+alt", "table", "ch")

#: Tree-provider names accepted by :func:`make_engine` and ``SystemConfig``.
#: "auto" lets the engine choose ("phast" on the ch backend past
#: :data:`PHAST_AUTO_MIN_VERTICES` vertices, "plane" everywhere else);
#: "plane" forces the CSR plane path; "phast" forces the hierarchy-native
#: downward sweep (ch backend only).
TREE_PROVIDERS = ("auto", "plane", "phast")

#: Network size above which the ch backend's "auto" tree provider considers
#: PHAST.  The decision is measured, not aspirational (E15 records the
#: ratios on the 19.6k-vertex arterial city): SciPy's C Dijkstra plane is
#: the fastest tree path wherever it exists (~3x over the NumPy sweep), so
#: "auto" only goes hierarchy-native where the plane path would otherwise
#: degrade to per-source pure-Python Dijkstras -- NumPy present, SciPy
#: absent -- which the vectorised sweep beats ~3.4x at city scale.  Below
#: this vertex count the per-level dispatch overhead swallows the win and
#: planes stay the right answer everywhere.
PHAST_AUTO_MIN_VERTICES = 4096

#: Sources per NumPy PHAST sweep chunk: bounds the (chunk x edges) scratch
#: arrays of the refold at a few tens of MB on city-sized networks while
#: keeping enough rows per sweep to amortise the per-level dispatch cost.
PHAST_SOURCE_CHUNK = 32

#: Opt-in flag for the reduceat-free PHAST refold: when this environment
#: variable is set to anything but ""/"0", each refold generation folds by
#: scatter-min (``np.minimum.at`` into the destination cells) instead of the
#: segmented ``np.minimum.reduceat``.  Both folds gather the same
#: already-folded labels before writing, so they are bit-identical; the flag
#: exists to measure the alternative's cost on real planes (see E15's
#: refold microbench) without forking the provider.
PHAST_SCATTER_REFOLD_ENV = "PTRIDER_PHAST_SCATTER_REFOLD"


def _scatter_refold_enabled() -> bool:
    return os.environ.get(PHAST_SCATTER_REFOLD_ENV, "") not in ("", "0")


#: Default number of ALT landmarks (a handful is enough on city-sized nets).
DEFAULT_LANDMARKS = 8

#: Sources per multi-source Dijkstra call while building the all-pairs table.
#: Large enough to amortise per-call overhead, small enough that one block's
#: plane stays cache-friendly.
DEFAULT_TABLE_BLOCK = 64

#: Refuse to build an all-pairs table beyond this vertex count: the table is
#: O(n^2) memory (4096^2 doubles = 128 MiB), the wrong trade past city scale.
#: The default of ``SystemConfig.table_max_vertices``.
DEFAULT_TABLE_MAX_VERTICES = 4096

#: Settled-vertex budget of each CH witness search.  Witness searches only
#: *avoid* shortcuts; cutting one short merely inserts a shortcut that a
#: longer search might have proven unnecessary, so correctness never depends
#: on this number -- it trades preprocessing time against a slightly denser
#: hierarchy.
CH_WITNESS_SETTLE_CAP = 128

#: Degree above which contraction stops running Dijkstra witness searches and
#: falls back to direct-edge / shared-neighbour checks.  The late core of a
#: *uniform* grid approaches a clique of size O(sqrt(n)); Dijkstras there
#: settle mostly each other's neighbours at quadratic cost, while the direct
#: edge -- itself the min over every previously considered route -- plus a
#: one-hop scan already catch the overwhelming majority of witnesses.
#: Networks with arterial structure (any real road network) rarely reach
#: this degree before the very top of the hierarchy.  Purely a
#: preprocessing-speed trade; extra shortcuts never affect correctness.
CH_DENSE_DEGREE = 32


def _as_int_list(values: Sequence[int]) -> List[int]:
    """Materialise a (possibly NumPy) integer sequence as plain Python ints."""
    if hasattr(values, "tolist"):
        return values.tolist()
    return [int(value) for value in values]


def _as_float_list(values: Sequence[float]) -> List[float]:
    """Materialise a (possibly NumPy) float sequence as plain Python floats."""
    if hasattr(values, "tolist"):
        return values.tolist()
    return [float(value) for value in values]


@dataclass
class EngineStats:
    """Work counters every routing engine accumulates.

    The query-side field names match ``DistanceOracle.stats`` so reports and
    tests can treat oracles and engines uniformly.  ``build_seconds`` /
    ``load_seconds`` record where the engine's one-time preprocessing came
    from: computed this session, or deserialised from the artifact cache
    (at most one of the two is non-zero per compile).
    ``bidirectional_runs`` counts CH point-to-point searches, which settle a
    few hundred vertices where a ``dijkstra_runs`` unit settles the network.
    ``phast_sweeps`` counts full distance trees produced by the
    hierarchy-native downward sweep instead of a Dijkstra -- the two tree
    counters are disjoint, so ``dijkstra_runs + phast_sweeps`` is the total
    number of trees an engine ever computed and the split shows which
    provider the work was billed to.
    """

    queries: int = 0
    cache_hits: int = 0
    dijkstra_runs: int = 0
    bidirectional_runs: int = 0
    phast_sweeps: int = 0
    build_seconds: float = 0.0
    load_seconds: float = 0.0

    def accumulate(self, other: "EngineStats") -> None:
        """Fold another record into this one (cross-process aggregation).

        The parallel dispatch pool runs shard verification in worker
        processes, each with its own engine instance; at batch end every
        worker ships the *delta* its engine accumulated and the parent folds
        it in here, so the per-shard counters keep counting the whole
        system's work instead of silently dropping the remote share.
        """
        self.queries += other.queries
        self.cache_hits += other.cache_hits
        self.dijkstra_runs += other.dijkstra_runs
        self.bidirectional_runs += other.bidirectional_runs
        self.phast_sweeps += other.phast_sweeps
        self.build_seconds += other.build_seconds
        self.load_seconds += other.load_seconds

    def snapshot(self) -> "EngineStats":
        """An independent copy (delta bookkeeping across a remote batch)."""
        return EngineStats(
            queries=self.queries,
            cache_hits=self.cache_hits,
            dijkstra_runs=self.dijkstra_runs,
            bidirectional_runs=self.bidirectional_runs,
            phast_sweeps=self.phast_sweeps,
            build_seconds=self.build_seconds,
            load_seconds=self.load_seconds,
        )

    def delta_since(self, earlier: "EngineStats") -> "EngineStats":
        """The work recorded after ``earlier`` was snapshotted."""
        return EngineStats(
            queries=self.queries - earlier.queries,
            cache_hits=self.cache_hits - earlier.cache_hits,
            dijkstra_runs=self.dijkstra_runs - earlier.dijkstra_runs,
            bidirectional_runs=self.bidirectional_runs - earlier.bidirectional_runs,
            phast_sweeps=self.phast_sweeps - earlier.phast_sweeps,
            build_seconds=self.build_seconds - earlier.build_seconds,
            load_seconds=self.load_seconds - earlier.load_seconds,
        )


class RoutingEngine(ABC):
    """Answers every distance / path query the rest of the system issues.

    Subclasses own whatever representation of the road network they need and
    are free to cache aggressively; callers must treat returned trees as
    immutable.
    """

    #: backend name as selected through ``SystemConfig.routing_backend``
    backend: str = "abstract"

    #: name of the mechanism that computes this engine's full distance trees
    #: ("dijkstra" for the per-source reference path, "plane" for the CSR
    #: family's vectorised planes, "phast" for the hierarchy-native sweep,
    #: "table" for precomputed rows) -- what batch statistics and the admin
    #: panel report, and what tree work is billed against in
    #: :class:`EngineStats`.
    tree_provider_name: str = "dijkstra"

    #: ``True`` when :meth:`distance_lower_bound` returns the *exact*
    #: distance (the all-pairs table backend): by definition no other
    #: admissible bound can beat it, so callers skip combining it with the
    #: grid-index cell bounds.
    exact_lower_bounds: bool = False

    @property
    @abstractmethod
    def network(self) -> RoadNetwork:
        """The road network queries are answered on."""

    @abstractmethod
    def distance(self, source: VertexId, target: VertexId) -> float:
        """Return ``dist(source, target)``.

        Raises:
            VertexNotFoundError: if either endpoint is unknown.
            DisconnectedError: if no path connects the endpoints.
        """

    @abstractmethod
    def distances_from(self, source: VertexId) -> Mapping[VertexId, float]:
        """Return the full single-source distance tree rooted at ``source``.

        The mapping contains every *reachable* vertex; unreachable vertices
        are absent (lookups raise ``KeyError``).
        """

    @abstractmethod
    def path(self, source: VertexId, target: VertexId) -> PathResult:
        """Return the full shortest path between two vertices."""

    @abstractmethod
    def invalidate(self) -> None:
        """Drop every cached structure (call after the network is mutated)."""

    def distance_lower_bound(self, source: VertexId, target: VertexId) -> float:
        """An admissible lower bound on ``dist(source, target)``.

        The default engine offers no bound (0.0); the ALT-equipped CSR engine
        overrides this with landmark differences, and the table engine returns
        the exact distance (trivially admissible).  Matchers take the maximum
        of this bound and the grid-index cell bound.
        """
        return 0.0

    def export_shared(self) -> Optional[Dict[str, object]]:
        """The engine's immutable arrays, named for shared-memory publication.

        The parallel dispatch pool (:mod:`repro.core.parallel`) publishes the
        returned ndarrays into ``multiprocessing.shared_memory`` segments once
        per engine build; worker processes re-wrap the segments zero-copy via
        :func:`attach_shared_engine`.  ``None`` means the backend has no flat
        ndarray representation (the dict backend, or NumPy is unavailable)
        and the pool must fall back to in-process execution.
        """
        return None

    def prefetch_trees(
        self, sources: Sequence[VertexId]
    ) -> Mapping[VertexId, Mapping[VertexId, float]]:
        """Compute the distance trees of many sources in one bulk operation.

        Returns a mapping from each *known* source vertex to its full distance
        tree; unknown vertices are silently skipped (callers that care raise
        per-request, exactly where the sequential path would).  Engines that
        can vectorise (the CSR backend's one-call
        ``scipy.csgraph.dijkstra(indices=[...])`` plane, the table backend's
        precomputed rows) amortise the whole batch; the default implementation
        is a no-op returning an empty mapping, so callers fall back to
        per-source :meth:`distances_from` -- the dict backend has no cheaper
        bulk path than that.

        Statistics contract: each tree *computed* by the bulk call counts as
        exactly one ``dijkstra_runs``, no matter how many requests later
        consume it; trees already cached are returned without touching any
        counter (pinning is not a query).
        """
        return {}


class DictDijkstraEngine(RoutingEngine):
    """The reference backend: dict-of-dicts Dijkstra with a memoising oracle.

    Wraps an existing :class:`DistanceOracle` (or builds one), preserving its
    caching and statistics semantics exactly.
    """

    backend = "dict"

    def __init__(
        self,
        network: Optional[RoadNetwork] = None,
        oracle: Optional[DistanceOracle] = None,
        max_cached_sources: int = 1024,
    ) -> None:
        if oracle is None:
            if network is None:
                raise ValueError("DictDijkstraEngine needs a network or an oracle")
            oracle = DistanceOracle(network, max_cached_sources=max_cached_sources)
        self._oracle = oracle

    @property
    def network(self) -> RoadNetwork:
        return self._oracle.network

    @property
    def oracle(self) -> DistanceOracle:
        """The wrapped memoising oracle."""
        return self._oracle

    @property
    def stats(self):
        """The wrapped oracle's counters (same shape as :class:`EngineStats`)."""
        return self._oracle.stats

    def distance(self, source: VertexId, target: VertexId) -> float:
        return self._oracle.distance(source, target)

    def distances_from(self, source: VertexId) -> Mapping[VertexId, float]:
        return self._oracle.distances_from(source)

    def path(self, source: VertexId, target: VertexId) -> PathResult:
        return self._oracle.path(source, target)

    def invalidate(self) -> None:
        self._oracle.invalidate()


class CSRGraph:
    """Flat CSR (compressed sparse row) adjacency of a road network.

    Vertices are mapped to dense integer indices; the neighbours of index
    ``i`` are ``indices[indptr[i]:indptr[i+1]]`` with edge weights at the same
    positions of ``weights``.  Both directions of every undirected edge are
    stored, so the arrays describe a symmetric directed graph.
    """

    __slots__ = ("vertex_ids", "index_of", "indptr", "indices", "weights", "matrix")

    def __init__(self, network: RoadNetwork) -> None:
        self.vertex_ids: List[VertexId] = network.vertices()
        self.index_of: Dict[VertexId, int] = {
            vertex: index for index, vertex in enumerate(self.vertex_ids)
        }
        indptr: List[int] = [0]
        indices: List[int] = []
        weights: List[float] = []
        index_of = self.index_of
        for vertex in self.vertex_ids:
            for neighbour, weight in network.neighbours_view(vertex).items():
                indices.append(index_of[neighbour])
                weights.append(weight)
            indptr.append(len(indices))
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self._finalise_matrix()

    def _finalise_matrix(self) -> None:
        """Build the SciPy csr_array over the flat lists (None without SciPy)."""
        if _csr_array is not None:
            n = len(self.vertex_ids)
            self.matrix = _csr_array(
                (
                    _np.asarray(self.weights, dtype=_np.float64),
                    _np.asarray(self.indices, dtype=_np.int64),
                    _np.asarray(self.indptr, dtype=_np.int64),
                ),
                shape=(n, n),
            )
        else:
            self.matrix = None

    @classmethod
    def from_arrays(
        cls,
        vertex_ids: Sequence[int],
        indptr: Sequence[int],
        indices: Sequence[int],
        weights: Sequence[float],
    ) -> "CSRGraph":
        """Rehydrate a compiled graph from (cached) flat arrays.

        The arrays must be exactly what :meth:`to_arrays` produced for the
        same network: the artifact cache's fingerprint covers adjacency in
        compile order, so a loaded graph is array-for-array identical to a
        fresh compile (including Dijkstra tie-breaking behaviour).
        """
        graph = cls.__new__(cls)
        graph.vertex_ids = _as_int_list(vertex_ids)
        graph.index_of = {
            vertex: index for index, vertex in enumerate(graph.vertex_ids)
        }
        graph.indptr = _as_int_list(indptr)
        graph.indices = _as_int_list(indices)
        graph.weights = _as_float_list(weights)
        graph._finalise_matrix()
        return graph

    @classmethod
    def from_shared(
        cls,
        vertex_ids: Sequence[int],
        indptr: Sequence[int],
        indices: Sequence[int],
        weights: Sequence[float],
    ) -> "CSRGraph":
        """Wrap already-materialised (shared-memory) ndarrays without copying.

        Unlike :meth:`from_arrays` the CSR arrays are kept as the ndarrays
        they arrive as -- zero-copy views into ``multiprocessing``
        shared-memory segments -- so a worker process attaches a compiled
        graph without duplicating it.  Only ``vertex_ids`` is materialised
        (the id -> index dict needs hashable Python ints anyway).
        """
        graph = cls.__new__(cls)
        graph.vertex_ids = _as_int_list(vertex_ids)
        graph.index_of = {
            vertex: index for index, vertex in enumerate(graph.vertex_ids)
        }
        graph.indptr = indptr
        graph.indices = indices
        graph.weights = weights
        graph._finalise_matrix()
        return graph

    def to_arrays(self) -> Dict[str, Sequence[float]]:
        """The graph's flat arrays, named for the artifact cache."""
        return {
            "vertex_ids": self.vertex_ids,
            "indptr": self.indptr,
            "indices": self.indices,
            "weights": self.weights,
        }

    def __len__(self) -> int:
        return len(self.vertex_ids)

    def index(self, vertex: VertexId) -> int:
        """Map a vertex id to its dense index.

        Raises:
            VertexNotFoundError: if the vertex is unknown.
        """
        try:
            return self.index_of[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    # ------------------------------------------------------------------
    # single-source trees
    # ------------------------------------------------------------------
    def tree(self, source_index: int) -> Sequence[float]:
        """Distances from ``source_index`` to every index (inf = unreachable).

        With SciPy the row is a dense ``float64`` ndarray straight out of
        :func:`scipy.sparse.csgraph.dijkstra` -- no ``.tolist()`` copy on the
        hot path; the pure-Python fallback returns a plain list.  Either way
        callers must treat the row as immutable.
        """
        if self.matrix is not None:
            return _csgraph_dijkstra(self.matrix, directed=True, indices=source_index)
        return self._tree_python(source_index)[0]

    def trees(self, source_indices: Sequence[int]) -> Sequence[Sequence[float]]:
        """Distance rows for many sources as one 2-D plane.

        With SciPy the whole batch is **one**
        ``scipy.sparse.csgraph.dijkstra(indices=[...])`` call returning a
        ``(len(sources), n)`` float64 ndarray; ``plane[i]`` is a zero-copy
        view of source ``source_indices[i]``'s row, bit-identical to what
        :meth:`tree` computes for that source alone.  The pure-Python
        fallback returns the same shape as a list of per-source rows.
        """
        source_list = list(source_indices)
        if self.matrix is not None:
            if not source_list:
                return _np.empty((0, len(self.vertex_ids)), dtype=_np.float64)
            return _csgraph_dijkstra(self.matrix, directed=True, indices=source_list)
        return [self._tree_python(index)[0] for index in source_list]

    def tree_with_parents(self, source_index: int) -> Tuple[Sequence[float], List[int]]:
        """Distances plus parent indices (-1 = root / unreachable)."""
        if self.matrix is not None:
            dist, parents = _csgraph_dijkstra(
                self.matrix, directed=True, indices=source_index, return_predecessors=True
            )
            return dist, [p if p >= 0 else -1 for p in parents.tolist()]
        return self._tree_python(source_index)

    def _tree_python(self, source_index: int) -> Tuple[List[float], List[int]]:
        """Array-backed Dijkstra over the CSR arrays with an int-indexed heap."""
        indptr, indices, weights = self.indptr, self.indices, self.weights
        dist = [INFINITY] * len(self.vertex_ids)
        parent = [-1] * len(self.vertex_ids)
        dist[source_index] = 0.0
        heap: List[Tuple[float, int]] = [(0.0, source_index)]
        push, pop = heapq.heappush, heapq.heappop
        while heap:
            d, u = pop(heap)
            if d > dist[u]:
                continue
            for k in range(indptr[u], indptr[u + 1]):
                v = indices[k]
                nd = d + weights[k]
                if nd < dist[v]:
                    dist[v] = nd
                    parent[v] = u
                    push(heap, (nd, v))
        return dist, parent


class _TreeView(Mapping):
    """Dict-like view of a dense distance array, keyed by vertex id.

    Mirrors the mapping ``DistanceOracle.distances_from`` returns: lookups of
    unreachable (or unknown) vertices raise ``KeyError``, iteration yields
    only reachable vertices.  The backing row may be a NumPy ``float64``
    ndarray (zero-copy view into a tree plane) or a plain list; lookups
    coerce to built-in ``float`` so NumPy scalar types never leak into the
    matchers' arithmetic or the service's payloads (the coercion is
    value-exact).
    """

    __slots__ = ("_graph", "_dist")

    def __init__(self, graph: CSRGraph, dist: Sequence[float]) -> None:
        self._graph = graph
        self._dist = dist

    def __getitem__(self, vertex: VertexId) -> float:
        value = self._dist[self._graph.index_of[vertex]]
        if value == INFINITY:
            raise KeyError(vertex)
        return float(value)

    def get(self, vertex: VertexId, default=None):
        index = self._graph.index_of.get(vertex)
        if index is None:
            return default
        value = self._dist[index]
        return default if value == INFINITY else float(value)

    def __contains__(self, vertex: object) -> bool:
        index = self._graph.index_of.get(vertex)
        return index is not None and self._dist[index] != INFINITY

    def __iter__(self) -> Iterator[VertexId]:
        dist = self._dist
        for index, vertex in enumerate(self._graph.vertex_ids):
            if dist[index] != INFINITY:
                yield vertex

    def __len__(self) -> int:
        return sum(1 for value in self._dist if value != INFINITY)


class TreeProvider(ABC):
    """The one seam every full distance tree is produced through.

    A provider answers exactly two questions -- one source's dense distance
    row, and a whole batch of sources as a 2-D plane -- over a compiled
    :class:`CSRGraph`'s index space.  Engines own *caching*, *pinning* and
    *statistics*; providers own *computation*, so swapping how trees are
    produced (SciPy C Dijkstra planes, pure-Python Dijkstra, a PHAST sweep
    over a contraction hierarchy) never touches the tree LRU, the
    ``prefetch_trees`` contract, or the :class:`_TreeView` mappings that
    ``MatchContext`` / ``BatchContext`` pin.

    The hard contract, which the whole byte-identical-dispatch guarantee
    rests on: every row a provider returns is **bit-identical** to the row
    :meth:`CSRGraph.tree` computes for that source (``inf`` for unreachable
    vertices included), property-tested in
    ``tests/property/test_phast_trees.py``.
    """

    #: provider name, surfaced as ``RoutingEngine.tree_provider_name``
    name: str = "abstract"

    @abstractmethod
    def tree(self, source_index: int) -> Sequence[float]:
        """Dense distance row of one source index (inf = unreachable)."""

    @abstractmethod
    def trees(self, source_indices: Sequence[int]) -> Sequence[Sequence[float]]:
        """Distance rows of many sources as one ``(len(sources), n)`` plane."""


class PlaneTreeProvider(TreeProvider):
    """The CSR plane path: SciPy C Dijkstra when available, else pure Python.

    A thin adapter over :meth:`CSRGraph.tree` / :meth:`CSRGraph.trees` --
    the provider every engine used implicitly before the seam existed, and
    still the right choice below :data:`PHAST_AUTO_MIN_VERTICES` where one
    C Dijkstra beats any sweep's dispatch overhead.
    """

    name = "plane"

    def __init__(self, graph: CSRGraph) -> None:
        self._graph = graph

    def tree(self, source_index: int) -> Sequence[float]:
        return self._graph.tree(source_index)

    def trees(self, source_indices: Sequence[int]) -> Sequence[Sequence[float]]:
        return self._graph.trees(source_indices)


class ALTIndex:
    """A landmark (ALT) lower-bound index over a CSR graph.

    Landmarks are chosen by farthest-point sampling so they spread over the
    network; each landmark stores its full distance array.  For any vertices
    ``u, v`` and landmark ``L`` the triangle inequality gives the admissible
    bound ``dist(u, v) >= |dist(L, u) - dist(L, v)|`` (the network is
    undirected); the index returns the maximum over all landmarks.
    """

    def __init__(self, graph: CSRGraph, landmarks: int = DEFAULT_LANDMARKS) -> None:
        if landmarks <= 0:
            raise ValueError(f"landmarks must be positive, got {landmarks}")
        self._graph = graph
        self.landmark_indices: List[int] = []
        tables: List[List[float]] = []
        n = len(graph)
        if n:
            # Seed with the vertex farthest from index 0, then repeatedly take
            # the vertex farthest from the already-chosen landmark set.
            seed_tree = graph.tree(0)
            first = self._farthest(seed_tree, exclude=set())
            self.landmark_indices.append(first)
            tables.append(graph.tree(first))
            closest = list(tables[0])
            while len(self.landmark_indices) < min(landmarks, n):
                candidate = self._farthest(closest, exclude=set(self.landmark_indices))
                if candidate is None:
                    break
                self.landmark_indices.append(candidate)
                tree = graph.tree(candidate)
                tables.append(tree)
                closest = [min(a, b) for a, b in zip(closest, tree)]
        self._tables = tables
        if _np is not None and tables:
            self._matrix = _np.asarray(tables, dtype=_np.float64)
        else:
            self._matrix = None

    @staticmethod
    def _farthest(dist: Sequence[float], exclude: set) -> Optional[int]:
        best_index, best_value = None, -1.0
        for index, value in enumerate(dist):
            if value != INFINITY and value > best_value and index not in exclude:
                best_index, best_value = index, value
        return best_index

    @classmethod
    def from_arrays(
        cls,
        graph: CSRGraph,
        landmark_indices: Sequence[int],
        tables: Sequence[Sequence[float]],
    ) -> "ALTIndex":
        """Rehydrate a landmark index from (cached) distance tables."""
        index = cls.__new__(cls)
        index._graph = graph
        index.landmark_indices = _as_int_list(landmark_indices)
        if _np is not None and len(index.landmark_indices):
            index._matrix = _np.asarray(tables, dtype=_np.float64)
            index._tables = list(index._matrix)
        else:
            index._matrix = None
            index._tables = [_as_float_list(table) for table in tables]
        return index

    def to_arrays(self) -> Dict[str, object]:
        """The index's landmark rows, named for the artifact cache."""
        return {
            "landmark_indices": self.landmark_indices,
            "tables": self._matrix if self._matrix is not None else self._tables,
        }

    @property
    def landmark_count(self) -> int:
        """Number of landmarks in the index."""
        return len(self.landmark_indices)

    def lower_bound_indexed(self, source_index: int, target_index: int) -> float:
        """Admissible lower bound on the distance between two dense indices."""
        if source_index == target_index:
            return 0.0
        if self._matrix is not None:
            with _np.errstate(invalid="ignore"):
                diff = _np.abs(self._matrix[:, source_index] - self._matrix[:, target_index])
            best = _np.nanmax(diff) if diff.size else _np.nan
            return 0.0 if _np.isnan(best) else float(best)
        best = 0.0
        for table in self._tables:
            a, b = table[source_index], table[target_index]
            if a == INFINITY and b == INFINITY:
                continue  # landmark sees neither vertex: no information
            if a == INFINITY or b == INFINITY:
                # The network is undirected, so a landmark reaching exactly one
                # of the two vertices proves they are disconnected.
                return INFINITY
            bound = a - b if a >= b else b - a
            if bound > best:
                best = bound
        return best


class ContractionHierarchy:
    """A contraction hierarchy over a CSR graph (the classic CH of Geisberger
    et al., adapted to the undirected network).

    **Preprocessing** contracts vertices one at a time in importance order.
    Importance is the standard lazy-updated priority ``edge difference
    (shortcuts added - edges removed) + deleted neighbours``: cheap to
    compute, and good enough that grid/road networks contract with near-linear
    shortcut counts.  Contracting ``v`` runs a *witness search* per neighbour
    pair ``(u, w)``: a bounded Dijkstra in the remaining core that avoids
    ``v``; only when no witness path of length <= ``w(u,v) + w(v,w)`` is found
    is the shortcut ``u-w`` (weight ``w(u,v)+w(v,w)``, middle vertex ``v``)
    inserted.  Every edge incident to ``v`` at contraction time points to a
    higher-ranked endpoint, so the surviving edges form the *upward graph*,
    stored in the same flat CSR layout :class:`CSRGraph` uses (``up_indptr`` /
    ``up_indices`` / ``up_weights`` plus ``up_mids``, the shortcut middle
    vertices, ``-1`` for original edges).  The network is undirected, so the
    downward graph is exactly the transpose of the upward one and is never
    stored separately.

    **Queries** run a bidirectional Dijkstra from both endpoints that relaxes
    only upward edges; any shortest path has an up-then-down representation
    in the hierarchy, so the two cones must meet on it.  Each search settles
    O(hierarchy height) vertices -- a few hundred on a 20k-vertex grid where
    a plain Dijkstra settles all 20k.

    **Bit-identity.**  The meeting-vertex labels are sums over shortcut
    weights, whose floating-point association differs from a plain Dijkstra's
    left-to-right accumulation by ulps.  The engines promise byte-identical
    answers across backends, so the query never returns those labels:
    it unpacks the winning up-down path to original edges (recursively
    replacing each shortcut by its two halves, found among the middle
    vertex's own upward edges) and refolds the original weights
    left-to-right from the source.  That reproduces the exact addition
    order of the CSR backend's distance tree, so on networks with unique
    shortest paths -- any jittered or real network; unit-weight grids are
    exact anyway -- the returned float is bit-identical to the tree value
    (property-tested in ``tests/property/test_ch_equivalence.py``).
    """

    __slots__ = (
        "rank",
        "order",
        "up_indptr",
        "up_indices",
        "up_weights",
        "up_mids",
        "shortcut_count",
        "down_heads",
        "down_indptr",
        "down_tails",
        "down_weights",
        "down_level_ptr",
        "_dist",
        "_version",
        "_parent",
        "_query_id",
    )

    def __init__(
        self,
        rank: List[int],
        order: List[int],
        up_indptr: List[int],
        up_indices: List[int],
        up_weights: List[float],
        up_mids: List[int],
        shortcut_count: int,
        down_heads: Optional[List[int]] = None,
        down_indptr: Optional[List[int]] = None,
        down_tails: Optional[List[int]] = None,
        down_weights: Optional[List[float]] = None,
        down_level_ptr: Optional[List[int]] = None,
    ) -> None:
        self.rank = rank
        self.order = order
        self.up_indptr = up_indptr
        self.up_indices = up_indices
        self.up_weights = up_weights
        self.up_mids = up_mids
        self.shortcut_count = shortcut_count
        downward = (down_heads, down_indptr, down_tails, down_weights, down_level_ptr)
        if any(part is None for part in downward):
            self._build_downward()  # derive the PHAST sweep order (one O(E) pass)
        else:
            self.down_heads = down_heads
            self.down_indptr = down_indptr
            self.down_tails = down_tails
            self.down_weights = down_weights
            self.down_level_ptr = down_level_ptr
        # Reusable per-query scratch (forward, backward): label arrays with a
        # version stamp instead of per-query dicts -- list indexing is the
        # query loop's hottest operation.  Makes queries non-reentrant, which
        # matches every other engine structure here (single-threaded use).
        n = len(rank)
        self._dist = ([INFINITY] * n, [INFINITY] * n)
        self._version = ([0] * n, [0] * n)
        self._parent = ([-1] * n, [-1] * n)
        self._query_id = 0

    def _build_downward(self) -> None:
        """Flatten the downward graph in PHAST sweep order (one O(E) pass).

        The network is undirected, so the downward graph is exactly the
        transpose of the upward one: vertex ``v`` receives one downward
        in-edge ``u -> v`` for each of its upward edges ``v -> u``.  The
        sweep arrays regroup those edges by *head* in dependency order:

        * ``level[v] = 1 + max(level of v's upward targets)`` (0 for the
          hierarchy tops, which have no upward edges and therefore nothing
          to receive) -- every downward in-edge's tail sits at a strictly
          smaller level, so a sweep that finalises levels in ascending
          order never reads an unfinished label, and all heads *within*
          one level are independent (min-combining is order-exact), which
          is what lets the NumPy sweep relax a whole level at once;
        * ``down_heads`` lists the receiving vertices sorted by
          ``(level, rank)`` -- the rank-permuted downward CSR the artifact
          cache persists -- with ``down_level_ptr`` marking the level
          boundaries and ``down_indptr`` / ``down_tails`` /
          ``down_weights`` holding each head's in-edges contiguously.
        """
        n = len(self.rank)
        up_indptr, up_indices, up_weights = (
            self.up_indptr,
            self.up_indices,
            self.up_weights,
        )
        level = [0] * n
        for v in reversed(self.order):  # rank-descending: targets are done
            best = 0
            for k in range(up_indptr[v], up_indptr[v + 1]):
                candidate = level[up_indices[k]] + 1
                if candidate > best:
                    best = candidate
            level[v] = best
        rank = self.rank
        heads = [v for v in range(n) if up_indptr[v + 1] > up_indptr[v]]
        heads.sort(key=lambda v: (level[v], rank[v]))
        down_indptr = [0]
        down_tails: List[int] = []
        down_weights: List[float] = []
        down_level_ptr = [0]
        previous_level: Optional[int] = None
        for v in heads:
            if level[v] != previous_level:
                if previous_level is not None:
                    down_level_ptr.append(len(down_indptr) - 1)
                previous_level = level[v]
            for k in range(up_indptr[v], up_indptr[v + 1]):
                down_tails.append(up_indices[k])
                down_weights.append(up_weights[k])
            down_indptr.append(len(down_tails))
        down_level_ptr.append(len(heads))
        self.down_heads = heads
        self.down_indptr = down_indptr
        self.down_tails = down_tails
        self.down_weights = down_weights
        self.down_level_ptr = down_level_ptr

    # ------------------------------------------------------------------
    # preprocessing
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls, graph: CSRGraph, settle_cap: int = CH_WITNESS_SETTLE_CAP
    ) -> "ContractionHierarchy":
        """Contract the whole graph and return the flattened hierarchy."""
        n = len(graph.vertex_ids)
        indptr, indices, weights = graph.indptr, graph.indices, graph.weights
        # The shrinking core: neighbour -> (weight, middle vertex | -1),
        # holding only uncontracted vertices.  Parallel edges collapse to
        # their minimum at compile time.
        adj: List[Dict[int, Tuple[float, int]]] = [{} for _ in range(n)]
        for u in range(n):
            row = adj[u]
            for k in range(indptr[u], indptr[u + 1]):
                v = indices[k]
                w = weights[k]
                current = row.get(v)
                if current is None or w < current[0]:
                    row[v] = (w, -1)
        rank = [-1] * n
        order: List[int] = []
        deleted = [0] * n
        level = [0] * n
        up_adj: List[List[Tuple[int, float, int]]] = [[] for _ in range(n)]
        shortcut_count = 0
        heappush, heappop = heapq.heappush, heapq.heappop

        def witness_distances(
            source: int, excluded: int, targets: List[int], limit: float
        ) -> Dict[int, float]:
            """Distances from ``source`` in the core minus ``excluded``,
            restricted to ``targets`` within ``limit`` (bounded search)."""
            dist = {source: 0.0}
            heap = [(0.0, source)]
            remaining = set(targets)
            found: Dict[int, float] = {}
            settled = 0
            while heap and remaining and settled < settle_cap:
                d, x = heappop(heap)
                if d > dist[x]:
                    continue
                if d > limit:
                    break
                settled += 1
                if x in remaining:
                    remaining.discard(x)
                    found[x] = d
                for y, (w, _mid) in adj[x].items():
                    if y == excluded:
                        continue
                    nd = d + w
                    if nd <= limit and nd < dist.get(y, INFINITY):
                        dist[y] = nd
                        heappush(heap, (nd, y))
            return found

        def plan(v: int) -> Tuple[List[Tuple[int, int, float]], int]:
            """The shortcuts contracting ``v`` now would insert, plus degree.

            Below :data:`CH_DENSE_DEGREE` each neighbour pair is cleared by a
            bounded Dijkstra witness search; above it only the direct edge
            between the pair is consulted (see the constant's rationale).
            """
            neighbours = sorted(adj[v].items())
            degree = len(neighbours)
            shortcuts: List[Tuple[int, int, float]] = []
            if degree > CH_DENSE_DEGREE:
                for i, (u, (wu, _mu)) in enumerate(neighbours[:-1]):
                    adj_u = adj[u]
                    for t, (wt, _mt) in neighbours[i + 1 :]:
                        via = wu + wt
                        direct = adj_u.get(t)
                        if direct is not None and direct[0] <= via:
                            continue
                        # One-hop witness: any shared neighbour x (!= v) with
                        # w(u,x) + w(x,t) <= via bypasses the shortcut.  Scan
                        # the smaller adjacency of the pair.
                        adj_t = adj[t]
                        first, second = (
                            (adj_u, adj_t) if len(adj_u) <= len(adj_t) else (adj_t, adj_u)
                        )
                        for x, (wx, _mx) in first.items():
                            if x == v:
                                continue
                            other = second.get(x)
                            if other is not None and wx + other[0] <= via:
                                break
                        else:
                            shortcuts.append((u, t, via))
                return shortcuts, degree
            for i, (u, (wu, _mu)) in enumerate(neighbours[:-1]):
                rest = neighbours[i + 1 :]
                limit = wu + max(wt for _t, (wt, _m) in rest)
                found = witness_distances(u, v, [t for t, _e in rest], limit)
                for t, (wt, _mt) in rest:
                    via = wu + wt
                    witness = found.get(t)
                    if witness is None or witness > via:
                        shortcuts.append((u, t, via))
            return shortcuts, degree

        heap: List[Tuple[int, int]] = []
        for v in range(n):
            shortcuts, degree = plan(v)
            heappush(heap, (len(shortcuts) - degree, v))
        while heap:
            _priority, v = heappop(heap)
            if rank[v] >= 0:
                continue
            # Lazy update: re-evaluate against the current core; requeue
            # unless v still beats the best remaining candidate.  The level
            # term (depth of the contracted neighbourhood under v) spreads
            # contraction evenly over the network, which keeps the core
            # sparse far longer on grid-like topologies.
            shortcuts, degree = plan(v)
            priority = len(shortcuts) - degree + deleted[v] + level[v]
            if heap and priority > heap[0][0]:
                heappush(heap, (priority, v))
                continue
            neighbours = sorted(adj[v].items())
            up_adj[v] = [(u, w, mid) for u, (w, mid) in neighbours]
            for u, t, via in shortcuts:
                current = adj[u].get(t)
                if current is None:
                    shortcut_count += 1
                    adj[u][t] = (via, v)
                    adj[t][u] = (via, v)
                elif via < current[0]:
                    adj[u][t] = (via, v)
                    adj[t][u] = (via, v)
            next_level = level[v] + 1
            for u, _edge in neighbours:
                del adj[u][v]
                deleted[u] += 1
                if next_level > level[u]:
                    level[u] = next_level
            adj[v].clear()
            rank[v] = len(order)
            order.append(v)
        up_indptr = [0]
        up_indices: List[int] = []
        up_weights: List[float] = []
        up_mids: List[int] = []
        for v in range(n):
            for u, w, mid in up_adj[v]:
                up_indices.append(u)
                up_weights.append(w)
                up_mids.append(mid)
            up_indptr.append(len(up_indices))
        return cls(rank, order, up_indptr, up_indices, up_weights, up_mids, shortcut_count)

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        rank: Sequence[int],
        up_indptr: Sequence[int],
        up_indices: Sequence[int],
        up_weights: Sequence[float],
        up_mids: Sequence[int],
        shortcut_count: Sequence[int],
        down_heads: Optional[Sequence[int]] = None,
        down_indptr: Optional[Sequence[int]] = None,
        down_tails: Optional[Sequence[int]] = None,
        down_weights: Optional[Sequence[float]] = None,
        down_level_ptr: Optional[Sequence[int]] = None,
    ) -> "ContractionHierarchy":
        """Rehydrate a hierarchy from (cached) flat arrays.

        The rank-permuted downward CSR (the PHAST sweep order) is loaded
        when the artifact carries it and recomputed from the upward arrays
        otherwise, so hierarchies persisted before the sweep arrays existed
        stay loadable.

        Raises:
            ValueError: when ``rank`` is not a permutation of the vertex
                indices -- a corrupted artifact payload.  The cache's decode
                guard turns this into a miss (rebuild), and the check also
                stops a negative rank from silently wrapping into a
                mis-ordered hierarchy via Python's negative indexing.
        """
        rank_list = _as_int_list(rank)
        if sorted(rank_list) != list(range(len(rank_list))):
            raise ValueError("rank array is not a permutation of the vertex indices")
        order = [0] * len(rank_list)
        for vertex, position in enumerate(rank_list):
            order[position] = vertex
        return cls(
            rank_list,
            order,
            _as_int_list(up_indptr),
            _as_int_list(up_indices),
            _as_float_list(up_weights),
            _as_int_list(up_mids),
            int(shortcut_count[0]),
            down_heads=None if down_heads is None else _as_int_list(down_heads),
            down_indptr=None if down_indptr is None else _as_int_list(down_indptr),
            down_tails=None if down_tails is None else _as_int_list(down_tails),
            down_weights=(
                None if down_weights is None else _as_float_list(down_weights)
            ),
            down_level_ptr=(
                None if down_level_ptr is None else _as_int_list(down_level_ptr)
            ),
        )

    @classmethod
    def from_shared(
        cls,
        rank: Sequence[int],
        up_indptr: Sequence[int],
        up_indices: Sequence[int],
        up_weights: Sequence[float],
        up_mids: Sequence[int],
        shortcut_count: Sequence[int],
        down_heads: Sequence[int],
        down_indptr: Sequence[int],
        down_tails: Sequence[int],
        down_weights: Sequence[float],
        down_level_ptr: Sequence[int],
    ) -> "ContractionHierarchy":
        """Wrap shared-memory ndarrays without copying (worker attach path).

        The arrays stay exactly the ndarrays they arrive as; only ``order``
        (the rank inverse) is derived, and the downward sweep arrays are
        mandatory -- the parent always exports them, so the worker never
        re-runs :meth:`_build_downward` over read-only views.
        """
        if _np is None:  # pragma: no cover - attach requires NumPy upstream
            raise RuntimeError("shared-memory attach requires NumPy")
        order = _np.argsort(_np.asarray(rank, dtype=_np.int64), kind="stable")
        return cls(
            rank,
            order,
            up_indptr,
            up_indices,
            up_weights,
            up_mids,
            int(shortcut_count[0]),
            down_heads=down_heads,
            down_indptr=down_indptr,
            down_tails=down_tails,
            down_weights=down_weights,
            down_level_ptr=down_level_ptr,
        )

    def to_arrays(self) -> Dict[str, Sequence[float]]:
        """The hierarchy's flat arrays, named for the artifact cache.

        Includes the rank-permuted downward CSR, so a warm restart serves
        PHAST sweeps straight from the ``.npz`` without re-deriving the
        sweep order.
        """
        return {
            "rank": self.rank,
            "up_indptr": self.up_indptr,
            "up_indices": self.up_indices,
            "up_weights": self.up_weights,
            "up_mids": self.up_mids,
            "shortcut_count": [self.shortcut_count],
            "down_heads": self.down_heads,
            "down_indptr": self.down_indptr,
            "down_tails": self.down_tails,
            "down_weights": self.down_weights,
            "down_level_ptr": self.down_level_ptr,
        }

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def distance(self, source_index: int, target_index: int) -> Optional[float]:
        """Exact distance between two dense indices, ``None`` if disconnected.

        Bidirectional upward Dijkstra; the returned float is refolded from
        the unpacked original-edge path, left-to-right from ``source_index``
        (see the class docstring for why that matters).
        """
        if source_index == target_index:
            return 0.0
        up_indptr, up_indices = self.up_indptr, self.up_indices
        up_weights = self.up_weights
        heappush, heappop = heapq.heappush, heapq.heappop
        self._query_id += 1
        query_id = self._query_id
        dists, versions, parents = self._dist, self._version, self._parent
        heaps = ([(0.0, source_index)], [(0.0, target_index)])
        for side, start in ((0, source_index), (1, target_index)):
            dists[side][start] = 0.0
            versions[side][start] = query_id
            parents[side][start] = -1
        best = INFINITY
        meeting = -1
        while heaps[0] or heaps[1]:
            forward_top = heaps[0][0][0] if heaps[0] else INFINITY
            backward_top = heaps[1][0][0] if heaps[1] else INFINITY
            # Safe stop: both cones' frontiers are already past the best
            # meeting candidate, so no future settle can improve it.
            if (forward_top if forward_top <= backward_top else backward_top) >= best:
                break
            side = 0 if forward_top <= backward_top else 1
            heap = heaps[side]
            dist, version, parent = dists[side], versions[side], parents[side]
            other_dist, other_version = dists[1 - side], versions[1 - side]
            d, x = heappop(heap)
            if d > dist[x]:
                continue
            if other_version[x] == query_id:
                candidate = d + other_dist[x]
                if candidate < best:
                    best = candidate
                    meeting = x
            # Stall-on-demand: if an upward neighbour proves x's label is not
            # an optimal up-path label, x cannot lie on the winning up-down
            # path -- skip relaxing its (possibly large) edge row.
            stalled = False
            updates: List[Tuple[int, float, int]] = []
            for k in range(up_indptr[x], up_indptr[x + 1]):
                y = up_indices[k]
                w = up_weights[k]
                if version[y] == query_id:
                    dy = dist[y]
                    if dy + w < d:
                        stalled = True
                        break
                    nd = d + w
                    if nd < dy:
                        updates.append((y, nd, k))
                else:
                    updates.append((y, d + w, k))
            if stalled:
                continue
            for y, nd, k in updates:
                dist[y] = nd
                version[y] = query_id
                parent[y] = k
                heappush(heap, (nd, y))
        if meeting < 0:
            return None
        return self._refold(source_index, target_index, meeting)

    def _refold(self, source_index: int, target_index: int, meeting: int) -> float:
        """Unpack the winning up-down path and refold the original weights.

        Parent entries hold the *edge id* of the relaxed upward edge; the
        edge's tail vertex is recovered from ``up_indptr`` by bisection
        (a handful of lookups along the final path only).
        """
        up_indptr, up_weights, up_mids = self.up_indptr, self.up_weights, self.up_mids
        edges: List[Tuple[int, int, float, int]] = []
        x = meeting
        forward_parent = self._parent[0]
        while x != source_index:
            k = forward_parent[x]
            tail = bisect_right(up_indptr, k) - 1
            edges.append((tail, x, up_weights[k], up_mids[k]))
            x = tail
        edges.reverse()
        x = meeting
        backward_parent = self._parent[1]
        while x != target_index:
            k = backward_parent[x]
            tail = bisect_right(up_indptr, k) - 1
            edges.append((x, tail, up_weights[k], up_mids[k]))
            x = tail
        total = 0.0
        for weight in self._unpack_weights(edges):
            total += weight
        # The weights may be NumPy scalars when the hierarchy is backed by
        # shared-memory ndarrays; callers are promised plain floats.
        return float(total)

    def _unpack_weights(
        self, edges: List[Tuple[int, int, float, int]]
    ) -> Iterator[float]:
        """Original edge weights of an up-down path, in path order.

        Each shortcut ``(a, b)`` with middle vertex ``m`` splits into the two
        edges ``(a, m)`` and ``(m, b)`` recorded among ``m``'s upward edges
        (``m`` was contracted before either endpoint, so both halves were
        frozen there).  Iterative stack so hierarchy depth never hits the
        recursion limit.
        """
        stack = list(reversed(edges))
        while stack:
            a, b, weight, mid = stack.pop()
            if mid < 0:
                yield weight
                continue
            first_weight, first_mid = self._upward_edge(mid, a)
            second_weight, second_mid = self._upward_edge(mid, b)
            stack.append((mid, b, second_weight, second_mid))
            stack.append((a, mid, first_weight, first_mid))

    def _upward_edge(self, vertex: int, neighbour: int) -> Tuple[float, int]:
        """The upward edge ``vertex -> neighbour`` (exists by construction)."""
        for k in range(self.up_indptr[vertex], self.up_indptr[vertex + 1]):
            if self.up_indices[k] == neighbour:
                return self.up_weights[k], self.up_mids[k]
        raise RuntimeError(
            f"contraction hierarchy is inconsistent: no upward edge "
            f"{vertex} -> {neighbour}"
        )  # pragma: no cover - structurally impossible


class PHASTTreeProvider(TreeProvider):
    """Hierarchy-native full distance trees: a PHAST downward sweep.

    PHAST (Delling et al.'s "PHAST: hardware-accelerated shortest path
    trees") turns a contraction hierarchy into a one-to-all algorithm:

    1. **Upward phase** -- a plain Dijkstra from the source restricted to
       upward edges.  Its search space is the source's upward cone, a few
       hundred vertices on a city-sized network.
    2. **Downward sweep** -- every shortest path is up-then-down in the
       hierarchy, so one pass over the downward edges (the transpose of the
       upward graph) in rank-descending dependency order finalises every
       remaining vertex: ``d[v] = min(d[v], d[u] + w)`` over v's downward
       in-edges, whose tails are all finalised before v.  No queue, no
       priority -- just a fixed scan order, which is what vectorises: the
       NumPy path relaxes one whole *level* of independent vertices at a
       time (gather, add, ``minimum.reduceat``), for a batch of ``k``
       sources as one ``(k, n)`` plane.
    3. **Refold** -- sweep labels are sums over shortcut weights, whose
       floating-point association differs from a Dijkstra's left-to-right
       accumulation by ulps, and the engines promise rows **bit-identical**
       to :meth:`CSRGraph.tree`.  The sweep labels are therefore never
       returned; they only certify the *structure* of the shortest-path
       forest.  The refold re-derives every label over original edges in
       parents-first order: ``d[v] = min(d[u] + w(u, v))`` over v's
       original in-neighbours, taking exactly the already-refolded ones.
       A Dijkstra's settled labels satisfy the same fixpoint (a relaxation
       from a later-settled neighbour can never lower a label in monotone
       float arithmetic), so visiting each vertex after its Dijkstra
       parent reproduces the reference labels float for float.  The
       pure-Python path visits vertices in ascending sweep-label order; a
       parent lies one positive edge weight below its child -- a real,
       weight-scale margin, far beyond the sweep labels' ulp-scale error
       wherever shortest paths are unique, and value-irrelevant under
       exact-arithmetic ties (the same contract the CH point query's
       refolding documents).  The NumPy path exploits that same margin to
       fold *generations* at once: vertices are bucketed by
       ``floor(label / (min_edge_weight / 2))``, so a parent and child can
       never share a bucket and each bucket is one segmented
       gather-add-``minimum.reduceat`` over the whole batch.

    The provider never touches SciPy: the vectorised path needs NumPy only,
    and without NumPy a scalar sweep over the same arrays serves the
    fallback -- so the ch backend's tree path has no SciPy dependency left.
    """

    name = "phast"

    def __init__(self, graph: CSRGraph, hierarchy: ContractionHierarchy) -> None:
        self._graph = graph
        self._hierarchy = hierarchy
        self._use_numpy = _np is not None
        if self._use_numpy:
            self._np_down_heads = _np.asarray(hierarchy.down_heads, dtype=_np.int64)
            self._np_down_indptr = _np.asarray(hierarchy.down_indptr, dtype=_np.int64)
            self._np_down_tails = _np.asarray(hierarchy.down_tails, dtype=_np.int64)
            self._np_down_weights = _np.asarray(
                hierarchy.down_weights, dtype=_np.float64
            )
            # float32 copy of the downward weights: the sweep's per-level
            # gather-add is memory-bound, so halving the plane and weight
            # widths roughly halves its cost.  The sweep labels only ever
            # certify *structure* (bucket membership and visit order); the
            # refold re-derives every exact label in float64 over original
            # edges, and a runtime guard falls back to the float64 sweep
            # whenever float32 rounding could threaten the bucket
            # separation (see :meth:`_trees_numpy`).
            self._np_down_weights32 = self._np_down_weights.astype(_np.float32)
            self._level_count = max(len(hierarchy.down_level_ptr) - 1, 1)
            self._np_indptr = _np.asarray(graph.indptr, dtype=_np.int64)
            self._np_indices = _np.asarray(graph.indices, dtype=_np.int64)
            self._np_weights = _np.asarray(graph.weights, dtype=_np.float64)
            self._np_degrees = _np.diff(self._np_indptr)
            # Half the smallest edge weight: the refold's bucket width (a
            # parent and its child differ by a whole edge weight, so they
            # can never land in the same bucket).
            self._bucket_width = (
                float(self._np_weights.min()) / 2.0 if self._np_weights.size else 1.0
            )

    # ------------------------------------------------------------------
    def tree(self, source_index: int) -> Sequence[float]:
        if self._use_numpy:
            return self._trees_numpy([source_index])[0]
        return self._tree_python(source_index)

    def trees(self, source_indices: Sequence[int]) -> Sequence[Sequence[float]]:
        sources = list(source_indices)
        if self._use_numpy:
            return self._trees_numpy(sources)
        return [self._tree_python(index) for index in sources]

    # ------------------------------------------------------------------
    # shared upward phase
    # ------------------------------------------------------------------
    def _upward_labels(self, source_index: int) -> Dict[int, float]:
        """Dijkstra over upward edges only: the source's upward cone."""
        hierarchy = self._hierarchy
        up_indptr = hierarchy.up_indptr
        up_indices = hierarchy.up_indices
        up_weights = hierarchy.up_weights
        dist: Dict[int, float] = {source_index: 0.0}
        heap: List[Tuple[float, int]] = [(0.0, source_index)]
        push, pop = heapq.heappush, heapq.heappop
        while heap:
            d, x = pop(heap)
            if d > dist[x]:
                continue
            for k in range(up_indptr[x], up_indptr[x + 1]):
                y = up_indices[k]
                nd = d + up_weights[k]
                if nd < dist.get(y, INFINITY):
                    dist[y] = nd
                    push(heap, (nd, y))
        return dist

    # ------------------------------------------------------------------
    # pure-Python path
    # ------------------------------------------------------------------
    def _tree_python(self, source_index: int) -> List[float]:
        n = len(self._graph.vertex_ids)
        approx = [INFINITY] * n
        for vertex, label in self._upward_labels(source_index).items():
            approx[vertex] = label
        hierarchy = self._hierarchy
        heads, down_indptr = hierarchy.down_heads, hierarchy.down_indptr
        tails, weights = hierarchy.down_tails, hierarchy.down_weights
        for position, v in enumerate(heads):
            best = approx[v]
            for k in range(down_indptr[position], down_indptr[position + 1]):
                candidate = approx[tails[k]] + weights[k]
                if candidate < best:
                    best = candidate
            approx[v] = best
        return self._refold_python(source_index, approx)

    def _refold_python(self, source_index: int, approx: List[float]) -> List[float]:
        """Exact labels from sweep labels: fold original edges parents-first.

        Vertices are visited in ascending sweep-label order; a vertex's
        Dijkstra parent lies one positive edge weight below it, far beyond
        the sweep labels' ulp-scale error, so parents are always visited
        first and ``min`` over the already-folded in-neighbours reproduces
        the reference Dijkstra's final label exactly (its settled labels
        satisfy the same fixpoint: relaxations from later-settled
        neighbours can never lower a label in monotone float arithmetic).
        """
        graph = self._graph
        indptr, neighbours, weights = graph.indptr, graph.indices, graph.weights
        order = [v for v in range(len(approx)) if approx[v] != INFINITY]
        order.sort(key=approx.__getitem__)
        exact = [INFINITY] * len(approx)
        exact[source_index] = 0.0
        for v in order:
            if v == source_index:
                continue
            best = INFINITY
            for k in range(indptr[v], indptr[v + 1]):
                candidate = exact[neighbours[k]] + weights[k]
                if candidate < best:
                    best = candidate
            exact[v] = best
        return exact

    # ------------------------------------------------------------------
    # NumPy path
    # ------------------------------------------------------------------
    def _trees_numpy(self, sources: List[int]):
        n = len(self._graph.vertex_ids)
        if not sources:
            return _np.empty((0, n), dtype=_np.float64)
        if len(sources) > PHAST_SOURCE_CHUNK:
            return _np.vstack(
                [
                    self._trees_numpy(sources[start : start + PHAST_SOURCE_CHUNK])
                    for start in range(0, len(sources), PHAST_SOURCE_CHUNK)
                ]
            )
        dist = self._sweep(sources, _np.float32)
        # Guard the float32 labels before trusting them for bucketing: the
        # refold's correctness needs a parent and its child (a true gap of
        # at least ``min_edge_weight = 2 * bucket_width``) to land in
        # different buckets.  Each label is a sum of at most
        # ``level_count + O(1)`` float32 additions, so its error is bounded
        # by ``max_label * eps32 * (level_count + 4)``; as long as twice
        # that bound stays within one bucket width the approximate gap is
        # still >= bucket_width and floor-bucketing cannot merge the pair.
        # Pathological networks (tiny min weight under a huge diameter)
        # fail the check and re-sweep in float64, which restores the
        # weight-scale margin the original analysis relied on.
        finite = dist[_np.isfinite(dist)]
        max_label = float(finite.max()) if finite.size else 0.0
        err_bound = (
            max_label * float(_np.finfo(_np.float32).eps) * (self._level_count + 4)
        )
        if 2.0 * err_bound > self._bucket_width:
            dist = self._sweep(sources, _np.float64)
        return self._refold_numpy(sources, dist)

    def _sweep(self, sources: List[int], dtype):
        """The downward relaxation over one level at a time, in ``dtype``."""
        n = len(self._graph.vertex_ids)
        k = len(sources)
        dist = _np.full((k, n), INFINITY, dtype=dtype)
        for row, source in enumerate(sources):
            labels = self._upward_labels(source)
            dist[row, list(labels.keys())] = list(labels.values())
        heads, down_indptr = self._np_down_heads, self._np_down_indptr
        tails = self._np_down_tails
        down_weights = (
            self._np_down_weights32
            if dtype == _np.float32
            else self._np_down_weights
        )
        level_ptr = self._hierarchy.down_level_ptr
        minimum = _np.minimum
        for level in range(len(level_ptr) - 1):
            a, b = level_ptr[level], level_ptr[level + 1]
            if a == b:
                continue
            e0, e1 = int(down_indptr[a]), int(down_indptr[b])
            candidates = dist[:, tails[e0:e1]] + down_weights[e0:e1]
            mins = minimum.reduceat(candidates, down_indptr[a:b] - e0, axis=1)
            level_heads = heads[a:b]
            dist[:, level_heads] = minimum(dist[:, level_heads], mins)
        return dist

    #: Refuse the bucket fold past this many non-empty buckets (a pathological
    #: min-weight / diameter ratio) and refold per source in Python instead --
    #: the generation loop's per-bucket dispatch would otherwise dominate.
    REFOLD_BUCKET_CAP = 32768

    def _refold_numpy(self, sources: List[int], approx):
        """Vectorised exact refold of a whole sweep plane (see class docs).

        All reachable (source, vertex) cells of the batch are bucketed by
        ``floor(label / bucket_width)`` and folded one bucket generation at
        a time: each generation is a single segmented
        gather-add-``minimum.reduceat`` over the concatenated in-edge rows
        of its cells, reading only already-folded labels (unfolded
        neighbours read as inf and every cell's Dijkstra parent sits in an
        earlier bucket, so the segmented min *is* the reference Dijkstra's
        final label -- see the class docstring).
        """
        graph = self._graph
        n = len(graph.vertex_ids)
        k = len(sources)
        exact = _np.full((k, n), INFINITY, dtype=_np.float64)
        rows = _np.arange(k)
        source_columns = _np.asarray(sources, dtype=_np.int64)
        exact[rows, source_columns] = 0.0
        neighbours, weights = self._np_indices, self._np_weights
        if not neighbours.shape[0]:
            return exact
        flat_approx = approx.reshape(-1)
        folds = _np.isfinite(flat_approx)
        folds[rows * n + source_columns] = False  # sources are exact already
        positions = _np.flatnonzero(folds)  # flat (row * n + column) cells
        if not positions.size:
            return exact
        # Bucket keys are always computed in float64: the sweep plane may be
        # float32 (guarded upstream), and a float32 divide could round a
        # label across a bucket boundary the guard's analysis did not cover.
        labels = flat_approx[positions]
        if labels.dtype != _np.float64:
            labels = labels.astype(_np.float64)
        keys = _np.floor(labels / self._bucket_width).astype(_np.int64)
        order = _np.argsort(keys, kind="stable")
        positions, keys = positions[order], keys[order]
        starts = _np.concatenate(
            ([0], _np.flatnonzero(_np.diff(keys) != 0) + 1)
        )
        if starts.size > self.REFOLD_BUCKET_CAP:
            return _np.asarray(
                [
                    self._refold_python(source, approx[row].tolist())
                    for row, source in enumerate(sources)
                ],
                dtype=_np.float64,
            )
        ends = _np.append(starts[1:], positions.size)
        # Concatenate every cell's in-edge row (the graph is symmetric, so a
        # vertex's in-edges are its CSR out-row) once, aligned with the
        # bucket order, so each generation below is pure slicing.
        vertices = positions % n
        degrees = self._np_degrees[vertices]
        edge_ptr = _np.concatenate(([0], _np.cumsum(degrees)))
        total_edges = int(edge_ptr[-1])
        spans = _np.repeat(edge_ptr[:-1], degrees)
        edge_index = (
            _np.arange(total_edges, dtype=_np.int64)
            - spans
            + _np.repeat(self._np_indptr[vertices], degrees)
        )
        edge_weight = weights[edge_index]
        # flat index of each in-edge's tail cell, in the tail's own row
        tail_cells = _np.repeat((positions // n) * n, degrees) + neighbours[edge_index]
        flat_exact = exact.reshape(-1)
        if _scatter_refold_enabled():
            # The reduceat-free fold: scatter-min every in-edge contribution
            # straight into its destination cell.  Destinations start at inf
            # and the gather still happens before the scatter, so a
            # same-bucket neighbour reads as inf exactly as it does in the
            # segmented fold -- min is exact in floats, so the two folds are
            # bit-identical.
            dest_cells = _np.repeat(positions, degrees)
            scatter_min = _np.minimum.at
            for s, t in zip(starts.tolist(), ends.tolist()):
                e0, e1 = int(edge_ptr[s]), int(edge_ptr[t])
                contributions = flat_exact[tail_cells[e0:e1]] + edge_weight[e0:e1]
                scatter_min(flat_exact, dest_cells[e0:e1], contributions)
            return exact
        reduceat = _np.minimum.reduceat
        for s, t in zip(starts.tolist(), ends.tolist()):
            e0, e1 = int(edge_ptr[s]), int(edge_ptr[t])
            contributions = flat_exact[tail_cells[e0:e1]] + edge_weight[e0:e1]
            flat_exact[positions[s:t]] = reduceat(
                contributions, edge_ptr[s:t] - e0
            )
        return exact


def _path_from_parents(graph: CSRGraph, source: VertexId, target: VertexId) -> PathResult:
    """Reconstruct the shortest path over a CSR graph via a parent tree.

    Shared by the CSR and table engines (paths are only needed for vehicle
    movement, so neither caches them).
    """
    source_index = graph.index(source)
    target_index = graph.index(target)
    if source == target:
        return PathResult(source, target, 0.0, (source,))
    dist, parents = graph.tree_with_parents(source_index)
    if dist[target_index] == INFINITY:
        raise DisconnectedError(source, target)
    vertex_ids = graph.vertex_ids
    indices = [target_index]
    while indices[-1] != source_index:
        indices.append(parents[indices[-1]])
    indices.reverse()
    return PathResult(
        source, target, float(dist[target_index]), tuple(vertex_ids[i] for i in indices)
    )


def _fingerprint_for(network: RoadNetwork, cache: Optional[ArtifactCache]) -> Optional[str]:
    """The network's content hash when a usable cache is attached, else None."""
    if cache is None or not cache.available:
        return None
    return network_fingerprint(network)


def _load_or_build_artifact(
    stats: EngineStats,
    cache: Optional[ArtifactCache],
    fingerprint: Optional[str],
    kind: str,
    decode,
    build,
    encode,
    params: str = "",
):
    """The one load-or-build-and-persist pattern every engine compile uses.

    ``decode(arrays)`` rehydrates a cached artifact (returning ``None`` --
    or raising ``KeyError``/``ValueError``/``TypeError`` on a malformed
    payload -- demotes the hit to a miss), ``build()`` computes it from
    scratch, ``encode(value)`` names its arrays for persistence.  Elapsed
    time lands in ``stats.load_seconds`` (cache hit) or
    ``stats.build_seconds`` (fresh build), never both.
    """
    started = time.perf_counter()
    if fingerprint is not None:
        arrays = cache.load(kind, fingerprint, params)
        if arrays is not None:
            try:
                value = decode(arrays)
            except (KeyError, IndexError, ValueError, TypeError):
                value = None
            if value is not None:
                stats.load_seconds += time.perf_counter() - started
                return value
    value = build()
    if fingerprint is not None:
        cache.save(kind, fingerprint, encode(value), params)
    stats.build_seconds += time.perf_counter() - started
    return value


def _compile_csr_graph(
    network: RoadNetwork,
    cache: Optional[ArtifactCache],
    fingerprint: Optional[str],
    stats: EngineStats,
) -> CSRGraph:
    """Load the network's CSR arrays from the cache, or compile and persist."""
    return _load_or_build_artifact(
        stats,
        cache,
        fingerprint,
        "csr",
        decode=lambda arrays: CSRGraph.from_arrays(
            arrays["vertex_ids"], arrays["indptr"], arrays["indices"], arrays["weights"]
        ),
        build=lambda: CSRGraph(network),
        encode=lambda graph: graph.to_arrays(),
    )


class CSREngine(RoutingEngine):
    """Array-backed routing over flat CSR adjacency, with optional ALT bounds.

    Single-source trees are computed over the CSR arrays (in C via SciPy when
    available, otherwise with the pure-Python int-indexed heap Dijkstra) and
    cached with the same FIFO policy as :class:`DistanceOracle`, including the
    symmetric source/target reuse the matchers rely on.

    With an :class:`~repro.roadnet.artifacts.ArtifactCache` attached, the CSR
    compile and the ALT landmark tables round-trip through ``.npz`` artifacts
    keyed by the network's content hash (see :mod:`repro.roadnet.artifacts`).
    """

    backend = "csr"

    def __init__(
        self,
        network: RoadNetwork,
        max_cached_sources: int = 1024,
        landmarks: int = 0,
        cache: Optional[ArtifactCache] = None,
    ) -> None:
        if max_cached_sources <= 0:
            raise ValueError("max_cached_sources must be positive")
        self._network = network
        self._max_cached_sources = max_cached_sources
        self._landmarks = landmarks
        self._cache = cache
        self._fingerprint = _fingerprint_for(network, cache)
        self.stats = EngineStats()
        self._graph = _compile_csr_graph(network, cache, self._fingerprint, self.stats)
        #: the one seam every full tree is produced through (overridden by
        #: the ch backend when it goes hierarchy-native)
        self._tree_provider: TreeProvider = PlaneTreeProvider(self._graph)
        #: per-source tree LRU; rows are ndarray views (or lists without SciPy)
        self._trees: "OrderedDict[int, Sequence[float]]" = OrderedDict()
        self._alt = self._compile_alt() if landmarks > 0 else None
        if landmarks > 0:
            self.backend = "csr+alt"

    def _compile_alt(self) -> ALTIndex:
        """Load the landmark tables from the cache, or build and persist."""
        return _load_or_build_artifact(
            self.stats,
            self._cache,
            self._fingerprint,
            "alt",
            decode=lambda arrays: ALTIndex.from_arrays(
                self._graph, arrays["landmark_indices"], arrays["tables"]
            ),
            build=lambda: ALTIndex(self._graph, self._landmarks),
            encode=lambda index: index.to_arrays(),
            params=f"l{self._landmarks}",
        )

    @property
    def network(self) -> RoadNetwork:
        return self._network

    @property
    def graph(self) -> CSRGraph:
        """The compiled CSR adjacency (rebuilt by :meth:`invalidate`)."""
        return self._graph

    @property
    def alt(self) -> Optional[ALTIndex]:
        """The landmark index, when the engine was built with one."""
        return self._alt

    @property
    def tree_provider(self) -> TreeProvider:
        """The provider every full distance tree is computed through."""
        return self._tree_provider

    @property
    def tree_provider_name(self) -> str:
        return self._tree_provider.name

    def _bill_trees(self, count: int) -> None:
        """Attribute freshly computed trees to the provider that made them."""
        if self._tree_provider.name == "phast":
            self.stats.phast_sweeps += count
        else:
            self.stats.dijkstra_runs += count

    # ------------------------------------------------------------------
    def distance(self, source: VertexId, target: VertexId) -> float:
        self.stats.queries += 1
        if source == target:
            return 0.0
        # Root the answering tree at the smaller vertex id (the network is
        # undirected, so either root is correct).  The canonical root makes
        # every answer bit-for-bit independent of which trees happen to be
        # cached -- the batched dispatch pipeline relies on this to reproduce
        # the sequential loop's floats exactly.
        root, leaf = (source, target) if source <= target else (target, source)
        root_index = self._graph.index(root)
        leaf_index = self._graph.index(leaf)
        value = self._tree(root_index)[leaf_index]
        if value == INFINITY:
            raise DisconnectedError(source, target)
        return float(value)

    def distances_from(self, source: VertexId) -> Mapping[VertexId, float]:
        self.stats.queries += 1
        return _TreeView(self._graph, self._tree(self._graph.index(source)))

    def prefetch_trees(
        self, sources: Sequence[VertexId]
    ) -> Mapping[VertexId, Mapping[VertexId, float]]:
        """Bulk-compute the missing trees of ``sources`` in one vectorised call.

        All missing sources go through **one** :meth:`TreeProvider.trees`
        plane (one SciPy C call on the plane provider, one batched PHAST
        sweep on the hierarchy-native provider); each computed row is
        detached from the plane, stored in the tree LRU and billed as
        exactly one ``dijkstra_runs`` / ``phast_sweeps`` depending on the
        provider.  Sources whose tree is already cached are returned
        from the cache without touching any counter; unknown vertices are
        skipped.  The returned views pin their rows by reference, so cache
        eviction -- including churn caused by a prefetch larger than the LRU
        -- can never invalidate a caller's pinned tree mid-batch.
        """
        graph = self._graph
        resolved: Dict[VertexId, int] = {}
        for vertex in sources:
            if vertex in resolved:
                continue
            index = graph.index_of.get(vertex)
            if index is not None:
                resolved[vertex] = index
        rows: Dict[int, Sequence[float]] = {}
        missing: List[int] = []
        for index in resolved.values():
            cached = self._trees.get(index)
            if cached is not None:
                rows[index] = cached
            else:
                missing.append(index)
        if missing:
            plane = self._tree_provider.trees(missing)
            self._bill_trees(len(missing))
            for position, index in enumerate(missing):
                row = plane[position]
                if _np is not None and isinstance(row, _np.ndarray):
                    # Detach the row from the plane: a view would keep the
                    # whole (k x n) plane alive for as long as any single row
                    # survives in the LRU, long after the batch released its
                    # pins.  The copy is value-exact, so bit-identity holds.
                    row = row.copy()
                rows[index] = row
                self._trees[index] = row
                if len(self._trees) > self._max_cached_sources:
                    self._trees.popitem(last=False)
        return {
            vertex: _TreeView(graph, rows[index]) for vertex, index in resolved.items()
        }

    def path(self, source: VertexId, target: VertexId) -> PathResult:
        return _path_from_parents(self._graph, source, target)

    def distance_lower_bound(self, source: VertexId, target: VertexId) -> float:
        if self._alt is None:
            return 0.0
        return self._alt.lower_bound_indexed(
            self._graph.index(source), self._graph.index(target)
        )

    # ------------------------------------------------------------------
    # shared-memory surface (parallel dispatch pool)
    # ------------------------------------------------------------------
    def export_shared(self) -> Optional[Dict[str, object]]:
        if _np is None:
            return None
        graph = self._graph
        arrays: Dict[str, object] = {
            "vertex_ids": _np.asarray(graph.vertex_ids, dtype=_np.int64),
            "indptr": _np.asarray(graph.indptr, dtype=_np.int64),
            "indices": _np.asarray(graph.indices, dtype=_np.int64),
            "weights": _np.asarray(graph.weights, dtype=_np.float64),
        }
        if self._alt is not None and self._alt.landmark_count:
            alt = self._alt.to_arrays()
            arrays["alt_landmark_indices"] = _np.asarray(
                alt["landmark_indices"], dtype=_np.int64
            )
            arrays["alt_tables"] = _np.asarray(alt["tables"], dtype=_np.float64)
        return arrays

    @classmethod
    def attach_shared(
        cls,
        network: RoadNetwork,
        arrays: Mapping[str, object],
        max_cached_sources: int = 1024,
    ) -> "CSREngine":
        """Rebuild an engine over shared-memory ndarrays without recompiling.

        The arrays must be what :meth:`export_shared` produced for the same
        network; they are kept by reference (zero copy), so the attached
        engine answers bit-identically to the exporting one -- same compile
        order, same canonical rooting, same tree floats.
        """
        engine = cls.__new__(cls)
        engine._network = network
        engine._max_cached_sources = max_cached_sources
        engine._cache = None
        engine._fingerprint = None
        engine.stats = EngineStats()
        engine._graph = CSRGraph.from_shared(
            arrays["vertex_ids"],
            arrays["indptr"],
            arrays["indices"],
            arrays["weights"],
        )
        engine._tree_provider = PlaneTreeProvider(engine._graph)
        engine._trees = OrderedDict()
        if "alt_landmark_indices" in arrays:
            engine._alt = ALTIndex.from_arrays(
                engine._graph,
                arrays["alt_landmark_indices"],
                arrays["alt_tables"],
            )
            engine._landmarks = engine._alt.landmark_count
            engine.backend = "csr+alt"
        else:
            engine._alt = None
            engine._landmarks = 0
        return engine

    def invalidate(self) -> None:
        """Recompile the CSR arrays and landmark tables, drop cached trees.

        The network mutated, so its content hash is recomputed; the artifact
        cache can never serve arrays compiled from the previous state.
        """
        self._fingerprint = _fingerprint_for(self._network, self._cache)
        self._graph = _compile_csr_graph(
            self._network, self._cache, self._fingerprint, self.stats
        )
        self._tree_provider = PlaneTreeProvider(self._graph)
        self._trees.clear()
        self._alt = self._compile_alt() if self._landmarks > 0 else None

    # ------------------------------------------------------------------
    def _tree(self, source_index: int) -> Sequence[float]:
        tree = self._trees.get(source_index)
        if tree is not None:
            self.stats.cache_hits += 1
            return tree
        tree = self._tree_provider.tree(source_index)
        self._bill_trees(1)
        self._trees[source_index] = tree
        if len(self._trees) > self._max_cached_sources:
            self._trees.popitem(last=False)
        return tree


class TableEngine(RoutingEngine):
    """All-pairs distance-table routing for small (city-benchmark) networks.

    The full ``n x n`` distance matrix is precomputed at build time by blocked
    multi-source Dijkstra (:meth:`CSRGraph.trees`, one SciPy call per block of
    :data:`DEFAULT_TABLE_BLOCK` sources), after which every ``distance`` is an
    O(1) array lookup and every ``distances_from`` a zero-copy row view.
    Rows are bit-identical to what :class:`CSREngine` computes per source, and
    point queries read the row of the *smaller* endpoint like every other
    backend, so answers are float-for-float interchangeable with the CSR
    engine's.

    The table is O(n^2) memory and O(n) Dijkstra runs to build -- the right
    trade for the <= 2k-vertex grids the benchmarks use and exactly the wrong
    one beyond :data:`DEFAULT_TABLE_MAX_VERTICES`, where construction refuses
    rather than silently swallowing gigabytes.
    """

    backend = "table"
    exact_lower_bounds = True
    tree_provider_name = "table"

    def __init__(
        self,
        network: RoadNetwork,
        block_size: int = DEFAULT_TABLE_BLOCK,
        max_vertices: int = DEFAULT_TABLE_MAX_VERTICES,
        cache: Optional[ArtifactCache] = None,
    ) -> None:
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        if max_vertices < 1:
            raise ValueError(f"max_vertices must be >= 1, got {max_vertices}")
        self._network = network
        self._block_size = block_size
        self._max_vertices = max_vertices
        self._cache = cache
        self._fingerprint = _fingerprint_for(network, cache)
        self.stats = EngineStats()
        self._graph = _compile_csr_graph(network, cache, self._fingerprint, self.stats)
        self._table = self._build_table()

    def _build_table(self) -> Sequence[Sequence[float]]:
        n = len(self._graph)
        if n > self._max_vertices:
            raise ConfigurationError(
                f"table routing backend capped at {self._max_vertices} vertices "
                f"(network has {n}; raise SystemConfig.table_max_vertices to "
                f"override); use the ch backend -- contraction hierarchies "
                f"keep point queries fast without the O(n^2) table -- for "
                f"larger networks"
            )
        return _load_or_build_artifact(
            self.stats,
            self._cache,
            self._fingerprint,
            "table",
            decode=lambda arrays: (
                arrays["matrix"] if arrays["matrix"].shape == (n, n) else None
            ),
            build=self._compute_table,
            encode=lambda table: {"matrix": table},
        )

    def _compute_table(self) -> Sequence[Sequence[float]]:
        n = len(self._graph)
        blocks = [
            self._graph.trees(range(start, min(start + self._block_size, n)))
            for start in range(0, n, self._block_size)
        ]
        self.stats.dijkstra_runs += n  # the build's honest cost, counted once
        if _np is not None and self._graph.matrix is not None:
            return _np.vstack(blocks) if blocks else _np.empty((0, 0))
        return [row for block in blocks for row in block]

    @property
    def network(self) -> RoadNetwork:
        return self._network

    @property
    def graph(self) -> CSRGraph:
        """The compiled CSR adjacency (rebuilt by :meth:`invalidate`)."""
        return self._graph

    @property
    def table(self) -> Sequence[Sequence[float]]:
        """The all-pairs distance matrix (row i = distances from index i)."""
        return self._table

    # ------------------------------------------------------------------
    def distance(self, source: VertexId, target: VertexId) -> float:
        self.stats.queries += 1
        if source == target:
            return 0.0
        # Same canonical rooting as every other backend: read the smaller
        # endpoint's row, so the answer is bit-identical to the CSR engine's.
        root, leaf = (source, target) if source <= target else (target, source)
        value = self._table[self._graph.index(root)][self._graph.index(leaf)]
        self.stats.cache_hits += 1  # every answer is served from the table
        if value == INFINITY:
            raise DisconnectedError(source, target)
        return float(value)

    def distances_from(self, source: VertexId) -> Mapping[VertexId, float]:
        self.stats.queries += 1
        self.stats.cache_hits += 1
        return _TreeView(self._graph, self._table[self._graph.index(source)])

    def prefetch_trees(
        self, sources: Sequence[VertexId]
    ) -> Mapping[VertexId, Mapping[VertexId, float]]:
        """Hand out precomputed row views; no work, no counters (not a query)."""
        graph = self._graph
        views: Dict[VertexId, Mapping[VertexId, float]] = {}
        for vertex in sources:
            index = graph.index_of.get(vertex)
            if index is not None and vertex not in views:
                views[vertex] = _TreeView(graph, self._table[index])
        return views

    def path(self, source: VertexId, target: VertexId) -> PathResult:
        return _path_from_parents(self._graph, source, target)

    def distance_lower_bound(self, source: VertexId, target: VertexId) -> float:
        """The exact distance -- the tightest admissible bound there is.

        Infinity for provably disconnected pairs, matching the ALT index's
        convention, so the matchers prune those vehicles outright.
        """
        if source == target:
            return 0.0
        root, leaf = (source, target) if source <= target else (target, source)
        return float(self._table[self._graph.index(root)][self._graph.index(leaf)])

    def invalidate(self) -> None:
        """Recompile the CSR arrays and rebuild the table (network mutated)."""
        self._fingerprint = _fingerprint_for(self._network, self._cache)
        self._graph = _compile_csr_graph(
            self._network, self._cache, self._fingerprint, self.stats
        )
        self._table = self._build_table()

    # ------------------------------------------------------------------
    # shared-memory surface (parallel dispatch pool)
    # ------------------------------------------------------------------
    def export_shared(self) -> Optional[Dict[str, object]]:
        if _np is None:
            return None
        graph = self._graph
        return {
            "vertex_ids": _np.asarray(graph.vertex_ids, dtype=_np.int64),
            "indptr": _np.asarray(graph.indptr, dtype=_np.int64),
            "indices": _np.asarray(graph.indices, dtype=_np.int64),
            "weights": _np.asarray(graph.weights, dtype=_np.float64),
            "matrix": _np.asarray(self._table, dtype=_np.float64),
        }

    @classmethod
    def attach_shared(
        cls,
        network: RoadNetwork,
        arrays: Mapping[str, object],
        max_cached_sources: int = 1024,  # accepted for interface uniformity
    ) -> "TableEngine":
        """Rebuild a table engine over shared-memory ndarrays (zero copy).

        The all-pairs matrix -- the expensive part -- is mapped, not
        recomputed, so attaching costs O(n) for the id -> index dict only.
        """
        engine = cls.__new__(cls)
        engine._network = network
        engine._block_size = DEFAULT_TABLE_BLOCK
        engine._cache = None
        engine._fingerprint = None
        engine.stats = EngineStats()
        engine._graph = CSRGraph.from_shared(
            arrays["vertex_ids"],
            arrays["indptr"],
            arrays["indices"],
            arrays["weights"],
        )
        engine._max_vertices = max(DEFAULT_TABLE_MAX_VERTICES, len(engine._graph))
        engine._table = arrays["matrix"]
        return engine


class CHEngine(CSREngine):
    """Contraction-hierarchy routing: scalable point queries *and* trees.

    The engine keeps the whole :class:`CSREngine` machinery -- the compiled
    CSR arrays, the tree LRU, the vectorised plane prefetch seam -- but
    both query shapes are hierarchy-native:

    * ``distance(s, t)`` runs a bidirectional upward search over the
      :class:`ContractionHierarchy`, settling a few hundred vertices
      regardless of network size -- the query the matchers issue per
      candidate schedule leg;
    * full distance trees (``distances_from`` / ``prefetch_trees``, what
      ``MatchContext`` and ``BatchContext`` pin) can come from a
      :class:`PHASTTreeProvider` downward sweep over the same hierarchy,
      so the tree path no longer *depends* on SciPy.  The
      ``tree_provider`` knob ("auto" / "plane" / "phast") selects the
      provider for ablation; "auto" keeps the SciPy C plane where SciPy
      exists (still the fastest tree path, E15 records the ratio) and
      goes hierarchy-native past :data:`PHAST_AUTO_MIN_VERTICES` vertices
      in NumPy-only environments, where the vectorised sweep beats
      per-source pure-Python Dijkstras severalfold.

    Answers stay byte-identical to the CSR backend's either way: a cached
    tree row is still consulted first (same canonical smaller-endpoint
    rooting), the CH point search refolds its answer from the unpacked
    original-edge path in the exact addition order the tree computation
    uses, and the PHAST provider refolds whole planes the same way.

    The hierarchy build is the expensive part (seconds of witness searches
    on a 20k-vertex network), which is exactly what the artifact cache
    amortises: with a cache attached the hierarchy -- including the
    rank-permuted downward CSR the sweep runs on -- round-trips through
    one ``.npz`` read keyed by the network's content hash.
    """

    backend = "ch"

    def __init__(
        self,
        network: RoadNetwork,
        max_cached_sources: int = 1024,
        cache: Optional[ArtifactCache] = None,
        tree_provider: str = "auto",
        phast_min_vertices: int = PHAST_AUTO_MIN_VERTICES,
    ) -> None:
        if tree_provider not in TREE_PROVIDERS:
            raise ConfigurationError(
                f"unknown tree provider {tree_provider!r}; "
                f"choose one of {TREE_PROVIDERS}"
            )
        self._tree_provider_request = tree_provider
        self._phast_min_vertices = phast_min_vertices
        super().__init__(network, max_cached_sources=max_cached_sources, cache=cache)
        self._hierarchy = self._compile_hierarchy()
        self._tree_provider = self._resolve_tree_provider()

    @property
    def hierarchy(self) -> ContractionHierarchy:
        """The compiled hierarchy (rebuilt by :meth:`invalidate`)."""
        return self._hierarchy

    def _resolve_tree_provider(self) -> TreeProvider:
        """Apply the ``tree_provider`` knob to the freshly compiled state.

        "auto" picks whichever path is measurably fastest for the runtime
        environment (see :data:`PHAST_AUTO_MIN_VERTICES`): the SciPy C plane
        when SciPy is importable, the NumPy PHAST sweep when only NumPy is
        (on networks large enough for the sweep to amortise), and the
        pure-Python plane otherwise -- pure-Python PHAST never wins on speed
        and is only ever *forced*, for ablation and fallback testing.
        """
        request = self._tree_provider_request
        if request == "phast" or (
            request == "auto"
            and _np is not None
            and _csgraph_dijkstra is None
            and len(self._graph) >= self._phast_min_vertices
        ):
            return PHASTTreeProvider(self._graph, self._hierarchy)
        return PlaneTreeProvider(self._graph)

    def _compile_hierarchy(self) -> ContractionHierarchy:
        """Load the hierarchy from the cache, or contract and persist.

        A cached payload without the downward sweep arrays (persisted by an
        older build) still decodes -- the sweep order is re-derived from the
        upward arrays in one O(E) pass.
        """
        return _load_or_build_artifact(
            self.stats,
            self._cache,
            self._fingerprint,
            "ch",
            decode=lambda arrays: ContractionHierarchy.from_arrays(
                arrays["rank"],
                arrays["up_indptr"],
                arrays["up_indices"],
                arrays["up_weights"],
                arrays["up_mids"],
                arrays["shortcut_count"],
                down_heads=arrays.get("down_heads"),
                down_indptr=arrays.get("down_indptr"),
                down_tails=arrays.get("down_tails"),
                down_weights=arrays.get("down_weights"),
                down_level_ptr=arrays.get("down_level_ptr"),
            ),
            build=lambda: ContractionHierarchy.build(self._graph),
            encode=lambda hierarchy: hierarchy.to_arrays(),
        )

    def distance(self, source: VertexId, target: VertexId) -> float:
        self.stats.queries += 1
        if source == target:
            return 0.0
        # Same canonical rooting as every other backend; a tree already in
        # the LRU answers in O(1) exactly as the CSR engine would.
        root, leaf = (source, target) if source <= target else (target, source)
        root_index = self._graph.index(root)
        leaf_index = self._graph.index(leaf)
        cached = self._trees.get(root_index)
        if cached is not None:
            self.stats.cache_hits += 1
            value = cached[leaf_index]
            if value == INFINITY:
                raise DisconnectedError(source, target)
            return float(value)
        self.stats.bidirectional_runs += 1
        value = self._hierarchy.distance(root_index, leaf_index)
        if value is None:
            raise DisconnectedError(source, target)
        return value

    def invalidate(self) -> None:
        """Recompile the CSR arrays, re-contract, re-resolve the provider."""
        super().invalidate()
        self._hierarchy = self._compile_hierarchy()
        self._tree_provider = self._resolve_tree_provider()

    # ------------------------------------------------------------------
    # shared-memory surface (parallel dispatch pool)
    # ------------------------------------------------------------------
    def export_shared(self) -> Optional[Dict[str, object]]:
        arrays = super().export_shared()
        if arrays is None:
            return None
        hierarchy = self._hierarchy
        arrays.update(
            {
                "ch_rank": _np.asarray(hierarchy.rank, dtype=_np.int64),
                "ch_up_indptr": _np.asarray(hierarchy.up_indptr, dtype=_np.int64),
                "ch_up_indices": _np.asarray(hierarchy.up_indices, dtype=_np.int64),
                "ch_up_weights": _np.asarray(hierarchy.up_weights, dtype=_np.float64),
                "ch_up_mids": _np.asarray(hierarchy.up_mids, dtype=_np.int64),
                "ch_shortcut_count": _np.asarray(
                    [hierarchy.shortcut_count], dtype=_np.int64
                ),
                "ch_down_heads": _np.asarray(hierarchy.down_heads, dtype=_np.int64),
                "ch_down_indptr": _np.asarray(hierarchy.down_indptr, dtype=_np.int64),
                "ch_down_tails": _np.asarray(hierarchy.down_tails, dtype=_np.int64),
                "ch_down_weights": _np.asarray(
                    hierarchy.down_weights, dtype=_np.float64
                ),
                "ch_down_level_ptr": _np.asarray(
                    hierarchy.down_level_ptr, dtype=_np.int64
                ),
            }
        )
        return arrays

    @classmethod
    def attach_shared(
        cls,
        network: RoadNetwork,
        arrays: Mapping[str, object],
        max_cached_sources: int = 1024,
        tree_provider: str = "auto",
        phast_min_vertices: int = PHAST_AUTO_MIN_VERTICES,
    ) -> "CHEngine":
        """Rebuild a CH engine over shared-memory ndarrays (zero copy).

        Neither the CSR compile nor the contraction re-runs: the upward and
        downward arrays are mapped as-is, so a worker attach costs O(n) for
        the rank inverse and the id -> index dict.
        """
        engine = cls.__new__(cls)
        engine._tree_provider_request = tree_provider
        engine._phast_min_vertices = phast_min_vertices
        engine._network = network
        engine._max_cached_sources = max_cached_sources
        engine._landmarks = 0
        engine._cache = None
        engine._fingerprint = None
        engine.stats = EngineStats()
        engine._graph = CSRGraph.from_shared(
            arrays["vertex_ids"],
            arrays["indptr"],
            arrays["indices"],
            arrays["weights"],
        )
        engine._trees = OrderedDict()
        engine._alt = None
        engine._hierarchy = ContractionHierarchy.from_shared(
            arrays["ch_rank"],
            arrays["ch_up_indptr"],
            arrays["ch_up_indices"],
            arrays["ch_up_weights"],
            arrays["ch_up_mids"],
            arrays["ch_shortcut_count"],
            down_heads=arrays["ch_down_heads"],
            down_indptr=arrays["ch_down_indptr"],
            down_tails=arrays["ch_down_tails"],
            down_weights=arrays["ch_down_weights"],
            down_level_ptr=arrays["ch_down_level_ptr"],
        )
        engine._tree_provider = engine._resolve_tree_provider()
        return engine


def attach_shared_engine(
    backend: str,
    network: RoadNetwork,
    arrays: Mapping[str, object],
    max_cached_sources: int = 1024,
    tree_provider: str = "auto",
) -> RoutingEngine:
    """Attach a routing engine to published shared-memory ndarrays.

    The worker-side counterpart of :meth:`RoutingEngine.export_shared`:
    ``arrays`` maps the exported names to ndarrays wrapped over the attached
    segments, and the returned engine answers bit-identically to the
    exporting one without recompiling anything.

    Raises:
        ConfigurationError: for a backend without a shared-memory surface
            (the dict backend's adjacency is not flat-array representable).
    """
    if backend in ("csr", "csr+alt"):
        return CSREngine.attach_shared(
            network, arrays, max_cached_sources=max_cached_sources
        )
    if backend == "table":
        return TableEngine.attach_shared(network, arrays)
    if backend == "ch":
        return CHEngine.attach_shared(
            network,
            arrays,
            max_cached_sources=max_cached_sources,
            tree_provider=tree_provider,
        )
    raise ConfigurationError(
        f"routing backend {backend!r} has no shared-memory attach path"
    )


def make_engine(
    network: RoadNetwork,
    backend: str = "dict",
    max_cached_sources: int = 1024,
    landmarks: int = DEFAULT_LANDMARKS,
    table_max_vertices: int = DEFAULT_TABLE_MAX_VERTICES,
    cache_dir: Optional[str] = None,
    tree_provider: str = "auto",
) -> RoutingEngine:
    """Build a routing engine by backend name.

    Args:
        backend: one of "dict", "csr", "csr+alt", "table", "ch".
        max_cached_sources: tree-LRU capacity of the dict/CSR-family engines.
        landmarks: landmark count of the "csr+alt" backend.
        table_max_vertices: vertex cap of the "table" backend
            (``SystemConfig.table_max_vertices``).
        cache_dir: directory for persisted compiled artifacts; ``None``
            disables persistence (every engine builds from scratch).
        tree_provider: how the ch backend computes full distance trees
            ("auto", "plane" or "phast"; ``SystemConfig.tree_provider``).
            Every other backend has exactly one tree path, so it accepts
            only "auto" -- plus "plane" on the csr family, whose one path
            that is.

    Raises:
        ConfigurationError: for an unknown backend or tree-provider name, a
            "table" request on a network too large for an all-pairs table,
            or a "phast" request on a backend without a hierarchy.
    """
    if tree_provider not in TREE_PROVIDERS:
        raise ConfigurationError(
            f"unknown tree provider {tree_provider!r}; choose one of {TREE_PROVIDERS}"
        )
    if tree_provider == "phast" and backend != "ch":
        raise ConfigurationError(
            f"tree provider 'phast' sweeps a contraction hierarchy, which only "
            f"the ch backend builds (got backend {backend!r}); choose "
            f"routing backend 'ch' or tree provider 'auto'"
        )
    if tree_provider == "plane" and backend in ("dict", "table"):
        # Refuse rather than silently measure the wrong thing: an ablation
        # that forces the CSR plane path must not get oracle Dijkstras or
        # table rows back without noticing.
        raise ConfigurationError(
            f"tree provider 'plane' names the CSR plane path, which the "
            f"{backend!r} backend does not use (its trees come from "
            f"{'the memoising oracle' if backend == 'dict' else 'precomputed table rows'}); "
            f"choose tree provider 'auto'"
        )
    cache = ArtifactCache(cache_dir) if cache_dir is not None else None
    if backend == "dict":
        return DictDijkstraEngine(network, max_cached_sources=max_cached_sources)
    if backend == "csr":
        return CSREngine(network, max_cached_sources=max_cached_sources, cache=cache)
    if backend == "csr+alt":
        return CSREngine(
            network, max_cached_sources=max_cached_sources, landmarks=landmarks, cache=cache
        )
    if backend == "table":
        return TableEngine(network, max_vertices=table_max_vertices, cache=cache)
    if backend == "ch":
        return CHEngine(
            network,
            max_cached_sources=max_cached_sources,
            cache=cache,
            tree_provider=tree_provider,
        )
    raise ConfigurationError(
        f"unknown routing backend {backend!r}; choose one of {ROUTING_BACKENDS}"
    )


def ensure_engine(value: object, network: RoadNetwork) -> RoutingEngine:
    """Coerce ``value`` (engine, bare oracle or ``None``) into a routing engine.

    Keeps call sites that still construct a :class:`DistanceOracle` working
    unchanged: a bare oracle is wrapped into a :class:`DictDijkstraEngine`
    that shares its caches and statistics.
    """
    if value is None:
        return DictDijkstraEngine(network)
    if isinstance(value, RoutingEngine):
        return value
    if isinstance(value, DistanceOracle):
        return DictDijkstraEngine(oracle=value)
    raise TypeError(f"expected a RoutingEngine or DistanceOracle, got {type(value)!r}")
