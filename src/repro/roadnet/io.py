"""Persistence of road networks.

Two formats are supported:

* a plain-text *edge list* (one ``u v weight`` line per edge, with an optional
  leading block of ``v x y`` coordinate lines introduced by a ``#coords``
  header), convenient for interoperability with graph tools;
* a JSON document containing vertices, coordinates and edges, convenient for
  archiving experiment inputs next to their outputs.

Both round-trip exactly (weights are stored as ``repr`` of floats).

Edge lists are transparently gzip-compressed when the path ends in ``.gz``
(both on save and on load), which is how real-network extracts at the scale
the CH backend targets stay checkable into a repository; and every parse
error names the offending ``path:line`` so a broken multi-megabyte fixture
points at its bad line instead of at a bare ``ValueError``.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.errors import InvalidNetworkError
from repro.roadnet.graph import RoadNetwork

__all__ = [
    "save_edge_list",
    "load_edge_list",
    "save_json",
    "load_json",
    "network_to_dict",
    "network_from_dict",
]

PathLike = Union[str, Path]


def _is_gzip_path(path: PathLike) -> bool:
    """``True`` when the path names a gzip-compressed edge list."""
    return Path(path).suffix == ".gz"


def _read_text(path: PathLike) -> str:
    """Read a text file, transparently decompressing ``.gz`` paths."""
    if _is_gzip_path(path):
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            return handle.read()
    return Path(path).read_text(encoding="utf-8")


def _write_text(path: PathLike, text: str) -> None:
    """Write a text file, transparently compressing ``.gz`` paths."""
    if _is_gzip_path(path):
        # Write through a fileobj with mtime=0 so the compressed bytes are a
        # pure function of the content (no filename or timestamp in the gzip
        # header) -- re-saving an unchanged network never dirties a
        # checked-in fixture.
        with open(path, "wb") as raw:
            with gzip.GzipFile(
                filename="", fileobj=raw, mode="wb", mtime=0
            ) as handle:
                handle.write(text.encode("utf-8"))
        return
    Path(path).write_text(text, encoding="utf-8")


def save_edge_list(network: RoadNetwork, path: PathLike) -> None:
    """Write ``network`` as an edge list with an optional coordinate block.

    A path ending in ``.gz`` is gzip-compressed on the way out; the line
    format is identical either way.
    """
    lines: List[str] = []
    if network.has_coordinates():
        lines.append("#coords")
        for vertex in network.vertices():
            point = network.coordinate(vertex)
            lines.append(f"{vertex} {point.x!r} {point.y!r}")
        lines.append("#edges")
    for edge in network.edges():
        lines.append(f"{edge.u} {edge.v} {edge.weight!r}")
    _write_text(path, "\n".join(lines) + "\n")


def load_edge_list(path: PathLike) -> RoadNetwork:
    """Read a network previously written by :func:`save_edge_list`.

    A path ending in ``.gz`` is transparently decompressed.

    Raises:
        InvalidNetworkError: on malformed lines, naming the offending
            ``path:line`` -- wrong field count, non-numeric fields, and
            semantic rejections (non-positive weights, self loops) alike.
    """
    network = RoadNetwork()
    mode = "edges"
    for line_number, raw_line in enumerate(_read_text(path).splitlines(), 1):
        line = raw_line.strip()
        if not line:
            continue
        if line == "#coords":
            mode = "coords"
            continue
        if line == "#edges":
            mode = "edges"
            continue
        parts = line.split()
        if len(parts) != 3:
            raise InvalidNetworkError(f"{path}:{line_number}: expected 3 fields, got {len(parts)}")
        try:
            if mode == "coords":
                network.add_vertex(int(parts[0]), x=float(parts[1]), y=float(parts[2]))
            else:
                u, v, weight = int(parts[0]), int(parts[1]), float(parts[2])
                if u not in network:
                    network.add_vertex(u)
                if v not in network:
                    network.add_vertex(v)
                network.add_edge(u, v, weight)
        except ValueError as error:  # includes InvalidNetworkError rejections
            kind = "coordinate" if mode == "coords" else "edge"
            raise InvalidNetworkError(
                f"{path}:{line_number}: bad {kind} line {line!r}: {error}"
            ) from None
    return network


def network_to_dict(network: RoadNetwork) -> Dict[str, object]:
    """Return a JSON-serialisable representation of ``network``."""
    coordinates: Dict[str, Tuple[float, float]] = {}
    for vertex in network.vertices():
        try:
            point = network.coordinate(vertex)
        except InvalidNetworkError:
            continue
        coordinates[str(vertex)] = (point.x, point.y)
    return {
        "vertices": network.vertices(),
        "coordinates": coordinates,
        "edges": [[edge.u, edge.v, edge.weight] for edge in network.edges()],
    }


def network_from_dict(payload: Dict[str, object]) -> RoadNetwork:
    """Rebuild a network from the output of :func:`network_to_dict`."""
    network = RoadNetwork()
    for vertex in payload.get("vertices", []):
        network.add_vertex(int(vertex))
    for vertex, (x, y) in dict(payload.get("coordinates", {})).items():
        network.add_vertex(int(vertex), x=float(x), y=float(y))
    for u, v, weight in payload.get("edges", []):
        if int(u) not in network:
            network.add_vertex(int(u))
        if int(v) not in network:
            network.add_vertex(int(v))
        network.add_edge(int(u), int(v), float(weight))
    return network


def save_json(network: RoadNetwork, path: PathLike) -> None:
    """Write ``network`` as a JSON document."""
    Path(path).write_text(json.dumps(network_to_dict(network), indent=2), encoding="utf-8")


def load_json(path: PathLike) -> RoadNetwork:
    """Read a network previously written by :func:`save_json`."""
    return network_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))
