"""Persistence of road networks.

Two formats are supported:

* a plain-text *edge list* (one ``u v weight`` line per edge, with an optional
  leading block of ``v x y`` coordinate lines introduced by a ``#coords``
  header), convenient for interoperability with graph tools;
* a JSON document containing vertices, coordinates and edges, convenient for
  archiving experiment inputs next to their outputs.

Both round-trip exactly (weights are stored as ``repr`` of floats).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.errors import InvalidNetworkError
from repro.roadnet.graph import RoadNetwork

__all__ = [
    "save_edge_list",
    "load_edge_list",
    "save_json",
    "load_json",
    "network_to_dict",
    "network_from_dict",
]

PathLike = Union[str, Path]


def save_edge_list(network: RoadNetwork, path: PathLike) -> None:
    """Write ``network`` as an edge list with an optional coordinate block."""
    lines: List[str] = []
    if network.has_coordinates():
        lines.append("#coords")
        for vertex in network.vertices():
            point = network.coordinate(vertex)
            lines.append(f"{vertex} {point.x!r} {point.y!r}")
        lines.append("#edges")
    for edge in network.edges():
        lines.append(f"{edge.u} {edge.v} {edge.weight!r}")
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def load_edge_list(path: PathLike) -> RoadNetwork:
    """Read a network previously written by :func:`save_edge_list`.

    Raises:
        InvalidNetworkError: on malformed lines.
    """
    network = RoadNetwork()
    mode = "edges"
    for line_number, raw_line in enumerate(Path(path).read_text(encoding="utf-8").splitlines(), 1):
        line = raw_line.strip()
        if not line:
            continue
        if line == "#coords":
            mode = "coords"
            continue
        if line == "#edges":
            mode = "edges"
            continue
        parts = line.split()
        if len(parts) != 3:
            raise InvalidNetworkError(f"{path}:{line_number}: expected 3 fields, got {len(parts)}")
        if mode == "coords":
            vertex, x, y = int(parts[0]), float(parts[1]), float(parts[2])
            network.add_vertex(vertex, x=x, y=y)
        else:
            u, v, weight = int(parts[0]), int(parts[1]), float(parts[2])
            if u not in network:
                network.add_vertex(u)
            if v not in network:
                network.add_vertex(v)
            network.add_edge(u, v, weight)
    return network


def network_to_dict(network: RoadNetwork) -> Dict[str, object]:
    """Return a JSON-serialisable representation of ``network``."""
    coordinates: Dict[str, Tuple[float, float]] = {}
    for vertex in network.vertices():
        try:
            point = network.coordinate(vertex)
        except InvalidNetworkError:
            continue
        coordinates[str(vertex)] = (point.x, point.y)
    return {
        "vertices": network.vertices(),
        "coordinates": coordinates,
        "edges": [[edge.u, edge.v, edge.weight] for edge in network.edges()],
    }


def network_from_dict(payload: Dict[str, object]) -> RoadNetwork:
    """Rebuild a network from the output of :func:`network_to_dict`."""
    network = RoadNetwork()
    for vertex in payload.get("vertices", []):
        network.add_vertex(int(vertex))
    for vertex, (x, y) in dict(payload.get("coordinates", {})).items():
        network.add_vertex(int(vertex), x=float(x), y=float(y))
    for u, v, weight in payload.get("edges", []):
        if int(u) not in network:
            network.add_vertex(int(u))
        if int(v) not in network:
            network.add_vertex(int(v))
        network.add_edge(int(u), int(v), float(weight))
    return network


def save_json(network: RoadNetwork, path: PathLike) -> None:
    """Write ``network`` as a JSON document."""
    Path(path).write_text(json.dumps(network_to_dict(network), indent=2), encoding="utf-8")


def load_json(path: PathLike) -> RoadNetwork:
    """Read a network previously written by :func:`save_json`."""
    return network_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))
