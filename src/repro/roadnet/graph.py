"""The weighted road graph at the bottom of every PTRider component.

Section 2.1 of the paper models the road network as ``G = (V, E, W)`` where
vertices are road intersections and every edge carries a travel cost (time or
distance; the demo assumes a constant vehicle speed so the two are
interchangeable).  :class:`RoadNetwork` implements exactly that model as an
undirected, positively weighted graph with a planar embedding.

The class is deliberately dependency free (plain dictionaries) so the
shortest-path routines and the grid index can iterate adjacency lists with no
abstraction overhead -- matching latency is the whole point of the system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.errors import (
    EdgeNotFoundError,
    InvalidNetworkError,
    VertexNotFoundError,
)
from repro.roadnet.geometry import BoundingBox, Point

__all__ = ["Edge", "RoadNetwork"]

VertexId = int


@dataclass(frozen=True)
class Edge:
    """An undirected road segment between two intersections.

    The pair ``(u, v)`` is stored in the orientation it was added with, but
    the edge itself is undirected: ``Edge(1, 2, 3.0)`` and ``Edge(2, 1, 3.0)``
    describe the same road segment.
    """

    u: VertexId
    v: VertexId
    weight: float

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise InvalidNetworkError(
                f"edge ({self.u}, {self.v}) must have a positive weight, got {self.weight}"
            )
        if self.u == self.v:
            raise InvalidNetworkError(f"self loops are not allowed (vertex {self.u})")

    @property
    def endpoints(self) -> Tuple[VertexId, VertexId]:
        """Return the edge endpoints as a tuple ``(u, v)``."""
        return (self.u, self.v)

    def other(self, vertex: VertexId) -> VertexId:
        """Return the endpoint that is not ``vertex``.

        Raises:
            ValueError: if ``vertex`` is not an endpoint of this edge.
        """
        if vertex == self.u:
            return self.v
        if vertex == self.v:
            return self.u
        raise ValueError(f"vertex {vertex} is not an endpoint of edge ({self.u}, {self.v})")

    def key(self) -> Tuple[VertexId, VertexId]:
        """Return a canonical (sorted) key identifying the undirected edge."""
        return (self.u, self.v) if self.u <= self.v else (self.v, self.u)


class RoadNetwork:
    """An undirected, positively weighted road network with planar embedding.

    Vertices are integers; each vertex may carry an ``(x, y)`` coordinate used
    by the grid index and the Euclidean baseline.  Edge weights are travel
    costs (distance units at constant speed, per the paper).

    The class supports incremental construction::

        net = RoadNetwork()
        net.add_vertex(1, x=0.0, y=0.0)
        net.add_vertex(2, x=1.0, y=0.0)
        net.add_edge(1, 2, 1.0)

    and bulk construction through :meth:`from_edges`.
    """

    def __init__(self) -> None:
        self._adjacency: Dict[VertexId, Dict[VertexId, float]] = {}
        self._coordinates: Dict[VertexId, Point] = {}
        self._edge_count = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[VertexId, VertexId, float]],
        coordinates: Optional[Mapping[VertexId, Tuple[float, float]]] = None,
    ) -> "RoadNetwork":
        """Build a network from ``(u, v, weight)`` triples.

        Args:
            edges: iterable of ``(u, v, weight)`` triples.
            coordinates: optional mapping from vertex id to ``(x, y)``.

        Returns:
            A new :class:`RoadNetwork` containing every listed vertex and edge.
        """
        network = cls()
        for u, v, weight in edges:
            if u not in network:
                network.add_vertex(u)
            if v not in network:
                network.add_vertex(v)
            network.add_edge(u, v, weight)
        if coordinates:
            for vertex, (x, y) in coordinates.items():
                if vertex not in network:
                    network.add_vertex(vertex)
                network.set_coordinate(vertex, x, y)
        return network

    def add_vertex(self, vertex: VertexId, x: Optional[float] = None, y: Optional[float] = None) -> None:
        """Add a vertex; optionally with an ``(x, y)`` coordinate.

        Adding an existing vertex is a no-op except that a provided coordinate
        overwrites the stored one.
        """
        if vertex not in self._adjacency:
            self._adjacency[vertex] = {}
        if x is not None and y is not None:
            self._coordinates[vertex] = Point(float(x), float(y))

    def set_coordinate(self, vertex: VertexId, x: float, y: float) -> None:
        """Attach or replace the planar coordinate of ``vertex``."""
        self._require_vertex(vertex)
        self._coordinates[vertex] = Point(float(x), float(y))

    def add_edge(self, u: VertexId, v: VertexId, weight: float) -> None:
        """Add an undirected edge with a positive ``weight``.

        Re-adding an existing edge overwrites its weight.

        Raises:
            VertexNotFoundError: if either endpoint is unknown.
            InvalidNetworkError: for non-positive weights or self loops.
        """
        self._require_vertex(u)
        self._require_vertex(v)
        if u == v:
            raise InvalidNetworkError(f"self loops are not allowed (vertex {u})")
        if weight <= 0:
            raise InvalidNetworkError(
                f"edge ({u}, {v}) must have a positive weight, got {weight}"
            )
        is_new = v not in self._adjacency[u]
        self._adjacency[u][v] = float(weight)
        self._adjacency[v][u] = float(weight)
        if is_new:
            self._edge_count += 1

    def remove_edge(self, u: VertexId, v: VertexId) -> None:
        """Remove the undirected edge ``(u, v)``.

        Raises:
            EdgeNotFoundError: if the edge does not exist.
        """
        if not self.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        del self._adjacency[u][v]
        del self._adjacency[v][u]
        self._edge_count -= 1

    def remove_vertex(self, vertex: VertexId) -> None:
        """Remove ``vertex`` and every incident edge."""
        self._require_vertex(vertex)
        for neighbour in list(self._adjacency[vertex]):
            self.remove_edge(vertex, neighbour)
        del self._adjacency[vertex]
        self._coordinates.pop(vertex, None)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, vertex: object) -> bool:
        return vertex in self._adjacency

    def __len__(self) -> int:
        return len(self._adjacency)

    def __iter__(self) -> Iterator[VertexId]:
        return iter(self._adjacency)

    @property
    def vertex_count(self) -> int:
        """Number of vertices."""
        return len(self._adjacency)

    @property
    def edge_count(self) -> int:
        """Number of undirected edges."""
        return self._edge_count

    def vertices(self) -> List[VertexId]:
        """Return all vertex identifiers (in insertion order)."""
        return list(self._adjacency)

    def edges(self) -> Iterator[Edge]:
        """Yield every undirected edge exactly once."""
        for u, neighbours in self._adjacency.items():
            for v, weight in neighbours.items():
                if u < v:
                    yield Edge(u, v, weight)

    def has_edge(self, u: VertexId, v: VertexId) -> bool:
        """Return ``True`` when the undirected edge ``(u, v)`` exists."""
        return u in self._adjacency and v in self._adjacency[u]

    def edge_weight(self, u: VertexId, v: VertexId) -> float:
        """Return the weight of edge ``(u, v)``.

        Raises:
            EdgeNotFoundError: if the edge does not exist.
        """
        try:
            return self._adjacency[u][v]
        except KeyError:
            raise EdgeNotFoundError(u, v) from None

    def neighbours(self, vertex: VertexId) -> Dict[VertexId, float]:
        """Return a copy of ``vertex``'s adjacency mapping ``{neighbour: weight}``."""
        self._require_vertex(vertex)
        return dict(self._adjacency[vertex])

    def neighbours_view(self, vertex: VertexId) -> Mapping[VertexId, float]:
        """Return the *internal* adjacency mapping of ``vertex``.

        The returned mapping must not be mutated; it exists so hot loops
        (Dijkstra, grid construction) can avoid a copy per expansion.
        """
        self._require_vertex(vertex)
        return self._adjacency[vertex]

    def degree(self, vertex: VertexId) -> int:
        """Return the number of edges incident to ``vertex``."""
        self._require_vertex(vertex)
        return len(self._adjacency[vertex])

    def coordinate(self, vertex: VertexId) -> Point:
        """Return the planar coordinate of ``vertex``.

        Raises:
            VertexNotFoundError: if the vertex is unknown.
            InvalidNetworkError: if the vertex has no coordinate.
        """
        self._require_vertex(vertex)
        try:
            return self._coordinates[vertex]
        except KeyError:
            raise InvalidNetworkError(f"vertex {vertex} has no coordinate") from None

    def has_coordinates(self) -> bool:
        """Return ``True`` when every vertex carries a coordinate."""
        return len(self._coordinates) == len(self._adjacency) and bool(self._adjacency)

    def bounding_box(self) -> BoundingBox:
        """Return the bounding box of all vertex coordinates.

        Raises:
            InvalidNetworkError: if no vertex has a coordinate.
        """
        if not self._coordinates:
            raise InvalidNetworkError("the network has no vertex coordinates")
        return BoundingBox.from_points(p.as_tuple() for p in self._coordinates.values())

    def euclidean_distance(self, u: VertexId, v: VertexId) -> float:
        """Return the straight-line distance between two vertices' coordinates."""
        return self.coordinate(u).distance_to(self.coordinate(v))

    def total_edge_weight(self) -> float:
        """Return the sum of all edge weights (useful for sanity checks)."""
        return sum(edge.weight for edge in self.edges())

    # ------------------------------------------------------------------
    # structure checks
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """Return ``True`` when the network is connected (or empty)."""
        if not self._adjacency:
            return True
        start = next(iter(self._adjacency))
        seen = {start}
        stack = [start]
        while stack:
            current = stack.pop()
            for neighbour in self._adjacency[current]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
        return len(seen) == len(self._adjacency)

    def connected_components(self) -> List[List[VertexId]]:
        """Return the vertex sets of every connected component."""
        remaining = set(self._adjacency)
        components: List[List[VertexId]] = []
        while remaining:
            start = next(iter(remaining))
            seen = {start}
            stack = [start]
            while stack:
                current = stack.pop()
                for neighbour in self._adjacency[current]:
                    if neighbour not in seen:
                        seen.add(neighbour)
                        stack.append(neighbour)
            components.append(sorted(seen))
            remaining -= seen
        return components

    def validate(self, require_coordinates: bool = False, require_connected: bool = False) -> None:
        """Validate structural requirements, raising on the first violation.

        Args:
            require_coordinates: demand a coordinate on every vertex (the grid
                index needs this).
            require_connected: demand a single connected component (the
                simulation engine needs this so every trip is feasible).

        Raises:
            InvalidNetworkError: when a requirement is violated.
        """
        if require_coordinates and not self.has_coordinates():
            missing = [v for v in self._adjacency if v not in self._coordinates]
            raise InvalidNetworkError(
                f"{len(missing)} vertices have no coordinate (e.g. {missing[:5]})"
            )
        if require_connected and not self.is_connected():
            components = self.connected_components()
            raise InvalidNetworkError(
                f"the network has {len(components)} connected components; expected 1"
            )

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def copy(self) -> "RoadNetwork":
        """Return a deep copy of the network."""
        clone = RoadNetwork()
        for vertex in self._adjacency:
            clone._adjacency[vertex] = dict(self._adjacency[vertex])
        clone._coordinates = dict(self._coordinates)
        clone._edge_count = self._edge_count
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RoadNetwork(vertices={self.vertex_count}, edges={self.edge_count})"

    def _require_vertex(self, vertex: VertexId) -> None:
        if vertex not in self._adjacency:
            raise VertexNotFoundError(vertex)
