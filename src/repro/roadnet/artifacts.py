"""Persisted compiled routing artifacts (instant service restarts).

Every routing backend beyond the dict reference pays a one-time
preprocessing cost before it can answer queries: the CSR compile, the ALT
landmark trees, the all-pairs distance table, the contraction hierarchy.
All of it is a pure function of the road network, so a service restart (or a
repeated benchmark run) that rebuilds the same network should never pay for
preprocessing twice.  This module provides the two pieces the engines need:

* :func:`network_fingerprint` -- a stable content hash of a
  :class:`~repro.roadnet.graph.RoadNetwork`.  Only what distances depend on
  is hashed (the vertex set and the weighted undirected edge set, both in
  canonical order); planar coordinates feed the grid index, not the routing
  engines, and are deliberately excluded so re-embedding a network does not
  invalidate its routing artifacts.
* :class:`ArtifactCache` -- a directory of ``.npz`` files keyed by
  ``{kind}-{fingerprint}[-params].npz``.  ``kind`` names the artifact
  ("csr", "alt", "table", "ch"), ``params`` captures build knobs that change
  the artifact's content (e.g. the ALT landmark count), and the fingerprint
  ties the file to the exact network it was compiled from, so a mutated
  network can never be served stale arrays.  The "ch" payload carries both
  halves of the hierarchy: the upward CSR the point queries climb and the
  rank-permuted downward CSR (PHAST sweep order) the tree provider scans,
  so a warm restart is tree-ready without re-deriving either.

Writes are atomic (temp file + ``os.replace``) so a crashed process never
leaves a half-written artifact behind, and loads treat any unreadable or
corrupt file as a miss -- the engine silently rebuilds and overwrites.
NumPy is required for the ``.npz`` container; without it the cache reports
itself unavailable and every engine simply builds from scratch, exactly as
if no cache directory had been configured.
"""

from __future__ import annotations

import hashlib
import os
import struct
import time
import zipfile
from pathlib import Path
from typing import Dict, Mapping, Optional

from repro.roadnet.graph import RoadNetwork

try:  # NumPy provides the .npz container; the cache is inert without it.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the fallback tests
    _np = None

__all__ = ["network_fingerprint", "ArtifactCache"]

#: Bytes of the hex digest used in file names (collision-safe at cache scale).
FINGERPRINT_CHARS = 20

#: How many times :meth:`ArtifactCache.save` retries a failed atomic rename.
REPLACE_ATTEMPTS = 4

#: First retry backoff in seconds (doubles per attempt; ~0.35 s worst case).
REPLACE_BACKOFF_SECONDS = 0.05


def network_fingerprint(network: RoadNetwork) -> str:
    """Return a stable content hash of the network's routing-relevant state.

    The hash covers the vertex list and the weighted adjacency **in
    iteration order** -- exactly the order the CSR compiler walks -- with
    weights hashed bit-for-bit via their IEEE-754 encoding.  Hashing the
    iteration order (rather than a canonicalised edge set) is deliberate:
    the engines guarantee bit-identical answers across restarts, and a
    Dijkstra's tie-breaking between equal-length paths depends on the array
    order the graph was compiled in.  A fingerprint hit therefore certifies
    that the cached arrays are the ones a fresh compile would produce, not
    merely an isomorphic network.  Deterministic generators and ingest
    pipelines rebuild in the same order, so restarts still hit the cache.
    Planar coordinates feed the grid index, not the routing engines, and do
    not participate.
    """
    hasher = hashlib.sha256()
    pack_vertex = struct.Struct("<q").pack
    pack_arc = struct.Struct("<qd").pack
    hasher.update(struct.pack("<qq", network.vertex_count, network.edge_count))
    for vertex in network.vertices():
        hasher.update(pack_vertex(vertex))
        for neighbour, weight in network.neighbours_view(vertex).items():
            hasher.update(pack_arc(neighbour, weight))
    return hasher.hexdigest()


class ArtifactCache:
    """A directory of ``.npz`` compiled-routing artifacts keyed by content.

    The cache is a plain mapping from ``(kind, fingerprint, params)`` to a
    dict of named arrays; what those arrays mean is the owning engine's
    business (:mod:`repro.roadnet.routing` holds the encode/decode logic for
    each artifact kind).  Misses -- absent file, corrupt file, NumPy not
    installed -- all answer ``None``, so callers follow one pattern::

        arrays = cache.load("ch", fingerprint)
        if arrays is None:
            arrays = build()          # the expensive part
            cache.save("ch", fingerprint, arrays)
    """

    def __init__(self, directory: "os.PathLike[str] | str") -> None:
        self.directory = Path(directory)

    @property
    def available(self) -> bool:
        """``True`` when artifacts can actually be (de)serialised."""
        return _np is not None

    @staticmethod
    def fingerprint(network: RoadNetwork) -> str:
        """Convenience alias for :func:`network_fingerprint`."""
        return network_fingerprint(network)

    def path_for(self, kind: str, fingerprint: str, params: str = "") -> Path:
        """The cache file an artifact lives at (whether or not it exists)."""
        suffix = f"-{params}" if params else ""
        return self.directory / f"{kind}-{fingerprint[:FINGERPRINT_CHARS]}{suffix}.npz"

    def load(
        self, kind: str, fingerprint: str, params: str = ""
    ) -> Optional[Dict[str, "object"]]:
        """Return the artifact's arrays, or ``None`` on any kind of miss."""
        if _np is None:
            return None
        path = self.path_for(kind, fingerprint, params)
        try:
            with _np.load(path, allow_pickle=False) as payload:
                return {name: payload[name] for name in payload.files}
        except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile):
            # Absent, truncated or corrupt: treat as a miss; the engine
            # rebuilds and save() atomically replaces the bad file.
            # (BadZipFile covers a file with a valid zip magic but a
            # truncated body -- np.load raises it directly, and it is not
            # an OSError/ValueError subclass.)
            return None

    def save(
        self, kind: str, fingerprint: str, arrays: Mapping[str, "object"], params: str = ""
    ) -> Optional[Path]:
        """Atomically persist an artifact; returns its path (None if disabled).

        The final rename is retried with exponential backoff
        (:data:`REPLACE_ATTEMPTS` attempts starting at
        :data:`REPLACE_BACKOFF_SECONDS`): two processes warming the same
        cache directory concurrently can collide on the target -- Windows
        refuses to replace a file another process holds open, and network
        filesystems surface transient ``EBUSY``/``EACCES`` -- and since
        both writers produce identical bytes for the same fingerprint, a
        short wait and a second attempt is the correct resolution, not a
        lost artifact.
        """
        if _np is None:
            return None
        target = self.path_for(kind, fingerprint, params)
        tmp = target.with_name(f".{target.name}.{os.getpid()}.tmp")
        try:
            # mkdir inside the guard: an unwritable or file-shadowed cache
            # directory must degrade to "nothing persisted", never crash an
            # engine that just paid for its build.
            self.directory.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as handle:
                _np.savez(handle, **{name: _np.asarray(value) for name, value in arrays.items()})
            backoff = REPLACE_BACKOFF_SECONDS
            for attempt in range(REPLACE_ATTEMPTS):
                try:
                    os.replace(tmp, target)
                    break
                except OSError:
                    if attempt == REPLACE_ATTEMPTS - 1:
                        raise
                    time.sleep(backoff)
                    backoff *= 2
        except OSError:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass  # e.g. the "directory" is actually a file
            return None
        return target
