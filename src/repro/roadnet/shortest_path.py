"""Shortest-path machinery for PTRider.

Every price and every pick-up time in the system is derived from shortest-path
distances on the road network (Section 2.1 of the paper).  The matchers call
into this module constantly, so it offers several access patterns:

* :func:`shortest_path_distance` / :func:`shortest_path` -- point-to-point
  Dijkstra with early termination;
* :func:`bidirectional_dijkstra` -- meet-in-the-middle search used for long
  queries;
* :func:`bounded_dijkstra` -- expansion limited to a radius, used by the grid
  index and the single-side search frontier;
* :func:`dijkstra_all` / :func:`multi_source_dijkstra` -- full and
  multi-source expansions used when building the grid index;
* :class:`DistanceOracle` -- a memoising facade that caches single-source
  trees; it backs the "dict" backend of :mod:`repro.roadnet.routing`, which
  is what the matchers and the simulator hold on to.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import DisconnectedError, VertexNotFoundError
from repro.roadnet.graph import RoadNetwork, VertexId

__all__ = [
    "PathResult",
    "shortest_path_distance",
    "shortest_path",
    "astar_path",
    "bidirectional_dijkstra",
    "bounded_dijkstra",
    "dijkstra_all",
    "multi_source_dijkstra",
    "reconstruct_path",
    "path_length",
    "DistanceOracle",
]

INFINITY = float("inf")


@dataclass(frozen=True)
class PathResult:
    """The result of a point-to-point shortest-path query."""

    source: VertexId
    target: VertexId
    distance: float
    path: Tuple[VertexId, ...]

    @property
    def hop_count(self) -> int:
        """Number of edges on the path."""
        return max(0, len(self.path) - 1)


def _require_vertices(network: RoadNetwork, vertices: Iterable[VertexId]) -> None:
    for vertex in vertices:
        if vertex not in network:
            raise VertexNotFoundError(vertex)


def shortest_path_distance(network: RoadNetwork, source: VertexId, target: VertexId) -> float:
    """Return ``dist(source, target)`` on the road network.

    Runs a Dijkstra search from ``source`` that stops as soon as ``target``
    is settled.

    Raises:
        VertexNotFoundError: if either endpoint is unknown.
        DisconnectedError: if no path connects the endpoints.
    """
    _require_vertices(network, (source, target))
    if source == target:
        return 0.0
    dist: Dict[VertexId, float] = {source: 0.0}
    heap: List[Tuple[float, VertexId]] = [(0.0, source)]
    settled: set = set()
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        if u == target:
            return d
        settled.add(u)
        for v, weight in network.neighbours_view(u).items():
            nd = d + weight
            if nd < dist.get(v, INFINITY):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    raise DisconnectedError(source, target)


def shortest_path(network: RoadNetwork, source: VertexId, target: VertexId) -> PathResult:
    """Return the shortest path (distance and vertex sequence) between two vertices.

    Raises:
        VertexNotFoundError: if either endpoint is unknown.
        DisconnectedError: if no path connects the endpoints.
    """
    _require_vertices(network, (source, target))
    if source == target:
        return PathResult(source, target, 0.0, (source,))
    dist: Dict[VertexId, float] = {source: 0.0}
    parent: Dict[VertexId, VertexId] = {}
    heap: List[Tuple[float, VertexId]] = [(0.0, source)]
    settled: set = set()
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        if u == target:
            return PathResult(source, target, d, tuple(reconstruct_path(parent, source, target)))
        settled.add(u)
        for v, weight in network.neighbours_view(u).items():
            nd = d + weight
            if nd < dist.get(v, INFINITY):
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, v))
    raise DisconnectedError(source, target)


def astar_path(
    network: RoadNetwork,
    source: VertexId,
    target: VertexId,
    heuristic: Optional[Dict[VertexId, float]] = None,
) -> PathResult:
    """A* search from ``source`` to ``target``.

    Without an explicit ``heuristic`` the Euclidean distance to ``target`` is
    used, which is admissible whenever every edge weight is at least the
    Euclidean length of the edge -- true for all networks produced by
    :mod:`repro.roadnet.generators` (and verified by their tests).  The
    movement planner uses this for long point-to-point routes where plain
    Dijkstra would settle most of the network.

    Args:
        network: the road network (must carry coordinates unless a heuristic
            mapping is given).
        source: start vertex.
        target: goal vertex.
        heuristic: optional pre-computed admissible lower bounds
            ``{vertex: h(vertex)}``; missing vertices default to 0.

    Raises:
        VertexNotFoundError: if either endpoint is unknown.
        DisconnectedError: if no path connects the endpoints.
    """
    _require_vertices(network, (source, target))
    if source == target:
        return PathResult(source, target, 0.0, (source,))

    if heuristic is None:
        target_point = network.coordinate(target)

        def estimate(vertex: VertexId) -> float:
            return network.coordinate(vertex).distance_to(target_point)

    else:

        def estimate(vertex: VertexId) -> float:
            return heuristic.get(vertex, 0.0)

    dist: Dict[VertexId, float] = {source: 0.0}
    parent: Dict[VertexId, VertexId] = {}
    heap: List[Tuple[float, float, VertexId]] = [(estimate(source), 0.0, source)]
    settled: set = set()
    while heap:
        _, d, u = heapq.heappop(heap)
        if u in settled:
            continue
        if u == target:
            return PathResult(source, target, d, tuple(reconstruct_path(parent, source, target)))
        settled.add(u)
        for v, weight in network.neighbours_view(u).items():
            nd = d + weight
            if nd < dist.get(v, INFINITY):
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd + estimate(v), nd, v))
    raise DisconnectedError(source, target)


def bidirectional_dijkstra(network: RoadNetwork, source: VertexId, target: VertexId) -> PathResult:
    """Meet-in-the-middle Dijkstra between ``source`` and ``target``.

    Produces the same result as :func:`shortest_path` while settling far
    fewer vertices on large networks.

    Raises:
        VertexNotFoundError: if either endpoint is unknown.
        DisconnectedError: if no path connects the endpoints.
    """
    _require_vertices(network, (source, target))
    if source == target:
        return PathResult(source, target, 0.0, (source,))

    dist_f: Dict[VertexId, float] = {source: 0.0}
    dist_b: Dict[VertexId, float] = {target: 0.0}
    parent_f: Dict[VertexId, VertexId] = {}
    parent_b: Dict[VertexId, VertexId] = {}
    heap_f: List[Tuple[float, VertexId]] = [(0.0, source)]
    heap_b: List[Tuple[float, VertexId]] = [(0.0, target)]
    settled_f: set = set()
    settled_b: set = set()
    best = INFINITY
    meeting: Optional[VertexId] = None

    def relax(
        heap: List[Tuple[float, VertexId]],
        dist: Dict[VertexId, float],
        parent: Dict[VertexId, VertexId],
        settled: set,
        other_dist: Dict[VertexId, float],
    ) -> None:
        nonlocal best, meeting
        d, u = heapq.heappop(heap)
        if u in settled:
            return
        settled.add(u)
        for v, weight in network.neighbours_view(u).items():
            nd = d + weight
            if nd < dist.get(v, INFINITY):
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, v))
            if v in other_dist and nd + other_dist[v] < best:
                best = nd + other_dist[v]
                meeting = v
        if u in other_dist and d + other_dist[u] < best:
            best = d + other_dist[u]
            meeting = u

    while heap_f and heap_b:
        if heap_f[0][0] + heap_b[0][0] >= best:
            break
        if heap_f[0][0] <= heap_b[0][0]:
            relax(heap_f, dist_f, parent_f, settled_f, dist_b)
        else:
            relax(heap_b, dist_b, parent_b, settled_b, dist_f)

    if meeting is None:
        raise DisconnectedError(source, target)

    forward = reconstruct_path(parent_f, source, meeting)
    backward = reconstruct_path(parent_b, target, meeting)
    full_path = forward + list(reversed(backward[:-1]))
    return PathResult(source, target, best, tuple(full_path))


def bounded_dijkstra(
    network: RoadNetwork, source: VertexId, radius: float
) -> Dict[VertexId, float]:
    """Return distances from ``source`` to every vertex within ``radius``.

    Vertices whose shortest-path distance exceeds ``radius`` are omitted.
    Used by the grid index construction and by the search frontiers of the
    matchers, which only ever care about vehicles close enough to qualify.

    Raises:
        VertexNotFoundError: if ``source`` is unknown.
        ValueError: if ``radius`` is negative.
    """
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    _require_vertices(network, (source,))
    dist: Dict[VertexId, float] = {source: 0.0}
    result: Dict[VertexId, float] = {}
    heap: List[Tuple[float, VertexId]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if u in result:
            continue
        if d > radius:
            break
        result[u] = d
        for v, weight in network.neighbours_view(u).items():
            nd = d + weight
            if nd <= radius and nd < dist.get(v, INFINITY):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return result


def dijkstra_all(network: RoadNetwork, source: VertexId) -> Dict[VertexId, float]:
    """Return shortest-path distances from ``source`` to every reachable vertex.

    This is the dict backend's tree builder (every :class:`DistanceOracle`
    miss lands here), so the inner loop hoists the heap operations and the
    neighbour accessor into locals -- the same treatment the CSR fallback's
    ``_tree_python`` gets.
    """
    _require_vertices(network, (source,))
    dist: Dict[VertexId, float] = {source: 0.0}
    result: Dict[VertexId, float] = {}
    heap: List[Tuple[float, VertexId]] = [(0.0, source)]
    push, pop = heapq.heappush, heapq.heappop
    neighbours_view = network.neighbours_view
    dist_get = dist.get
    while heap:
        d, u = pop(heap)
        if u in result:
            continue
        result[u] = d
        for v, weight in neighbours_view(u).items():
            nd = d + weight
            if nd < dist_get(v, INFINITY):
                dist[v] = nd
                push(heap, (nd, v))
    return result


def multi_source_dijkstra(
    network: RoadNetwork, sources: Iterable[VertexId]
) -> Dict[VertexId, float]:
    """Return, for every reachable vertex, the distance to its *closest* source.

    This is what the grid index uses to compute the distance from every vertex
    of a cell to the cell's border-vertex set, and the cell-pair lower bounds.

    Raises:
        VertexNotFoundError: if any source is unknown.
        ValueError: if ``sources`` is empty.
    """
    source_list = list(sources)
    if not source_list:
        raise ValueError("multi_source_dijkstra requires at least one source")
    _require_vertices(network, source_list)
    dist: Dict[VertexId, float] = {s: 0.0 for s in source_list}
    result: Dict[VertexId, float] = {}
    heap: List[Tuple[float, VertexId]] = [(0.0, s) for s in source_list]
    heapq.heapify(heap)
    push, pop = heapq.heappush, heapq.heappop
    neighbours_view = network.neighbours_view
    dist_get = dist.get
    while heap:
        d, u = pop(heap)
        if u in result:
            continue
        result[u] = d
        for v, weight in neighbours_view(u).items():
            nd = d + weight
            if nd < dist_get(v, INFINITY):
                dist[v] = nd
                push(heap, (nd, v))
    return result


def reconstruct_path(
    parent: Dict[VertexId, VertexId], source: VertexId, target: VertexId
) -> List[VertexId]:
    """Rebuild the vertex sequence from a parent map produced by Dijkstra."""
    path = [target]
    current = target
    while current != source:
        current = parent[current]
        path.append(current)
    path.reverse()
    return path


def path_length(network: RoadNetwork, path: Iterable[VertexId]) -> float:
    """Return the total weight of a vertex sequence interpreted as a walk.

    Raises:
        EdgeNotFoundError: if two consecutive vertices are not adjacent.
    """
    total = 0.0
    previous: Optional[VertexId] = None
    for vertex in path:
        if previous is not None:
            total += network.edge_weight(previous, vertex)
        previous = vertex
    return total


@dataclass
class _OracleStats:
    """Bookkeeping counters exposed by :class:`DistanceOracle`."""

    queries: int = 0
    cache_hits: int = 0
    dijkstra_runs: int = 0


class DistanceOracle:
    """A memoising shortest-path distance oracle.

    The matchers issue many distance queries that share their source vertex
    (for example the request start location ``s`` against many candidate
    pick-up points), so the oracle caches complete single-source shortest-path
    trees keyed by source.  A ``max_cached_sources`` bound keeps memory in
    check for day-long simulations; the eviction policy is FIFO, which is
    adequate because sources are short-lived (one request, one vehicle step).
    """

    def __init__(self, network: RoadNetwork, max_cached_sources: int = 1024) -> None:
        if max_cached_sources <= 0:
            raise ValueError("max_cached_sources must be positive")
        self._network = network
        self._max_cached_sources = max_cached_sources
        # OrderedDict doubles as the FIFO eviction queue: popitem(last=False)
        # evicts the oldest source in O(1) instead of list.pop(0)'s O(n).
        self._trees: "OrderedDict[VertexId, Dict[VertexId, float]]" = OrderedDict()
        self.stats = _OracleStats()

    @property
    def network(self) -> RoadNetwork:
        """The road network the oracle answers queries on."""
        return self._network

    def distance(self, source: VertexId, target: VertexId) -> float:
        """Return ``dist(source, target)``, computing and caching as needed.

        The tree the answer is read from is always rooted at the *smaller*
        endpoint (the graph is symmetric, so either root is correct).  Fixing
        the root canonically -- rather than preferring whichever tree happens
        to be cached -- makes every point-to-point answer bit-for-bit
        independent of cache state, which the batched dispatch pipeline
        relies on to reproduce the sequential loop's floats exactly.

        Raises:
            DisconnectedError: if ``target`` is unreachable from ``source``.
        """
        self.stats.queries += 1
        if source == target:
            return 0.0
        root, leaf = (source, target) if source <= target else (target, source)
        tree = self._trees.get(root)
        if tree is None:
            tree = self._grow_tree(root)
        else:
            self.stats.cache_hits += 1
        try:
            return tree[leaf]
        except KeyError:
            raise DisconnectedError(source, target) from None

    def distances_from(self, source: VertexId) -> Dict[VertexId, float]:
        """Return (a reference to) the full distance tree rooted at ``source``."""
        self.stats.queries += 1
        tree = self._trees.get(source)
        if tree is None:
            tree = self._grow_tree(source)
        else:
            self.stats.cache_hits += 1
        return tree

    def path(self, source: VertexId, target: VertexId) -> PathResult:
        """Return the full path; not cached (paths are only needed for movement)."""
        return shortest_path(self._network, source, target)

    def invalidate(self) -> None:
        """Drop every cached tree (call after the network is mutated)."""
        self._trees.clear()

    def _grow_tree(self, source: VertexId) -> Dict[VertexId, float]:
        tree = dijkstra_all(self._network, source)
        self.stats.dijkstra_runs += 1
        self._trees[source] = tree
        if len(self._trees) > self._max_cached_sources:
            self._trees.popitem(last=False)
        return tree
