"""Synthetic road-network builders.

PTRider was demonstrated on the Shanghai road network, which is not
redistributable.  These generators produce planar, connected, positively
weighted networks with the structural features the matchers care about
(bounded degree, grid-like locality, non-uniform edge lengths) at any scale,
so every experiment in ``benchmarks/`` can run on a laptop.

:func:`figure1_network` reconstructs the 17-vertex example of Figure 1 of the
paper.  The published figure is a hand-drawn sketch whose exact edge weights
cannot be recovered from the text, so the reconstruction instead satisfies
every *quantitative* statement the paper makes about the example:

* ``dist(v1, v2) + dist(v2, v12) = 14``  (pick-up distance of ``c1``),
* ``dist(v13, v12) = 8``                 (pick-up distance of ``c2``),
* ``dist(v12, v17) = 7``                 (so the price of ``c2`` is 8.8),
* ``dist(v2, v12) + dist(v12, v16) + dist(v16, v17) - dist(v2, v16) = 3``
  (so the price of ``c1`` is 4).

``tests/core/test_paper_example.py`` asserts that the worked example of
Section 2 reproduces exactly on this network.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.roadnet.graph import RoadNetwork

__all__ = [
    "grid_network",
    "arterial_grid_network",
    "random_geometric_network",
    "ring_radial_network",
    "figure1_network",
    "FIGURE1_VEHICLE_POSITIONS",
]


def grid_network(
    rows: int,
    columns: int,
    spacing: float = 1.0,
    weight_jitter: float = 0.0,
    seed: Optional[int] = None,
) -> RoadNetwork:
    """Build a Manhattan-style grid road network.

    Vertices are numbered ``1 .. rows * columns`` in row-major order and are
    placed ``spacing`` apart.  Every horizontal and vertical neighbour pair is
    connected.  With ``weight_jitter > 0`` each edge weight is drawn uniformly
    from ``[spacing, spacing * (1 + weight_jitter)]`` which keeps the planar
    embedding an (Euclidean) lower bound of the travel cost.

    Args:
        rows: number of vertex rows (>= 1).
        columns: number of vertex columns (>= 1).
        spacing: distance between adjacent vertices.
        weight_jitter: relative upper bound of the random weight inflation.
        seed: seed for the jitter; ignored when ``weight_jitter == 0``.

    Returns:
        A connected :class:`RoadNetwork` with coordinates on every vertex.
    """
    if rows < 1 or columns < 1:
        raise ConfigurationError(f"grid dimensions must be >= 1, got {rows}x{columns}")
    if spacing <= 0:
        raise ConfigurationError(f"spacing must be positive, got {spacing}")
    if weight_jitter < 0:
        raise ConfigurationError(f"weight_jitter must be non-negative, got {weight_jitter}")

    rng = random.Random(seed)
    network = RoadNetwork()

    def vertex_id(row: int, column: int) -> int:
        return row * columns + column + 1

    for row in range(rows):
        for column in range(columns):
            network.add_vertex(vertex_id(row, column), x=column * spacing, y=row * spacing)

    def weight() -> float:
        if weight_jitter == 0:
            return spacing
        return spacing * (1.0 + rng.uniform(0.0, weight_jitter))

    for row in range(rows):
        for column in range(columns):
            current = vertex_id(row, column)
            if column + 1 < columns:
                network.add_edge(current, vertex_id(row, column + 1), weight())
            if row + 1 < rows:
                network.add_edge(current, vertex_id(row + 1, column), weight())
    return network


def arterial_grid_network(
    rows: int,
    columns: int,
    spacing: float = 1.0,
    weight_jitter: float = 0.0,
    arterial_every: int = 7,
    local_factor: float = 3.0,
    seed: Optional[int] = None,
) -> RoadNetwork:
    """A Manhattan grid with fast arterial roads every ``arterial_every`` lines.

    Real city networks are not uniform grids: a sparse skeleton of arterials
    carries most shortest paths while local streets are slow.  This generator
    reproduces that structure -- edges lying on every ``arterial_every``-th
    row/column keep the base grid weight while all other ("local") edges are
    ``local_factor`` times more expensive -- which is exactly the *highway
    hierarchy* that makes contraction-based routing effective and makes the
    network a fair stand-in for an OSM extract.  Local weights stay >=
    ``spacing``, so the planar embedding remains an Euclidean lower bound of
    travel cost like :func:`grid_network`'s.

    Args:
        rows / columns / spacing / weight_jitter / seed: as
            :func:`grid_network` (which this builds on).
        arterial_every: period of the arterial rows/columns (>= 1;
            ``1`` degenerates to a plain grid).
        local_factor: weight multiplier of non-arterial edges (>= 1).

    Returns:
        A connected :class:`RoadNetwork` with coordinates on every vertex.
    """
    if arterial_every < 1:
        raise ConfigurationError(
            f"arterial_every must be >= 1, got {arterial_every}"
        )
    if local_factor < 1:
        raise ConfigurationError(f"local_factor must be >= 1, got {local_factor}")
    network = grid_network(
        rows, columns, spacing=spacing, weight_jitter=weight_jitter, seed=seed
    )
    for edge in list(network.edges()):
        row_u, column_u = divmod(edge.u - 1, columns)
        row_v, column_v = divmod(edge.v - 1, columns)
        on_arterial = (
            row_u % arterial_every == 0 and row_v % arterial_every == 0
        ) or (column_u % arterial_every == 0 and column_v % arterial_every == 0)
        if not on_arterial:
            network.add_edge(edge.u, edge.v, edge.weight * local_factor)
    return network


def random_geometric_network(
    vertex_count: int,
    radius: float = 0.2,
    extent: float = 1.0,
    seed: Optional[int] = None,
) -> RoadNetwork:
    """Build a random geometric graph, patched to be connected.

    ``vertex_count`` points are placed uniformly at random in a square of side
    ``extent``; every pair closer than ``radius`` is connected with an edge
    weighted by its Euclidean length.  Components are then stitched together
    through their closest vertex pairs so that the result is always connected
    (a requirement of the simulation engine).

    Args:
        vertex_count: number of vertices (>= 1).
        radius: connection radius.
        extent: side length of the square the points are drawn from.
        seed: RNG seed for reproducibility.
    """
    if vertex_count < 1:
        raise ConfigurationError(f"vertex_count must be >= 1, got {vertex_count}")
    if radius <= 0 or extent <= 0:
        raise ConfigurationError("radius and extent must be positive")

    rng = random.Random(seed)
    network = RoadNetwork()
    positions: Dict[int, Tuple[float, float]] = {}
    for vertex in range(1, vertex_count + 1):
        x, y = rng.uniform(0.0, extent), rng.uniform(0.0, extent)
        positions[vertex] = (x, y)
        network.add_vertex(vertex, x=x, y=y)

    vertices = list(positions)
    for i, u in enumerate(vertices):
        ux, uy = positions[u]
        for v in vertices[i + 1:]:
            vx, vy = positions[v]
            distance = math.hypot(ux - vx, uy - vy)
            if 0 < distance <= radius:
                network.add_edge(u, v, distance)

    components = network.connected_components()
    while len(components) > 1:
        base = components[0]
        other = components[1]
        best: Tuple[float, int, int] = (math.inf, -1, -1)
        for u in base:
            for v in other:
                distance = math.hypot(
                    positions[u][0] - positions[v][0], positions[u][1] - positions[v][1]
                )
                if 0 < distance < best[0]:
                    best = (distance, u, v)
        if best[1] == -1:
            # Two vertices share a coordinate; connect them with a tiny edge.
            network.add_edge(base[0], other[0], 1e-9)
        else:
            network.add_edge(best[1], best[2], best[0])
        components = network.connected_components()
    return network


def ring_radial_network(
    rings: int,
    spokes: int,
    ring_spacing: float = 1.0,
    seed: Optional[int] = None,
    weight_jitter: float = 0.0,
) -> RoadNetwork:
    """Build a ring-and-radial network resembling a city with a centre.

    A central vertex is surrounded by ``rings`` concentric rings, each with
    ``spokes`` vertices.  Consecutive vertices on a ring are connected, and
    each vertex is connected radially to the matching vertex of the next ring
    inwards (the innermost ring connects to the centre).

    Args:
        rings: number of rings (>= 1).
        spokes: vertices per ring (>= 3).
        ring_spacing: radial distance between consecutive rings.
        seed: RNG seed for the optional weight jitter.
        weight_jitter: relative upper bound of random weight inflation.
    """
    if rings < 1:
        raise ConfigurationError(f"rings must be >= 1, got {rings}")
    if spokes < 3:
        raise ConfigurationError(f"spokes must be >= 3, got {spokes}")
    if ring_spacing <= 0:
        raise ConfigurationError("ring_spacing must be positive")
    if weight_jitter < 0:
        raise ConfigurationError("weight_jitter must be non-negative")

    rng = random.Random(seed)

    def jitter(value: float) -> float:
        if weight_jitter == 0:
            return value
        return value * (1.0 + rng.uniform(0.0, weight_jitter))

    network = RoadNetwork()
    centre = 1
    network.add_vertex(centre, x=0.0, y=0.0)

    # Vertex id scheme: centre is 1, ring r (1-based) spoke k (0-based) is
    # 1 + (r - 1) * spokes + k + 1.
    def vid(ring: int, spoke: int) -> int:
        return 1 + (ring - 1) * spokes + spoke + 1

    for ring in range(1, rings + 1):
        radius = ring * ring_spacing
        for spoke in range(spokes):
            angle = 2.0 * math.pi * spoke / spokes
            network.add_vertex(vid(ring, spoke), x=radius * math.cos(angle), y=radius * math.sin(angle))

    for ring in range(1, rings + 1):
        radius = ring * ring_spacing
        chord = 2.0 * radius * math.sin(math.pi / spokes)
        for spoke in range(spokes):
            current = vid(ring, spoke)
            nxt = vid(ring, (spoke + 1) % spokes)
            network.add_edge(current, nxt, jitter(chord))
            if ring == 1:
                network.add_edge(centre, current, jitter(ring_spacing))
            else:
                network.add_edge(vid(ring - 1, spoke), current, jitter(ring_spacing))
    return network


#: Starting locations of the two example vehicles of Section 2.5 of the paper.
FIGURE1_VEHICLE_POSITIONS: Dict[str, int] = {"c1": 1, "c2": 13}


def figure1_network() -> RoadNetwork:
    """Reconstruct the 17-vertex example road network of Figure 1.

    See the module docstring for the reconstruction contract.  Vertex ``i`` of
    the paper is vertex ``i`` here (1-based).
    """
    coordinates: Dict[int, Tuple[float, float]] = {
        1: (0.0, 0.0),
        2: (8.0, 0.0),
        3: (0.0, 4.0),
        4: (4.0, 4.0),
        5: (8.0, 4.0),
        6: (11.0, 4.0),
        7: (14.0, 4.0),
        8: (18.0, 4.0),
        9: (21.0, 4.0),
        10: (4.0, 8.0),
        11: (8.0, 8.0),
        12: (14.0, 0.0),
        13: (14.0, 8.0),
        14: (18.0, 8.0),
        15: (21.0, 8.0),
        16: (18.0, 0.0),
        17: (21.0, 0.0),
    }
    edges: List[Tuple[int, int, float]] = [
        # backbone realising the worked-example distances
        (1, 2, 8.0),
        (2, 12, 6.0),
        (12, 16, 4.0),
        (16, 17, 3.0),
        (12, 13, 8.0),
        # northern corridor
        (1, 3, 4.0),
        (3, 4, 4.0),
        (4, 2, 6.0),
        (4, 5, 4.0),
        (2, 5, 4.0),
        (5, 6, 3.0),
        (6, 7, 3.0),
        (7, 12, 4.0),
        (7, 13, 4.0),
        (7, 8, 4.0),
        (8, 16, 4.0),
        (8, 9, 3.0),
        (9, 17, 4.0),
        # upper row
        (4, 10, 4.0),
        (10, 11, 4.0),
        (5, 11, 4.0),
        (13, 14, 4.0),
        (8, 14, 4.0),
        (14, 15, 3.0),
        (9, 15, 4.0),
    ]
    return RoadNetwork.from_edges(edges, coordinates=coordinates)
