"""Planar geometry helpers used by the road-network substrate.

The road networks handled by PTRider are embedded in the plane: every vertex
carries an ``(x, y)`` coordinate.  The embedding is used by

* the grid index, to assign vertices to grid cells;
* the synthetic network generators, to lay out vertices;
* the SHAREK-style baseline, which prunes with Euclidean distance.

Coordinates are unit-less by default; :func:`haversine_distance` is provided
for callers that store longitude/latitude instead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple

__all__ = [
    "Point",
    "BoundingBox",
    "euclidean_distance",
    "manhattan_distance",
    "haversine_distance",
]

#: Mean Earth radius in metres, used by :func:`haversine_distance`.
EARTH_RADIUS_METRES = 6_371_000.0


@dataclass(frozen=True)
class Point:
    """A point in the plane.

    ``Point`` is an immutable value object; arithmetic helpers return new
    instances.
    """

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Return the Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def manhattan_distance_to(self, other: "Point") -> float:
        """Return the L1 (Manhattan) distance to ``other``."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def midpoint(self, other: "Point") -> "Point":
        """Return the midpoint of the segment between ``self`` and ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a copy of the point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> Tuple[float, float]:
        """Return the point as a plain ``(x, y)`` tuple."""
        return (self.x, self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y


def euclidean_distance(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    """Return the Euclidean distance between two ``(x, y)`` tuples."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


def manhattan_distance(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    """Return the Manhattan (L1) distance between two ``(x, y)`` tuples."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def haversine_distance(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    """Return the great-circle distance in metres between two points.

    Both points are ``(longitude, latitude)`` pairs expressed in degrees.
    """
    lon1, lat1 = math.radians(a[0]), math.radians(a[1])
    lon2, lat2 = math.radians(b[0]), math.radians(b[1])
    dlon = lon2 - lon1
    dlat = lat2 - lat1
    h = math.sin(dlat / 2.0) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_METRES * math.asin(math.sqrt(h))


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned bounding box ``[min_x, max_x] x [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(
                "bounding box minimum corner must not exceed its maximum corner: "
                f"({self.min_x}, {self.min_y}) vs ({self.max_x}, {self.max_y})"
            )

    @classmethod
    def from_points(cls, points: Iterable[Tuple[float, float]]) -> "BoundingBox":
        """Build the tightest box containing every point in ``points``.

        Raises:
            ValueError: if ``points`` is empty.
        """
        iterator = iter(points)
        try:
            first = next(iterator)
        except StopIteration:
            raise ValueError("cannot build a bounding box from an empty point set") from None
        min_x = max_x = float(first[0])
        min_y = max_y = float(first[1])
        for x, y in iterator:
            min_x = min(min_x, float(x))
            max_x = max(max_x, float(x))
            min_y = min(min_y, float(y))
            max_y = max(max_y, float(y))
        return cls(min_x, min_y, max_x, max_y)

    @property
    def width(self) -> float:
        """Extent of the box along the x axis."""
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        """Extent of the box along the y axis."""
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        """Area of the box."""
        return self.width * self.height

    @property
    def center(self) -> Point:
        """Centre point of the box."""
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def contains(self, point: Tuple[float, float]) -> bool:
        """Return ``True`` when ``point`` lies inside or on the boundary."""
        x, y = float(point[0]), float(point[1])
        return self.min_x <= x <= self.max_x and self.min_y <= y <= self.max_y

    def intersects(self, other: "BoundingBox") -> bool:
        """Return ``True`` when the two boxes overlap (boundary touching counts)."""
        return not (
            other.min_x > self.max_x
            or other.max_x < self.min_x
            or other.min_y > self.max_y
            or other.max_y < self.min_y
        )

    def expanded(self, margin: float) -> "BoundingBox":
        """Return a copy grown by ``margin`` on every side."""
        if margin < 0:
            raise ValueError("margin must be non-negative")
        return BoundingBox(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )
