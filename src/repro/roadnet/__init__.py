"""Road-network substrate for PTRider.

The subpackage provides everything PTRider needs to know about the static
road network:

* :mod:`repro.roadnet.graph` -- the weighted road graph itself;
* :mod:`repro.roadnet.geometry` -- planar embedding helpers;
* :mod:`repro.roadnet.shortest_path` -- Dijkstra variants and a memoising
  distance oracle;
* :mod:`repro.roadnet.routing` -- the pluggable routing engines (the dict
  Dijkstra reference backend, the CSR array backend, the ALT landmark
  lower-bound index, the all-pairs table and the contraction hierarchy)
  every distance/path query goes through;
* :mod:`repro.roadnet.artifacts` -- the persisted compiled-artifact cache
  (content-hash-keyed ``.npz`` files) that lets restarts skip routing
  preprocessing;
* :mod:`repro.roadnet.grid_index` -- the grid partition index of Section 3.2.1
  of the paper (border vertices, ``v.min``, cell-pair lower bounds, sorted
  grid lists, per-cell vehicle lists);
* :mod:`repro.roadnet.generators` -- synthetic network builders, including the
  17-vertex example network of Figure 1;
* :mod:`repro.roadnet.io` -- persistence of networks to edge lists and JSON.
"""

from repro.roadnet.geometry import BoundingBox, Point, euclidean_distance, haversine_distance
from repro.roadnet.graph import Edge, RoadNetwork
from repro.roadnet.grid_index import GridCell, GridIndex
from repro.roadnet.shortest_path import (
    DistanceOracle,
    PathResult,
    astar_path,
    bidirectional_dijkstra,
    bounded_dijkstra,
    dijkstra_all,
    multi_source_dijkstra,
    shortest_path,
    shortest_path_distance,
)
from repro.roadnet.artifacts import ArtifactCache, network_fingerprint
from repro.roadnet.routing import (
    ROUTING_BACKENDS,
    ALTIndex,
    CHEngine,
    ContractionHierarchy,
    CSREngine,
    CSRGraph,
    DictDijkstraEngine,
    RoutingEngine,
    TableEngine,
    ensure_engine,
    make_engine,
)
from repro.roadnet.generators import (
    arterial_grid_network,
    figure1_network,
    grid_network,
    random_geometric_network,
    ring_radial_network,
)

__all__ = [
    "ALTIndex",
    "ArtifactCache",
    "BoundingBox",
    "CHEngine",
    "ContractionHierarchy",
    "CSREngine",
    "CSRGraph",
    "DictDijkstraEngine",
    "DistanceOracle",
    "Edge",
    "ROUTING_BACKENDS",
    "RoutingEngine",
    "astar_path",
    "GridCell",
    "GridIndex",
    "PathResult",
    "Point",
    "RoadNetwork",
    "TableEngine",
    "arterial_grid_network",
    "bidirectional_dijkstra",
    "ensure_engine",
    "make_engine",
    "bounded_dijkstra",
    "dijkstra_all",
    "euclidean_distance",
    "figure1_network",
    "network_fingerprint",
    "grid_network",
    "haversine_distance",
    "multi_source_dijkstra",
    "random_geometric_network",
    "ring_radial_network",
    "shortest_path",
    "shortest_path_distance",
]
