"""The durability journal: a SQLite write-ahead log of service events.

Every state-mutating event of a :class:`~repro.service.api.PTRiderService`
-- request admission, window pump/drain, per-request booking, option choice,
cancellation, sim-tick advance, parameter change -- is appended here as a
monotonic sequence-numbered record *before* it executes (write-ahead
discipline).  Recovery (:mod:`repro.service.recovery`) re-applies the
records in sequence order against a restored snapshot, so a crashed service
resumes at exactly the state the journal durably holds.

Two record classes live in the log:

* **command records** (:data:`COMMAND_KINDS`) -- the events recovery
  re-executes.  Each corresponds to exactly one service API call, which is
  what lets a crashed driver resume its script at
  ``journal.command_count()`` completed calls.
* **annotation records** (:data:`ANNOTATION_KINDS`) -- window-flush
  *outcome* records: one per command, collecting every outcome the
  command's flush produced (via the dispatcher's ``outcome_listener``).
  They are never re-executed; recovery uses them to cross-check that the
  re-derived outcomes match what the pre-crash service actually answered.

Storage follows the exemplar durability pragmas (SNIPPETS.md Snippet 3):
``journal_mode=WAL`` (readers never block the appender, a torn OS write
can lose the newest transactions but never corrupt committed ones),
``synchronous=NORMAL`` (fsync at WAL checkpoints, not per record -- the
standard WAL durability/throughput trade) and a ``busy_timeout`` so two
processes touching the same journal directory back off instead of failing.

The reader is deliberately forgiving about the tail: a record whose payload
no longer decodes (a torn write that slipped past SQLite's own atomicity,
or deliberate fault injection) truncates the readable log at that point --
everything before it replays, everything at and after it is reported in
``truncated_records`` and dropped.  Snapshots live next to the database as
``snapshot-<seq>.json`` files (see :mod:`repro.service.recovery`).
"""

from __future__ import annotations

import json
import sqlite3
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import ServiceError
from repro.service.faults import fire as _fire_fault

__all__ = [
    "JournalRecord",
    "ServiceJournal",
    "COMMAND_KINDS",
    "ANNOTATION_KINDS",
    "JOURNAL_FILENAME",
]

#: The SQLite database file inside the journal directory.
JOURNAL_FILENAME = "journal.sqlite"

#: Events recovery re-executes, one per service API call.
COMMAND_KINDS = (
    "book",
    "book_batch",
    "admit",
    "pump",
    "drain",
    "choose",
    "cancel",
    "advance",
    "set_parameters",
)

#: Events recovery only cross-checks (window flush outcomes).
ANNOTATION_KINDS = ("outcome",)

#: Milliseconds a writer waits on a locked database before giving up
#: (Snippet 3's ``busy_timeout``; generous because snapshot writes and
#: appends may interleave from warm-restart tooling).
BUSY_TIMEOUT_MS = 30_000

_SCHEMA = """
CREATE TABLE IF NOT EXISTS journal (
    seq     INTEGER PRIMARY KEY,
    kind    TEXT NOT NULL,
    payload TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""


@dataclass(frozen=True)
class JournalRecord:
    """One journal entry: a monotonic sequence number, a kind, a payload."""

    seq: int
    kind: str
    payload: Dict[str, object]

    @property
    def is_command(self) -> bool:
        """``True`` for records recovery re-executes."""
        return self.kind in COMMAND_KINDS


class ServiceJournal:
    """An append-only, sequence-numbered event log in a directory.

    Args:
        directory: the journal directory (created if absent).  Holds the
            SQLite database plus the snapshot files recovery reads.

    The connection is opened lazily and re-opened after :meth:`close`, so a
    closed-then-reused service keeps journaling (mirroring the dispatcher's
    reusable ``close``).
    """

    def __init__(self, directory: "Path | str") -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._conn: Optional[sqlite3.Connection] = None
        #: payload-level torn-tail records dropped by the last :meth:`records`
        self.truncated_records = 0

    # ------------------------------------------------------------------
    @property
    def database_path(self) -> Path:
        """Where the SQLite log lives."""
        return self.directory / JOURNAL_FILENAME

    @property
    def connection(self) -> sqlite3.Connection:
        """The live connection (opened with the Snippet 3 pragmas)."""
        if self._conn is None:
            # isolation_level=None puts the connection in autocommit mode:
            # every INSERT is its own implicit transaction without the
            # explicit BEGIN/COMMIT round trips Python's default isolation
            # management adds -- measurably cheaper on the append hot path,
            # identical durability under WAL + synchronous=NORMAL.
            conn = sqlite3.connect(str(self.database_path), isolation_level=None)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute("PRAGMA foreign_keys=ON")
            conn.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
            conn.executescript(_SCHEMA)
            self._conn = conn
        return self._conn

    def close(self) -> None:
        """Close the connection (re-opened lazily on the next use)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------
    def append(self, kind: str, payload: Dict[str, object]) -> int:
        """Append one record; returns its sequence number.

        Each append is its own transaction: under WAL +
        ``synchronous=NORMAL`` a power loss may drop the newest
        transactions (redo recovery absorbs that -- the corresponding
        calls simply never happened) but committed records survive intact.
        """
        if kind not in COMMAND_KINDS and kind not in ANNOTATION_KINDS:
            raise ServiceError(f"unknown journal record kind {kind!r}")
        # Chaos-harness hook: an injected error here models a failed disk
        # write *before* the INSERT, so the write-ahead discipline holds --
        # the record never lands and the command never executes.
        _fire_fault("journal.append", tag=kind)
        cursor = self.connection.execute(
            "INSERT INTO journal (kind, payload) VALUES (?, ?)",
            (kind, json.dumps(payload, separators=(",", ":"))),
        )
        return int(cursor.lastrowid)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def last_seq(self) -> int:
        """The highest committed sequence number (0 when empty)."""
        try:
            row = self.connection.execute("SELECT MAX(seq) FROM journal").fetchone()
        except sqlite3.DatabaseError:
            return 0
        return int(row[0]) if row and row[0] is not None else 0

    def is_fresh(self) -> bool:
        """``True`` when the journal holds no records and no metadata."""
        try:
            records = self.last_seq() == 0
            meta = (
                self.connection.execute("SELECT COUNT(*) FROM meta").fetchone()[0] == 0
            )
        except sqlite3.DatabaseError:
            return False
        return records and meta

    def records(self, start_seq: int = 0) -> List[JournalRecord]:
        """Every readable record with ``seq > start_seq``, in sequence order.

        Torn-tail tolerant: a row whose payload fails to decode (or a
        database error mid-scan) truncates the result there -- the records
        before it are returned, the unreadable suffix is counted in
        :attr:`truncated_records`.  Rows are ordered by sequence number
        regardless of physical arrival order.
        """
        self.truncated_records = 0
        result: List[JournalRecord] = []
        try:
            rows = self.connection.execute(
                "SELECT seq, kind, payload FROM journal WHERE seq > ? ORDER BY seq",
                (start_seq,),
            ).fetchall()
        except sqlite3.DatabaseError:
            self.truncated_records += 1
            return result
        for index, (seq, kind, payload_text) in enumerate(rows):
            try:
                payload = json.loads(payload_text)
            except (TypeError, ValueError):
                # Torn write: drop this record and everything after it --
                # a redo log must never apply a suffix beyond a hole.
                self.truncated_records = len(rows) - index
                break
            result.append(JournalRecord(seq=int(seq), kind=str(kind), payload=payload))
        return result

    def command_count(self) -> int:
        """How many *command* records the readable log holds.

        The crash-recovery contract: every command record replays to
        completion, so a driver that crashed mid-script resumes at this
        many completed calls.
        """
        return sum(1 for record in self.records() if record.is_command)

    def truncate_after(self, seq: int) -> int:
        """Delete every record with ``seq >`` the given position; returns how many.

        Recovery calls this after absorbing a torn tail: the unreadable
        suffix must be physically removed before new records are appended,
        otherwise the hole would truncate every future read at the same
        spot and silently discard everything recorded after the restart.
        """
        cursor = self.connection.execute(
            "DELETE FROM journal WHERE seq > ?", (seq,)
        )
        return int(cursor.rowcount)

    # ------------------------------------------------------------------
    # metadata (written once at journal creation)
    # ------------------------------------------------------------------
    def set_meta(self, key: str, value: object) -> None:
        """Store a JSON-serialisable metadata value."""
        self.connection.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
            (key, json.dumps(value, separators=(",", ":"))),
        )

    def get_meta(self, key: str) -> Optional[object]:
        """Read a metadata value (``None`` when absent)."""
        row = self.connection.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            return None
        return json.loads(row[0])

    # ------------------------------------------------------------------
    # snapshot files (content managed by repro.service.recovery)
    # ------------------------------------------------------------------
    def snapshot_path(self, seq: int) -> Path:
        """Where the snapshot taken at journal position ``seq`` lives."""
        return self.directory / f"snapshot-{seq:012d}.json"

    def delta_path(self, seq: int) -> Path:
        """Where the incremental snapshot delta at position ``seq`` lives.

        Deltas hold only the state partitions dirtied since the previous
        snapshot point; recovery folds an unbroken chain of them over the
        full snapshot they name as their base (see
        :mod:`repro.service.recovery`).
        """
        return self.directory / f"delta-{seq:012d}.json"

    def delta_files(self) -> List[Tuple[int, Path]]:
        """Complete delta files present, oldest first, as ``(seq, path)``.

        Like :meth:`snapshot_files`, in-flight ``*.tmp`` files (a crash
        mid-delta) are invisible: only a finished atomic rename counts.
        """
        found: List[Tuple[int, Path]] = []
        for path in sorted(self.directory.glob("delta-*.json")):
            stem = path.stem.split("-", 1)
            try:
                found.append((int(stem[1]), path))
            except (IndexError, ValueError):
                continue
        found.sort(key=lambda item: item[0])
        return found

    def prune_deltas(self, upto_seq: int) -> int:
        """Delete delta files with ``seq <= upto_seq``; returns how many.

        Called when a full snapshot (compaction) lands at ``upto_seq``:
        the chain those deltas belonged to is superseded -- a fallback
        from a later corrupt snapshot recovers through journal replay, for
        which the journal itself stays authoritative.
        """
        pruned = 0
        for seq, path in self.delta_files():
            if seq > upto_seq:
                continue
            try:
                path.unlink()
                pruned += 1
            except OSError:  # pragma: no cover - fs race
                continue
        return pruned

    def snapshot_files(self) -> List[Tuple[int, Path]]:
        """Complete snapshot files present, oldest first, as ``(seq, path)``.

        In-flight ``*.tmp`` files (a crash mid-snapshot) are ignored: only
        a finished atomic rename makes a snapshot visible here.
        """
        found: List[Tuple[int, Path]] = []
        for path in sorted(self.directory.glob("snapshot-*.json")):
            stem = path.stem.split("-", 1)
            try:
                found.append((int(stem[1]), path))
            except (IndexError, ValueError):
                continue
        found.sort(key=lambda item: item[0])
        return found

    def prune_snapshots(self, keep: int = 3) -> int:
        """Delete all but the newest ``keep`` snapshots; returns how many.

        At least two are worth keeping so a corrupt newest snapshot still
        leaves a previous one to fall back to (with a longer replay).  The
        sequence-0 baseline is never pruned: it is the anchor full-journal
        replay starts from and the fallback of last resort when every
        periodic snapshot is damaged.
        """
        files = [(seq, path) for seq, path in self.snapshot_files() if seq > 0]
        pruned = 0
        for _seq, path in files[: max(0, len(files) - keep)]:
            try:
                path.unlink()
                pruned += 1
            except OSError:
                continue
        return pruned

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ServiceJournal({str(self.directory)!r}, last_seq={self.last_seq()})"
