"""The in-memory PTRider service.

The demonstration exposes PTRider through a smartphone interface (book a
taxi, see the price/time options, choose one) and a website interface (view
trip schedules, read live statistics, set the global parameters and the
matching algorithm).  Both interfaces are thin shells around the same
operations; :class:`repro.service.api.PTRiderService` exposes those
operations programmatically.
"""

from repro.service.api import Booking, PTRiderService, build_system

__all__ = ["Booking", "PTRiderService", "build_system"]
