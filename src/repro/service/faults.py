"""Deterministic fault injection for the serving path (the chaos harness).

A :class:`FaultPlan` is a seeded, fully deterministic schedule of fault
injections keyed on *named fire points* scattered through the serving path.
Production code calls :func:`fire` at each point; when no plan is installed
the call is a single global ``None`` check, so the instrumentation is free.
When a plan is installed (``faults.install(plan)`` or ``with plan:``) each
``fire`` looks up the specs registered for that point and executes the
matching actions.

Fire points currently instrumented:

===================  =========================================================
point                where it fires
===================  =========================================================
``worker.batch``     inside a pool worker, on receiving a ``batch`` command
``worker.turn``      inside a pool worker, before computing a turn's shards
``pool.begin``       parent side of :meth:`ParallelDispatchPool.begin_batch`
``ingest.flush``     inside :meth:`MicroBatcher._flush`, before dispatch
``journal.append``   inside :meth:`ServiceJournal.append` (``tag`` = kind)
===================  =========================================================

Actions:

* ``"sleep"`` -- delay for :attr:`FaultSpec.seconds` (a slow worker or a
  slow flush; inflates latency but changes no outcome);
* ``"stall"`` -- ignore ``SIGTERM`` and sleep for a very long time: a
  *wedged* process that only ``SIGKILL`` removes.  Worker-side points only
  (parent-side stalls would wedge the service itself);
* ``"kill"`` -- ``os._exit``: an abrupt crash with no cleanup;
* ``"error"`` -- raise :class:`FaultInjected` (a transient failure the
  caller may retry).

Determinism: every ``fire(point, position=..., tag=...)`` call site key
keeps its own monotonically increasing occurrence counter, and a spec only
executes when the current occurrence index is listed in its ``at`` tuple.
Counters live in the plan instance, so a plan shipped to a freshly spawned
worker counts that worker's occurrences from zero -- a spec targeting
``position=1, at=(3,)`` always means "worker 1's fourth turn since it
started", independent of scheduling order.  :meth:`FaultPlan.seeded` draws
the occurrence indices from :class:`random.Random`, giving a reproducible
pseudo-random schedule from a single seed.

This module is imported from ``repro.core.parallel`` (lazily) and from the
service layer; to stay cycle-free it must import nothing from ``repro``
beyond :mod:`repro.errors`.
"""

from __future__ import annotations

import os
import random
import signal
import time
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.errors import ServiceError

__all__ = [
    "FaultInjected",
    "FaultSpec",
    "FaultPlan",
    "active",
    "active_specs",
    "clear",
    "fire",
    "install",
]

#: Valid :attr:`FaultSpec.action` values.
ACTIONS = ("sleep", "stall", "kill", "error")

#: How long a ``"stall"`` sleeps when the spec gives no ``seconds``: long
#: enough that only the watchdog (or ``SIGKILL``) ends it.
STALL_SECONDS = 3600.0

#: Exit status of a ``"kill"`` action -- distinctive in worker post-mortems.
KILL_EXIT_CODE = 170


class FaultInjected(ServiceError):
    """The error raised by an ``"error"`` fault: a transient, retryable fault."""


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: *what* happens, *where*, and on which occurrences.

    Args:
        point: the fire-point name (``"worker.turn"``, ``"journal.append"``, ...).
        action: one of :data:`ACTIONS`.
        at: 0-based occurrence indices of the matching fire key at which the
            action executes.
        seconds: delay for ``"sleep"`` (and optionally ``"stall"``).
        position: only fire in the worker with this position (``None``
            matches any position, including the parent's ``None``).
        tag: only fire when the call site passes this tag (``None`` matches
            any tag).  ``journal.append`` tags each call with its record kind.
    """

    point: str
    action: str = "error"
    at: Tuple[int, ...] = (0,)
    seconds: float = 0.05
    position: Optional[int] = None
    tag: Optional[str] = None

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ServiceError(f"unknown fault action {self.action!r}")

    def matches(self, point: str, position: Optional[int], tag: Optional[str]) -> bool:
        """Whether this spec applies to a fire at the given key (ignoring counts)."""
        if self.point != point:
            return False
        if self.position is not None and self.position != position:
            return False
        if self.tag is not None and self.tag != tag:
            return False
        return True


class FaultPlan:
    """A deterministic schedule of :class:`FaultSpec` injections.

    Usable as a context manager: ``with FaultPlan([...]):`` installs the
    plan for the block and clears it afterwards (even on error).
    """

    def __init__(self, specs: Iterable[FaultSpec], name: str = "chaos") -> None:
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self.name = name
        #: occurrence counters per exact ``(point, position, tag)`` fire key
        self._counts: Dict[Tuple[str, Optional[int], Optional[str]], int] = {}
        #: how many times each ``point:action`` actually executed
        self.fired: Dict[str, int] = {}

    @classmethod
    def seeded(
        cls,
        seed: int,
        entries: Sequence[Tuple[str, str, int, int]],
        name: str = "chaos",
        **spec_defaults: object,
    ) -> "FaultPlan":
        """Build a reproducible pseudo-random plan from a seed.

        Each entry is ``(point, action, count, span)``: ``count`` distinct
        occurrence indices are sampled (without replacement) from
        ``range(span)`` for that point/action.  Extra keyword arguments are
        forwarded to every generated :class:`FaultSpec`.
        """
        rng = random.Random(seed)
        specs = []
        for point, action, count, span in entries:
            indices = tuple(sorted(rng.sample(range(span), min(count, span))))
            specs.append(FaultSpec(point=point, action=action, at=indices, **spec_defaults))
        return cls(specs, name=name)

    # ------------------------------------------------------------------
    def __enter__(self) -> "FaultPlan":
        install(self)
        return self

    def __exit__(self, *exc_info: object) -> None:
        clear()

    # ------------------------------------------------------------------
    def fire(
        self, point: str, position: Optional[int] = None, tag: Optional[str] = None
    ) -> None:
        """Count one occurrence of the fire key and execute any due specs."""
        key = (point, position, tag)
        index = self._counts.get(key, 0)
        self._counts[key] = index + 1
        for spec in self.specs:
            if index in spec.at and spec.matches(point, position, tag):
                self._execute(spec)

    def _execute(self, spec: FaultSpec) -> None:
        label = f"{spec.point}:{spec.action}"
        self.fired[label] = self.fired.get(label, 0) + 1
        if spec.action == "sleep":
            time.sleep(spec.seconds)
        elif spec.action == "stall":
            # A wedged process: SIGTERM is ignored so polite termination
            # fails and only the watchdog's SIGKILL (or close()'s kill
            # escalation) removes it.  Worker-side points only.
            try:
                signal.signal(signal.SIGTERM, signal.SIG_IGN)
            except (ValueError, OSError):  # pragma: no cover - non-main thread
                pass
            time.sleep(spec.seconds if spec.seconds > 1.0 else STALL_SECONDS)
        elif spec.action == "kill":
            os._exit(KILL_EXIT_CODE)
        else:  # "error"
            raise FaultInjected(f"injected fault at {spec.point}")


#: The globally installed plan (``None`` when fault injection is inactive).
_ACTIVE: Optional[FaultPlan] = None


def install(plan: FaultPlan) -> FaultPlan:
    """Install a plan globally; returns it (handy for ``with install(...)``)."""
    global _ACTIVE
    _ACTIVE = plan
    return plan


def clear() -> None:
    """Deactivate fault injection."""
    global _ACTIVE
    _ACTIVE = None


def active() -> Optional[FaultPlan]:
    """The currently installed plan, if any."""
    return _ACTIVE


def active_specs() -> Optional[Tuple[FaultSpec, ...]]:
    """The installed plan's specs -- what a spawning pool ships to workers.

    Only worker-side points travel: parent-side counters must not restart
    from zero in the child, and a child has no use for parent points.
    """
    if _ACTIVE is None:
        return None
    specs = tuple(spec for spec in _ACTIVE.specs if spec.point.startswith("worker."))
    return specs or None


def fire(point: str, position: Optional[int] = None, tag: Optional[str] = None) -> None:
    """Fire a named point against the installed plan (no-op when inactive)."""
    if _ACTIVE is not None:
        _ACTIVE.fire(point, position=position, tag=tag)
